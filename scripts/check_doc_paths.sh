#!/usr/bin/env bash
# Docs rot when code moves: fail CI if docs/ARCHITECTURE.md,
# docs/PERFORMANCE.md, docs/WIRE_FORMAT.md or docs/OBSERVABILITY.md reference a repo path that no
# longer exists.
#
# A "path reference" is any token that starts with a known top-level source
# directory (src/, tests/, bench/, examples/, scripts/, docs/, .github/).
# Brace groups like src/timeseries/distance.{hpp,cpp} are expanded before
# checking. Trailing sentence punctuation is stripped.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

docs=(docs/ARCHITECTURE.md docs/PERFORMANCE.md docs/WIRE_FORMAT.md docs/OBSERVABILITY.md)
status=0

for doc in "${docs[@]}"; do
  if [[ ! -f "$doc" ]]; then
    echo "MISSING DOC: $doc" >&2
    status=1
    continue
  fi
  # Tokens: known root dir, then path characters (incl. {a,b} groups).
  while IFS= read -r ref; do
    # Strip trailing punctuation that belongs to the sentence, not the path.
    while [[ "$ref" == *. || "$ref" == *, || "$ref" == *: || "$ref" == *\) ]]; do
      ref="${ref%?}"
    done
    [[ -n "$ref" ]] || continue
    # Expand {a,b} groups; the grep charset admits no shell metacharacters
    # beyond the braces/commas themselves, so eval-echo is safe here.
    for candidate in $(eval echo "$ref"); do
      if [[ ! -e "$candidate" ]]; then
        echo "STALE PATH in $doc: $candidate (from '$ref')" >&2
        status=1
      fi
    done
  done < <(grep -oE '\b(src|tests|bench|examples|scripts|docs|\.github)/[A-Za-z0-9_.{},/-]+' "$doc" | sort -u)
done

if [[ $status -eq 0 ]]; then
  echo "doc path references OK (${docs[*]})"
fi
exit $status
