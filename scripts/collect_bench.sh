#!/usr/bin/env bash
# Collects the per-PR perf snapshot: runs the seven perf benches
# (bench_distance_micro, bench_throughput_batch, bench_multi_drone_streaming,
# bench_interaction_dialogue, bench_fleet_coordination, bench_journal_replay,
# bench_telemetry_overhead) with --json and merges their outputs into one
# BENCH_<pr>.json at the repo root, so the perf trajectory is
# machine-readable per PR. Schema: docs/PERFORMANCE.md.
#
# Usage: scripts/collect_bench.sh [--build-dir DIR] [--out FILE] [--smoke] [--reuse]
#   --build-dir DIR  where the bench executables live (default: build)
#   --out FILE       merged snapshot path (default: BENCH_10.json at repo root)
#   --smoke          pass --smoke to the benches that support it (CI-sized runs)
#   --reuse          skip running a bench whose per-bench JSON already exists
#                    in the build dir (CI runs some benches in earlier steps)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build"
out_file="$repo_root/BENCH_10.json"
smoke=""
reuse=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="$2"; shift 2 ;;
    --out)       out_file="$2";  shift 2 ;;
    --smoke)     smoke="--smoke"; shift ;;
    --reuse)     reuse=1; shift ;;
    *) echo "usage: $0 [--build-dir DIR] [--out FILE] [--smoke] [--reuse]" >&2
       exit 2 ;;
  esac
done
[[ "$build_dir" = /* ]] || build_dir="$repo_root/$build_dir"

# bench name -> extra flags (bench_throughput_batch has no smoke mode; its
# full run is already CI-sized).
run_bench() {
  local name="$1"; shift
  local json="$build_dir/$name.json"
  if [[ $reuse -eq 1 && -s "$json" ]]; then
    echo "reusing $json"
    return 0
  fi
  if [[ ! -x "$build_dir/$name" ]]; then
    echo "error: $build_dir/$name not built (cmake --build $build_dir)" >&2
    exit 1
  fi
  echo "running $name $*..."
  (cd "$build_dir" && "./$name" "$@" --json "$name.json")
}

run_bench bench_distance_micro ${smoke:+$smoke}
run_bench bench_throughput_batch
run_bench bench_multi_drone_streaming ${smoke:+$smoke} --trace bench_streaming_trace.json
run_bench bench_interaction_dialogue ${smoke:+$smoke}
run_bench bench_fleet_coordination ${smoke:+$smoke}
run_bench bench_journal_replay ${smoke:+$smoke}
run_bench bench_telemetry_overhead ${smoke:+$smoke}

python3 - "$build_dir" "$out_file" <<'PY'
import json, pathlib, sys

build_dir, out_file = map(pathlib.Path, sys.argv[1:3])
benches = {}
for name in ("bench_distance_micro", "bench_throughput_batch",
             "bench_multi_drone_streaming", "bench_interaction_dialogue",
             "bench_fleet_coordination", "bench_journal_replay",
             "bench_telemetry_overhead"):
    with open(build_dir / f"{name}.json") as fh:
        payload = json.load(fh)
    benches[payload.pop("bench", name.removeprefix("bench_"))] = payload

hardware_threads = next((p["hardware_threads"] for p in benches.values()
                         if "hardware_threads" in p), None)

# Surface the parallel-scaling curves at the top level so a reader (or a
# trend script) gets worker/shard scaling next to hardware_threads without
# digging through per-bench cells.
worker_scaling = [
    {"workers": c["workers"], "fps": c["fps"], "speedup": c["speedup"]}
    for c in benches.get("throughput_batch", {}).get("cells", [])
    if "workers" in c
]
shard_scaling = [
    {"streams": c["streams"], "shards": c["shards"],
     "aggregate_fps": c["aggregate_fps"], "p99_ms": c["p99_ms"]}
    for c in benches.get("multi_drone_streaming", {}).get("cells", [])
    if "shards" in c
]
# Surface the telemetry story at the top level: the streaming bench's
# per-stage latency summary (telemetry ON for every cell) plus the
# overhead gate's verdict. Schema 3 added this block; schema 4 adds the
# traced overhead column and the causal-tracing artifacts
# (tail_attribution + health from the streaming bench's traced cell).
telemetry = {
    "stages": benches.get("multi_drone_streaming", {}).get(
        "telemetry", {}).get("stages", []),
    "counters": benches.get("multi_drone_streaming", {}).get(
        "telemetry", {}).get("counters", []),
    "overhead_pct": benches.get("telemetry_overhead", {}).get("overhead_pct"),
    "traced_overhead_pct": benches.get("telemetry_overhead", {}).get(
        "traced_overhead_pct"),
    "overhead_gate_pct": benches.get("telemetry_overhead", {}).get("gate_pct"),
    "overhead_pass": benches.get("telemetry_overhead", {}).get("pass"),
}
# Tail-latency attribution of the streaming bench's traced (largest) cell:
# which stage dominated the worst frames behind the reported p99.
tail_attribution = benches.get("multi_drone_streaming", {}).pop(
    "tail_attribution", None)
health = benches.get("multi_drone_streaming", {}).pop("health", None)
snapshot = {
    "schema": 4,
    "snapshot": out_file.name,
    "generated_by": "scripts/collect_bench.sh",
    "hardware_threads": hardware_threads,
    "worker_scaling": worker_scaling,
    "shard_scaling": shard_scaling,
    "telemetry": telemetry,
    "tail_attribution": tail_attribution,
    "health": health,
    "benches": benches,
}
out_file.write_text(json.dumps(snapshot, indent=2) + "\n")
print(f"wrote {out_file}")
PY
