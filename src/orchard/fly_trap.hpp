// Fly-trap pest-monitoring model (paper ref [9]: drones collect data from
// fly traps in cherry plantations to decide whether spraying is needed).
// Captures accumulate as a Poisson process whose rate reflects local pest
// pressure; a read samples the current count without resetting the trap.
#pragma once

#include <cstdint>

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace hdc::orchard {

class FlyTrap {
 public:
  /// `daily_rate`: expected captures per day; per-trap pressure varies.
  FlyTrap(int tree_id, util::Vec2 position, double daily_rate, std::uint64_t seed)
      : tree_id_(tree_id), position_(position), daily_rate_(daily_rate), rng_(seed) {}

  /// Advances trap time by `dt` seconds; captures arrive stochastically.
  void step(double dt_seconds) {
    elapsed_days_ += dt_seconds / 86400.0;
    pending_days_ += dt_seconds / 86400.0;
    // Sample arrivals in day-sized quanta to keep the Poisson draws cheap.
    if (pending_days_ > 0.01) {
      count_ += rng_.poisson(daily_rate_ * pending_days_);
      pending_days_ = 0.0;
    }
  }

  /// A drone read: returns the current capture count and records the visit.
  [[nodiscard]] int read() {
    ++reads_;
    return count_;
  }

  /// Spray decision threshold used by the mission report (captures per
  /// trap before action is recommended).
  static constexpr int kSprayThreshold = 12;

  [[nodiscard]] int tree_id() const noexcept { return tree_id_; }
  [[nodiscard]] util::Vec2 position() const noexcept { return position_; }
  [[nodiscard]] int count() const noexcept { return count_; }
  [[nodiscard]] int reads() const noexcept { return reads_; }
  [[nodiscard]] bool needs_spray() const noexcept { return count_ >= kSprayThreshold; }

 private:
  int tree_id_;
  util::Vec2 position_;
  double daily_rate_;
  util::Rng rng_;
  double elapsed_days_{0.0};
  double pending_days_{0.0};
  int count_{0};
  int reads_{0};
};

}  // namespace hdc::orchard
