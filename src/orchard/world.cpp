#include "orchard/world.hpp"

#include <stdexcept>

namespace hdc::orchard {

World::World(const WorldConfig& config, const core::HdcSystem* system)
    : config_(config),
      clock_(config.tick_s),
      map_(config.layout),
      drone_([&] {
        drone::DroneConfig dc = config.drone;
        dc.safety.geofence = OrchardMap(config.layout).geofence();
        return dc;
      }()),
      mission_([&] {
        std::vector<std::pair<int, util::Vec2>> traps;
        for (int id : OrchardMap(config.layout).trap_tree_ids()) {
          traps.emplace_back(id, OrchardMap(config.layout).tree(id).position);
        }
        return MissionController(config.mission, OrchardMap(config.layout).base_station(),
                                 std::move(traps));
      }()),
      system_(system) {
  util::Rng rng(config.seed);

  // Traps mirror the map's trap trees; pest pressure varies per trap, and
  // captures have accumulated since the last monitoring round.
  for (int id : map_.trap_tree_ids()) {
    traps_.emplace_back(id, map_.tree(id).position,
                        rng.uniform(0.5, 2.0) * config.trap_daily_rate, rng.next());
    traps_.back().step(config.trap_preload_days * 86400.0);
  }

  // Actors: a supervisor, `workers` workers, `visitors` visitors.
  // Trained staff service the trap trees (their work sites are the traps,
  // which is exactly why they end up blocking the drone's access); visitors
  // wander among all trees.
  std::vector<util::Vec2> trap_sites;
  for (int id : map_.trap_tree_ids()) trap_sites.push_back(map_.tree(id).position);
  std::vector<util::Vec2> all_sites;
  for (const Tree& tree : map_.trees()) all_sites.push_back(tree.position);
  int next_id = 0;
  const auto spawn = [&](protocol::HumanRole role,
                         const std::vector<util::Vec2>& sites) {
    const util::Vec2 start =
        sites[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(sites.size()) - 1))];
    actors_.emplace_back(next_id++, role, start, sites, rng.next());
  };
  spawn(protocol::HumanRole::kSupervisor, trap_sites);
  for (int i = 0; i < config.workers; ++i) spawn(protocol::HumanRole::kWorker, trap_sites);
  for (int i = 0; i < config.visitors; ++i) spawn(protocol::HumanRole::kVisitor, all_sites);

  // Perception channels.
  switch (config.perception) {
    case PerceptionMode::kPerfect:
      sign_channel_ = std::make_unique<protocol::PerfectSignChannel>();
      break;
    case PerceptionMode::kNoisy:
      sign_channel_ = std::make_unique<protocol::NoisySignChannel>(
          config.noisy_miss_rate, config.noisy_confusion_rate, rng.next());
      break;
    case PerceptionMode::kCamera: {
      if (system_ == nullptr) {
        throw std::invalid_argument("World: kCamera perception needs an HdcSystem");
      }
      auto channel = std::make_unique<core::CameraSignChannel>(*system_, rng.next());
      camera_channel_ = channel.get();
      sign_channel_ = std::move(channel);
      break;
    }
  }
  pattern_channel_ = std::make_unique<protocol::NoisyPatternChannel>(
      config.human_pattern_miss_rate, config.human_pattern_confusion_rate, rng.next());

  // Drone starts parked on the base station.
  drone_.reset_position(
      {map_.base_station().x, map_.base_station().y, 0.0});
}

void World::log(const std::string& text) { events_.push_back({clock_.seconds(), text}); }

HumanActor* World::find_actor(int id) {
  for (HumanActor& actor : actors_) {
    if (actor.id() == id) return &actor;
  }
  return nullptr;
}

HumanActor* World::blocker_for(const util::Vec2& trap_position) {
  for (HumanActor& actor : actors_) {
    if (actor.blocks(trap_position)) return &actor;
  }
  return nullptr;
}

void World::step() {
  const double dt = clock_.tick_seconds();
  clock_.advance();

  // Traps accumulate captures continuously.
  for (FlyTrap& trap : traps_) trap.step(dt);

  // Humans: those near the drone read its pattern; only the negotiation
  // partner is addressed, others just watch (and may get out of the way on
  // their own in a richer model).
  const std::optional<drone::PatternType> active = drone_.active_pattern();
  for (HumanActor& actor : actors_) {
    std::optional<drone::PatternType> perceived;
    const double dist =
        actor.position().distance_to(drone_.state().position.xy());
    if (active.has_value() && dist < 12.0) {
      perceived = pattern_channel_->sense(active);
    }
    // Only the addressed human treats patterns as addressed to them.
    if (actor.id() != negotiating_actor_) {
      if (perceived == drone::PatternType::kPoke ||
          perceived == drone::PatternType::kRectangleRequest) {
        perceived.reset();
      }
    }
    actor.step(dt, perceived);
    if (actor.id() == negotiating_actor_ && actor.responder().attentive()) {
      actor.face_towards(drone_.state().position.xy());
    }
  }

  // Mission world view: blocking + perceived sign of the current partner.
  MissionWorldView view;
  if (const auto trap_id = mission_.current_trap()) {
    const util::Vec2 trap_pos = map_.tree(*trap_id).position;
    if (HumanActor* blocker = blocker_for(trap_pos)) {
      view.blocker_position = blocker->position();
      view.blocker_id = blocker->id();
    }
  }
  if (negotiating_actor_ >= 0) {
    HumanActor* partner = find_actor(negotiating_actor_);
    if (partner != nullptr) {
      // Camera perception runs at its own frame rate; between frames the
      // last reading holds (a tracking recogniser would do the same).
      if (camera_channel_ != nullptr) {
        camera_accumulator_ += dt;
        if (camera_accumulator_ >= config_.camera_period_s) {
          camera_accumulator_ = 0.0;
          camera_channel_->set_context({drone_.state().position, partner->position(),
                                        partner->facing()});
          camera_channel_->set_pose_sampler(
              [partner](signs::HumanSign) { return partner->responder().sample_displayed_pose(); });
          last_perceived_ = camera_channel_->sense(partner->displayed_sign());
        }
      } else {
        last_perceived_ = sign_channel_->sense(partner->displayed_sign());
      }
      view.perceived_sign = last_perceived_;
      if (view.blocker_id != negotiating_actor_) {
        // Keep negotiating with the same partner even if they shifted a
        // little; the mission controller needs a consistent position.
        view.blocker_position = partner->position();
        view.blocker_id = partner->id();
      }
    }
  }

  // Mission controller acts on the vehicle.
  const MissionDirective directive = mission_.step(dt, drone_, view);
  switch (directive.kind) {
    case MissionDirective::Kind::kNegotiationStarted:
      negotiating_actor_ = directive.actor_id;
      last_perceived_.reset();
      log("negotiation started with actor " + std::to_string(directive.actor_id) +
          " at tree " + std::to_string(directive.tree_id));
      break;
    case MissionDirective::Kind::kAccessGranted:
      if (HumanActor* partner = find_actor(directive.actor_id)) {
        partner->step_aside(map_.tree(directive.tree_id).position);
        partner->responder().reset();
      }
      log("access granted at tree " + std::to_string(directive.tree_id));
      negotiating_actor_ = -1;
      break;
    case MissionDirective::Kind::kTrapRead:
      for (FlyTrap& trap : traps_) {
        if (trap.tree_id() == directive.tree_id) {
          const int count = trap.read();
          mission_.stats().trap_readings.emplace_back(directive.tree_id, count);
          if (trap.needs_spray()) ++mission_.stats().traps_needing_spray;
          log("trap " + std::to_string(directive.tree_id) + " read: " +
              std::to_string(count) + " captures");
          break;
        }
      }
      break;
    case MissionDirective::Kind::kNone:
      break;
  }
  // A finished negotiation (non-granted paths) releases the partner.
  if (negotiating_actor_ >= 0 && mission_.phase() != MissionPhase::kNegotiate &&
      mission_.phase() != MissionPhase::kApproachStation) {
    if (HumanActor* partner = find_actor(negotiating_actor_)) {
      partner->responder().reset();
    }
    negotiating_actor_ = -1;
    last_perceived_.reset();
  }

  // Vehicle: advance with humans for the separation check.
  std::vector<util::Vec2> human_positions;
  human_positions.reserve(actors_.size());
  for (const HumanActor& actor : actors_) human_positions.push_back(actor.position());
  drone_.step(dt, human_positions);
}

const MissionStats& World::run(double max_seconds) {
  while (!mission_.done() && clock_.seconds() < max_seconds) step();
  return mission_.stats();
}

}  // namespace hdc::orchard
