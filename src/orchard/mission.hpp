// Trap-monitoring mission controller: plan a route over all fly traps,
// negotiate with any human blocking a trap (the paper's core scenario),
// read the traps, return home. Drives the Drone and the DroneNegotiator;
// the World owns the perception channels.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "drone/drone.hpp"
#include "protocol/drone_negotiator.hpp"
#include "signs/sign.hpp"
#include "util/geometry.hpp"

namespace hdc::orchard {

using hdc::util::Vec2;
using hdc::util::Vec3;

/// Mission-level tuning.
struct MissionConfig {
  double comm_distance_m{3.0};    ///< paper's negotiation stand-off distance
  double comm_altitude_m{3.5};    ///< canonical recognition altitude
  double read_altitude_m{1.8};    ///< hover height when reading a trap
  double read_duration_s{4.0};
  int max_revisits{1};            ///< re-queue attempts for denied/blocked traps
  double mission_timeout_s{3600.0};
  protocol::NegotiationConfig negotiation{};
};

/// Mission phases.
enum class MissionPhase : std::uint8_t {
  kPreflight = 0,
  kTakeOff,
  kTransit,
  kAssess,           ///< arrived near a trap; check for blockers
  kApproachStation,  ///< move to the negotiation stand-off point
  kNegotiate,
  kRead,
  kReturnHome,
  kLand,
  kDone,
};

[[nodiscard]] constexpr const char* to_string(MissionPhase phase) noexcept {
  switch (phase) {
    case MissionPhase::kPreflight: return "Preflight";
    case MissionPhase::kTakeOff: return "TakeOff";
    case MissionPhase::kTransit: return "Transit";
    case MissionPhase::kAssess: return "Assess";
    case MissionPhase::kApproachStation: return "ApproachStation";
    case MissionPhase::kNegotiate: return "Negotiate";
    case MissionPhase::kRead: return "Read";
    case MissionPhase::kReturnHome: return "ReturnHome";
    case MissionPhase::kLand: return "Land";
    case MissionPhase::kDone: return "Done";
  }
  return "?";
}

/// Aggregate statistics of one mission run.
struct MissionStats {
  int traps_total{0};
  int traps_read{0};
  int traps_skipped{0};
  int negotiations{0};
  int granted{0};
  int denied{0};
  int no_attention{0};
  int no_answer{0};
  int aborted{0};
  double mission_time_s{0.0};
  double energy_used_wh{0.0};
  double distance_flown_m{0.0};
  std::vector<std::pair<int, int>> trap_readings;  ///< (tree id, count)
  int traps_needing_spray{0};
};

/// Per-tick view of the world the controller needs.
struct MissionWorldView {
  std::optional<Vec2> blocker_position;  ///< human blocking the current trap
  std::optional<int> blocker_id;
  std::optional<signs::HumanSign> perceived_sign;  ///< from the sign channel
};

/// Fleet-level routing input (produced by coordination::CoordinationService
/// ::plan_hint, but plain data so orchard does not depend upward): which
/// orchard cells (tree ids) this drone currently holds a negotiated space
/// grant for, and which it must keep clear of (denied or revoked).
struct PlanHint {
  std::vector<int> granted_cells;  ///< use them now, before the lease expires
  std::vector<int> blocked_cells;  ///< keep clear (denied / revoked)
};

/// What apply_plan_hint changed, so callers (and tests) can see the route
/// move.
struct PlanHintEffect {
  int promoted{0};  ///< granted tasks moved to the head of the route
  int removed{0};   ///< blocked tasks dropped from the route
};

/// What the controller asks of the world this tick.
struct MissionDirective {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kNegotiationStarted,  ///< world should bind channels to blocker_id
    kAccessGranted,       ///< world should make the blocker step aside
    kTrapRead,            ///< world should record the reading
  };
  Kind kind{Kind::kNone};
  int actor_id{-1};
  int tree_id{-1};
};

class MissionController {
 public:
  MissionController(MissionConfig config, Vec2 base_station,
                    std::vector<std::pair<int, Vec2>> traps);

  /// Advances the mission one tick against the vehicle. The caller supplies
  /// a per-tick world view and applies the returned directive.
  MissionDirective step(double dt, drone::Drone& drone, const MissionWorldView& view);

  /// Folds a fleet-level grant hint into the route: granted cells move to
  /// the head of the queue (a negotiated space must be used before its
  /// lease expires — no point finishing the far rows first), blocked cells
  /// leave the queue (counted as skipped; a later grant can re-add them
  /// via restore_cell). The task the controller is actively working
  /// (phases kAssess..kRead) is never touched mid-flight — it is promoted
  /// or removed only from kTransit or earlier/later phases.
  PlanHintEffect apply_plan_hint(const PlanHint& hint);

  /// Re-queues a previously removed (blocked) trap cell, e.g. when its
  /// denial expired. No-op if the cell is already queued or unknown.
  bool restore_cell(int tree_id);

  /// The queued route as tree ids, in visit order (head = next target).
  [[nodiscard]] std::vector<int> route() const;

  [[nodiscard]] MissionPhase phase() const noexcept { return phase_; }
  [[nodiscard]] bool done() const noexcept { return phase_ == MissionPhase::kDone; }
  [[nodiscard]] const MissionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] MissionStats& stats() noexcept { return stats_; }
  [[nodiscard]] std::optional<int> current_trap() const noexcept {
    return queue_empty() ? std::nullopt : std::make_optional(queue_front().tree_id);
  }
  [[nodiscard]] const protocol::DroneNegotiator& negotiator() const noexcept {
    return negotiator_;
  }
  [[nodiscard]] const MissionConfig& config() const noexcept { return config_; }

 private:
  struct TrapTask {
    int tree_id{0};
    Vec2 position{};
    int visits{0};
  };

  void enter(MissionPhase next);
  void plan_route(const Vec2& from);
  [[nodiscard]] bool queue_empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] const TrapTask& queue_front() const { return queue_.front(); }

  /// True while queue_.front() is the task the phase machinery is actively
  /// working (so plan hints must not reorder it out from under a
  /// negotiation or read in progress).
  [[nodiscard]] bool front_task_active() const noexcept {
    return phase_ == MissionPhase::kAssess ||
           phase_ == MissionPhase::kApproachStation ||
           phase_ == MissionPhase::kNegotiate || phase_ == MissionPhase::kRead;
  }

  MissionConfig config_;
  Vec2 base_;
  std::vector<TrapTask> queue_;
  std::vector<TrapTask> removed_;  ///< blocked tasks, kept for restore_cell
  protocol::DroneNegotiator negotiator_;
  MissionStats stats_{};
  MissionPhase phase_{MissionPhase::kPreflight};
  double phase_clock_{0.0};
  double mission_clock_{0.0};
  double read_left_{0.0};
  Vec3 last_position_{};
  bool pattern_pending_{false};
  int negotiation_actor_{-1};
};

}  // namespace hdc::orchard
