// A human in the orchard: position + movement + the protocol responder.
// Actors work at trees (potentially blocking the drone's access to traps),
// answer negotiations per their role model, and physically step aside when
// they grant access.
#pragma once

#include <optional>
#include <vector>

#include "protocol/human_agent.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace hdc::orchard {

using hdc::util::Vec2;

/// Movement/behaviour parameters.
struct ActorParams {
  double walk_speed{1.2};        ///< m/s
  double work_duration_mean_s{45.0};
  double blocking_radius{1.8};   ///< within this of a trap = blocks access
  double step_aside_distance{2.5};
  double step_aside_duration_s{25.0};  ///< stays clear this long after granting
};

class HumanActor {
 public:
  HumanActor(int id, protocol::HumanRole role, Vec2 position,
             std::vector<Vec2> work_sites, std::uint64_t seed);

  /// Advances movement + the responder.
  /// `perceived_pattern`: drone pattern this actor currently reads.
  void step(double dt, std::optional<drone::PatternType> perceived_pattern);

  /// Orders the actor to clear the area (they granted access).
  void step_aside(const Vec2& away_from);

  [[nodiscard]] bool blocks(const Vec2& point) const {
    return position_.distance_to(point) <= params_.blocking_radius;
  }

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] Vec2 position() const noexcept { return position_; }
  [[nodiscard]] double facing() const noexcept { return facing_rad_; }
  [[nodiscard]] protocol::HumanResponder& responder() noexcept { return responder_; }
  [[nodiscard]] const protocol::HumanResponder& responder() const noexcept {
    return responder_;
  }
  [[nodiscard]] signs::HumanSign displayed_sign() const noexcept {
    return responder_.displayed_sign();
  }
  [[nodiscard]] const ActorParams& params() const noexcept { return params_; }

  /// Turns the actor to face a world point (humans face the drone once
  /// attentive).
  void face_towards(const Vec2& point);

 private:
  void pick_next_site();

  int id_;
  ActorParams params_{};
  protocol::HumanResponder responder_;
  util::Rng rng_;
  Vec2 position_{};
  double facing_rad_{0.0};
  std::vector<Vec2> work_sites_;
  std::size_t current_site_{0};
  double work_left_s_{0.0};
  std::optional<Vec2> walk_target_;
  double aside_left_s_{0.0};
  std::optional<Vec2> return_position_;
};

}  // namespace hdc::orchard
