#include "orchard/human_actor.hpp"

#include <cmath>

namespace hdc::orchard {

HumanActor::HumanActor(int id, protocol::HumanRole role, Vec2 position,
                       std::vector<Vec2> work_sites, std::uint64_t seed)
    : id_(id),
      responder_(role, seed ^ 0x5a5aULL),
      rng_(seed),
      position_(position),
      work_sites_(std::move(work_sites)) {
  if (work_sites_.empty()) work_sites_.push_back(position);
  work_left_s_ = rng_.exponential(params_.work_duration_mean_s);
}

void HumanActor::face_towards(const Vec2& point) {
  const Vec2 d = point - position_;
  if (d.norm() > 1e-6) facing_rad_ = d.angle();
}

void HumanActor::pick_next_site() {
  current_site_ = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(work_sites_.size()) - 1));
  walk_target_ = work_sites_[current_site_];
}

void HumanActor::step_aside(const Vec2& away_from) {
  // Move perpendicular-ish away from the requested spot.
  Vec2 dir = position_ - away_from;
  if (dir.norm() < 1e-6) dir = {1.0, 0.0};
  return_position_ = position_;
  walk_target_ = position_ + dir.normalized() * params_.step_aside_distance;
  aside_left_s_ = params_.step_aside_duration_s;
}

void HumanActor::step(double dt, std::optional<drone::PatternType> perceived_pattern) {
  // Protocol behaviour first (may change displayed sign).
  responder_.step(dt, perceived_pattern);

  // An attentive human interrupts work; they stand and face the drone, so
  // no wandering while a negotiation is live.
  const bool engaged_in_protocol =
      responder_.attentive() && aside_left_s_ <= 0.0 && !return_position_.has_value();

  // Step-aside countdown; afterwards walk back to the saved spot.
  if (aside_left_s_ > 0.0) {
    aside_left_s_ -= dt;
    if (aside_left_s_ <= 0.0 && return_position_.has_value()) {
      walk_target_ = return_position_;
      return_position_.reset();
    }
  }

  // Movement toward the current walk target.
  if (walk_target_.has_value()) {
    const Vec2 to_target = *walk_target_ - position_;
    const double dist = to_target.norm();
    const double step_len = params_.walk_speed * dt;
    if (dist <= step_len) {
      position_ = *walk_target_;
      walk_target_.reset();
    } else {
      position_ += to_target * (step_len / dist);
      facing_rad_ = to_target.angle();
    }
    return;
  }

  if (engaged_in_protocol) return;  // standing still, facing the drone

  // Work at the current site; move on when done.
  work_left_s_ -= dt;
  if (work_left_s_ <= 0.0) {
    work_left_s_ = rng_.exponential(params_.work_duration_mean_s);
    pick_next_site();
  }
}

}  // namespace hdc::orchard
