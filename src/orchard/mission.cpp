#include "orchard/mission.hpp"

#include <algorithm>
#include <limits>

namespace hdc::orchard {

MissionController::MissionController(MissionConfig config, Vec2 base_station,
                                     std::vector<std::pair<int, Vec2>> traps)
    : config_(config), base_(base_station), negotiator_(config.negotiation) {
  for (const auto& [id, pos] : traps) queue_.push_back({id, pos, 0});
  stats_.traps_total = static_cast<int>(queue_.size());
  plan_route(base_);
}

void MissionController::plan_route(const Vec2& from) {
  // Greedy nearest-neighbour ordering; adequate for orchard-scale routes.
  std::vector<TrapTask> route;
  std::vector<TrapTask> remaining = queue_;
  Vec2 cursor = from;
  while (!remaining.empty()) {
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      const double d = cursor.distance_to(remaining[i].position);
      if (d < best_dist) {
        best_dist = d;
        best = i;
      }
    }
    route.push_back(remaining[best]);
    cursor = remaining[best].position;
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
  }
  queue_ = std::move(route);
}

PlanHintEffect MissionController::apply_plan_hint(const PlanHint& hint) {
  PlanHintEffect effect;
  const std::size_t protect = front_task_active() && !queue_.empty() ? 1 : 0;

  // Blocked cells leave the route (skipped, recoverable via restore_cell).
  for (const int cell : hint.blocked_cells) {
    for (std::size_t i = protect; i < queue_.size();) {
      if (queue_[i].tree_id == cell) {
        removed_.push_back(queue_[i]);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        ++stats_.traps_skipped;
        ++effect.removed;
      } else {
        ++i;
      }
    }
  }

  // Granted cells move to the head, preserving the hint's order among
  // themselves (hint index 0 ends up at the queue head). The search
  // starts at insert_at: positions before it hold already-placed cells,
  // so a duplicate cell id in the hint is a no-op instead of demoting
  // the copy it already promoted.
  std::size_t insert_at = protect;
  for (const int cell : hint.granted_cells) {
    for (std::size_t i = insert_at; i < queue_.size(); ++i) {
      if (queue_[i].tree_id != cell) continue;
      if (i != insert_at) {
        TrapTask task = queue_[i];
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(insert_at),
                      task);
        ++effect.promoted;
      }
      ++insert_at;
      break;
    }
  }
  return effect;
}

bool MissionController::restore_cell(int tree_id) {
  for (std::size_t i = 0; i < removed_.size(); ++i) {
    if (removed_[i].tree_id != tree_id) continue;
    TrapTask task = removed_[i];
    removed_.erase(removed_.begin() + static_cast<std::ptrdiff_t>(i));
    --stats_.traps_skipped;
    queue_.push_back(task);
    return true;
  }
  return false;
}

std::vector<int> MissionController::route() const {
  std::vector<int> ids;
  ids.reserve(queue_.size());
  for (const TrapTask& task : queue_) ids.push_back(task.tree_id);
  return ids;
}

void MissionController::enter(MissionPhase next) {
  phase_ = next;
  phase_clock_ = 0.0;
  pattern_pending_ = false;
}

MissionDirective MissionController::step(double dt, drone::Drone& drone,
                                         const MissionWorldView& view) {
  MissionDirective directive;
  mission_clock_ += dt;
  phase_clock_ += dt;

  // Distance bookkeeping.
  const Vec3 pos = drone.state().position;
  stats_.distance_flown_m += pos.distance_to(last_position_);
  last_position_ = pos;
  stats_.mission_time_s = mission_clock_;

  // Global timeout: head home whatever the phase.
  if (mission_clock_ > config_.mission_timeout_s &&
      phase_ != MissionPhase::kReturnHome && phase_ != MissionPhase::kLand &&
      phase_ != MissionPhase::kDone) {
    stats_.traps_skipped += static_cast<int>(queue_.size());
    queue_.clear();
    enter(MissionPhase::kReturnHome);
  }

  switch (phase_) {
    case MissionPhase::kPreflight:
      drone.preflight_complete();
      enter(MissionPhase::kTakeOff);
      drone.command_pattern(drone::PatternType::kTakeOff);
      break;

    case MissionPhase::kTakeOff:
      if (!drone.pattern_active()) {
        if (queue_.empty()) {
          enter(MissionPhase::kReturnHome);
        } else {
          enter(MissionPhase::kTransit);
          const Vec2 target = queue_front().position;
          drone.command_pattern(drone::PatternType::kHorizontalTransit, {0.0, 1.0},
                                {target.x, target.y, 0.0});
        }
      }
      break;

    case MissionPhase::kTransit:
      if (!drone.pattern_active()) enter(MissionPhase::kAssess);
      break;

    case MissionPhase::kAssess: {
      if (queue_.empty()) {
        enter(MissionPhase::kReturnHome);
        break;
      }
      if (view.blocker_position.has_value()) {
        // Someone blocks the trap: approach to the boundary of the safe
        // distance (paper §III), then open the negotiation from there.
        ++stats_.negotiations;
        negotiation_actor_ = view.blocker_id.value_or(-1);
        const Vec2 human = *view.blocker_position;
        Vec2 dir = pos.xy() - human;
        if (dir.norm() < 1e-6) dir = {0.0, -1.0};
        const Vec2 station_xy = human + dir.normalized() * config_.comm_distance_m;
        enter(MissionPhase::kApproachStation);
        drone.command_goto({station_xy.x, station_xy.y, config_.comm_altitude_m}, 0.7);
        directive.kind = MissionDirective::Kind::kNegotiationStarted;
        directive.actor_id = negotiation_actor_;
        directive.tree_id = queue_front().tree_id;
      } else {
        enter(MissionPhase::kRead);
        read_left_ = config_.read_duration_s;
      }
      break;
    }

    case MissionPhase::kApproachStation:
      if (!drone.pattern_active()) {
        negotiator_.begin();
        enter(MissionPhase::kNegotiate);
      }
      break;

    case MissionPhase::kNegotiate: {
      const Vec2 human = view.blocker_position.value_or(queue_front().position);
      const Vec2 facing = (human - pos.xy()).normalized();
      const protocol::NegotiatorCommand command =
          negotiator_.step(dt, view.perceived_sign, drone.pattern_active());
      if (command.kind == protocol::NegotiatorCommand::Kind::kFlyPattern) {
        drone.command_pattern(command.pattern, facing);
      }
      if (negotiator_.finished()) {
        TrapTask task = queue_front();
        queue_.erase(queue_.begin());
        switch (negotiator_.outcome()) {
          case protocol::Outcome::kGranted:
            ++stats_.granted;
            directive.kind = MissionDirective::Kind::kAccessGranted;
            directive.actor_id = negotiation_actor_;
            directive.tree_id = task.tree_id;
            queue_.insert(queue_.begin(), task);  // read it now
            enter(MissionPhase::kRead);
            read_left_ = config_.read_duration_s;
            break;
          case protocol::Outcome::kDenied:
            ++stats_.denied;
            if (task.visits < config_.max_revisits) {
              ++task.visits;
              queue_.push_back(task);  // retry later
            } else {
              ++stats_.traps_skipped;
            }
            enter(queue_.empty() ? MissionPhase::kReturnHome : MissionPhase::kTransit);
            if (!queue_.empty()) {
              drone.command_pattern(drone::PatternType::kHorizontalTransit, {0.0, 1.0},
                                    {queue_front().position.x, queue_front().position.y, 0.0});
            }
            break;
          default:
            if (negotiator_.outcome() == protocol::Outcome::kNoAttention) {
              ++stats_.no_attention;
            } else if (negotiator_.outcome() == protocol::Outcome::kNoAnswer) {
              ++stats_.no_answer;
            } else {
              ++stats_.aborted;
            }
            if (task.visits < config_.max_revisits) {
              ++task.visits;
              queue_.push_back(task);
            } else {
              ++stats_.traps_skipped;
            }
            enter(queue_.empty() ? MissionPhase::kReturnHome : MissionPhase::kTransit);
            if (!queue_.empty()) {
              drone.command_pattern(drone::PatternType::kHorizontalTransit, {0.0, 1.0},
                                    {queue_front().position.x, queue_front().position.y, 0.0});
            }
            break;
        }
      }
      break;
    }

    case MissionPhase::kRead:
      read_left_ -= dt;
      if (read_left_ <= 0.0) {
        ++stats_.traps_read;
        directive.kind = MissionDirective::Kind::kTrapRead;
        directive.tree_id = queue_front().tree_id;
        queue_.erase(queue_.begin());
        if (queue_.empty()) {
          enter(MissionPhase::kReturnHome);
        } else {
          enter(MissionPhase::kTransit);
          drone.command_pattern(drone::PatternType::kHorizontalTransit, {0.0, 1.0},
                                {queue_front().position.x, queue_front().position.y, 0.0});
        }
      }
      break;

    case MissionPhase::kReturnHome:
      if (!pattern_pending_) {
        drone.command_pattern(drone::PatternType::kHorizontalTransit, {0.0, 1.0},
                              {base_.x, base_.y, 0.0});
        pattern_pending_ = true;
      }
      if (pattern_pending_ && !drone.pattern_active()) {
        enter(MissionPhase::kLand);
        drone.command_pattern(drone::PatternType::kLanding);
      }
      break;

    case MissionPhase::kLand:
      if (!drone.pattern_active() && !drone.rotors_on()) {
        stats_.energy_used_wh =
            drone.battery().params().capacity_wh - drone.battery().energy_wh();
        enter(MissionPhase::kDone);
      }
      break;

    case MissionPhase::kDone:
      break;
  }
  return directive;
}

}  // namespace hdc::orchard
