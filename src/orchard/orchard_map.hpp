// The cherry-orchard world of the paper's use case (§I): rows of trees,
// fly traps on a subset of them (pest monitoring per ref [9]), a drone base
// station and the geofence enclosing it all.
#pragma once

#include <cstdint>
#include <vector>

#include "util/geometry.hpp"

namespace hdc::orchard {

using hdc::util::Box2;
using hdc::util::Vec2;

/// Orchard layout parameters.
struct OrchardLayout {
  int rows{4};
  int trees_per_row{10};
  double row_spacing_m{4.0};     ///< distance between rows
  double tree_spacing_m{3.0};    ///< distance between trees in a row
  int trap_every_n_trees{4};     ///< a fly trap on every n-th tree
  double geofence_margin_m{10.0};
};

/// One tree.
struct Tree {
  int id{0};
  Vec2 position{};
  bool has_trap{false};
};

/// Static orchard geometry.
class OrchardMap {
 public:
  explicit OrchardMap(const OrchardLayout& layout = {});

  [[nodiscard]] const std::vector<Tree>& trees() const noexcept { return trees_; }
  [[nodiscard]] std::vector<int> trap_tree_ids() const;
  [[nodiscard]] const Tree& tree(int id) const { return trees_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] Vec2 base_station() const noexcept { return base_; }
  [[nodiscard]] Box2 geofence() const noexcept { return geofence_; }
  [[nodiscard]] const OrchardLayout& layout() const noexcept { return layout_; }

 private:
  OrchardLayout layout_;
  std::vector<Tree> trees_;
  Vec2 base_{};
  Box2 geofence_{};
};

}  // namespace hdc::orchard
