#include "orchard/orchard_map.hpp"

#include <stdexcept>

namespace hdc::orchard {

OrchardMap::OrchardMap(const OrchardLayout& layout) : layout_(layout) {
  if (layout.rows <= 0 || layout.trees_per_row <= 0) {
    throw std::invalid_argument("OrchardMap: layout must have trees");
  }
  if (layout.trap_every_n_trees <= 0) {
    throw std::invalid_argument("OrchardMap: trap_every_n_trees must be >= 1");
  }
  trees_.reserve(static_cast<std::size_t>(layout.rows) *
                 static_cast<std::size_t>(layout.trees_per_row));
  int id = 0;
  for (int row = 0; row < layout.rows; ++row) {
    for (int i = 0; i < layout.trees_per_row; ++i) {
      Tree tree;
      tree.id = id;
      tree.position = {i * layout.tree_spacing_m, row * layout.row_spacing_m};
      tree.has_trap = (id % layout.trap_every_n_trees) == 0;
      trees_.push_back(tree);
      ++id;
    }
  }
  // Base station sits before the first row, clear of the canopy.
  base_ = {-2.0 * layout.tree_spacing_m, -layout.row_spacing_m};

  const double max_x = (layout.trees_per_row - 1) * layout.tree_spacing_m;
  const double max_y = (layout.rows - 1) * layout.row_spacing_m;
  geofence_ = Box2{{base_.x, base_.y}, {max_x, max_y}}.inflated(layout.geofence_margin_m);
}

std::vector<int> OrchardMap::trap_tree_ids() const {
  std::vector<int> ids;
  for (const Tree& tree : trees_) {
    if (tree.has_trap) ids.push_back(tree.id);
  }
  return ids;
}

}  // namespace hdc::orchard
