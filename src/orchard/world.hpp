// The orchard world simulation: drone + humans + traps + mission controller
// stepped on a fixed clock, with perception channels wired between them.
// This is the end-to-end harness for the paper's use case and the FIG3
// bench's high-fidelity mode.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/hdc_system.hpp"
#include "drone/drone.hpp"
#include "orchard/fly_trap.hpp"
#include "orchard/human_actor.hpp"
#include "orchard/mission.hpp"
#include "orchard/orchard_map.hpp"
#include "protocol/channels.hpp"
#include "util/sim_clock.hpp"

namespace hdc::orchard {

/// Perception fidelity for the drone's sign reading.
enum class PerceptionMode : std::uint8_t {
  kPerfect = 0,  ///< ground-truth channel
  kNoisy,        ///< stochastic channel (fast Monte-Carlo)
  kCamera,       ///< full render -> SAX recognition loop
};

/// World construction parameters.
struct WorldConfig {
  OrchardLayout layout{};
  MissionConfig mission{};
  drone::DroneConfig drone{};
  int workers{2};
  int visitors{1};
  double trap_daily_rate{3.0};          ///< mean captures/day
  double trap_preload_days{3.0};        ///< days since the last read
  double tick_s{0.05};
  PerceptionMode perception{PerceptionMode::kNoisy};
  double noisy_miss_rate{0.25};
  double noisy_confusion_rate{0.03};
  double camera_period_s{0.2};          ///< recognition frame interval
  double human_pattern_miss_rate{0.1};
  double human_pattern_confusion_rate{0.03};
  std::uint64_t seed{0xfeedULL};
};

/// One world event for the run log.
struct WorldEvent {
  double t{0.0};
  std::string text;
};

class World {
 public:
  /// `system` is required (and borrowed) only for kCamera perception.
  explicit World(const WorldConfig& config, const core::HdcSystem* system = nullptr);

  /// Advances one tick.
  void step();

  /// Runs until the mission completes or `max_seconds` elapses.
  /// Returns the final mission statistics.
  const MissionStats& run(double max_seconds = 3600.0);

  [[nodiscard]] const MissionStats& stats() const noexcept {
    return mission_.stats();
  }
  [[nodiscard]] const MissionController& mission() const noexcept { return mission_; }
  [[nodiscard]] const drone::Drone& drone() const noexcept { return drone_; }
  [[nodiscard]] const std::vector<HumanActor>& actors() const noexcept {
    return actors_;
  }
  [[nodiscard]] const std::vector<FlyTrap>& traps() const noexcept { return traps_; }
  [[nodiscard]] const OrchardMap& map() const noexcept { return map_; }
  [[nodiscard]] double time() const noexcept { return clock_.seconds(); }
  [[nodiscard]] const std::vector<WorldEvent>& events() const noexcept {
    return events_;
  }

 private:
  void log(const std::string& text);
  [[nodiscard]] HumanActor* find_actor(int id);
  [[nodiscard]] HumanActor* blocker_for(const util::Vec2& trap_position);

  WorldConfig config_;
  util::SimClock clock_;
  OrchardMap map_;
  drone::Drone drone_;
  std::vector<HumanActor> actors_;
  std::vector<FlyTrap> traps_;
  MissionController mission_;
  std::unique_ptr<protocol::SignChannel> sign_channel_;
  std::unique_ptr<protocol::PatternChannel> pattern_channel_;
  core::CameraSignChannel* camera_channel_{nullptr};  ///< non-owning view
  const core::HdcSystem* system_;
  std::vector<WorldEvent> events_;
  int negotiating_actor_{-1};
  double camera_accumulator_{0.0};
  std::optional<signs::HumanSign> last_perceived_;
};

}  // namespace hdc::orchard
