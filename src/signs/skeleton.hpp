// 3-D articulated signaller model.
//
// The signaller is a stick figure of capsules (bones with thickness) in a
// body-local frame: x lateral (to the body's right), y forward (the facing
// direction), z up; the feet stand at z = 0. Arm posture is parameterised
// per arm by two angles, which is all the marshalling vocabulary needs:
//   - abduction: shoulder angle in the frontal (x-z) plane.
//       0 = arm hanging down, 90 = horizontal sideways, 180 = straight up.
//   - elbow_flexion: rotation of the forearm relative to the upper arm in
//       the frontal plane, bending "upward" (towards the head).
//       0 = straight arm.
// Placing the arms in the frontal plane matches marshalling practice: signs
// are given facing the observer so they read as silhouette changes.
#pragma once

#include <vector>

#include "util/geometry.hpp"

namespace hdc::signs {

using hdc::util::Vec3;

/// One arm's posture.
struct ArmPose {
  double abduction_deg{8.0};      ///< 0 down ... 180 straight up
  double elbow_flexion_deg{0.0};  ///< 0 straight ... 150 fully bent
};

/// Full-body posture: both arms plus a small lean (whole-body roll) that
/// human signallers naturally add; legs are always standing.
struct BodyPose {
  ArmPose right_arm{};
  ArmPose left_arm{};
  double lean_deg{0.0};  ///< lateral lean of the torso, + = to body right
};

/// Body proportions in metres (defaults: 1.75 m adult).
struct BodyDimensions {
  double height{1.75};
  double shoulder_half_width{0.22};
  double upper_arm_length{0.30};
  double forearm_length{0.28};
  double upper_leg_length{0.45};
  double lower_leg_length{0.45};
  double head_radius{0.11};
  double limb_radius{0.06};  ///< clothed-limb thickness
  double torso_radius{0.13};

  [[nodiscard]] double hip_height() const noexcept {
    return upper_leg_length + lower_leg_length;
  }
  [[nodiscard]] double shoulder_height() const noexcept { return height - 0.30; }
  [[nodiscard]] double head_center_height() const noexcept {
    return height - head_radius;
  }
};

/// One capsule (thick segment) of the skeleton, in world coordinates.
struct Capsule {
  Vec3 a{};
  Vec3 b{};
  double radius{0.05};
};

/// A posed skeleton placed in the world: capsules ready for rendering.
struct Skeleton {
  std::vector<Capsule> capsules;
  Vec3 head_center{};
  double head_radius{0.11};
  Vec3 base_position{};  ///< feet centre on the ground
  double facing_yaw{0.0};  ///< world yaw of the body's forward (+y) axis
};

/// Builds the posed skeleton in world coordinates.
/// `base_position` is the point on the ground between the feet;
/// `facing_yaw` rotates the body-local frame around +z (0 = body faces
/// world +y direction... specifically body-forward maps to
/// (sin(yaw), cos(yaw), 0) so yaw 0 faces north/+y).
[[nodiscard]] Skeleton build_skeleton(const BodyPose& pose, const BodyDimensions& dims,
                                      Vec3 base_position, double facing_yaw);

}  // namespace hdc::signs
