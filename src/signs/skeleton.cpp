#include "signs/skeleton.hpp"

#include <cmath>

namespace hdc::signs {

namespace {

using hdc::util::deg_to_rad;

/// Rotates a body-local point into the world frame and translates it onto
/// the base position. Body-local: x lateral-right, y forward, z up.
/// World: yaw rotates the body around +z; yaw 0 puts body-forward on +y.
[[nodiscard]] Vec3 to_world(const Vec3& local, const Vec3& base, double yaw) {
  const double c = std::cos(yaw);
  const double s = std::sin(yaw);
  // forward (0,1,0) -> (s, c, 0); right (1,0,0) -> (c, -s, 0)
  return Vec3{base.x + local.x * c + local.y * s,
              base.y - local.x * s + local.y * c,
              base.z + local.z};
}

/// Direction of an arm segment in the frontal plane for a given polar angle
/// measured from "straight down": 0 -> (0,0,-1); 90 -> lateral; 180 -> up.
/// `side` is +1 for the right arm, -1 for the left.
[[nodiscard]] Vec3 frontal_direction(double angle_deg, double side) {
  const double a = deg_to_rad(angle_deg);
  return Vec3{side * std::sin(a), 0.0, -std::cos(a)};
}

}  // namespace

Skeleton build_skeleton(const BodyPose& pose, const BodyDimensions& dims,
                        Vec3 base_position, double facing_yaw) {
  Skeleton skeleton;
  skeleton.base_position = base_position;
  skeleton.facing_yaw = facing_yaw;
  skeleton.head_radius = dims.head_radius;

  const double lean = deg_to_rad(pose.lean_deg);
  // Lean shifts upper-body x proportionally with height above the hip.
  const auto leaned = [&](Vec3 p) {
    if (p.z > dims.hip_height()) {
      p.x += std::sin(lean) * (p.z - dims.hip_height());
    }
    return p;
  };

  std::vector<Capsule> local;

  // Torso: hip centre to neck.
  const Vec3 hip{0.0, 0.0, dims.hip_height()};
  const Vec3 neck{0.0, 0.0, dims.shoulder_height()};
  local.push_back({hip, leaned(neck), dims.torso_radius});

  // Legs: slight stance spread.
  for (const double side : {+1.0, -1.0}) {
    const Vec3 hip_side{side * 0.09, 0.0, dims.hip_height()};
    const Vec3 knee{side * 0.11, 0.0, dims.lower_leg_length};
    const Vec3 foot{side * 0.12, 0.0, 0.0};
    local.push_back({hip_side, knee, dims.limb_radius});
    local.push_back({knee, foot, dims.limb_radius});
  }

  // Arms. A clavicle capsule joins each shoulder to the spine so the
  // silhouette is a single connected region whatever the arm pose.
  for (const double side : {+1.0, -1.0}) {
    const ArmPose& arm = side > 0 ? pose.right_arm : pose.left_arm;
    const Vec3 shoulder =
        leaned({side * dims.shoulder_half_width, 0.0, dims.shoulder_height()});
    local.push_back({leaned({0.0, 0.0, dims.shoulder_height()}), shoulder,
                     dims.limb_radius * 1.4});
    const Vec3 upper_dir = frontal_direction(arm.abduction_deg, side);
    const Vec3 elbow = shoulder + upper_dir * dims.upper_arm_length;
    // Elbow flexion bends the forearm further "up" in the frontal plane.
    const Vec3 fore_dir =
        frontal_direction(arm.abduction_deg + arm.elbow_flexion_deg, side);
    const Vec3 wrist = elbow + fore_dir * dims.forearm_length;
    local.push_back({shoulder, elbow, dims.limb_radius});
    local.push_back({elbow, wrist, dims.limb_radius});
    // A hand blob slightly past the wrist improves silhouette realism.
    local.push_back({wrist, wrist + fore_dir * 0.07, dims.limb_radius * 1.2});
  }

  skeleton.capsules.reserve(local.size());
  for (const Capsule& c : local) {
    skeleton.capsules.push_back({to_world(c.a, base_position, facing_yaw),
                                 to_world(c.b, base_position, facing_yaw), c.radius});
  }
  skeleton.head_center =
      to_world(leaned({0.0, 0.0, dims.head_center_height()}), base_position, facing_yaw);
  return skeleton;
}

}  // namespace hdc::signs
