// The human->drone marshalling-sign vocabulary (paper §III).
//
// The paper specifies a deliberately minimal static-sign set, quickly
// learnable by untrained people and robustly detectable by low-cost drones:
//   - AttentionGained: hand raised in front of the face (the human-reflex
//     "protect the face" gesture) — answers the drone's poke.
//   - Yes / No: modelled after the well-known Swiss emergency-services
//     body signals (both arms up = yes; one arm up, one down = no).
// kNeutral is the no-sign stance used as a negative class.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace hdc::signs {

enum class HumanSign : std::uint8_t {
  kNeutral = 0,
  kAttentionGained = 1,
  kYes = 2,
  kNo = 3,
};

/// The communicative signs (excludes kNeutral).
inline constexpr std::array<HumanSign, 3> kCommunicativeSigns = {
    HumanSign::kAttentionGained, HumanSign::kYes, HumanSign::kNo};

/// All stances, including the neutral negative class.
inline constexpr std::array<HumanSign, 4> kAllSigns = {
    HumanSign::kNeutral, HumanSign::kAttentionGained, HumanSign::kYes,
    HumanSign::kNo};

[[nodiscard]] constexpr std::string_view to_string(HumanSign sign) noexcept {
  switch (sign) {
    case HumanSign::kNeutral: return "Neutral";
    case HumanSign::kAttentionGained: return "AttentionGained";
    case HumanSign::kYes: return "Yes";
    case HumanSign::kNo: return "No";
  }
  return "?";
}

}  // namespace hdc::signs
