#include "signs/camera.hpp"

#include <cmath>
#include <stdexcept>

namespace hdc::signs {

PinholeCamera::PinholeCamera(Vec3 position, Vec3 look_at, int width, int height,
                             double hfov_deg)
    : position_(position), width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("PinholeCamera: raster must be positive");
  }
  if (hfov_deg <= 0.0 || hfov_deg >= 180.0) {
    throw std::invalid_argument("PinholeCamera: hfov out of range");
  }
  forward_ = (look_at - position).normalized();
  if (forward_.norm() == 0.0) {
    throw std::invalid_argument("PinholeCamera: look_at coincides with position");
  }
  // Right = forward x world-up; degenerate (looking straight down) falls
  // back to world +x so the roll is defined.
  const Vec3 world_up{0.0, 0.0, 1.0};
  Vec3 right = forward_.cross(world_up);
  if (right.norm() < 1e-9) right = Vec3{1.0, 0.0, 0.0};
  right_ = right.normalized();
  // right x forward is camera-up; negate for image +v (down).
  down_ = right_.cross(forward_).normalized() * -1.0;

  focal_ = static_cast<double>(width) /
           (2.0 * std::tan(hdc::util::deg_to_rad(hfov_deg) / 2.0));
}

std::optional<Projection> PinholeCamera::project(const Vec3& world) const {
  const Vec3 rel = world - position_;
  const double depth = rel.dot(forward_);
  if (depth <= kNearLimit) return std::nullopt;
  const double u = rel.dot(right_) / depth * focal_ + static_cast<double>(width_) / 2.0;
  const double v = rel.dot(down_) / depth * focal_ + static_cast<double>(height_) / 2.0;
  return Projection{{u, v}, depth};
}

double PinholeCamera::project_radius(double radius_m, double depth) const {
  if (depth <= kNearLimit) return 0.0;
  return radius_m / depth * focal_;
}

}  // namespace hdc::signs
