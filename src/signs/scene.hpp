// Synthetic drone-camera scene renderer.
//
// Replaces the paper's physical camera + human signaller (see DESIGN.md §1):
// a posed skeleton is projected through a pinhole camera whose placement is
// given in the paper's own experimental coordinates — drone altitude,
// horizontal distance and relative azimuth with respect to the signaller.
// Environment effects (sensor noise, blur, clutter, lighting) are injected
// on top so robustness experiments have realistic knobs.
#pragma once

#include "imaging/image.hpp"
#include "signs/camera.hpp"
#include "signs/sign.hpp"
#include "signs/sign_poses.hpp"
#include "signs/skeleton.hpp"
#include "util/rng.hpp"

namespace hdc::signs {

/// Viewing geometry in the paper's terms (§IV, Figure 4).
struct ViewGeometry {
  double altitude_m{5.0};           ///< drone height above ground
  double distance_m{3.0};           ///< horizontal drone-signaller distance
  double relative_azimuth_deg{0.0}; ///< 0 = drone dead ahead of the signaller
};

/// Rendering options. The default raster (480x360) keeps distant limbs a
/// few pixels wide at the paper's 5 m working altitude; below that the
/// silhouette pipeline starves (validated empirically, see EXPERIMENTS.md).
struct RenderOptions {
  int width{480};
  int height{360};
  double hfov_deg{62.0};
  std::uint8_t background{200};  ///< bright sky/field backdrop
  std::uint8_t body{30};         ///< dark clothing silhouette
  double noise_stddev{0.0};      ///< Gaussian sensor noise, grey levels
  double blur_sigma{0.0};        ///< optical blur
  int clutter_count{0};          ///< random mid-grey distractor blobs
  double lighting_gain{1.0};
  double lighting_bias{0.0};
};

/// Renders the signaller holding `pose` seen from `view`. The signaller
/// stands at the world origin facing +y; the camera is placed at the
/// given altitude/distance/azimuth looking at the torso centre.
[[nodiscard]] imaging::GrayImage render_scene(const BodyPose& pose,
                                              const BodyDimensions& dims,
                                              const ViewGeometry& view,
                                              const RenderOptions& options,
                                              hdc::util::Rng* rng = nullptr);

/// Convenience: render the canonical pose of `sign`.
[[nodiscard]] imaging::GrayImage render_sign(HumanSign sign, const ViewGeometry& view,
                                             const RenderOptions& options,
                                             hdc::util::Rng* rng = nullptr);

/// Camera placement used by render_scene, exposed for tests and overlays.
[[nodiscard]] PinholeCamera make_view_camera(const ViewGeometry& view,
                                             const BodyDimensions& dims,
                                             const RenderOptions& options);

}  // namespace hdc::signs
