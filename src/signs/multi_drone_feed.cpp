#include "signs/multi_drone_feed.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

namespace hdc::signs {

MultiDroneFeed::MultiDroneFeed(MultiDroneFeedConfig config)
    : config_(std::move(config)) {
  if (config_.streams == 0) {
    throw std::invalid_argument("MultiDroneFeed: need at least one stream");
  }
  if (config_.altitudes.empty()) {
    throw std::invalid_argument("MultiDroneFeed: need at least one altitude");
  }
  script_periods_.reserve(config_.scripts.size());
  for (const SignSchedule& schedule : config_.scripts) {
    if (schedule.empty()) {
      throw std::invalid_argument("MultiDroneFeed: empty sign schedule");
    }
    std::uint64_t total = 0;
    for (const SignScheduleStep& step : schedule) {
      if (step.ticks == 0) {
        throw std::invalid_argument(
            "MultiDroneFeed: schedule step needs at least one tick");
      }
      total += step.ticks;
    }
    script_periods_.push_back(total);
  }
}

std::uint64_t MultiDroneFeed::script_period(std::size_t stream) const {
  if (stream >= config_.streams) {
    throw std::out_of_range("MultiDroneFeed::script_period: bad stream index");
  }
  if (config_.scripts.empty()) {
    throw std::logic_error("MultiDroneFeed::script_period: no scripts");
  }
  return script_periods_[stream % script_periods_.size()];
}

FramePlan MultiDroneFeed::plan(std::size_t stream, std::uint64_t tick) const {
  if (stream >= config_.streams) {
    throw std::out_of_range("MultiDroneFeed::plan: bad stream index");
  }
  const double base_offset =
      (static_cast<double>(stream % 5) - 2.0) * config_.azimuth_step_deg;
  if (!config_.scripts.empty()) {
    // Scripted mode: walk the schedule to the step covering this tick.
    const std::size_t script = stream % config_.scripts.size();
    const SignSchedule& schedule = config_.scripts[script];
    std::uint64_t offset = tick % script_periods_[script];
    const SignScheduleStep* step = &schedule.front();
    for (const SignScheduleStep& candidate : schedule) {
      step = &candidate;
      if (offset < candidate.ticks) break;
      offset -= candidate.ticks;
    }
    FramePlan out;
    out.sign = step->sign;
    out.view.altitude_m =
        config_.altitudes[stream % config_.altitudes.size()];
    out.view.distance_m = config_.distance_m;
    out.view.relative_azimuth_deg = base_offset + step->azimuth_offset_deg;
    return out;
  }
  FramePlan out;
  // Signs cycle every tick, phase-shifted per stream so the cohort never
  // shows the same sign everywhere at once.
  const std::uint64_t sign_phase = tick + stream;
  out.sign = kAllSigns[sign_phase % kAllSigns.size()];
  // One altitude-band step per full sign cycle, again phase-shifted.
  const std::uint64_t band_step = tick / kAllSigns.size() + stream;
  out.view.altitude_m = config_.altitudes[band_step % config_.altitudes.size()];
  out.view.distance_m = config_.distance_m;
  // Fixed per-stream azimuth offset in {-2,-1,0,1,2} steps plus a +-step/3
  // tick wobble: head-on streams stay recognisable, outer streams go
  // oblique enough to reject sometimes.
  const double wobble = (static_cast<double>(tick % 3) - 1.0) *
                        (config_.azimuth_step_deg / 3.0);
  out.view.relative_azimuth_deg = base_offset + wobble;
  return out;
}

imaging::GrayImage MultiDroneFeed::render_frame(std::size_t stream,
                                                std::uint64_t tick) const {
  const FramePlan what = plan(stream, tick);
  return render_sign(what.sign, what.view, config_.render);
}

std::vector<imaging::GrayImage> MultiDroneFeed::prerender(
    std::size_t stream, std::size_t count) const {
  // Key the render cache by the exact quantities that vary in the plan —
  // the azimuth double is a deterministic computation, so equal plans
  // yield bit-equal keys and distinct plans can never collide.
  using Key = std::tuple<HumanSign, double, double>;
  std::map<Key, imaging::GrayImage> cache;
  std::vector<imaging::GrayImage> frames;
  frames.reserve(count);
  for (std::size_t tick = 0; tick < count; ++tick) {
    const FramePlan what = plan(stream, tick);
    const Key key{what.sign, what.view.altitude_m,
                  what.view.relative_azimuth_deg};
    auto it = cache.find(key);
    if (it == cache.end()) {
      it = cache.emplace(key, render_sign(what.sign, what.view, config_.render))
               .first;
    }
    frames.push_back(it->second);
  }
  return frames;
}

}  // namespace hdc::signs
