#include "signs/multi_drone_feed.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

namespace hdc::signs {

MultiDroneFeed::MultiDroneFeed(MultiDroneFeedConfig config)
    : config_(std::move(config)) {
  if (config_.streams == 0) {
    throw std::invalid_argument("MultiDroneFeed: need at least one stream");
  }
  if (config_.altitudes.empty()) {
    throw std::invalid_argument("MultiDroneFeed: need at least one altitude");
  }
}

FramePlan MultiDroneFeed::plan(std::size_t stream, std::uint64_t tick) const {
  if (stream >= config_.streams) {
    throw std::out_of_range("MultiDroneFeed::plan: bad stream index");
  }
  FramePlan out;
  // Signs cycle every tick, phase-shifted per stream so the cohort never
  // shows the same sign everywhere at once.
  const std::uint64_t sign_phase = tick + stream;
  out.sign = kAllSigns[sign_phase % kAllSigns.size()];
  // One altitude-band step per full sign cycle, again phase-shifted.
  const std::uint64_t band_step = tick / kAllSigns.size() + stream;
  out.view.altitude_m = config_.altitudes[band_step % config_.altitudes.size()];
  out.view.distance_m = config_.distance_m;
  // Fixed per-stream azimuth offset in {-2,-1,0,1,2} steps plus a +-step/3
  // tick wobble: head-on streams stay recognisable, outer streams go
  // oblique enough to reject sometimes.
  const double offset =
      (static_cast<double>(stream % 5) - 2.0) * config_.azimuth_step_deg;
  const double wobble = (static_cast<double>(tick % 3) - 1.0) *
                        (config_.azimuth_step_deg / 3.0);
  out.view.relative_azimuth_deg = offset + wobble;
  return out;
}

imaging::GrayImage MultiDroneFeed::render_frame(std::size_t stream,
                                                std::uint64_t tick) const {
  const FramePlan what = plan(stream, tick);
  return render_sign(what.sign, what.view, config_.render);
}

std::vector<imaging::GrayImage> MultiDroneFeed::prerender(
    std::size_t stream, std::size_t count) const {
  // Key the render cache by the exact quantities that vary in the plan —
  // the azimuth double is a deterministic computation, so equal plans
  // yield bit-equal keys and distinct plans can never collide.
  using Key = std::tuple<HumanSign, double, double>;
  std::map<Key, imaging::GrayImage> cache;
  std::vector<imaging::GrayImage> frames;
  frames.reserve(count);
  for (std::size_t tick = 0; tick < count; ++tick) {
    const FramePlan what = plan(stream, tick);
    const Key key{what.sign, what.view.altitude_m,
                  what.view.relative_azimuth_deg};
    auto it = cache.find(key);
    if (it == cache.end()) {
      it = cache.emplace(key, render_sign(what.sign, what.view, config_.render))
               .first;
    }
    frames.push_back(it->second);
  }
  return frames;
}

}  // namespace hdc::signs
