// Pinhole camera model for the drone's downward-tilted body camera.
//
// World frame: x east, y north, z up (metres). Image frame: u right,
// v down (pixels). The camera is defined by position, look-at target and a
// horizontal field of view; focal length in pixels derives from the FOV and
// raster width.
#pragma once

#include <optional>

#include "util/geometry.hpp"

namespace hdc::signs {

using hdc::util::Vec2;
using hdc::util::Vec3;

/// A perspective projection result: pixel position and camera-space depth.
struct Projection {
  Vec2 pixel{};
  double depth{0.0};  ///< metres along the optical axis (> 0 in front)
};

class PinholeCamera {
 public:
  /// `hfov_deg` in (0, 180). `width`/`height` in pixels.
  PinholeCamera(Vec3 position, Vec3 look_at, int width, int height,
                double hfov_deg = 62.0);

  /// Projects a world point. Returns nullopt for points at or behind the
  /// image plane (depth <= near limit). The pixel may lie outside the
  /// raster; callers clip.
  [[nodiscard]] std::optional<Projection> project(const Vec3& world) const;

  /// Projected radius in pixels of a sphere of `radius_m` at `depth` metres.
  [[nodiscard]] double project_radius(double radius_m, double depth) const;

  [[nodiscard]] const Vec3& position() const noexcept { return position_; }
  [[nodiscard]] double focal_pixels() const noexcept { return focal_; }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

 private:
  Vec3 position_;
  Vec3 forward_;  ///< unit, optical axis
  Vec3 right_;    ///< unit, image +u
  Vec3 down_;     ///< unit, image +v
  int width_;
  int height_;
  double focal_;
  static constexpr double kNearLimit = 0.05;  // metres
};

}  // namespace hdc::signs
