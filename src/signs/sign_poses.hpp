// Canonical body poses for each marshalling sign plus human execution
// jitter. The canonical poses define the reference silhouettes stored in the
// sign database; jitter models how real (supervisor / worker / visitor)
// humans deviate from the textbook pose.
#pragma once

#include "signs/sign.hpp"
#include "signs/skeleton.hpp"
#include "util/rng.hpp"

namespace hdc::signs {

/// Canonical (textbook) pose for a sign.
[[nodiscard]] BodyPose canonical_pose(HumanSign sign);

/// Execution-quality parameters: standard deviation of joint-angle jitter
/// and of body lean, in degrees. Rough calibration per user-story role:
/// supervisor ~3 deg, worker ~6 deg, visitor ~12 deg.
struct PoseJitter {
  double joint_stddev_deg{0.0};
  double lean_stddev_deg{0.0};
};

/// Samples a humanly-executed variant of the canonical pose.
[[nodiscard]] BodyPose sample_pose(HumanSign sign, const PoseJitter& jitter,
                                   hdc::util::Rng& rng);

/// Convenience jitter presets for the three user-story roles.
[[nodiscard]] PoseJitter supervisor_jitter();
[[nodiscard]] PoseJitter worker_jitter();
[[nodiscard]] PoseJitter visitor_jitter();

}  // namespace hdc::signs
