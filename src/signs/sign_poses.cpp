#include "signs/sign_poses.hpp"

#include "util/geometry.hpp"

namespace hdc::signs {

BodyPose canonical_pose(HumanSign sign) {
  BodyPose pose;
  switch (sign) {
    case HumanSign::kNeutral:
      // Arms hanging with a natural slight abduction.
      pose.right_arm = {8.0, 5.0};
      pose.left_arm = {8.0, 5.0};
      break;
    case HumanSign::kAttentionGained:
      // Right hand raised in front of the face: upper arm horizontal,
      // forearm vertical ("protecting the face" reflex, paper §III).
      pose.right_arm = {90.0, 90.0};
      pose.left_arm = {8.0, 5.0};
      break;
    case HumanSign::kYes:
      // Both arms raised into a Y — the Swiss emergency-services "yes".
      pose.right_arm = {140.0, 0.0};
      pose.left_arm = {140.0, 0.0};
      break;
    case HumanSign::kNo:
      // One arm up, one arm down along the diagonal — the Swiss
      // emergency-services "no".
      pose.right_arm = {140.0, 0.0};
      pose.left_arm = {40.0, 0.0};
      break;
  }
  return pose;
}

BodyPose sample_pose(HumanSign sign, const PoseJitter& jitter, hdc::util::Rng& rng) {
  BodyPose pose = canonical_pose(sign);
  const auto jitter_arm = [&](ArmPose& arm) {
    arm.abduction_deg = hdc::util::clamp(
        arm.abduction_deg + rng.gaussian(0.0, jitter.joint_stddev_deg), 0.0, 180.0);
    arm.elbow_flexion_deg = hdc::util::clamp(
        arm.elbow_flexion_deg + rng.gaussian(0.0, jitter.joint_stddev_deg), 0.0, 150.0);
  };
  jitter_arm(pose.right_arm);
  jitter_arm(pose.left_arm);
  pose.lean_deg = rng.gaussian(0.0, jitter.lean_stddev_deg);
  return pose;
}

PoseJitter supervisor_jitter() { return {3.0, 1.0}; }
PoseJitter worker_jitter() { return {6.0, 2.0}; }
PoseJitter visitor_jitter() { return {12.0, 4.0}; }

}  // namespace hdc::signs
