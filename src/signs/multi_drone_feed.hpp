// Multi-drone camera feed driver over the synthetic scene renderer.
//
// Simulates N drones watching N signallers at once: every stream is an
// independent deterministic script of (sign, view) pairs over the existing
// signs::Scene renderer — signs cycle, the altitude walks the paper's 2-5 m
// working band, and each stream carries its own azimuth offset so different
// drones see genuinely different geometry (some oblique enough to reject,
// as in a real cohort). Stream `s`, tick `t` always renders the same frame,
// which is what lets the streaming bench/tests gate bit-identity against
// the sequential recogniser per stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "imaging/image.hpp"
#include "signs/scene.hpp"
#include "signs/sign.hpp"

namespace hdc::signs {

/// One step of a scripted sign schedule: hold `sign` for `ticks` frames,
/// viewed `azimuth_offset_deg` off the stream's base azimuth. Large
/// offsets (≈55°+ total) push the view past the recogniser's dead angle —
/// scripted steps are how scenarios inject deterministic noise (reject
/// gaps, one-frame flickers of another sign).
struct SignScheduleStep {
  HumanSign sign{HumanSign::kNeutral};
  std::uint64_t ticks{1};
  double azimuth_offset_deg{0.0};
};

/// A stream's scripted schedule; the feed repeats it cyclically.
using SignSchedule = std::vector<SignScheduleStep>;

struct MultiDroneFeedConfig {
  std::size_t streams{4};
  RenderOptions render{};
  double distance_m{3.0};
  /// Altitudes cycled per stream (the paper's working band by default).
  std::vector<double> altitudes{2.0, 3.5, 5.0};
  /// Per-stream azimuth offset: stream s sits at ((s % 5) - 2) * this many
  /// degrees off the signaller's axis, so an 8-stream cohort spans
  /// head-on to oblique views.
  double azimuth_step_deg{9.0};
  /// Scripted mode: when non-empty, stream s plays scripts[s % size()]
  /// instead of the default cycling plan — the sign and azimuth offset
  /// come from the schedule step covering the tick (wrapping at the
  /// schedule's total length), the altitude is fixed per stream at
  /// altitudes[s % size()], and the tick wobble is disabled (scripts own
  /// their noise). Same determinism guarantee: stream s, tick t always
  /// renders the same frame.
  std::vector<SignSchedule> scripts{};
};

/// What a stream's camera sees at one tick (exposed so callers can
/// recompute ground truth independently of the renderer).
struct FramePlan {
  HumanSign sign{HumanSign::kNeutral};
  ViewGeometry view{};
};

class MultiDroneFeed {
 public:
  explicit MultiDroneFeed(MultiDroneFeedConfig config = {});

  [[nodiscard]] std::size_t stream_count() const noexcept {
    return config_.streams;
  }
  [[nodiscard]] const MultiDroneFeedConfig& config() const noexcept {
    return config_;
  }

  /// The deterministic (sign, view) script: signs cycle every tick with a
  /// per-stream phase, the altitude advances one band step per sign cycle,
  /// the azimuth is the stream's fixed offset plus a small tick wobble.
  /// In scripted mode (config.scripts non-empty) the schedule dictates the
  /// sign and azimuth instead — see MultiDroneFeedConfig::scripts.
  [[nodiscard]] FramePlan plan(std::size_t stream, std::uint64_t tick) const;

  /// Total ticks of `stream`'s schedule before it repeats (scripted mode
  /// only; throws std::logic_error without scripts, std::out_of_range for
  /// a bad stream index — same contract as plan()).
  [[nodiscard]] std::uint64_t script_period(std::size_t stream) const;

  /// Renders the frame stream `stream` produces at `tick` (deterministic).
  [[nodiscard]] imaging::GrayImage render_frame(std::size_t stream,
                                                std::uint64_t tick) const;

  /// The first `count` frames of `stream` (frame i == render_frame(stream,
  /// i)). The plan is periodic, so distinct frames are rendered once and
  /// copied — pre-rendering a long script costs only the period.
  [[nodiscard]] std::vector<imaging::GrayImage> prerender(std::size_t stream,
                                                          std::size_t count) const;

 private:
  MultiDroneFeedConfig config_;
  /// Total ticks per script, precomputed at construction (index parallels
  /// config_.scripts) so the per-frame plan never re-sums the schedule.
  std::vector<std::uint64_t> script_periods_;
};

}  // namespace hdc::signs
