// Multi-drone camera feed driver over the synthetic scene renderer.
//
// Simulates N drones watching N signallers at once: every stream is an
// independent deterministic script of (sign, view) pairs over the existing
// signs::Scene renderer — signs cycle, the altitude walks the paper's 2-5 m
// working band, and each stream carries its own azimuth offset so different
// drones see genuinely different geometry (some oblique enough to reject,
// as in a real cohort). Stream `s`, tick `t` always renders the same frame,
// which is what lets the streaming bench/tests gate bit-identity against
// the sequential recogniser per stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "imaging/image.hpp"
#include "signs/scene.hpp"
#include "signs/sign.hpp"

namespace hdc::signs {

struct MultiDroneFeedConfig {
  std::size_t streams{4};
  RenderOptions render{};
  double distance_m{3.0};
  /// Altitudes cycled per stream (the paper's working band by default).
  std::vector<double> altitudes{2.0, 3.5, 5.0};
  /// Per-stream azimuth offset: stream s sits at ((s % 5) - 2) * this many
  /// degrees off the signaller's axis, so an 8-stream cohort spans
  /// head-on to oblique views.
  double azimuth_step_deg{9.0};
};

/// What a stream's camera sees at one tick (exposed so callers can
/// recompute ground truth independently of the renderer).
struct FramePlan {
  HumanSign sign{HumanSign::kNeutral};
  ViewGeometry view{};
};

class MultiDroneFeed {
 public:
  explicit MultiDroneFeed(MultiDroneFeedConfig config = {});

  [[nodiscard]] std::size_t stream_count() const noexcept {
    return config_.streams;
  }
  [[nodiscard]] const MultiDroneFeedConfig& config() const noexcept {
    return config_;
  }

  /// The deterministic (sign, view) script: signs cycle every tick with a
  /// per-stream phase, the altitude advances one band step per sign cycle,
  /// the azimuth is the stream's fixed offset plus a small tick wobble.
  [[nodiscard]] FramePlan plan(std::size_t stream, std::uint64_t tick) const;

  /// Renders the frame stream `stream` produces at `tick` (deterministic).
  [[nodiscard]] imaging::GrayImage render_frame(std::size_t stream,
                                                std::uint64_t tick) const;

  /// The first `count` frames of `stream` (frame i == render_frame(stream,
  /// i)). The plan is periodic, so distinct frames are rendered once and
  /// copied — pre-rendering a long script costs only the period.
  [[nodiscard]] std::vector<imaging::GrayImage> prerender(std::size_t stream,
                                                          std::size_t count) const;

 private:
  MultiDroneFeedConfig config_;
};

}  // namespace hdc::signs
