#include "signs/scene.hpp"

#include <cmath>

#include "imaging/draw.hpp"
#include "imaging/filter.hpp"

namespace hdc::signs {

namespace {

using hdc::imaging::GrayImage;
using hdc::util::deg_to_rad;

/// Renders one capsule through the camera. The projected radius uses the
/// nearer endpoint's depth, slightly over-drawing the far end — acceptable
/// at the paper's 2-6 m working distances.
void render_capsule(GrayImage& image, const PinholeCamera& camera, const Capsule& capsule,
                    std::uint8_t value) {
  const auto pa = camera.project(capsule.a);
  const auto pb = camera.project(capsule.b);
  if (!pa || !pb) return;  // behind the camera: skip (whole-capsule clip)
  const double depth = std::min(pa->depth, pb->depth);
  const double radius = camera.project_radius(capsule.radius, depth);
  hdc::imaging::fill_capsule(image, pa->pixel, pb->pixel, radius, value);
}

}  // namespace

PinholeCamera make_view_camera(const ViewGeometry& view, const BodyDimensions& dims,
                               const RenderOptions& options) {
  // Signaller at origin facing +y (yaw 0). Relative azimuth 0 means the
  // drone is along the facing direction; positive azimuth moves it around
  // the signaller's right side.
  const double azimuth = deg_to_rad(view.relative_azimuth_deg);
  const Vec3 drone_position{view.distance_m * std::sin(azimuth),
                            view.distance_m * std::cos(azimuth), view.altitude_m};
  // Aim at the torso centre: the paper's frames centre the signaller.
  const Vec3 target{0.0, 0.0, dims.height * 0.55};
  return PinholeCamera(drone_position, target, options.width, options.height,
                       options.hfov_deg);
}

imaging::GrayImage render_scene(const BodyPose& pose, const BodyDimensions& dims,
                                const ViewGeometry& view, const RenderOptions& options,
                                hdc::util::Rng* rng) {
  GrayImage image(options.width, options.height, options.background);
  const PinholeCamera camera = make_view_camera(view, dims, options);

  // Distractor clutter behind/near the signaller (bushes, crates, posts):
  // mid-grey blobs that survive thresholding as separate small components.
  if (rng != nullptr && options.clutter_count > 0) {
    for (int i = 0; i < options.clutter_count; ++i) {
      const Vec3 world{rng->uniform(-2.5, 2.5), rng->uniform(-1.5, 3.0),
                       rng->uniform(0.0, 0.8)};
      const auto projection = camera.project(world);
      if (!projection) continue;
      const double radius =
          camera.project_radius(rng->uniform(0.05, 0.25), projection->depth);
      const auto grey = static_cast<std::uint8_t>(rng->uniform_int(60, 140));
      hdc::imaging::fill_disc(image, projection->pixel, radius, grey);
    }
  }

  // The signaller, feet at the origin.
  const Skeleton skeleton = build_skeleton(pose, dims, Vec3{0.0, 0.0, 0.0}, 0.0);
  for (const Capsule& capsule : skeleton.capsules) {
    render_capsule(image, camera, capsule, options.body);
  }
  const auto head = camera.project(skeleton.head_center);
  if (head) {
    const double radius = camera.project_radius(skeleton.head_radius, head->depth);
    hdc::imaging::fill_disc(image, head->pixel, radius, options.body);
  }

  // Photometric chain: lighting -> optics (blur) -> sensor (noise).
  if (options.lighting_gain != 1.0 || options.lighting_bias != 0.0) {
    image = hdc::imaging::adjust_lighting(image, options.lighting_gain,
                                          options.lighting_bias);
  }
  if (options.blur_sigma > 0.0) {
    image = hdc::imaging::gaussian_blur(image, options.blur_sigma);
  }
  if (rng != nullptr && options.noise_stddev > 0.0) {
    image = hdc::imaging::add_gaussian_noise(image, options.noise_stddev, *rng);
  }
  return image;
}

imaging::GrayImage render_sign(HumanSign sign, const ViewGeometry& view,
                               const RenderOptions& options, hdc::util::Rng* rng) {
  return render_scene(canonical_pose(sign), BodyDimensions{}, view, options, rng);
}

}  // namespace hdc::signs
