#include "coordination/fleet_scenario.hpp"

#include <stdexcept>

#include "drone/battery.hpp"

namespace hdc::coordination {

namespace {

void prepend_neutral(signs::SignSchedule& schedule, std::uint64_t ticks) {
  if (ticks == 0) return;
  schedule.insert(schedule.begin(),
                  {signs::HumanSign::kNeutral, ticks, 0.0});
}

void append_sign_hold(signs::SignSchedule& schedule, signs::HumanSign sign,
                      std::uint64_t hold, std::uint64_t tail) {
  schedule.push_back({sign, hold, 0.0});
  if (tail > 0) schedule.push_back({signs::HumanSign::kNeutral, tail, 0.0});
}

}  // namespace

double scripted_battery_soc(std::size_t index,
                            const FleetScenarioOptions& options) {
  drone::Battery battery;
  const double hover_seconds =
      static_cast<double>(index) * options.hover_minutes_step * 60.0;
  // Steady hover at the paper's communication altitude; one big drain step
  // is exact for a constant-power model.
  battery.drain(hover_seconds, /*rotors_on=*/true, /*speed_mps=*/0.0);
  return battery.state_of_charge();
}

ContentionFleet make_contention_fleet(std::size_t drones,
                                      const interaction::CommandGrammar& grammar,
                                      const FleetScenarioOptions& options) {
  if (drones == 0 || drones % 2 != 0) {
    throw std::invalid_argument(
        "make_contention_fleet: need a positive even drone count");
  }
  ContentionFleet fleet;
  fleet.scripts.reserve(drones);
  fleet.drones.reserve(drones);
  fleet.pairs.reserve(drones / 2);

  for (std::size_t pair = 0; pair < drones / 2; ++pair) {
    const auto winner = static_cast<std::uint32_t>(2 * pair);
    const auto loser = static_cast<std::uint32_t>(2 * pair + 1);

    // Both drones script the same confirmed Approach dialogue (its sign
    // vocabulary is Attention + Yes only — no fused No can ever reach the
    // registry as a revocation). The loser's copy is staggered so its
    // attention fuses while the winner is already mid-sequence.
    signs::SignSchedule winner_script = interaction::make_dialogue_schedule(
        grammar, interaction::DroneCommandKind::kApproach, /*confirm=*/true,
        options.dialogue);
    signs::SignSchedule loser_script = winner_script;
    prepend_neutral(loser_script, options.stagger_ticks);

    fleet.scripts.push_back(std::move(winner_script));
    fleet.scripts.push_back(std::move(loser_script));

    const int human_id = static_cast<int>(pair);
    const int cell = static_cast<int>(pair);
    fleet.drones.push_back({winner, cell, human_id,
                            scripted_battery_soc(winner, options)});
    fleet.drones.push_back({loser, cell, human_id,
                            scripted_battery_soc(loser, options)});
    fleet.pairs.push_back({winner, loser, human_id, cell});
  }
  return fleet;
}

signs::SignSchedule make_grant_then_revoke_schedule(
    const interaction::CommandGrammar& grammar,
    const FleetScenarioOptions& options) {
  signs::SignSchedule schedule = interaction::make_dialogue_schedule(
      grammar, interaction::DroneCommandKind::kApproach, /*confirm=*/true,
      options.dialogue);
  // The dialogue's tail covers execution (the grant lands at execute:done);
  // then the human changes their mind: a clean held No fuses into the
  // Begin(No) that must revoke the lease. The FSM is Idle and ignores it —
  // the event is for the fleet layer alone.
  append_sign_hold(schedule, signs::HumanSign::kNo, options.dialogue.hold_ticks,
                   options.dialogue.intra_gap_ticks);
  return schedule;
}

signs::SignSchedule make_grant_then_renew_schedule(
    const interaction::CommandGrammar& grammar,
    const FleetScenarioOptions& options) {
  signs::SignSchedule schedule = interaction::make_dialogue_schedule(
      grammar, interaction::DroneCommandKind::kApproach, /*confirm=*/true,
      options.dialogue);
  // Post-grant re-confirmation: a held Yes renews the lease.
  append_sign_hold(schedule, signs::HumanSign::kYes, options.dialogue.hold_ticks,
                   options.dialogue.intra_gap_ticks);
  return schedule;
}

signs::MultiDroneFeedConfig make_fleet_feed_config(const ContentionFleet& fleet) {
  return interaction::make_feed_config(fleet.scripts.size(), fleet.scripts);
}

}  // namespace hdc::coordination
