// Fleet-level coordination vocabulary (paper §negotiation, scaled out):
// the types SessionArbiter, GrantRegistry and CoordinationService share.
//
// One negotiated dialogue grants one human's space to ONE drone; a cohort
// of drones sharing an orchard with the same humans must honour that
// fleet-wide (cf. semi-autonomous drone-cohort HDI). Identity model:
//   - a drone IS its perception stream (drone_id == stream_id end to end);
//   - a human is a world actor id, stationed at an orchard cell;
//   - a space-grant is keyed by orchard cell (tree id) — the thing the
//     mission planner routes over.
#pragma once

#include <cstdint>
#include <vector>

#include "interaction/dialogue_state_machine.hpp"

namespace hdc::coordination {

/// One drone's standing in the fleet. Registered before (or while)
/// streaming; battery updates flow through the event stream so they stay
/// ordered with everything else.
struct DroneDescriptor {
  std::uint32_t drone_id{0};   ///< == perception stream id
  int cell{0};                 ///< orchard cell (tree id) it negotiates for
  int human_id{0};             ///< the signaller it faces (contention key)
  double battery_soc{1.0};     ///< state of charge in [0, 1], arbitration input
};

/// Arbitration tuning. Priority is lexicographic (aged dialogue phase >
/// unresolved losses > battery > stream id, see SessionArbiter); the
/// policy tunes the loser's deferred-retry backoff (fleet-clock frames)
/// and the fairness aging that bounds starvation.
struct ArbitrationPolicy {
  std::uint64_t retry_backoff{64};       ///< first loss: retry after this many frames
  std::uint64_t retry_backoff_max{512};  ///< doubling cap
  /// Fairness aging: every unresolved arbitration loss raises the drone's
  /// EFFECTIVE phase rank by this much (up to fairness_boost_cap), and
  /// more losses win the tiebreak at equal effective rank — so a
  /// repeatedly-outranked loser provably wins within a bounded number of
  /// attempts (see SessionArbiter's header for the bound). A won dialogue
  /// resets the aging. 0 disables aging (strict fixed priority — can
  /// starve a low-id drone under repeated contention).
  int fairness_boost_per_loss{1};
  int fairness_boost_cap{8};  ///< max effective-rank boost from aging
};

/// Why the arbiter told a drone to abort.
enum class AbortReason : std::uint8_t {
  kLostArbitration = 0,  ///< another drone won the same human
  kDeferredRetry,        ///< retried before its backoff elapsed
};

[[nodiscard]] constexpr const char* to_string(AbortReason reason) noexcept {
  switch (reason) {
    case AbortReason::kLostArbitration: return "LostArbitration";
    case AbortReason::kDeferredRetry: return "DeferredRetry";
  }
  return "?";
}

/// One arbitration decision: `loser` must abort its dialogue and may retry
/// from `retry_at` (fleet clock). `winner` keeps its session (for
/// kDeferredRetry there may be no live contender; winner == loser then).
struct ArbitrationDecision {
  std::uint32_t loser{0};
  std::uint32_t winner{0};
  int human_id{0};
  std::uint64_t sequence{0};  ///< fleet-clock frame of the decision
  std::uint64_t retry_at{0};
  AbortReason reason{AbortReason::kLostArbitration};
};

/// Rank of a dialogue phase for arbitration: how much invested work an
/// abort would throw away. An Aborting session is already ending and never
/// outranks anyone.
[[nodiscard]] constexpr int phase_rank(interaction::DialogueState state) noexcept {
  switch (state) {
    case interaction::DialogueState::kIdle: return 0;
    case interaction::DialogueState::kAborting: return 0;
    case interaction::DialogueState::kAttending: return 1;
    case interaction::DialogueState::kCommandPending: return 2;
    case interaction::DialogueState::kConfirming: return 3;
    case interaction::DialogueState::kExecuting: return 4;
  }
  return 0;
}

/// Lifecycle of one orchard cell's space-grant.
enum class GrantState : std::uint8_t {
  kNone = 0,   ///< never negotiated (or lease record aged out)
  kGranted,    ///< a drone holds the human's space until expires_seq
  kDenied,     ///< the human refused; keep clear until expires_seq
  kRevoked,    ///< the human withdrew an issued grant (No after grant)
  kExpired,    ///< the lease ran out without renewal
};

[[nodiscard]] constexpr const char* to_string(GrantState state) noexcept {
  switch (state) {
    case GrantState::kNone: return "None";
    case GrantState::kGranted: return "Granted";
    case GrantState::kDenied: return "Denied";
    case GrantState::kRevoked: return "Revoked";
    case GrantState::kExpired: return "Expired";
  }
  return "?";
}

/// Snapshot of one cell's grant slot (what GrantRegistry readers get).
struct GrantRecord {
  GrantState state{GrantState::kNone};
  std::uint32_t holder{0};        ///< drone holding (kGranted) or last touching
  std::uint64_t granted_seq{0};   ///< when the current state was entered
  std::uint64_t expires_seq{0};   ///< lease end (kGranted / kDenied)
  std::uint32_t renewals{0};      ///< lease renewals of the current grant
};

/// One registry mutation, as seen by CoordinationService's registry
/// observer (benches timestamp outcome -> grant-visible with this).
struct GrantUpdate {
  int cell{0};
  GrantRecord record{};
  bool conflict{false};  ///< a grant was REFUSED because another drone holds the cell
};

}  // namespace hdc::coordination
