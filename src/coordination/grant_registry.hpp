// GrantRegistry — the fleet's ledger of negotiated space-grants, one slot
// per orchard cell, readable by mission planners without ever blocking the
// coordination worker.
//
// Write side (single writer — CoordinationService's worker): a dialogue
// outcome of kGranted opens a lease {holder, granted_seq, expires_seq =
// granted_seq + ttl}; kDenied marks the cell keep-clear for the same TTL;
// a human No event after the grant revokes it; a Yes re-confirmation
// renews the lease; expire() sweeps leases the fleet clock has passed.
// The single-holder invariant is structural: a cell is ONE slot, and a
// grant request against a cell another drone validly holds is REFUSED and
// counted (`conflicts`) — so "exactly one drone holds any cell's grant at
// every frame sequence" cannot be violated no matter how messy the event
// interleaving gets (e.g. an arbitration abort landing after the loser's
// dialogue already completed).
//
// Read side (any thread): each slot is a seqlock — an even/odd version
// counter around relaxed atomic fields. Readers retry the (rare) race
// instead of taking a lock, so plan_hint() on a mission thread never
// stalls the dialogue-outcome path, and the writer never waits on
// readers. All fields are std::atomic, so the race the seqlock tolerates
// is benign by construction (TSAN-clean, pinned in tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "coordination/fleet_types.hpp"
#include "telemetry/stage_names.hpp"

namespace hdc::coordination {

struct RegistryStats {
  std::uint64_t grants{0};
  std::uint64_t denials{0};
  std::uint64_t revocations{0};
  std::uint64_t renewals{0};
  std::uint64_t expiries{0};
  std::uint64_t conflicts{0};  ///< grant refused: cell held by another drone
};

class GrantRegistry {
 public:
  /// `cells` slots (orchard tree ids 0..cells-1), leases last `ttl` frames
  /// of the fleet clock.
  GrantRegistry(std::size_t cells, std::uint64_t ttl);

  /// Arms telemetry handles (grant/renew/expire latency spans + mutation
  /// counters mirroring RegistryStats). Call before the single writer
  /// starts mutating; the registry keeps no back-pointer, so `metrics`
  /// must outlive this object. All mutations run on the one writer
  /// thread, so the mirrored counters are replay-deterministic.
  void instrument(telemetry::MetricsRegistry& metrics);

  // --- write side: single writer only ---------------------------------

  /// Opens (or, for the current holder, renews) a lease. Returns false —
  /// and counts a conflict — when another drone validly holds the cell.
  bool grant(int cell, std::uint32_t holder, std::uint64_t sequence);
  /// Marks the cell keep-clear (human refused) until the TTL runs out.
  /// Returns false — and counts a conflict — when ANOTHER drone validly
  /// holds the cell: a third party's denied dialogue must not erase a
  /// live lease (the holder being denied afresh does replace its own).
  bool deny(int cell, std::uint32_t by, std::uint64_t sequence);
  /// Human withdrew consent after granting: the cell becomes keep-clear
  /// for one TTL (like a denial), then ages out. False if no live grant.
  bool revoke(int cell, std::uint64_t sequence);
  /// Extends the holder's lease (human re-confirmed). False when `holder`
  /// does not hold a live grant on the cell (e.g. it was just revoked —
  /// a renewal can never resurrect a revoked grant).
  bool renew(int cell, std::uint32_t holder, std::uint64_t sequence);
  /// Sweeps every lease (grant or denial) whose expires_seq <= now.
  /// Returns how many flipped to kExpired.
  std::size_t expire(std::uint64_t now);

  // --- read side: any thread, lock-free for the writer -----------------

  /// Consistent snapshot of one cell's slot (throws std::out_of_range).
  [[nodiscard]] GrantRecord read(int cell) const;
  /// Snapshot of all cells into `out` (resized; index == cell id).
  void snapshot(std::vector<GrantRecord>& out) const;
  /// True when `holder` holds a live (unexpired at `now`) grant on `cell`.
  [[nodiscard]] bool held_by(int cell, std::uint32_t holder,
                             std::uint64_t now) const;

  [[nodiscard]] std::size_t cell_count() const noexcept { return slots_.size(); }
  [[nodiscard]] std::uint64_t ttl() const noexcept { return ttl_; }
  /// Counters are relaxed atomics — exact after drain(), monotonic always.
  [[nodiscard]] RegistryStats stats() const noexcept;

 private:
  /// One cell's seqlock slot. Writers bump `version` to odd, mutate, bump
  /// back to even; readers retry while odd or changed.
  struct Slot {
    std::atomic<std::uint32_t> version{0};
    std::atomic<std::uint8_t> state{static_cast<std::uint8_t>(GrantState::kNone)};
    std::atomic<std::uint32_t> holder{0};
    std::atomic<std::uint64_t> granted_seq{0};
    std::atomic<std::uint64_t> expires_seq{0};
    std::atomic<std::uint32_t> renewals{0};
  };

  Slot& slot(int cell);
  const Slot& slot(int cell) const;
  /// Writer-side: publish `record` into `slot` under a version bump.
  void publish(Slot& slot, const GrantRecord& record);
  /// Writer-side read (no retry needed: we are the only writer).
  [[nodiscard]] static GrantRecord writer_read(const Slot& slot);
  /// True when the slot holds a grant that is still live at `now`.
  [[nodiscard]] static bool live_grant(const GrantRecord& record,
                                       std::uint64_t now) noexcept {
    return record.state == GrantState::kGranted && now < record.expires_seq;
  }

  std::vector<Slot> slots_;
  std::uint64_t ttl_;

  std::atomic<std::uint64_t> grants_{0};
  std::atomic<std::uint64_t> denials_{0};
  std::atomic<std::uint64_t> revocations_{0};
  std::atomic<std::uint64_t> renewals_{0};
  std::atomic<std::uint64_t> expiries_{0};
  std::atomic<std::uint64_t> conflicts_{0};

  // Telemetry handles (disarmed until instrument()).
  telemetry::Histogram grant_ns_;
  telemetry::Histogram renew_ns_;
  telemetry::Histogram expire_ns_;
  telemetry::Counter grants_counter_;
  telemetry::Counter denials_counter_;
  telemetry::Counter revocations_counter_;
  telemetry::Counter renewals_counter_;
  telemetry::Counter expiries_counter_;
};

}  // namespace hdc::coordination
