#include "coordination/coordination_service.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/span.hpp"

namespace hdc::coordination {

CoordinationService::CoordinationService(CoordinationConfig config)
    : config_(config),
      // kBlock: fleet events are sparse (a handful per dialogue, not per
      // frame), so the ring essentially never fills; if it ever does, the
      // dialogue workers pause rather than lose an outcome. The reverse
      // edge (aborts into InteractionService) is non-blocking, so the pair
      // cannot deadlock.
      ring_(config.queue_capacity, util::OverflowPolicy::kBlock),
      registry_(config.cells, config.grant_ttl),
      arbiter_(config.arbitration) {
  if (config_.metrics != nullptr) {
    telemetry::MetricsRegistry& metrics = *config_.metrics;
    arbitrate_ns_ = metrics.histogram(telemetry::kCoordinationArbitrate);
    events_counter_ = metrics.counter(telemetry::kCoordinationEvents);
    arbitrations_counter_ = metrics.counter(telemetry::kCoordinationArbitrations);
    deferrals_counter_ = metrics.counter(telemetry::kCoordinationDeferrals);
    queue_depth_ = metrics.gauge(telemetry::kCoordinationQueueDepth);
    registry_.instrument(metrics);
  }
  recorder_ = config_.recorder;
  worker_ = std::thread([this] { worker_loop(); });
}

CoordinationService::~CoordinationService() { stop(); }

void CoordinationService::set_registry_observer(RegistryObserver observer) {
  registry_observer_ = std::move(observer);
}

void CoordinationService::set_event_tap(EventTap tap) {
  event_tap_ = std::move(tap);
}

void CoordinationService::admit_recorded(const FleetEvent& event) {
  FleetEvent copy = event;
  copy.source = nullptr;  // recorded pointers are meaningless; see header
  admit(std::move(copy));
}

void CoordinationService::bind(interaction::InteractionService& dialogue) {
  interaction::InteractionService::DialogueListener listener;
  interaction::InteractionService* source = &dialogue;
  listener.on_event = [this](const interaction::SignEvent& event) {
    admit_sign_event(event);
  };
  listener.on_transition = [this, source](const interaction::AckAction& action) {
    admit_transition(source, action);
  };
  listener.on_outcome = [this](const protocol::OutcomeRecord& record) {
    admit_outcome(record);
  };
  dialogue.set_dialogue_listener(std::move(listener));
}

void CoordinationService::register_drone(const DroneDescriptor& descriptor) {
  FleetEvent event;
  event.kind = EventKind::kRegister;
  event.drone_id = descriptor.drone_id;
  event.descriptor = descriptor;
  admit(std::move(event));
}

void CoordinationService::update_battery(std::uint32_t drone_id, double soc) {
  FleetEvent event;
  event.kind = EventKind::kBattery;
  event.drone_id = drone_id;
  event.battery_soc = soc;
  admit(std::move(event));
}

void CoordinationService::tick(std::uint64_t sequence) {
  FleetEvent event;
  event.kind = EventKind::kTick;
  event.sequence = sequence;
  admit(std::move(event));
}

void CoordinationService::admit_transition(
    interaction::InteractionService* source,
    const interaction::AckAction& action) {
  FleetEvent event;
  event.kind = EventKind::kTransition;
  event.drone_id = action.stream_id;
  event.sequence = action.tick;
  event.source = source;
  event.to = action.to;
  admit(std::move(event));
}

void CoordinationService::admit_outcome(const protocol::OutcomeRecord& record) {
  FleetEvent event;
  event.kind = EventKind::kOutcome;
  event.drone_id = record.stream_id;
  event.sequence = record.final_sequence;
  event.outcome = record.outcome;
  admit(std::move(event));
}

void CoordinationService::admit_sign_event(
    const interaction::SignEvent& sign_event) {
  FleetEvent event;
  event.kind = EventKind::kSignEvent;
  event.drone_id = sign_event.stream_id;
  event.sequence = sign_event.kind == interaction::SignEventKind::kBegin
                       ? sign_event.onset_seq
                       : sign_event.end_seq;
  event.label = sign_event.label;
  event.event_kind = sign_event.kind;
  admit(std::move(event));
}

void CoordinationService::admit(FleetEvent event) {
  if (stopping_.load(std::memory_order_acquire)) return;
  pending_.raise();  // raise-before-push (PendingCounter contract)
  FleetEvent evicted;
  const util::PushOutcome outcome = ring_.push(std::move(event), &evicted);
  if (outcome != util::PushOutcome::kEnqueued) {
    pending_.finish(1);
    return;
  }
  queue_depth_.add(1);
}

void CoordinationService::worker_loop() {
  FleetEvent event;
  while (ring_.pop(event)) {
    queue_depth_.add(-1);
    flush_pending_aborts();
    try {
      process(event);
    } catch (...) {
      pending_.record_error(std::current_exception());
    }
    pending_.finish(1);
  }
  flush_pending_aborts();
}

std::uint64_t CoordinationService::advance_clock(std::uint64_t sequence) {
  std::uint64_t now = fleet_clock_.load(std::memory_order_relaxed);
  while (sequence > now && !fleet_clock_.compare_exchange_weak(
                               now, sequence, std::memory_order_release,
                               std::memory_order_relaxed)) {
  }
  return std::max(now, sequence);
}

void CoordinationService::process(const FleetEvent& event) {
  if (event_tap_) event_tap_(event);
  events_.fetch_add(1, std::memory_order_relaxed);
  events_counter_.add(1);
  // `now` is the monotone fleet clock AFTER observing this event. Handlers
  // must timestamp every registry mutation with `now`, never the event's
  // raw sequence: an out-of-order (stale) sequence would otherwise open a
  // lease in the past — born expired, or expiring earlier than a lease the
  // same cell already had — regressing lease-expiry decisions.
  const std::uint64_t now = advance_clock(event.sequence);

  switch (event.kind) {
    case EventKind::kRegister:
      drones_[event.drone_id] = event.descriptor;
      arbiter_.add_drone(event.descriptor);
      break;
    case EventKind::kBattery:
      arbiter_.set_battery(event.drone_id, event.battery_soc);
      break;
    case EventKind::kTransition:
      handle_transition(event);
      break;
    case EventKind::kOutcome:
      handle_outcome(event, now);
      break;
    case EventKind::kSignEvent:
      handle_sign_event(event, now);
      break;
    case EventKind::kTick:
      break;  // advance_clock + the sweep below are the whole effect
  }

  // Lease sweep: TTLs live in the fleet clock, so any event that advanced
  // it can push leases past their end.
  registry_.expire(now);
}

void CoordinationService::handle_transition(const FleetEvent& event) {
  if (event.source != nullptr) sources_[event.drone_id] = event.source;

  decisions_scratch_.clear();
  {
    // The trace identity rides the FleetEvent's own (drone_id, sequence)
    // — the propagation map's FleetEvent row.
    telemetry::TracedSpan span(
        arbitrate_ns_, recorder_,
        telemetry::TraceContext::of(event.drone_id, event.sequence),
        telemetry::TraceStage::kArbitrate);
    arbiter_.on_phase(event.drone_id, event.to,
                      fleet_clock_.load(std::memory_order_relaxed),
                      decisions_scratch_);
  }
  for (const ArbitrationDecision& decision : decisions_scratch_) {
    if (decision.reason == AbortReason::kLostArbitration) {
      arbitrations_.fetch_add(1, std::memory_order_relaxed);
      arbitrations_counter_.add(1);
    } else {
      deferrals_.fetch_add(1, std::memory_order_relaxed);
      deferrals_counter_.add(1);
    }
    {
      std::lock_guard<std::mutex> lock(log_mutex_);
      arbitration_log_.push_back(decision);
    }
    const auto it = sources_.find(decision.loser);
    issue_abort(it == sources_.end() ? nullptr : it->second, decision.loser);
  }
}

void CoordinationService::handle_outcome(const FleetEvent& event,
                                         std::uint64_t now) {
  const auto it = drones_.find(event.drone_id);
  if (it == drones_.end()) {
    unknown_drone_events_.fetch_add(1, std::memory_order_relaxed);
    arbiter_.on_dialogue_end(event.drone_id,
                             event.outcome == protocol::Outcome::kGranted,
                             event.sequence);
    return;
  }
  const int cell = it->second.cell;
  switch (event.outcome) {
    case protocol::Outcome::kGranted: {
      // Lease born at `now`, not the outcome's own sequence: a stale
      // outcome (decided at sequence S but processed after the clock
      // passed S + ttl) must still open a full-length lease, not one
      // that is already expired — the sweep below would kill it in the
      // same breath.
      const bool accepted = registry_.grant(cell, event.drone_id, now);
      if (recorder_ != nullptr && telemetry::enabled()) {
        recorder_->emit_instant(
            telemetry::TraceContext::of(event.drone_id, event.sequence),
            telemetry::TraceStage::kGrantUpdate,
            accepted ? telemetry::TraceOutcome::kOk
                     : telemetry::TraceOutcome::kConflict);
      }
      observe({cell, registry_.read(cell), !accepted});
      break;
    }
    case protocol::Outcome::kDenied: {
      const bool accepted = registry_.deny(cell, event.drone_id, now);
      if (recorder_ != nullptr && telemetry::enabled()) {
        recorder_->emit_instant(
            telemetry::TraceContext::of(event.drone_id, event.sequence),
            telemetry::TraceStage::kGrantUpdate,
            accepted ? telemetry::TraceOutcome::kOk
                     : telemetry::TraceOutcome::kConflict);
      }
      observe({cell, registry_.read(cell), !accepted});
      break;
    }
    case protocol::Outcome::kPending:
    case protocol::Outcome::kNoAttention:
    case protocol::Outcome::kNoAnswer:
    case protocol::Outcome::kAborted:
      break;  // nothing for the registry
  }
  arbiter_.on_dialogue_end(event.drone_id,
                           event.outcome == protocol::Outcome::kGranted,
                           event.sequence);
}

void CoordinationService::handle_sign_event(const FleetEvent& event,
                                            std::uint64_t now) {
  // Post-grant human authority: a fused No begin revokes the cell's live
  // grant (whoever's camera saw it — the human is the authority, not the
  // stream); a fused Yes begin renews the current holder's lease.
  if (event.event_kind != interaction::SignEventKind::kBegin) return;
  const auto it = drones_.find(event.drone_id);
  if (it == drones_.end()) return;  // not an error: pre-registration chatter
  const int cell = it->second.cell;
  const GrantRecord record = registry_.read(cell);
  // Causality check on the RAW sequence: a sign fused before the grant
  // existed must not act on it. The mutation itself is stamped with `now`
  // (the monotone clock) — a stale Yes renewing with its own old sequence
  // would SHORTEN the lease, and a stale No would open a keep-clear
  // window that is already partly in the past.
  const bool live = record.state == GrantState::kGranted &&
                    event.sequence > record.granted_seq;
  if (!live) return;
  if (event.label == signs::HumanSign::kNo) {
    if (registry_.revoke(cell, now)) {
      if (recorder_ != nullptr && telemetry::enabled()) {
        recorder_->emit_instant(
            telemetry::TraceContext::of(event.drone_id, event.sequence),
            telemetry::TraceStage::kGrantUpdate, telemetry::TraceOutcome::kOk);
      }
      observe({cell, registry_.read(cell), false});
    }
  } else if (event.label == signs::HumanSign::kYes) {
    if (registry_.renew(cell, record.holder, now)) {
      if (recorder_ != nullptr && telemetry::enabled()) {
        recorder_->emit_instant(
            telemetry::TraceContext::of(event.drone_id, event.sequence),
            telemetry::TraceStage::kGrantUpdate, telemetry::TraceOutcome::kOk);
      }
      observe({cell, registry_.read(cell), false});
    }
  }
}

void CoordinationService::issue_abort(interaction::InteractionService* source,
                                      std::uint32_t stream_id) {
  if (source == nullptr) {
    // No known source (direct-admitted events): the decision is still
    // logged; there is nobody to deliver the abort to.
    return;
  }
  if (source->try_abort_stream(stream_id)) {
    aborts_issued_.fetch_add(1, std::memory_order_relaxed);
  } else {
    aborts_deferred_.fetch_add(1, std::memory_order_relaxed);
    pending_aborts_.emplace_back(source, stream_id);
  }
}

void CoordinationService::flush_pending_aborts() {
  if (pending_aborts_.empty()) return;
  std::vector<std::pair<interaction::InteractionService*, std::uint32_t>> retry;
  retry.swap(pending_aborts_);
  for (const auto& [source, stream_id] : retry) {
    if (source->try_abort_stream(stream_id)) {
      aborts_issued_.fetch_add(1, std::memory_order_relaxed);
    } else {
      pending_aborts_.emplace_back(source, stream_id);
    }
  }
}

void CoordinationService::observe(const GrantUpdate& update) {
  if (registry_observer_) registry_observer_(update);
}

orchard::PlanHint CoordinationService::plan_hint(std::uint32_t drone_id) const {
  orchard::PlanHint hint;
  const std::uint64_t now = fleet_clock();
  for (std::size_t cell = 0; cell < registry_.cell_count(); ++cell) {
    const GrantRecord record = registry_.read(static_cast<int>(cell));
    switch (record.state) {
      case GrantState::kGranted:
        if (record.holder == drone_id && now < record.expires_seq) {
          hint.granted_cells.push_back(static_cast<int>(cell));
        }
        break;
      case GrantState::kDenied:
        if (now < record.expires_seq) {
          hint.blocked_cells.push_back(static_cast<int>(cell));
        }
        break;
      case GrantState::kRevoked:
        if (now < record.expires_seq) {
          hint.blocked_cells.push_back(static_cast<int>(cell));
        }
        break;
      case GrantState::kNone:
      case GrantState::kExpired:
        break;
    }
  }
  return hint;
}

CoordinationStats CoordinationService::stats() const noexcept {
  return {events_.load(std::memory_order_relaxed),
          arbitrations_.load(std::memory_order_relaxed),
          deferrals_.load(std::memory_order_relaxed),
          aborts_issued_.load(std::memory_order_relaxed),
          aborts_deferred_.load(std::memory_order_relaxed),
          unknown_drone_events_.load(std::memory_order_relaxed)};
}

std::vector<ArbitrationDecision> CoordinationService::arbitration_log() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return arbitration_log_;
}

void CoordinationService::drain() { pending_.drain(); }

void CoordinationService::stop() noexcept {
  std::lock_guard<std::mutex> guard(stop_mutex_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  ring_.close();
  if (worker_.joinable()) worker_.join();
  stopped_ = true;
}

}  // namespace hdc::coordination
