// Fleet contention scenarios — deterministic multi-drone scripts over the
// interaction scenario driver, with exact expected arbitration outcomes.
//
// Where interaction::make_cohort scripts N *independent* dialogues, these
// scenarios script the fleet-level conflicts CoordinationService exists to
// resolve:
//   - contention pairs: two drones converge on ONE human (same human_id /
//     orchard cell). The second drone's script is staggered so it raises
//     attention while the first is already deep in its dialogue — the
//     phase-rank rule then makes the arbitration outcome exact: the early
//     drone wins, the late one is aborted and backed off, the cell ends
//     held by the winner, zero conflicting grants.
//   - grant-then-revoke: one drone completes a granted dialogue, then the
//     human raises No — the fused event must revoke the lease.
//   - post-grant renewal: the human re-confirms with Yes — the lease's
//     expiry must move out.
//   - lease expiry is scripted by the *absence* of signs: the test pumps
//     CoordinationService::tick() past the TTL instead.
//
// Battery states come from the drone::Battery model (hover time drained
// per drone), so the arbitration input is the real energy model, not a
// magic number.
#pragma once

#include <cstdint>
#include <vector>

#include "coordination/fleet_types.hpp"
#include "interaction/scenario.hpp"
#include "signs/multi_drone_feed.hpp"

namespace hdc::coordination {

struct FleetScenarioOptions {
  interaction::ScenarioOptions dialogue{};  ///< per-dialogue shape
  /// Neutral ticks prepended to the second drone of a contention pair.
  /// Must exceed the first drone's attention fuse point by a comfortable
  /// margin so the winner is already past Attending when the loser shows
  /// up (the default clears it by several holds).
  std::uint64_t stagger_ticks{60};
  /// Hover minutes already flown per drone index (battery_soc input):
  /// drone d has hovered d * hover_minutes_step minutes.
  double hover_minutes_step{4.0};
};

/// One contention pair's ground truth.
struct PairExpectation {
  std::uint32_t winner{0};  ///< completes its dialogue, holds the grant
  std::uint32_t loser{0};   ///< aborted by arbitration
  int human_id{0};
  int cell{0};
};

/// A fleet of `drones` (even count) split into contention pairs: streams
/// {2p, 2p+1} both negotiate with human p for cell p; stream 2p starts
/// first, 2p+1 staggered. Index i of scripts/drones belongs to stream i.
struct ContentionFleet {
  std::vector<signs::SignSchedule> scripts;
  std::vector<DroneDescriptor> drones;
  std::vector<PairExpectation> pairs;
};

/// Battery state of charge of drone `index` after its scripted hover time
/// (drone::Battery model; deterministic, strictly decreasing in index).
[[nodiscard]] double scripted_battery_soc(std::size_t index,
                                          const FleetScenarioOptions& options = {});

[[nodiscard]] ContentionFleet make_contention_fleet(
    std::size_t drones, const interaction::CommandGrammar& grammar,
    const FleetScenarioOptions& options = {});

/// A granted dialogue followed by a held No: the human withdraws consent
/// after the grant (expects one revocation).
[[nodiscard]] signs::SignSchedule make_grant_then_revoke_schedule(
    const interaction::CommandGrammar& grammar,
    const FleetScenarioOptions& options = {});

/// A granted dialogue followed by a held Yes: the human re-confirms after
/// the grant (expects one lease renewal).
[[nodiscard]] signs::SignSchedule make_grant_then_renew_schedule(
    const interaction::CommandGrammar& grammar,
    const FleetScenarioOptions& options = {});

/// Feed configuration for a fleet (same gentle-azimuth contract as
/// interaction::make_feed_config).
[[nodiscard]] signs::MultiDroneFeedConfig make_fleet_feed_config(
    const ContentionFleet& fleet);

}  // namespace hdc::coordination
