#include "coordination/grant_registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/span.hpp"

namespace hdc::coordination {

void GrantRegistry::instrument(telemetry::MetricsRegistry& metrics) {
  grant_ns_ = metrics.histogram(telemetry::kCoordinationGrantSpan);
  renew_ns_ = metrics.histogram(telemetry::kCoordinationRenewSpan);
  expire_ns_ = metrics.histogram(telemetry::kCoordinationExpireSpan);
  grants_counter_ = metrics.counter(telemetry::kCoordinationGrants);
  denials_counter_ = metrics.counter(telemetry::kCoordinationDenials);
  revocations_counter_ = metrics.counter(telemetry::kCoordinationRevocations);
  renewals_counter_ = metrics.counter(telemetry::kCoordinationRenewals);
  expiries_counter_ = metrics.counter(telemetry::kCoordinationExpiries);
}

GrantRegistry::GrantRegistry(std::size_t cells, std::uint64_t ttl)
    : slots_(cells), ttl_(ttl) {
  if (cells == 0) {
    throw std::invalid_argument("GrantRegistry: need at least one cell");
  }
  if (ttl == 0) {
    throw std::invalid_argument("GrantRegistry: ttl must be positive");
  }
}

GrantRegistry::Slot& GrantRegistry::slot(int cell) {
  if (cell < 0 || static_cast<std::size_t>(cell) >= slots_.size()) {
    throw std::out_of_range("GrantRegistry: bad cell id");
  }
  return slots_[static_cast<std::size_t>(cell)];
}

const GrantRegistry::Slot& GrantRegistry::slot(int cell) const {
  if (cell < 0 || static_cast<std::size_t>(cell) >= slots_.size()) {
    throw std::out_of_range("GrantRegistry: bad cell id");
  }
  return slots_[static_cast<std::size_t>(cell)];
}

void GrantRegistry::publish(Slot& slot, const GrantRecord& record) {
  // The standard C++ seqlock writer (cf. Boehm, "Can seqlocks get along
  // with programming memory models?"): odd version first, then a RELEASE
  // FENCE so no field store can become visible before the odd version
  // (a release *store* would not order the later relaxed stores), relaxed
  // field stores, and a release store of the even version so a reader
  // that acquires it sees every field.
  const std::uint32_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.state.store(static_cast<std::uint8_t>(record.state),
                   std::memory_order_relaxed);
  slot.holder.store(record.holder, std::memory_order_relaxed);
  slot.granted_seq.store(record.granted_seq, std::memory_order_relaxed);
  slot.expires_seq.store(record.expires_seq, std::memory_order_relaxed);
  slot.renewals.store(record.renewals, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
}

GrantRecord GrantRegistry::writer_read(const Slot& slot) {
  GrantRecord record;
  record.state = static_cast<GrantState>(slot.state.load(std::memory_order_relaxed));
  record.holder = slot.holder.load(std::memory_order_relaxed);
  record.granted_seq = slot.granted_seq.load(std::memory_order_relaxed);
  record.expires_seq = slot.expires_seq.load(std::memory_order_relaxed);
  record.renewals = slot.renewals.load(std::memory_order_relaxed);
  return record;
}

GrantRecord GrantRegistry::read(int cell) const {
  const Slot& s = slot(cell);
  GrantRecord record;
  for (;;) {
    const std::uint32_t before = s.version.load(std::memory_order_acquire);
    if (before & 1U) continue;  // write in progress; retry
    record.state =
        static_cast<GrantState>(s.state.load(std::memory_order_relaxed));
    record.holder = s.holder.load(std::memory_order_relaxed);
    record.granted_seq = s.granted_seq.load(std::memory_order_relaxed);
    record.expires_seq = s.expires_seq.load(std::memory_order_relaxed);
    record.renewals = s.renewals.load(std::memory_order_relaxed);
    // ACQUIRE FENCE before the re-read: pairs with the writer's release
    // fence so that if any field load above observed a post-fence store,
    // this re-read must observe the odd version (or a newer one) and
    // retry. An acquire *load* alone would not order the field loads
    // before it.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.version.load(std::memory_order_relaxed) == before) return record;
  }
}

void GrantRegistry::snapshot(std::vector<GrantRecord>& out) const {
  out.resize(slots_.size());
  for (std::size_t cell = 0; cell < slots_.size(); ++cell) {
    out[cell] = read(static_cast<int>(cell));
  }
}

bool GrantRegistry::held_by(int cell, std::uint32_t holder,
                            std::uint64_t now) const {
  const GrantRecord record = read(cell);
  return live_grant(record, now) && record.holder == holder;
}

bool GrantRegistry::grant(int cell, std::uint32_t holder,
                          std::uint64_t sequence) {
  // Covers the whole call, including the re-grant-as-renewal path (which
  // then records under the renew span as well).
  TELEMETRY_SPAN(grant_ns_);
  Slot& s = slot(cell);
  const GrantRecord current = writer_read(s);
  if (live_grant(current, sequence) && current.holder != holder) {
    // Single-holder invariant: the cell is taken. This is the late-abort
    // race made harmless — a loser whose dialogue completed anyway cannot
    // displace the winner's grant.
    conflicts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (live_grant(current, sequence) && current.holder == holder) {
    // Re-granting to the holder is a lease renewal, not a new grant.
    return renew(cell, holder, sequence);
  }
  GrantRecord next;
  next.state = GrantState::kGranted;
  next.holder = holder;
  next.granted_seq = sequence;
  next.expires_seq = sequence + ttl_;
  next.renewals = 0;
  publish(s, next);
  grants_.fetch_add(1, std::memory_order_relaxed);
  grants_counter_.add(1);
  return true;
}

bool GrantRegistry::deny(int cell, std::uint32_t by, std::uint64_t sequence) {
  Slot& s = slot(cell);
  const GrantRecord current = writer_read(s);
  if (live_grant(current, sequence) && current.holder != by) {
    // Another drone validly holds the cell; a third party's denied
    // dialogue must not erase that lease (same single-holder reasoning as
    // grant(): only the human's No — a revocation — may end it early).
    conflicts_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  GrantRecord next;
  next.state = GrantState::kDenied;
  next.holder = by;
  next.granted_seq = sequence;
  next.expires_seq = sequence + ttl_;
  next.renewals = 0;
  publish(s, next);
  denials_.fetch_add(1, std::memory_order_relaxed);
  denials_counter_.add(1);
  return true;
}

bool GrantRegistry::revoke(int cell, std::uint64_t sequence) {
  Slot& s = slot(cell);
  GrantRecord current = writer_read(s);
  if (current.state != GrantState::kGranted) return false;
  current.state = GrantState::kRevoked;
  current.granted_seq = sequence;
  // A revocation is the human's refusal, like a denial: keep-clear for
  // one TTL, then age out (a permanent fleet-wide block would need a
  // fresh No every lease period — the human stays in charge either way).
  current.expires_seq = sequence + ttl_;
  publish(s, current);
  revocations_.fetch_add(1, std::memory_order_relaxed);
  revocations_counter_.add(1);
  return true;
}

bool GrantRegistry::renew(int cell, std::uint32_t holder,
                          std::uint64_t sequence) {
  TELEMETRY_SPAN(renew_ns_);
  Slot& s = slot(cell);
  GrantRecord current = writer_read(s);
  // Revoked/expired/denied grants stay dead: renewal extends a LIVE lease
  // only (the revocation-vs-renewal race always ends revoked).
  if (!live_grant(current, sequence) || current.holder != holder) return false;
  // Monotone lease end: a renewal stamped with a stale sequence extends
  // the lease or leaves it alone — it can never pull expiry earlier.
  current.expires_seq = std::max(current.expires_seq, sequence + ttl_);
  current.renewals += 1;
  publish(s, current);
  renewals_.fetch_add(1, std::memory_order_relaxed);
  renewals_counter_.add(1);
  return true;
}

std::size_t GrantRegistry::expire(std::uint64_t now) {
  TELEMETRY_SPAN(expire_ns_);
  std::size_t expired = 0;
  for (Slot& s : slots_) {
    GrantRecord current = writer_read(s);
    const bool leased = current.state == GrantState::kGranted ||
                        current.state == GrantState::kDenied ||
                        current.state == GrantState::kRevoked;
    if (!leased || now < current.expires_seq) continue;
    current.state = GrantState::kExpired;
    publish(s, current);
    ++expired;
  }
  expiries_.fetch_add(expired, std::memory_order_relaxed);
  if (expired != 0) expiries_counter_.add(expired);
  return expired;
}

RegistryStats GrantRegistry::stats() const noexcept {
  return {grants_.load(std::memory_order_relaxed),
          denials_.load(std::memory_order_relaxed),
          revocations_.load(std::memory_order_relaxed),
          renewals_.load(std::memory_order_relaxed),
          expiries_.load(std::memory_order_relaxed),
          conflicts_.load(std::memory_order_relaxed)};
}

}  // namespace hdc::coordination
