// SessionArbiter — who gets the human when two drones want the same one.
//
// Every live dialogue in the fleet is tracked per drone; when a drone
// opens (or advances) a dialogue with a human that another drone is
// already engaging, exactly one of them keeps the session. Priority is a
// lexicographic order, most- to least-significant:
//
//   1. EFFECTIVE phase rank: the dialogue phase rank (Executing >
//      Confirming > CommandPending > Attending — never throw away a
//      nearly-finished negotiation for a newcomer) plus fairness aging,
//      min(losses × fairness_boost_per_loss, fairness_boost_cap);
//   2. unresolved losses, more wins — at equal effective rank the drone
//      that has been turned away more often goes first (like the aging
//      itself, this tiebreak is inert when fairness_boost_per_loss = 0);
//   3. battery state of charge — the drone with more energy left is the
//      one that can still complete the granted job;
//   4. stream id, lower wins — a total deterministic order, so
//      identical-priority contenders always resolve the same way.
//
// The loser is told to abort (CoordinationService routes that to the
// owning InteractionService's external-abort hook) and is put on a
// deferred-retry backoff: a new attempt before `retry_at` is aborted
// immediately, and every consecutive loss doubles the backoff up to the
// policy cap. A completed or ended dialogue clears the drone's standing.
//
// Starvation bound (the fairness aging's contract, pinned in tests): with
// boost b = fairness_boost_per_loss > 0, a loser that keeps retrying after
// each backoff wins within N = 1 + ceil((max_rank - min_rank) / b)
// attempts, where max_rank - min_rank = 3 (Executing=4 vs Attending=1) —
// N = 4 with the defaults. After N-1 losses the loser's effective rank at
// entry ties or beats ANY un-aged phase, and the losses tiebreak breaks
// the tie in its favour; a fresh win resets its aging to zero. Without
// aging (b = 0) a low-id, low-battery drone can lose forever to a
// perpetually re-engaging neighbour.
//
// Like the dialogue FSM, the arbiter is synchronous, thread-free and
// deterministic: CoordinationService's single worker owns it, time is the
// fleet clock (max frame sequence observed), and all decisions are
// returned to the caller to act on. The worker wraps each on_phase call
// in the coordination_arbitrate_ns telemetry span and mirrors
// contentions/deferrals into the fleet counters, so arbitration latency
// and decision mix are visible at runtime (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "coordination/fleet_types.hpp"

namespace hdc::coordination {

struct ArbiterStats {
  std::uint64_t contentions{0};   ///< arbitrations between two live sessions
  std::uint64_t deferrals{0};     ///< retries refused inside a backoff window
  std::uint64_t sessions_ended{0};
};

class SessionArbiter {
 public:
  using Decisions = std::vector<ArbitrationDecision>;

  explicit SessionArbiter(ArbitrationPolicy policy = {});

  /// Registers (or re-registers) a drone. Resets any dialogue standing the
  /// drone had.
  void add_drone(const DroneDescriptor& descriptor);

  /// Battery update (arbitration input; no decision by itself).
  void set_battery(std::uint32_t drone_id, double soc);

  /// Feeds one dialogue-phase change (from the stream of FSM transitions).
  /// Appends any abort decisions to `out` — the caller must deliver them.
  /// Unknown drones are learned on the fly with a default descriptor
  /// (cell/human 0) so a misconfigured fleet degrades, not crashes.
  void on_phase(std::uint32_t drone_id, interaction::DialogueState to,
                std::uint64_t sequence, Decisions& out);

  /// A drone's dialogue decided its outcome (granted/denied/aborted/...):
  /// its session no longer contends. A win (kGranted) also clears its
  /// backoff.
  void on_dialogue_end(std::uint32_t drone_id, bool won, std::uint64_t sequence);

  [[nodiscard]] const ArbiterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ArbitrationPolicy& policy() const noexcept { return policy_; }
  /// The drone's current dialogue phase as tracked here (kIdle if unknown).
  [[nodiscard]] interaction::DialogueState phase_of(std::uint32_t drone_id) const;
  /// Earliest fleet-clock frame at which the drone may retry (0 = now).
  [[nodiscard]] std::uint64_t retry_at(std::uint32_t drone_id) const;
  /// Unresolved arbitration losses feeding the drone's fairness aging
  /// (reset by a won dialogue).
  [[nodiscard]] std::uint32_t losses(std::uint32_t drone_id) const;

 private:
  struct DroneStanding {
    DroneDescriptor descriptor{};
    interaction::DialogueState phase{interaction::DialogueState::kIdle};
    std::uint64_t retry_at{0};
    std::uint64_t backoff{0};  ///< current backoff span (0 = policy base next)
    std::uint32_t losses{0};   ///< arbitration losses since the last win
    bool abort_pending{false}; ///< we already told it to abort; don't re-abort
  };

  DroneStanding& standing(std::uint32_t drone_id);
  /// Phase rank plus capped fairness aging.
  [[nodiscard]] int effective_rank(const DroneStanding& s) const noexcept;
  /// True when `a` outranks `b` under effective rank > losses > battery >
  /// stream id.
  [[nodiscard]] bool outranks(const DroneStanding& a,
                              const DroneStanding& b) const noexcept;
  void defer(DroneStanding& loser, std::uint64_t sequence);

  ArbitrationPolicy policy_;
  std::unordered_map<std::uint32_t, DroneStanding> drones_;
  ArbiterStats stats_;
};

}  // namespace hdc::coordination
