#include "coordination/session_arbiter.hpp"

#include <algorithm>

namespace hdc::coordination {

namespace {

/// Phases that hold (or are building toward) a claim on the human.
[[nodiscard]] constexpr bool contending(interaction::DialogueState state) noexcept {
  return phase_rank(state) > 0;
}

}  // namespace

SessionArbiter::SessionArbiter(ArbitrationPolicy policy) : policy_(policy) {}

void SessionArbiter::add_drone(const DroneDescriptor& descriptor) {
  DroneStanding fresh;
  fresh.descriptor = descriptor;
  fresh.descriptor.battery_soc =
      std::clamp(descriptor.battery_soc, 0.0, 1.0);
  drones_[descriptor.drone_id] = fresh;
}

void SessionArbiter::set_battery(std::uint32_t drone_id, double soc) {
  standing(drone_id).descriptor.battery_soc = std::clamp(soc, 0.0, 1.0);
}

SessionArbiter::DroneStanding& SessionArbiter::standing(std::uint32_t drone_id) {
  const auto it = drones_.find(drone_id);
  if (it != drones_.end()) return it->second;
  DroneStanding& fresh = drones_[drone_id];
  fresh.descriptor.drone_id = drone_id;
  return fresh;
}

int SessionArbiter::effective_rank(const DroneStanding& s) const noexcept {
  if (policy_.fairness_boost_per_loss <= 0) return phase_rank(s.phase);
  const long long boost =
      static_cast<long long>(s.losses) * policy_.fairness_boost_per_loss;
  return phase_rank(s.phase) +
         static_cast<int>(std::min<long long>(boost, policy_.fairness_boost_cap));
}

bool SessionArbiter::outranks(const DroneStanding& a,
                              const DroneStanding& b) const noexcept {
  const int rank_a = effective_rank(a);
  const int rank_b = effective_rank(b);
  if (rank_a != rank_b) return rank_a > rank_b;
  // Equal effective rank: the drone turned away more often goes first
  // (this is what makes the starvation bound exact — aging alone can only
  // TIE a higher raw phase, see the header). Part of the fairness aging,
  // so boost = 0 disables it too and restores the legacy total order.
  if (policy_.fairness_boost_per_loss > 0 && a.losses != b.losses) {
    return a.losses > b.losses;
  }
  if (a.descriptor.battery_soc != b.descriptor.battery_soc) {
    return a.descriptor.battery_soc > b.descriptor.battery_soc;
  }
  return a.descriptor.drone_id < b.descriptor.drone_id;
}

void SessionArbiter::defer(DroneStanding& loser, std::uint64_t sequence) {
  loser.backoff = loser.backoff == 0
                      ? policy_.retry_backoff
                      : std::min(loser.backoff * 2, policy_.retry_backoff_max);
  loser.retry_at = sequence + loser.backoff;
}

void SessionArbiter::on_phase(std::uint32_t drone_id,
                              interaction::DialogueState to,
                              std::uint64_t sequence, Decisions& out) {
  DroneStanding& self = standing(drone_id);
  const interaction::DialogueState from = self.phase;
  self.phase = to;

  if (!contending(to)) {
    // The session is ending (Aborting) or ended (Idle); once it reaches
    // Idle any abort we issued has run its course.
    if (to == interaction::DialogueState::kIdle) self.abort_pending = false;
    return;
  }
  if (self.abort_pending) return;  // our abort is in flight; let it land

  // A fresh attempt inside the backoff window is refused outright — the
  // deferred-retry half of losing an arbitration.
  const bool entering = !contending(from);
  if (entering && sequence < self.retry_at) {
    ++stats_.deferrals;
    self.abort_pending = true;
    out.push_back({drone_id, drone_id, self.descriptor.human_id, sequence,
                   self.retry_at, AbortReason::kDeferredRetry});
    return;
  }

  // Contention scan: every other live session on the same human forces an
  // arbitration. With >2 contenders this drone keeps winning or exits on
  // its first loss.
  for (auto& [other_id, other] : drones_) {
    if (other_id == drone_id) continue;
    if (other.descriptor.human_id != self.descriptor.human_id) continue;
    if (!contending(other.phase) || other.abort_pending) continue;

    ++stats_.contentions;
    DroneStanding& loser = outranks(self, other) ? other : self;
    DroneStanding& winner = outranks(self, other) ? self : other;
    defer(loser, sequence);
    ++loser.losses;  // fairness aging input; reset by a won dialogue
    loser.abort_pending = true;
    out.push_back({loser.descriptor.drone_id, winner.descriptor.drone_id,
                   self.descriptor.human_id, sequence, loser.retry_at,
                   AbortReason::kLostArbitration});
    if (&loser == &self) return;
  }
}

void SessionArbiter::on_dialogue_end(std::uint32_t drone_id, bool won,
                                     std::uint64_t sequence) {
  (void)sequence;
  DroneStanding& self = standing(drone_id);
  self.phase = interaction::DialogueState::kIdle;
  self.abort_pending = false;
  ++stats_.sessions_ended;
  if (won) {
    // A completed negotiation clears the loser history — the next
    // contention starts from the base backoff again, with no aging boost.
    self.backoff = 0;
    self.retry_at = 0;
    self.losses = 0;
  }
}

interaction::DialogueState SessionArbiter::phase_of(
    std::uint32_t drone_id) const {
  const auto it = drones_.find(drone_id);
  return it == drones_.end() ? interaction::DialogueState::kIdle
                             : it->second.phase;
}

std::uint64_t SessionArbiter::retry_at(std::uint32_t drone_id) const {
  const auto it = drones_.find(drone_id);
  return it == drones_.end() ? 0 : it->second.retry_at;
}

std::uint32_t SessionArbiter::losses(std::uint32_t drone_id) const {
  const auto it = drones_.find(drone_id);
  return it == drones_.end() ? 0 : it->second.losses;
}

}  // namespace hdc::coordination
