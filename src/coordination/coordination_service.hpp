// CoordinationService — fleet-level arbitration of dialogue outcomes and
// the granted-space hand-off to the orchard mission planner.
//
//   InteractionService 0 ─┐ DialogueListener (events/transitions/outcomes)
//   InteractionService 1 ─┤
//          ...            │ bounded MPSC ring ─> coordination worker
//   InteractionService N ─┘                       │
//                                                 ├─ SessionArbiter: who keeps
//                                                 │  a contended human; losers
//                                                 │  abort + retry backoff
//                                                 ├─ GrantRegistry: per-cell
//                                                 │  space-grant leases
//                                                 v
//                      plan_hint(drone) ──> orchard::MissionController
//                      (seqlock reads — never blocks the worker)
//
// This closes the last vertical gap of the stack: perceive -> decide ->
// acknowledge -> COORDINATE -> plan. Design points, mirroring how
// InteractionService layered on PerceptionService:
//   - All fleet logic runs on ONE worker behind a bounded ring, fed by the
//     dialogue workers of any number of bound InteractionServices (MPSC).
//     Arbiter and registry writer state need no locks.
//   - Time is the fleet clock: the max frame sequence observed across all
//     streams (streams advance in near-lockstep; grant TTLs and retry
//     backoffs live in this domain, no wall clock anywhere).
//   - Aborts issued to losing drones go through the owning
//     InteractionService's NON-BLOCKING try_abort_stream(): the dialogue
//     worker feeds our ring and we feed its ring, so a blocking push on
//     either side could deadlock the pair. A refused abort is retried
//     before each subsequent event.
//   - plan_hint()/grant() read the registry's per-cell seqlocks: mission
//     planning threads never block the worker, the worker never waits for
//     them.
//
// Shutdown order: stop the PerceptionService(s) first (no new frames),
// then the InteractionService(s) (no new listener events), then this
// service. stop() is idempotent and the destructor calls it; with all
// three layers stopped, destruction order is free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "coordination/fleet_types.hpp"
#include "coordination/grant_registry.hpp"
#include "coordination/session_arbiter.hpp"
#include "interaction/interaction_service.hpp"
#include "orchard/mission.hpp"
#include "util/pending_counter.hpp"
#include "util/ring_buffer.hpp"

namespace hdc::coordination {

struct CoordinationConfig {
  std::size_t cells{64};            ///< orchard cell count (tree ids 0..cells-1)
  std::uint64_t grant_ttl{600};     ///< lease length, fleet-clock frames
  std::size_t queue_capacity{1024}; ///< fleet-event ring slots
  ArbitrationPolicy arbitration{};
  /// Optional telemetry registry (must outlive the service). When set, the
  /// worker records the arbitrate span, event/arbitration/deferral
  /// counters and the ring-depth gauge, and the GrantRegistry is
  /// instrumented with its grant/renew/expire spans + mutation counters.
  telemetry::MetricsRegistry* metrics{nullptr};
  /// Optional causal tracing (must outlive the service). When set, the
  /// worker emits arbitrate spans and grant-update events carrying the
  /// triggering (drone_id, sequence) trace identity. Null = disarmed.
  telemetry::FlightRecorder* recorder{nullptr};
};

/// Aggregate counters (relaxed atomics: exact after drain()).
struct CoordinationStats {
  std::uint64_t events{0};           ///< fleet events processed
  std::uint64_t arbitrations{0};     ///< contention decisions made
  std::uint64_t deferrals{0};        ///< retries refused inside a backoff
  std::uint64_t aborts_issued{0};    ///< aborts delivered to losing streams
  std::uint64_t aborts_deferred{0};  ///< non-blocking abort refused, queued for retry
  std::uint64_t unknown_drone_events{0};  ///< outcomes/events from unregistered drones
};

class CoordinationService {
 public:
  enum class EventKind : std::uint8_t {
    kRegister = 0,
    kBattery,
    kTransition,
    kOutcome,
    kSignEvent,
    kTick,
  };

  /// One fleet event. Small tagged struct instead of a variant: the ring
  /// copies it around and every field is trivially copyable. Public (with
  /// EventKind) because the event journal records these verbatim — a
  /// FleetEvent IS the coordination worker's replayable input unit.
  struct FleetEvent {
    EventKind kind{EventKind::kTransition};
    std::uint32_t drone_id{0};
    std::uint64_t sequence{0};
    interaction::InteractionService* source{nullptr};  ///< kTransition only
    interaction::DialogueState to{interaction::DialogueState::kIdle};
    protocol::Outcome outcome{protocol::Outcome::kPending};
    signs::HumanSign label{signs::HumanSign::kNeutral};
    interaction::SignEventKind event_kind{interaction::SignEventKind::kBegin};
    DroneDescriptor descriptor{};  ///< kRegister only
    double battery_soc{1.0};       ///< kBattery only
  };

  /// Observes every registry mutation (grant/deny/revoke/renew + refused
  /// conflicting grants) on the coordination worker. Benches timestamp
  /// outcome -> grant-visible with this. Must not re-enter the service.
  using RegistryObserver = std::function<void(const GrantUpdate&)>;

  /// Observes every fleet event at the head of process(), on the
  /// coordination worker — i.e. in the exact order the single worker
  /// consumed them, which is the order a replay must re-feed them in.
  /// The journal recorder hangs off this. Must not re-enter the service.
  using EventTap = std::function<void(const FleetEvent&)>;

  explicit CoordinationService(CoordinationConfig config = {});
  ~CoordinationService();

  CoordinationService(const CoordinationService&) = delete;
  CoordinationService& operator=(const CoordinationService&) = delete;

  /// Installs this service as `dialogue`'s DialogueListener and remembers
  /// the service for abort routing. Call once per InteractionService,
  /// before streaming. The InteractionService must outlive streaming (see
  /// the shutdown order in the header comment).
  void bind(interaction::InteractionService& dialogue);

  /// Registers a drone (ordered with the event stream; a drone may be
  /// registered before or during streaming, and re-registered to move
  /// cell/human). Grants key on descriptor.cell; contention keys on
  /// descriptor.human_id.
  void register_drone(const DroneDescriptor& descriptor);

  /// Battery update (arbitration input), ordered with the event stream.
  void update_battery(std::uint32_t drone_id, double soc);

  /// Advances the fleet clock to at least `sequence` (ordered with the
  /// event stream). The clock normally rides the frame sequences carried
  /// by events, but a quiet fleet (granted space, everyone idle) emits no
  /// events — mission drivers pump this so grant TTLs still run out.
  void tick(std::uint64_t sequence);

  // --- direct admission (what bind()'s wrappers call; public so tests
  // and exotic wirings can feed events without an InteractionService) ---
  void admit_transition(interaction::InteractionService* source,
                        const interaction::AckAction& action);
  void admit_outcome(const protocol::OutcomeRecord& record);
  void admit_sign_event(const interaction::SignEvent& event);

  void set_registry_observer(RegistryObserver observer);  ///< set before streaming
  void set_event_tap(EventTap tap);  ///< set before streaming

  /// Admits a recorded fleet event verbatim (the replay path). kTransition
  /// events are admitted without a source — arbitration aborts are logged
  /// but not delivered, because during replay abort EFFECTS arrive as the
  /// recorded abort observations of the interaction layer.
  void admit_recorded(const FleetEvent& event);

  /// Blocks until every event admitted before the call is processed
  /// (PendingCounter checkpoint contract, as everywhere in this codebase).
  void drain();

  /// Graceful shutdown: drains the ring, joins the worker. Idempotent.
  void stop() noexcept;

  // --- read side ---------------------------------------------------------

  /// The mission planner's view for one drone: cells it currently holds a
  /// live grant on, and cells every drone must keep clear of (denied or
  /// revoked). Seqlock reads — safe from any thread, never blocks the
  /// worker.
  [[nodiscard]] orchard::PlanHint plan_hint(std::uint32_t drone_id) const;

  /// One cell's grant slot (seqlock read; throws std::out_of_range).
  [[nodiscard]] GrantRecord grant(int cell) const { return registry_.read(cell); }

  [[nodiscard]] std::uint64_t fleet_clock() const noexcept {
    return fleet_clock_.load(std::memory_order_acquire);
  }
  [[nodiscard]] CoordinationStats stats() const noexcept;
  [[nodiscard]] RegistryStats registry_stats() const noexcept {
    return registry_.stats();
  }
  /// Every arbitration decision so far, in decision order (mutex-guarded
  /// copy; the scripted scenarios assert exact expected outcomes on this).
  [[nodiscard]] std::vector<ArbitrationDecision> arbitration_log() const;
  [[nodiscard]] const CoordinationConfig& config() const noexcept {
    return config_;
  }

 private:
  void admit(FleetEvent event);
  void worker_loop();
  void process(const FleetEvent& event);
  void handle_transition(const FleetEvent& event);
  void handle_outcome(const FleetEvent& event, std::uint64_t now);
  void handle_sign_event(const FleetEvent& event, std::uint64_t now);
  void issue_abort(interaction::InteractionService* source,
                   std::uint32_t stream_id);
  void flush_pending_aborts();
  void observe(const GrantUpdate& update);
  [[nodiscard]] std::uint64_t advance_clock(std::uint64_t sequence);

  CoordinationConfig config_;
  util::BoundedRing<FleetEvent> ring_;
  GrantRegistry registry_;

  // --- worker-owned state (no locks needed) ---
  SessionArbiter arbiter_;
  std::unordered_map<std::uint32_t, DroneDescriptor> drones_;
  /// Which InteractionService produced each drone's transitions (abort
  /// routing); learned from the transition stream.
  std::unordered_map<std::uint32_t, interaction::InteractionService*> sources_;
  std::vector<std::pair<interaction::InteractionService*, std::uint32_t>>
      pending_aborts_;
  SessionArbiter::Decisions decisions_scratch_;

  RegistryObserver registry_observer_;
  EventTap event_tap_;

  mutable std::mutex log_mutex_;
  std::vector<ArbitrationDecision> arbitration_log_;

  // Telemetry handles (disarmed when config_.metrics is null). All except
  // queue_depth_ are driven only by the single coordination worker, so
  // their totals are replay-deterministic (telemetry/stage_names.hpp).
  telemetry::Histogram arbitrate_ns_;
  telemetry::Counter events_counter_;
  telemetry::Counter arbitrations_counter_;
  telemetry::Counter deferrals_counter_;
  telemetry::Gauge queue_depth_;
  telemetry::FlightRecorder* recorder_{nullptr};

  std::atomic<std::uint64_t> fleet_clock_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> arbitrations_{0};
  std::atomic<std::uint64_t> deferrals_{0};
  std::atomic<std::uint64_t> aborts_issued_{0};
  std::atomic<std::uint64_t> aborts_deferred_{0};
  std::atomic<std::uint64_t> unknown_drone_events_{0};

  util::PendingCounter pending_;

  std::atomic<bool> stopping_{false};
  bool stopped_{false};  ///< guarded by stop_mutex_
  std::mutex stop_mutex_;
  std::thread worker_;
};

}  // namespace hdc::coordination
