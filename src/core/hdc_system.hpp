// HdcSystem — the public facade of the HDC library.
//
// Ties the paper's pieces together behind one object:
//   - drone -> human signalling: LED ring semantics + flight patterns
//     (delegated to hdc::drone)
//   - human -> drone signalling: the SAX marshalling-sign recogniser
//   - the geometry bridge between world state and camera frames
// plus CameraSignChannel, the full-fidelity perception channel that renders
// the actual scene and runs the recogniser — the orchard simulation and the
// integration tests plug it straight into the protocol FSMs.
#pragma once

#include <functional>
#include <optional>

#include "protocol/channels.hpp"
#include "recognition/recognizer.hpp"
#include "signs/scene.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace hdc::core {

/// Library version.
inline constexpr const char* kVersion = "1.0.0";

/// Top-level configuration.
struct HdcConfig {
  recognition::RecognizerConfig recognizer{};
  recognition::DatabaseBuildOptions database{};
  signs::RenderOptions camera{};  ///< the camera the drone carries
};

/// World-state inputs needed to render the drone's view of a signaller.
struct PerceptionScene {
  util::Vec3 drone_position{};
  util::Vec2 human_position{};
  double human_facing_rad{0.0};  ///< world yaw of the human's facing direction
};

/// Computes the paper's experiment coordinates (altitude / horizontal
/// distance / relative azimuth) from world positions. The relative azimuth
/// is the angle between the human's facing direction and the human->drone
/// ground direction.
[[nodiscard]] signs::ViewGeometry view_geometry_from(const PerceptionScene& scene);

class HdcSystem {
 public:
  explicit HdcSystem(const HdcConfig& config = {});

  /// Recognises a sign in an externally supplied camera frame.
  [[nodiscard]] recognition::RecognitionResult recognize(
      const imaging::GrayImage& frame) const {
    return recognizer_.recognize(frame);
  }

  /// Renders what the drone camera sees of `pose` in `scene` and runs the
  /// recogniser on it. `rng` drives sensor noise when the camera options
  /// request it.
  [[nodiscard]] recognition::RecognitionResult perceive(const PerceptionScene& scene,
                                                        const signs::BodyPose& pose,
                                                        util::Rng* rng = nullptr) const;

  [[nodiscard]] const recognition::SaxSignRecognizer& recognizer() const noexcept {
    return recognizer_;
  }
  [[nodiscard]] const HdcConfig& config() const noexcept { return config_; }

 private:
  HdcConfig config_;
  recognition::SaxSignRecognizer recognizer_;
};

/// Full-fidelity sign channel: renders the signaller with the pose the
/// human is actually executing (jitter included) at the current scene
/// geometry and reports what the recogniser accepts. The world loop updates
/// the context every tick via set_context()/set_pose_sampler().
class CameraSignChannel final : public protocol::SignChannel {
 public:
  using PoseSampler = std::function<signs::BodyPose(signs::HumanSign)>;

  CameraSignChannel(const HdcSystem& system, std::uint64_t seed)
      : system_(system), rng_(seed) {}

  void set_context(const PerceptionScene& scene) { scene_ = scene; }

  /// Installs the sampler that turns the ground-truth sign into the body
  /// pose the human actually holds (role-specific jitter). Defaults to the
  /// canonical pose.
  void set_pose_sampler(PoseSampler sampler) { sampler_ = std::move(sampler); }

  [[nodiscard]] std::optional<signs::HumanSign> sense(signs::HumanSign actual) override;

  /// Count of frames processed (for bench reporting).
  [[nodiscard]] std::uint64_t frames() const noexcept { return frames_; }

 private:
  const HdcSystem& system_;
  util::Rng rng_;
  PerceptionScene scene_{};
  PoseSampler sampler_;
  std::uint64_t frames_{0};
};

}  // namespace hdc::core
