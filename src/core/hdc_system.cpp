#include "core/hdc_system.hpp"

#include <cmath>

#include "signs/sign_poses.hpp"

namespace hdc::core {

signs::ViewGeometry view_geometry_from(const PerceptionScene& scene) {
  signs::ViewGeometry view;
  view.altitude_m = scene.drone_position.z;
  const util::Vec2 to_drone = scene.drone_position.xy() - scene.human_position;
  view.distance_m = to_drone.norm();
  const double bearing = std::atan2(to_drone.y, to_drone.x);
  view.relative_azimuth_deg =
      util::rad_to_deg(util::wrap_angle(bearing - scene.human_facing_rad));
  return view;
}

HdcSystem::HdcSystem(const HdcConfig& config)
    : config_([&] {
        HdcConfig c = config;
        c.database.render = c.camera;  // the DB must match the carried camera
        return c;
      }()),
      recognizer_(config_.recognizer, config_.database) {}

recognition::RecognitionResult HdcSystem::perceive(const PerceptionScene& scene,
                                                   const signs::BodyPose& pose,
                                                   util::Rng* rng) const {
  const signs::ViewGeometry view = view_geometry_from(scene);
  const imaging::GrayImage frame =
      signs::render_scene(pose, signs::BodyDimensions{}, view, config_.camera, rng);
  return recognizer_.recognize(frame);
}

std::optional<signs::HumanSign> CameraSignChannel::sense(signs::HumanSign actual) {
  ++frames_;
  const signs::BodyPose pose =
      sampler_ ? sampler_(actual) : signs::canonical_pose(actual);
  const recognition::RecognitionResult result = system_.perceive(scene_, pose, &rng_);
  if (!result.accepted) return std::nullopt;
  return result.sign;
}

}  // namespace hdc::core
