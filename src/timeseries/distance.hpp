// Distance measures between raw series: Euclidean, windowed DTW, and the
// circular-shift (rotation-invariant) variants needed for closed-contour
// signatures.
#pragma once

#include <cstddef>

#include "timeseries/series.hpp"

namespace hdc::timeseries {

/// Euclidean (L2) distance; series must have equal length.
[[nodiscard]] double euclidean(const Series& a, const Series& b);

/// Squared Euclidean distance (avoids the final sqrt in inner loops).
[[nodiscard]] double euclidean_sq(const Series& a, const Series& b);

/// Minimum Euclidean distance over all circular rotations of `b`.
/// O(n^2); fine for the signature lengths used here (n <= 512).
/// Writes the best rotation to `best_shift` when non-null.
[[nodiscard]] double euclidean_rotation_invariant(const Series& a, const Series& b,
                                                  std::size_t* best_shift = nullptr);

/// Dynamic time warping with a Sakoe-Chiba band of half-width `window`
/// (window >= max(|a|,|b|) degenerates to full DTW). Both series must be
/// non-empty. Euclidean point cost.
[[nodiscard]] double dtw(const Series& a, const Series& b, std::size_t window);

/// Pearson correlation coefficient in [-1, 1]; 0 when either side is flat.
[[nodiscard]] double pearson_correlation(const Series& a, const Series& b);

}  // namespace hdc::timeseries
