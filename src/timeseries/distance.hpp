// Distance measures between raw series: Euclidean, windowed DTW, and the
// circular-shift (rotation-invariant) variants needed for closed-contour
// signatures.
//
// The rotation-invariant scan is the recognition hot spot (streams x
// templates x O(n^2) per pair), so it ships as a vectorisable kernel built
// on two ideas:
//
//   1. A doubled-template buffer (the template concatenated with itself,
//      RotationTemplate) turns every circular rotation of b into a plain
//      contiguous slice `doubled[k .. k+n)`, killing the `% n` in the inner
//      loop.
//   2. The identity  d_k^2 = sum(a^2) + sum(b^2) - 2 * dot(a, b rotated k)
//      shows the only k-dependent term is the dot product, so minimising
//      d_k is exactly maximising dot(a, doubled + k): the scan becomes n
//      straight-line dot products that auto-vectorise (4-accumulator
//      unroll; AVX2/NEON intrinsics when HDC_SIMD is on and the target
//      supports them — see rotation_kernel()).
//
// The distance actually *returned* is recomputed at the winning shift with
// the direct sum-of-squared-differences form: the identity form loses
// precision near zero (catastrophic cancellation turns an exact 0 into
// ~sqrt(eps)), and a query matching its own template must report exactly 0.
// The refine pass is O(n) against the O(n^2) scan, so it is free.
//
// Reassociated floating-point sums are not bit-identical to the historical
// scalar loop, so that loop is kept as euclidean_rotation_invariant_reference
// and the kernel is pinned against it (identical best shift, distance within
// 1e-9) in tests/timeseries_distance_test.cpp and in the
// bench_distance_micro identity gate.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "timeseries/series.hpp"

namespace hdc::timeseries {

/// Euclidean (L2) distance in the units of the series values; series must
/// have equal length. O(n), no allocation.
[[nodiscard]] double euclidean(const Series& a, const Series& b);

/// Squared Euclidean distance (avoids the final sqrt in inner loops).
/// O(n), no allocation.
[[nodiscard]] double euclidean_sq(const Series& a, const Series& b);

/// Precomputed matching form of one rotation template: the series
/// concatenated with itself, so the slice `doubled[k .. k + length)` IS the
/// series rotated left by k — no modulo indexing. Build once per stored
/// template (SignDatabase::add_template does this), reuse for every query.
/// The buffer is 2n doubles; treat as immutable once built.
struct RotationTemplate {
  Series doubled;         ///< template values twice over, size == 2 * length
  std::size_t length{0};  ///< n of the original series

  // --- quantised pre-filter form (rotation_block.hpp engine) ------------
  // Filled by make_rotation_template when 0 < length <= the engine's
  // pre-filter cap and the series is not identically zero; q_doubled stays
  // empty otherwise and the engine falls back to the dense float scan.
  std::vector<std::int16_t> q_doubled;  ///< quantised doubled buffer, size 2 * length
  double quant_scale{0.0};   ///< value = quant_scale * q; 0 = pre-filter unavailable
  std::int64_t q_int_abs{0};  ///< sum |q_doubled[0..length)| (exact integer)
  double abs_sum{0.0};       ///< sum |values| over one period
  double sum_sq{0.0};        ///< sum values^2 over one period
  double max_abs{0.0};       ///< max |value|

  // --- FFT long-signature form ------------------------------------------
  // Forward FFT of the doubled buffer zero-padded to next_pow2(2 * length).
  // Built when length >= rotation_fft_crossover() (or on request); empty
  // otherwise.
  std::vector<std::complex<double>> spectrum;
};

/// Builds the doubled form of `b` plus the quantised pre-filter fields; the
/// FFT spectrum is built iff b.size() >= rotation_fft_crossover(). O(n)
/// copies (plus one O(M log M) transform when the spectrum is built).
[[nodiscard]] RotationTemplate make_rotation_template(const Series& b);

/// make_rotation_template into `out` (resized in place, allocation-free
/// once warm); identical to the allocating version, which delegates here.
/// `out.doubled` must not alias `b`.
void make_rotation_template_into(const Series& b, RotationTemplate& out);

/// As above but with the spectrum decision forced instead of taken from
/// rotation_fft_crossover() — bench and tests use this to exercise the FFT
/// path at short lengths (and to skip the spectrum at long ones).
void make_rotation_template_into(const Series& b, RotationTemplate& out,
                                 bool with_spectrum);

/// One template's best rotation against a query.
struct RotationMatch {
  double distance{0.0};   ///< rotation-invariant Euclidean distance
  std::size_t shift{0};   ///< rotation of the template at the minimum
};

/// Minimum Euclidean distance over all circular rotations of `b`.
/// O(n^2) multiply-adds but straight-line and vectorised — the fast path
/// for signature matching. Writes the best rotation to `best_shift` when
/// non-null; exact ties resolve to the lowest shift, matching the
/// reference. Throws std::invalid_argument when a.size() != b.length.
/// No allocation.
[[nodiscard]] double euclidean_rotation_invariant(const Series& a,
                                                  const RotationTemplate& b,
                                                  std::size_t* best_shift = nullptr);

/// Convenience overload taking a raw series for `b`: builds the doubled
/// buffer in a thread-local scratch (allocation-free once warm per thread)
/// and runs the kernel above. Same result, same tie-breaking. Hot paths
/// that hold templates should precompute RotationTemplate instead.
[[nodiscard]] double euclidean_rotation_invariant(const Series& a, const Series& b,
                                                  std::size_t* best_shift = nullptr);

/// Batch entry point: scores `count` templates against ONE query in a
/// single call, writing one RotationMatch per template to `out` (caller
/// allocates `count` slots). Each template's result is bit-identical to a
/// standalone euclidean_rotation_invariant(a, *templates[i]) call; the
/// batch form exists so SignDatabase's exact-verify pass makes one call per
/// query, not one per template. Throws std::invalid_argument if any
/// template's length differs from a.size(). No allocation.
void euclidean_rotation_invariant_many(const Series& a,
                                       const RotationTemplate* const* templates,
                                       std::size_t count, RotationMatch* out);

/// The historical scalar scan (modulo indexing + early abandon), kept as
/// the semantic anchor for the vectorised kernel: tests and the
/// bench_distance_micro identity gate pin the kernel against this
/// implementation (same best shift; distance within 1e-9 — reassociated
/// sums are not bit-identical). O(n^2), no allocation.
[[nodiscard]] double euclidean_rotation_invariant_reference(
    const Series& a, const Series& b, std::size_t* best_shift = nullptr);

/// Which inner-loop implementation this build compiled in:
/// "avx2-fma", "neon", or "unrolled-scalar" (4-accumulator, relies on the
/// compiler's baseline auto-vectorisation). Recorded in bench JSON so perf
/// snapshots are comparable across machines.
[[nodiscard]] const char* rotation_kernel() noexcept;

/// Reusable DP rows for dtw_into (two rows of m + 1 doubles). Resized in
/// place, so a scratch that has seen one call of a given |b| performs zero
/// heap allocations on every later call of that length. Never share between
/// concurrent calls.
struct DtwScratch {
  std::vector<double> prev;
  std::vector<double> curr;
};

/// Dynamic time warping with a Sakoe-Chiba band of half-width `window`
/// (window >= max(|a|,|b|) degenerates to full DTW; the band is widened to
/// |n - m| automatically so a path always exists). Both series must be
/// non-empty. Euclidean point cost. O(n * band) time; DP rows live in
/// `scratch`, so loops reusing one scratch run allocation-free once warm.
[[nodiscard]] double dtw_into(const Series& a, const Series& b,
                              std::size_t window, DtwScratch& scratch);

/// Allocation-convenient dtw: delegates to dtw_into with a thread-local
/// scratch (allocation-free once warm per thread). Same result bits. Loops
/// that own their buffers should call dtw_into directly.
[[nodiscard]] double dtw(const Series& a, const Series& b, std::size_t window);

/// Pearson correlation coefficient in [-1, 1]; 0 when either side is flat
/// or shorter than 2. O(n), no allocation.
[[nodiscard]] double pearson_correlation(const Series& a, const Series& b);

}  // namespace hdc::timeseries
