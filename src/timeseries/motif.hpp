// Shape-motif tooling after Xi, Keogh, Wei & Mafra-Neto, "Finding Motifs in
// a Database of Shapes" (paper ref [21]) — the work the authors cite as the
// origin of their shape -> time-series -> SAX approach.
//
// Provides sliding-window subsequence extraction, a SAX-bucketed candidate
// filter, and exact motif confirmation under rotation-invariant Euclidean
// distance. The recognition core does not need motifs to classify signs, but
// the uniqueness study (experiment T-UNIQ) and the sign-database builder use
// them to confirm that each sign's signature is its own best match.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "timeseries/sax.hpp"
#include "timeseries/series.hpp"

namespace hdc::timeseries {

/// A subsequence reference: which source series and where it starts.
struct SubsequenceRef {
  std::size_t series_index{0};
  std::size_t offset{0};
};

/// Extracts all z-normalised sliding windows of `window` points
/// (stride `stride`) from `input`. O(n * window / stride), allocates one
/// Series per window.
[[nodiscard]] std::vector<Series> sliding_windows(const Series& input,
                                                  std::size_t window,
                                                  std::size_t stride = 1);

/// A motif: the pair of series (by index) with the smallest
/// rotation-invariant Euclidean distance, plus that distance.
struct MotifPair {
  std::size_t first{0};
  std::size_t second{0};
  double distance{0.0};
};

/// Finds the closest pair among `candidates` (each already z-normalised and
/// equal-length) under rotation-invariant Euclidean distance. SAX words are
/// used to bucket candidates first so most pairs are pruned by MINDIST
/// before the exact distance is computed. Requires >= 2 candidates.
/// O(c^2) pair visits worst case, each O(w^2) symbolic or O(n^2) exact
/// (the vectorised rotation kernel) — offline tooling, not a hot path.
[[nodiscard]] MotifPair find_closest_pair(const std::vector<Series>& candidates,
                                          const SaxEncoder& encoder);

/// For every candidate, its nearest neighbour index and exact
/// rotation-invariant distance (brute force with MINDIST pruning).
/// Same cost model as find_closest_pair.
struct NearestNeighbour {
  std::size_t index{0};
  double distance{0.0};
};
[[nodiscard]] std::vector<NearestNeighbour> all_nearest_neighbours(
    const std::vector<Series>& candidates, const SaxEncoder& encoder);

/// Groups candidate indices by identical SAX word (the ref-[21] bucketing
/// step). Map key is the SAX text. O(c * (n + w)) encodes.
[[nodiscard]] std::unordered_map<std::string, std::vector<std::size_t>> sax_buckets(
    const std::vector<Series>& candidates, const SaxEncoder& encoder);

}  // namespace hdc::timeseries
