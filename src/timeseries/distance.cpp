#include "timeseries/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace hdc::timeseries {

double euclidean_sq(const Series& a, const Series& b) {
  if (a.size() != b.size()) throw std::invalid_argument("euclidean: size mismatch");
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  return sum_sq;
}

double euclidean(const Series& a, const Series& b) {
  return std::sqrt(euclidean_sq(a, b));
}

double euclidean_rotation_invariant(const Series& a, const Series& b,
                                    std::size_t* best_shift) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("euclidean_rotation_invariant: size mismatch");
  }
  const std::size_t n = a.size();
  if (n == 0) {
    if (best_shift != nullptr) *best_shift = 0;
    return 0.0;
  }
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < n; ++k) {
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[(i + k) % n];
      sum_sq += d * d;
      if (sum_sq >= best) break;  // early abandon
    }
    if (sum_sq < best) {
      best = sum_sq;
      best_k = k;
    }
  }
  if (best_shift != nullptr) *best_shift = best_k;
  return std::sqrt(best);
}

double dtw(const Series& a, const Series& b, std::size_t window) {
  if (a.empty() || b.empty()) throw std::invalid_argument("dtw: empty series");
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // The band must be at least |n - m| wide for a path to exist.
  const std::size_t min_band = n > m ? n - m : m - n;
  const std::size_t band = std::max(window, min_band);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::size_t j_begin = i > band ? i - band : 1;
    const std::size_t j_end = std::min(m, i + band);
    for (std::size_t j = j_begin; j <= j_end; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      const double best_prev = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = cost + best_prev;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double pearson_correlation(const Series& a, const Series& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pearson_correlation: size mismatch");
  }
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace hdc::timeseries
