#include "timeseries/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#if defined(HDC_SIMD) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define HDC_ROTATION_KERNEL_NAME "avx2-fma"
#define HDC_ROTATION_KERNEL_AVX2 1
#elif defined(HDC_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#define HDC_ROTATION_KERNEL_NAME "neon"
#define HDC_ROTATION_KERNEL_NEON 1
#else
#define HDC_ROTATION_KERNEL_NAME "unrolled-scalar"
#endif

namespace hdc::timeseries {

double euclidean_sq(const Series& a, const Series& b) {
  if (a.size() != b.size()) throw std::invalid_argument("euclidean: size mismatch");
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  return sum_sq;
}

double euclidean(const Series& a, const Series& b) {
  return std::sqrt(euclidean_sq(a, b));
}

namespace {

// Inner kernels. Four independent accumulators break the serial-add
// dependency chain so the CPU (and the auto-vectoriser at the SSE2
// baseline) can keep several lanes in flight; the AVX2/NEON variants make
// the vectorisation explicit. All variants reassociate the sum — callers
// that need agreement with strict left-to-right accumulation compare
// against euclidean_rotation_invariant_reference within a tolerance, not
// bitwise.

#if defined(HDC_ROTATION_KERNEL_AVX2)

double dot_n(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12), _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
  }
  const __m256d acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double squared_diff_n(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

#elif defined(HDC_ROTATION_KERNEL_NEON)

double dot_n(const double* a, const double* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc2 = vfmaq_f64(acc2, vld1q_f64(a + i + 4), vld1q_f64(b + i + 4));
    acc3 = vfmaq_f64(acc3, vld1q_f64(a + i + 6), vld1q_f64(b + i + 6));
  }
  for (; i + 2 <= n; i += 2) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
  }
  double sum = vaddvq_f64(vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3)));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double squared_diff_n(const double* a, const double* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d0 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t d1 = vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc0 = vfmaq_f64(acc0, d0, d0);
    acc1 = vfmaq_f64(acc1, d1, d1);
  }
  double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

#else

double dot_n(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double squared_diff_n(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

#endif

// The scan proper. Minimising d_k^2 = sum(a^2) + sum(b^2) - 2 dot_k over k
// is maximising dot_k (the other terms do not depend on k), so the loop is
// n contiguous dot products against the doubled buffer — no modulo, no
// data-dependent branch. The reported distance is recomputed directly at
// the winning shift: the identity form cancels catastrophically near zero,
// and a self-match must report exactly 0. Ties (bit-equal dots) keep the
// lowest shift, same as the reference's strict-improvement rule.
RotationMatch best_rotation(const double* a, const RotationTemplate& t) {
  const std::size_t n = t.length;
  const double* doubled = t.doubled.data();
  double best_dot = -std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double d = dot_n(a, doubled + k, n);
    if (d > best_dot) {
      best_dot = d;
      best_k = k;
    }
  }
  const double sum_sq = squared_diff_n(a, doubled + best_k, n);
  return {std::sqrt(sum_sq), best_k};
}

}  // namespace

const char* rotation_kernel() noexcept { return HDC_ROTATION_KERNEL_NAME; }

void make_rotation_template_into(const Series& b, RotationTemplate& out) {
  const std::size_t n = b.size();
  out.length = n;
  out.doubled.resize(2 * n);
  std::copy(b.begin(), b.end(), out.doubled.begin());
  std::copy(b.begin(), b.end(),
            out.doubled.begin() + static_cast<std::ptrdiff_t>(n));
}

RotationTemplate make_rotation_template(const Series& b) {
  RotationTemplate out;
  make_rotation_template_into(b, out);
  return out;
}

double euclidean_rotation_invariant(const Series& a, const RotationTemplate& b,
                                    std::size_t* best_shift) {
  if (a.size() != b.length) {
    throw std::invalid_argument("euclidean_rotation_invariant: size mismatch");
  }
  if (b.length == 0) {
    if (best_shift != nullptr) *best_shift = 0;
    return 0.0;
  }
  const RotationMatch match = best_rotation(a.data(), b);
  if (best_shift != nullptr) *best_shift = match.shift;
  return match.distance;
}

double euclidean_rotation_invariant(const Series& a, const Series& b,
                                    std::size_t* best_shift) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("euclidean_rotation_invariant: size mismatch");
  }
  thread_local RotationTemplate scratch;
  make_rotation_template_into(b, scratch);
  return euclidean_rotation_invariant(a, scratch, best_shift);
}

void euclidean_rotation_invariant_many(const Series& a,
                                       const RotationTemplate* const* templates,
                                       std::size_t count, RotationMatch* out) {
  for (std::size_t i = 0; i < count; ++i) {
    if (a.size() != templates[i]->length) {
      throw std::invalid_argument(
          "euclidean_rotation_invariant_many: size mismatch");
    }
  }
  const std::size_t n = a.size();
  if (n == 0) {
    for (std::size_t i = 0; i < count; ++i) out[i] = {0.0, 0};
    return;
  }
  const double* query = a.data();
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = best_rotation(query, *templates[i]);
  }
}

double euclidean_rotation_invariant_reference(const Series& a, const Series& b,
                                              std::size_t* best_shift) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("euclidean_rotation_invariant: size mismatch");
  }
  const std::size_t n = a.size();
  if (n == 0) {
    if (best_shift != nullptr) *best_shift = 0;
    return 0.0;
  }
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < n; ++k) {
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[(i + k) % n];
      sum_sq += d * d;
      if (sum_sq >= best) break;  // early abandon
    }
    if (sum_sq < best) {
      best = sum_sq;
      best_k = k;
    }
  }
  if (best_shift != nullptr) *best_shift = best_k;
  return std::sqrt(best);
}

double dtw(const Series& a, const Series& b, std::size_t window) {
  if (a.empty() || b.empty()) throw std::invalid_argument("dtw: empty series");
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // The band must be at least |n - m| wide for a path to exist.
  const std::size_t min_band = n > m ? n - m : m - n;
  const std::size_t band = std::max(window, min_band);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::size_t j_begin = i > band ? i - band : 1;
    const std::size_t j_end = std::min(m, i + band);
    for (std::size_t j = j_begin; j <= j_end; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      const double best_prev = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = cost + best_prev;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double pearson_correlation(const Series& a, const Series& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pearson_correlation: size mismatch");
  }
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace hdc::timeseries
