#include "timeseries/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "timeseries/detail/dot_kernels.hpp"
#include "timeseries/fft.hpp"
#include "timeseries/rotation_block.hpp"

namespace hdc::timeseries {

double euclidean_sq(const Series& a, const Series& b) {
  if (a.size() != b.size()) throw std::invalid_argument("euclidean: size mismatch");
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  return sum_sq;
}

double euclidean(const Series& a, const Series& b) {
  return std::sqrt(euclidean_sq(a, b));
}

namespace {

// Inner kernels live in timeseries/detail/dot_kernels.hpp, shared with the
// blocked engine (rotation_block.cpp) so candidate re-verification there is
// bit-identical to this kernel by construction.
using detail::dot_n;
using detail::squared_diff_n;

// The scan proper. Minimising d_k^2 = sum(a^2) + sum(b^2) - 2 dot_k over k
// is maximising dot_k (the other terms do not depend on k), so the loop is
// n contiguous dot products against the doubled buffer — no modulo, no
// data-dependent branch. The reported distance is recomputed directly at
// the winning shift: the identity form cancels catastrophically near zero,
// and a self-match must report exactly 0. Ties (bit-equal dots) keep the
// lowest shift, same as the reference's strict-improvement rule.
RotationMatch best_rotation(const double* a, const RotationTemplate& t) {
  const std::size_t n = t.length;
  const double* doubled = t.doubled.data();
  double best_dot = -std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double d = dot_n(a, doubled + k, n);
    if (d > best_dot) {
      best_dot = d;
      best_k = k;
    }
  }
  const double sum_sq = squared_diff_n(a, doubled + best_k, n);
  return {std::sqrt(sum_sq), best_k};
}

}  // namespace

const char* rotation_kernel() noexcept { return HDC_ROTATION_KERNEL_NAME; }

void make_rotation_template_into(const Series& b, RotationTemplate& out,
                                 bool with_spectrum) {
  const std::size_t n = b.size();
  out.length = n;
  out.doubled.resize(2 * n);
  std::copy(b.begin(), b.end(), out.doubled.begin());
  std::copy(b.begin(), b.end(),
            out.doubled.begin() + static_cast<std::ptrdiff_t>(n));

  // Quantised pre-filter form. Scalars first (also used by the FFT bound),
  // then the int16 image when the series qualifies.
  out.abs_sum = 0.0;
  out.sum_sq = 0.0;
  out.max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = b[i];
    out.abs_sum += std::abs(v);
    out.sum_sq += v * v;
    out.max_abs = std::max(out.max_abs, std::abs(v));
  }
  out.q_doubled.clear();
  out.quant_scale = 0.0;
  out.q_int_abs = 0;
  if (n > 0 && n <= kQuantPrefilterMaxLength && out.max_abs > 0.0 &&
      std::isfinite(out.max_abs)) {
    out.quant_scale = out.max_abs / static_cast<double>(kQuantRange);
    out.q_doubled.resize(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto q = static_cast<std::int16_t>(
          std::llround(b[i] / out.quant_scale));
      out.q_doubled[i] = q;
      out.q_doubled[i + n] = q;
      out.q_int_abs += std::abs(static_cast<std::int64_t>(q));
    }
  }

  // FFT spectrum of the zero-padded doubled buffer: circular correlation
  // against it yields all n rotation dots with no wraparound because
  // k + i <= 2n - 2 < M for every lag the engine reads.
  out.spectrum.clear();
  if (with_spectrum && n > 0) {
    const std::size_t m = next_pow2(2 * n);
    const FftPlan plan(m);
    out.spectrum.assign(m, {0.0, 0.0});
    for (std::size_t i = 0; i < 2 * n; ++i) out.spectrum[i] = {out.doubled[i], 0.0};
    plan.forward(out.spectrum.data());
  }
}

void make_rotation_template_into(const Series& b, RotationTemplate& out) {
  make_rotation_template_into(b, out, b.size() >= rotation_fft_crossover());
}

RotationTemplate make_rotation_template(const Series& b) {
  RotationTemplate out;
  make_rotation_template_into(b, out);
  return out;
}

double euclidean_rotation_invariant(const Series& a, const RotationTemplate& b,
                                    std::size_t* best_shift) {
  if (a.size() != b.length) {
    throw std::invalid_argument("euclidean_rotation_invariant: size mismatch");
  }
  if (b.length == 0) {
    if (best_shift != nullptr) *best_shift = 0;
    return 0.0;
  }
  const RotationMatch match = best_rotation(a.data(), b);
  if (best_shift != nullptr) *best_shift = match.shift;
  return match.distance;
}

double euclidean_rotation_invariant(const Series& a, const Series& b,
                                    std::size_t* best_shift) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("euclidean_rotation_invariant: size mismatch");
  }
  thread_local RotationTemplate scratch;
  make_rotation_template_into(b, scratch);
  return euclidean_rotation_invariant(a, scratch, best_shift);
}

void euclidean_rotation_invariant_many(const Series& a,
                                       const RotationTemplate* const* templates,
                                       std::size_t count, RotationMatch* out) {
  for (std::size_t i = 0; i < count; ++i) {
    if (a.size() != templates[i]->length) {
      throw std::invalid_argument(
          "euclidean_rotation_invariant_many: size mismatch");
    }
  }
  if (count == 0) return;
  // Below the auto-quantisation length the engine would run the same dense
  // float scan the single kernel runs, but still pay its per-call setup
  // (query quantisation, scratch, dispatch) — a measured ~7% at n=32 with
  // one query amortising it over few pairs. Loop the single kernel instead:
  // bit-identical by definition, and never slower than it.
  if (a.size() < kQuantAutoMinLength) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = best_rotation(a.data(), *templates[i]);
    }
    return;
  }
  // One-query block through the engine: the quantised (or FFT) bound scan
  // plus exact candidate re-verify keeps every cell bit-identical to a
  // standalone single-query call while running the bulk of the work in the
  // int16 kernel — this is what makes the batch entry FASTER than looping
  // the single kernel, not just equal to it.
  thread_local RotationBlockScratch scratch;
  const Series* queries[1] = {&a};
  euclidean_rotation_invariant_block(queries, 1, templates, count, scratch,
                                     out);
}

double euclidean_rotation_invariant_reference(const Series& a, const Series& b,
                                              std::size_t* best_shift) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("euclidean_rotation_invariant: size mismatch");
  }
  const std::size_t n = a.size();
  if (n == 0) {
    if (best_shift != nullptr) *best_shift = 0;
    return 0.0;
  }
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < n; ++k) {
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[(i + k) % n];
      sum_sq += d * d;
      if (sum_sq >= best) break;  // early abandon
    }
    if (sum_sq < best) {
      best = sum_sq;
      best_k = k;
    }
  }
  if (best_shift != nullptr) *best_shift = best_k;
  return std::sqrt(best);
}

double dtw_into(const Series& a, const Series& b, std::size_t window,
                DtwScratch& scratch) {
  if (a.empty() || b.empty()) throw std::invalid_argument("dtw: empty series");
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // The band must be at least |n - m| wide for a path to exist.
  const std::size_t min_band = n > m ? n - m : m - n;
  const std::size_t band = std::max(window, min_band);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double>& prev = scratch.prev;
  std::vector<double>& curr = scratch.curr;
  prev.assign(m + 1, kInf);
  curr.assign(m + 1, kInf);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::size_t j_begin = i > band ? i - band : 1;
    const std::size_t j_end = std::min(m, i + band);
    for (std::size_t j = j_begin; j <= j_end; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      const double best_prev = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = cost + best_prev;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double dtw(const Series& a, const Series& b, std::size_t window) {
  thread_local DtwScratch scratch;
  return dtw_into(a, b, window, scratch);
}

double pearson_correlation(const Series& a, const Series& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pearson_correlation: size mismatch");
  }
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace hdc::timeseries
