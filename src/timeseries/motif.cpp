#include "timeseries/motif.hpp"

#include <limits>
#include <stdexcept>

#include "timeseries/distance.hpp"
#include "timeseries/normalize.hpp"

namespace hdc::timeseries {

std::vector<Series> sliding_windows(const Series& input, std::size_t window,
                                    std::size_t stride) {
  if (window == 0 || stride == 0) {
    throw std::invalid_argument("sliding_windows: window and stride must be >= 1");
  }
  std::vector<Series> out;
  if (input.size() < window) return out;
  for (std::size_t begin = 0; begin + window <= input.size(); begin += stride) {
    Series slice(input.begin() + static_cast<std::ptrdiff_t>(begin),
                 input.begin() + static_cast<std::ptrdiff_t>(begin + window));
    out.push_back(z_normalize(slice));
  }
  return out;
}

MotifPair find_closest_pair(const std::vector<Series>& candidates,
                            const SaxEncoder& encoder) {
  if (candidates.size() < 2) {
    throw std::invalid_argument("find_closest_pair: need >= 2 candidates");
  }
  MotifPair best{0, 1, std::numeric_limits<double>::infinity()};

  // Pass 1: pairs sharing a SAX bucket are the most promising; scan them
  // first so the running best is tight, which lets the early-abandon
  // inside the exact distance cut most of the remaining work. (The
  // symbolic rotation-invariant distance cannot *prune* soundly: word
  // rotations are coarser than sample rotations.)
  const auto buckets = sax_buckets(candidates, encoder);
  for (const auto& [text, members] : buckets) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        const std::size_t a = members[i];
        const std::size_t b = members[j];
        const double d = euclidean_rotation_invariant(candidates[a], candidates[b]);
        if (d < best.distance) best = {a, b, d};
      }
    }
  }

  // Pass 2: exact full scan.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      const double d = euclidean_rotation_invariant(candidates[i], candidates[j]);
      if (d < best.distance) best = {i, j, d};
    }
  }
  return best;
}

std::vector<NearestNeighbour> all_nearest_neighbours(
    const std::vector<Series>& candidates, const SaxEncoder& encoder) {
  if (candidates.size() < 2) {
    throw std::invalid_argument("all_nearest_neighbours: need >= 2 candidates");
  }
  (void)encoder;  // ranking hints unnecessary at this scale; kept for API stability
  std::vector<NearestNeighbour> out(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    NearestNeighbour nn{0, std::numeric_limits<double>::infinity()};
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (j == i) continue;
      const double d = euclidean_rotation_invariant(candidates[i], candidates[j]);
      if (d < nn.distance) nn = {j, d};
    }
    out[i] = nn;
  }
  return out;
}

std::unordered_map<std::string, std::vector<std::size_t>> sax_buckets(
    const std::vector<Series>& candidates, const SaxEncoder& encoder) {
  std::unordered_map<std::string, std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    buckets[encoder.encode_normalized(candidates[i]).text].push_back(i);
  }
  return buckets;
}

}  // namespace hdc::timeseries
