#include "timeseries/sax.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "timeseries/normalize.hpp"
#include "timeseries/paa.hpp"

namespace hdc::timeseries {

double inverse_normal_cdf(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("inverse_normal_cdf: p must be in (0, 1)");
  }
  // Acklam's rational approximation with one Halley refinement step.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One step of Halley's method against the true CDF sharpens the tail.
  const double e =
      0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

std::vector<double> sax_breakpoints(std::size_t alphabet) {
  if (alphabet < kMinAlphabet || alphabet > kMaxAlphabet) {
    throw std::invalid_argument("sax_breakpoints: alphabet out of range");
  }
  std::vector<double> breakpoints(alphabet - 1);
  for (std::size_t i = 1; i < alphabet; ++i) {
    breakpoints[i - 1] =
        inverse_normal_cdf(static_cast<double>(i) / static_cast<double>(alphabet));
  }
  return breakpoints;
}

SaxConfig::SaxConfig(std::size_t word_length, std::size_t alphabet)
    : word_length_(word_length),
      alphabet_(alphabet),
      breakpoints_(sax_breakpoints(alphabet)) {
  if (word_length == 0) throw std::invalid_argument("SaxConfig: word_length must be >= 1");
  // Precompute the MINDIST cell table: dist(i, j) = 0 when |i - j| <= 1,
  // otherwise beta_{max(i,j)-1} - beta_{min(i,j)}.
  dist_table_.assign(alphabet * alphabet, 0.0);
  for (std::size_t i = 0; i < alphabet; ++i) {
    for (std::size_t j = 0; j < alphabet; ++j) {
      if (i > j + 1) {
        dist_table_[i * alphabet + j] = breakpoints_[i - 1] - breakpoints_[j];
      } else if (j > i + 1) {
        dist_table_[i * alphabet + j] = breakpoints_[j - 1] - breakpoints_[i];
      }
    }
  }
}

std::size_t SaxConfig::symbol_index(double value) const noexcept {
  // Linear scan is faster than binary search for alphabets <= 20.
  std::size_t index = 0;
  while (index < breakpoints_.size() && value >= breakpoints_[index]) ++index;
  return index;
}

double SaxConfig::cell_distance(std::size_t i, std::size_t j) const noexcept {
  return dist_table_[i * alphabet_ + j];
}

SaxWord SaxEncoder::encode(const Series& raw) const {
  return encode_normalized(z_normalize(raw));
}

void SaxEncoder::encode_normalized_into(const Series& normalized, SaxWord& out,
                                        Series& paa_scratch) const {
  out.text.clear();
  out.source_length = normalized.size();
  if (normalized.empty()) return;
  paa_into(normalized, config_.word_length(), paa_scratch);
  out.text.reserve(paa_scratch.size());
  for (double v : paa_scratch) {
    out.text.push_back(SaxConfig::symbol_char(config_.symbol_index(v)));
  }
}

SaxWord SaxEncoder::encode_normalized(const Series& normalized) const {
  SaxWord word;
  Series paa_scratch;
  encode_normalized_into(normalized, word, paa_scratch);
  return word;
}

double SaxEncoder::mindist(const SaxWord& a, const SaxWord& b) const {
  if (a.text.size() != b.text.size()) {
    throw std::invalid_argument("mindist: word length mismatch");
  }
  if (a.text.empty()) return 0.0;
  if (a.source_length != b.source_length) {
    throw std::invalid_argument("mindist: source_length mismatch");
  }
  double sum_sq = 0.0;
  for (std::size_t k = 0; k < a.text.size(); ++k) {
    const auto i = static_cast<std::size_t>(a.text[k] - 'a');
    const auto j = static_cast<std::size_t>(b.text[k] - 'a');
    const double d = config_.cell_distance(i, j);
    sum_sq += d * d;
  }
  const double scale = static_cast<double>(a.source_length) /
                       static_cast<double>(a.text.size());
  return std::sqrt(scale) * std::sqrt(sum_sq);
}

double SaxEncoder::mindist_rotation_invariant(const SaxWord& a, const SaxWord& b,
                                              std::size_t* best_shift) const {
  SaxWord rotated_scratch;
  return mindist_rotation_invariant(a, b, best_shift, rotated_scratch);
}

double SaxEncoder::mindist_rotation_invariant(const SaxWord& a, const SaxWord& b,
                                              std::size_t* best_shift,
                                              SaxWord& rotated_scratch) const {
  if (a.text.size() != b.text.size()) {
    throw std::invalid_argument("mindist_rotation_invariant: word length mismatch");
  }
  const std::size_t w = b.text.size();
  if (w == 0) {
    if (best_shift != nullptr) *best_shift = 0;
    return 0.0;
  }
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  SaxWord& rotated = rotated_scratch;
  rotated = b;
  for (std::size_t k = 0; k < w; ++k) {
    // Build rotation k of b's text.
    for (std::size_t i = 0; i < w; ++i) rotated.text[i] = b.text[(i + k) % w];
    const double d = mindist(a, rotated);
    if (d < best) {
      best = d;
      best_k = k;
    }
  }
  if (best_shift != nullptr) *best_shift = best_k;
  return best;
}

std::size_t SaxEncoder::hamming(const SaxWord& a, const SaxWord& b) {
  if (a.text.size() != b.text.size()) {
    throw std::invalid_argument("hamming: word length mismatch");
  }
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.text.size(); ++i) {
    if (a.text[i] != b.text[i]) ++count;
  }
  return count;
}

}  // namespace hdc::timeseries
