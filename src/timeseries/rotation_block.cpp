#include "timeseries/rotation_block.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "timeseries/detail/dot_kernels.hpp"

namespace hdc::timeseries {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = std::numeric_limits<double>::epsilon();

// One query's quantised image plus the scalars the error bounds need.
// Pointers alias the block scratch; valid for one block call.
struct QueryMeta {
  const double* a{nullptr};
  const std::int16_t* qa{nullptr};
  double scale{0.0};  ///< 0 = quantised form unavailable for this query
  double sum_sq{0.0};
  double abs_sum{0.0};
  double max_abs{0.0};
  std::int64_t int_abs{0};
};

void prepare_query(const double* a, std::size_t n, std::int16_t* qa,
                   QueryMeta& meta, bool quantize) {
  meta.a = a;
  meta.qa = qa;
  meta.scale = 0.0;
  meta.sum_sq = 0.0;
  meta.abs_sum = 0.0;
  meta.max_abs = 0.0;
  meta.int_abs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = a[i];
    meta.abs_sum += std::abs(v);
    meta.sum_sq += v * v;
    meta.max_abs = std::max(meta.max_abs, std::abs(v));
  }
  if (!quantize || n == 0 || n > kQuantPrefilterMaxLength ||
      meta.max_abs <= 0.0 || !std::isfinite(meta.max_abs)) {
    return;
  }
  meta.scale = meta.max_abs / static_cast<double>(kQuantRange);
  for (std::size_t i = 0; i < n; ++i) {
    qa[i] = static_cast<std::int16_t>(std::llround(a[i] / meta.scale));
    meta.int_abs += std::abs(static_cast<std::int64_t>(qa[i]));
  }
}

// Upper-bound slack for the quantised dot: covers (a) the quantisation
// residual — each value sits within half a quantum of its int16 image, and
// a length-n window of the doubled buffer covers each template residue
// exactly once, so the window |q| sum equals the per-period q_int_abs
// regardless of the shift — and (b) the float round-off of the exact
// dot_n kernel the bound must dominate. k-independent, so one value serves
// the whole scan.
double quant_pair_slack(const QueryMeta& q, const RotationTemplate& t,
                        std::size_t n) {
  const double ss = q.scale * t.quant_scale;
  const double quant =
      ss * (0.5 * static_cast<double>(q.int_abs) +
            0.5 * static_cast<double>(t.q_int_abs) +
            0.25 * static_cast<double>(n));
  const double fp = 16.0 * kEps * static_cast<double>(n) *
                    std::min(q.abs_sum * t.max_abs, q.max_abs * t.abs_sum);
  return quant + fp;
}

// The dense float scan, byte-for-byte the same algorithm as the
// single-query kernel's best_rotation (shared detail::dot_n /
// detail::squared_diff_n do the arithmetic): the fallback when neither
// bound path applies to a pair.
RotationMatch full_scan(const double* a, const RotationTemplate& t,
                        RotationBlockStats& st) {
  const std::size_t n = t.length;
  const double* doubled = t.doubled.data();
  double best_dot = -kInf;
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double d = detail::dot_n(a, doubled + k, n);
    if (d > best_dot) {
      best_dot = d;
      best_k = k;
    }
  }
  st.exact_dot_shifts += n;
  const double sum_sq = detail::squared_diff_n(a, doubled + best_k, n);
  return {std::sqrt(sum_sq), best_k};
}

// Candidate re-verify: given a per-shift upper bound ub(k) >= the float
// dot_n value at k, evaluates exactly the shifts whose bound reaches the
// running threshold. Every shift achieving the global float maximum has
// ub(k) >= max >= threshold, so it IS evaluated; the ascending-k loop with
// the strict `>` update then selects the lowest such shift — the same
// winner, bit for bit, as the dense scan above. Skipped shifts satisfy
// dot(k) <= ub(k) < final best, strictly, so no tie is ever lost.
template <typename UpperBound>
RotationMatch verify_candidates(const double* a, const RotationTemplate& t,
                                std::size_t n, std::size_t khat,
                                UpperBound&& ub, RotationBlockStats& st) {
  const double* doubled = t.doubled.data();
  const double seed = detail::dot_n(a, doubled + khat, n);
  ++st.exact_dot_shifts;
  double best_dot = -kInf;
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double threshold = seed > best_dot ? seed : best_dot;
    if (ub(k) < threshold) continue;
    const double d = detail::dot_n(a, doubled + k, n);
    ++st.exact_dot_shifts;
    if (d > best_dot) {
      best_dot = d;
      best_k = k;
    }
  }
  const double sum_sq = detail::squared_diff_n(a, doubled + best_k, n);
  return {std::sqrt(sum_sq), best_k};
}

// Which bound feeds the re-verify for one (query, template) pair.
enum class PairPath { kFull, kQuant, kFft };

PairPath pick_path(RotationScanMode mode, const QueryMeta& q,
                   const RotationTemplate& t, std::size_t n) {
  const bool quant_ok = q.scale > 0.0 && !t.q_doubled.empty();
  switch (mode) {
    case RotationScanMode::kFft:
      if (t.spectrum.empty()) {
        throw std::invalid_argument(
            "rotation block: RotationScanMode::kFft requires templates built "
            "with a spectrum");
      }
      return PairPath::kFft;
    case RotationScanMode::kQuantized:
      return quant_ok ? PairPath::kQuant : PairPath::kFull;
    case RotationScanMode::kAuto:
    default:
      if (!t.spectrum.empty()) return PairPath::kFft;
      if (n < kQuantAutoMinLength) return PairPath::kFull;
      return quant_ok ? PairPath::kQuant : PairPath::kFull;
  }
}

// Everything one block call shares: the resolved shape, per-query metas,
// and the lazily built FFT state.
struct BlockContext {
  std::size_t n{0};
  std::vector<QueryMeta> metas;  // lives here, pointers into scratch
  RotationBlockScratch* scratch{nullptr};
  bool query_spec_valid{false};

  void prepare(const Series* const* queries, std::size_t query_count,
               RotationBlockScratch& s, std::size_t length,
               RotationScanMode mode) {
    n = length;
    scratch = &s;
    s.qa.resize(query_count * n);
    metas.resize(query_count);
    // kAuto below the small-n threshold never consults the quantised form
    // (pick_path routes those pairs to the dense float scan, and kFft pairs
    // use the spectrum), so skip the llround pass — it is pure overhead.
    const bool quantize =
        mode != RotationScanMode::kAuto || n >= kQuantAutoMinLength;
    for (std::size_t qi = 0; qi < query_count; ++qi) {
      prepare_query(queries[qi]->data(), n, s.qa.data() + qi * n, metas[qi],
                    quantize);
    }
  }

  // Builds (or reuses) the plan for M = next_pow2(2n) and transforms the
  // current query. Called once per query before its first FFT pair.
  void build_query_spectrum(const QueryMeta& q) {
    const std::size_t m = next_pow2(2 * n);
    if (!scratch->plan || scratch->plan->size() != m) {
      scratch->plan = std::make_unique<FftPlan>(m);
    }
    scratch->query_spec.assign(m, {0.0, 0.0});
    for (std::size_t i = 0; i < n; ++i) scratch->query_spec[i] = {q.a[i], 0.0};
    scratch->plan->forward(scratch->query_spec.data());
    scratch->corr.resize(m);
    query_spec_valid = true;
  }
};

// FFT bound for one pair: circular cross-correlation against the template
// spectrum approximates all n rotation dots at once; the round-off slack
// makes it a true upper bound for the re-verify step. Returns the bound in
// scratch->corr (real parts) plus the slack and the argmax lag.
struct FftBound {
  double slack{0.0};
  double cmax{-kInf};
  std::size_t khat{0};
};

FftBound fft_bound_scan(BlockContext& ctx, const QueryMeta& q,
                        const RotationTemplate& t) {
  RotationBlockScratch& s = *ctx.scratch;
  const std::size_t m = s.plan->size();
  const std::complex<double>* spec_q = s.query_spec.data();
  const std::complex<double>* spec_t = t.spectrum.data();
  for (std::size_t i = 0; i < m; ++i) {
    s.corr[i] = std::conj(spec_q[i]) * spec_t[i];
  }
  s.plan->inverse(s.corr.data());
  FftBound bound;
  // Empirically the per-lag correlation error is a few eps * ||a|| ||d||;
  // the log2(M) * 64 headroom keeps the bound safe with margin to spare
  // (fuzzed in tests), while staying tight enough that only a handful of
  // shifts survive to the float re-verify.
  bound.slack = 64.0 * kEps * std::log2(static_cast<double>(m)) *
                std::sqrt(q.sum_sq * 2.0 * t.sum_sq + 1.0);
  for (std::size_t k = 0; k < ctx.n; ++k) {
    const double c = s.corr[k].real();
    if (c > bound.cmax) {
      bound.cmax = c;
      bound.khat = k;
    }
  }
  return bound;
}

RotationMatch fft_match(BlockContext& ctx, const QueryMeta& q,
                        const RotationTemplate& t, RotationBlockStats& st) {
  const FftBound bound = fft_bound_scan(ctx, q, t);
  ++st.fft_pairs;
  const std::complex<double>* corr = ctx.scratch->corr.data();
  const double slack = bound.slack;
  return verify_candidates(
      q.a, t, ctx.n, bound.khat,
      [corr, slack](std::size_t k) { return corr[k].real() + slack; }, st);
}

// Quantised bound scan for one query against one / two template panels.
void bound_scan_one(const QueryMeta& q, const RotationTemplate& t,
                    std::size_t n, std::int32_t* out) {
  const std::int16_t* qd = t.q_doubled.data();
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = detail::dot_q_n(q.qa, qd + k, n);
  }
}

void bound_scan_two(const QueryMeta& q, const RotationTemplate& t0,
                    const RotationTemplate& t1, std::size_t n,
                    std::int32_t* out0, std::int32_t* out1) {
  const std::int16_t* qd0 = t0.q_doubled.data();
  const std::int16_t* qd1 = t1.q_doubled.data();
  for (std::size_t k = 0; k < n; ++k) {
    detail::dot_q_n_x2(q.qa, qd0 + k, qd1 + k, n, out0[k], out1[k]);
  }
}

// Quantised-path re-verify with an INTEGER skip threshold: a shift is
// skippable when ss * lane[k] + slack < threshold, i.e. when lane[k] is
// below (threshold - slack) / ss. Mapping the threshold into lane units
// once (re-mapped only on the rare best-dot improvement) turns the per-
// shift test into a single integer compare — no int→double conversion in
// the scan. The floor(x) - 1 bias strictly under-approximates the real
// cut-off, absorbing the division's round-off, so every skip remains
// provably safe; it costs at most a couple of extra candidate evaluations.
RotationMatch verify_candidates_quant(const double* a,
                                      const RotationTemplate& t, std::size_t n,
                                      std::size_t khat,
                                      const std::int32_t* lane, double ss,
                                      double slack, RotationBlockStats& st) {
  const double* doubled = t.doubled.data();
  const double seed = detail::dot_n(a, doubled + khat, n);
  ++st.exact_dot_shifts;
  const auto lane_cutoff = [ss, slack](double threshold) -> std::int64_t {
    const double x = (threshold - slack) / ss;
    if (!(x > -9.0e15) || !(x < 9.0e15)) {
      return std::numeric_limits<std::int64_t>::min();  // degenerate: skip nothing
    }
    return static_cast<std::int64_t>(std::floor(x)) - 1;
  };
  double best_dot = -kInf;
  std::size_t best_k = 0;
  std::int64_t cutoff = lane_cutoff(seed);
  for (std::size_t k = 0; k < n; ++k) {
    if (static_cast<std::int64_t>(lane[k]) < cutoff) continue;
    const double d = detail::dot_n(a, doubled + k, n);
    ++st.exact_dot_shifts;
    if (d > best_dot) {
      best_dot = d;
      best_k = k;
      if (best_dot > seed) cutoff = lane_cutoff(best_dot);
    }
  }
  const double sum_sq = detail::squared_diff_n(a, doubled + best_k, n);
  return {std::sqrt(sum_sq), best_k};
}

RotationMatch quant_match_from_bounds(const QueryMeta& q,
                                      const RotationTemplate& t,
                                      std::size_t n, const std::int32_t* bound,
                                      RotationBlockStats& st) {
  const double ss = q.scale * t.quant_scale;
  const double slack = quant_pair_slack(q, t, n);
  std::int32_t dmax = bound[0];
  std::size_t khat = 0;
  for (std::size_t k = 1; k < n; ++k) {
    if (bound[k] > dmax) {
      dmax = bound[k];
      khat = k;
    }
  }
  return verify_candidates_quant(q.a, t, n, khat, bound, ss, slack, st);
}

// Lower bound on the exact (computed) rotation distance from a bound-scan
// maximum: d^2 >= sum_sq_a + sum_sq_b - 2 * (true max dot), and the true
// max dot is at most upper + slack. The extra fp term dominates the
// round-off of both the squared_diff_n evaluation the exact path performs
// and the scalar sums entering this formula, so lb <= the exact computed
// distance always (the pruning proof obligation).
double distance_lower_bound(double sum_sq_a, double sum_sq_b, double dot_upper,
                            std::size_t n) {
  const double fp = 32.0 * kEps * static_cast<double>(n + 1) *
                    (sum_sq_a + sum_sq_b + 2.0 * std::abs(dot_upper));
  const double lb2 = sum_sq_a + sum_sq_b - 2.0 * dot_upper - fp;
  if (!(lb2 > 0.0)) return 0.0;
  return std::sqrt(lb2) * (1.0 - 4.0 * kEps);
}

std::size_t validate_block(const char* where, const Series* const* queries,
                           std::size_t query_count,
                           const RotationTemplate* const* templates,
                           std::size_t template_count) {
  const std::size_t n = query_count > 0 ? queries[0]->size() : 0;
  for (std::size_t qi = 0; qi < query_count; ++qi) {
    if (queries[qi]->size() != n) {
      throw std::invalid_argument(std::string(where) + ": size mismatch");
    }
  }
  for (std::size_t ti = 0; ti < template_count; ++ti) {
    if (templates[ti]->length != n) {
      throw std::invalid_argument(std::string(where) + ": size mismatch");
    }
  }
  return n;
}

}  // namespace

const char* rotation_prefilter_kernel() noexcept {
  return HDC_PREFILTER_KERNEL_NAME;
}

std::size_t rotation_fft_crossover() noexcept {
  // Measured on the 1-hardware-thread reference container via
  // bench_distance_micro's forced-mode crossover cells (kQuantized vs kFft
  // pairs/sec at n in {512, 1024, ..., 8192}): the SSE2 int16 bound scan
  // wins every length through 4096 (74k vs 13k pairs/s at 512; near-tie by
  // 4096) and the FFT path first wins at 8192 (~550 vs ~310 pairs/s) — the
  // dot-product constants carry much further than the asymptotics suggest.
  // 8192 is also kQuantPrefilterMaxLength (the int32 overflow cap), so the
  // two bound scans hand off exactly where the cheaper one stops being
  // available. See docs/PERFORMANCE.md for the methodology.
  return 8192;
}

void euclidean_rotation_invariant_block(
    const Series* const* queries, std::size_t query_count,
    const RotationTemplate* const* templates, std::size_t template_count,
    RotationBlockScratch& scratch, RotationMatch* out, RotationScanMode mode,
    RotationBlockStats* stats) {
  const std::size_t n = validate_block("euclidean_rotation_invariant_block",
                                       queries, query_count, templates,
                                       template_count);
  if (query_count == 0 || template_count == 0) return;

  RotationBlockStats st;
  st.pairs = query_count * template_count;
  st.total_shifts = st.pairs * n;

  if (n == 0) {
    for (std::size_t i = 0; i < st.pairs; ++i) out[i] = {0.0, 0};
    if (stats != nullptr) {
      stats->pairs += st.pairs;
      stats->total_shifts += st.total_shifts;
    }
    return;
  }

  BlockContext ctx;
  ctx.prepare(queries, query_count, scratch, n, mode);
  scratch.bound0.resize(n);
  scratch.bound1.resize(n);

  for (std::size_t qi = 0; qi < query_count; ++qi) {
    const QueryMeta& q = ctx.metas[qi];
    ctx.query_spec_valid = false;
    RotationMatch* row = out + qi * template_count;
    std::size_t ti = 0;
    while (ti < template_count) {
      const RotationTemplate& t0 = *templates[ti];
      const PairPath p0 = pick_path(mode, q, t0, n);
      if (p0 == PairPath::kQuant && ti + 1 < template_count &&
          pick_path(mode, q, *templates[ti + 1], n) == PairPath::kQuant) {
        const RotationTemplate& t1 = *templates[ti + 1];
        bound_scan_two(q, t0, t1, n, scratch.bound0.data(),
                       scratch.bound1.data());
        row[ti] = quant_match_from_bounds(q, t0, n, scratch.bound0.data(), st);
        row[ti + 1] =
            quant_match_from_bounds(q, t1, n, scratch.bound1.data(), st);
        ti += 2;
        continue;
      }
      switch (p0) {
        case PairPath::kQuant:
          bound_scan_one(q, t0, n, scratch.bound0.data());
          row[ti] = quant_match_from_bounds(q, t0, n, scratch.bound0.data(), st);
          break;
        case PairPath::kFft:
          if (!ctx.query_spec_valid) ctx.build_query_spectrum(q);
          row[ti] = fft_match(ctx, q, t0, st);
          break;
        case PairPath::kFull:
        default:
          row[ti] = full_scan(q.a, t0, st);
          ++st.fullscan_pairs;
          break;
      }
      ++ti;
    }
  }

  if (stats != nullptr) {
    stats->pairs += st.pairs;
    stats->pruned_templates += st.pruned_templates;
    stats->exact_dot_shifts += st.exact_dot_shifts;
    stats->total_shifts += st.total_shifts;
    stats->fft_pairs += st.fft_pairs;
    stats->fullscan_pairs += st.fullscan_pairs;
  }
}

namespace {

// Strict-< best/second update shared by the top-2 reduction — the exact
// rules SignDatabase's hand-rolled ranking loop uses, so the engine's
// output is substitutable bit for bit.
void top2_update(RotationTopMatch& acc, double distance, std::size_t index,
                 std::size_t shift) {
  if (distance < acc.distance) {
    acc.second = acc.distance;
    acc.distance = distance;
    acc.template_index = index;
    acc.shift = shift;
  } else if (distance < acc.second) {
    acc.second = distance;
  }
}

}  // namespace

void rotation_match_top2_block(
    const Series* const* queries, std::size_t query_count,
    const RotationTemplate* const* templates, std::size_t template_count,
    RotationBlockScratch& scratch, RotationTopMatch* out, RotationScanMode mode,
    RotationBlockStats* stats) {
  if (template_count == 0) {
    throw std::invalid_argument("rotation_match_top2_block: no templates");
  }
  const std::size_t n =
      validate_block("rotation_match_top2_block", queries, query_count,
                     templates, template_count);
  if (query_count == 0) return;

  RotationBlockStats st;
  st.pairs = query_count * template_count;
  st.total_shifts = st.pairs * n;

  if (n == 0) {
    for (std::size_t qi = 0; qi < query_count; ++qi) {
      out[qi] = RotationTopMatch{};
      out[qi].distance = 0.0;
      out[qi].template_index = 0;
      out[qi].shift = 0;
      out[qi].second = template_count > 1 ? 0.0 : kInf;
    }
    if (stats != nullptr) {
      stats->pairs += st.pairs;
      stats->total_shifts += st.total_shifts;
    }
    return;
  }

  BlockContext ctx;
  ctx.prepare(queries, query_count, scratch, n, mode);
  scratch.bound0.resize(n);
  scratch.bound1.resize(n);

  for (std::size_t qi = 0; qi < query_count; ++qi) {
    const QueryMeta& q = ctx.metas[qi];
    ctx.query_spec_valid = false;
    RotationTopMatch acc;

    // Scores template `ti` from an already-computed quantised bound lane,
    // pruning it outright when its lower bound proves it cannot displace
    // the current runner-up (and therefore cannot change best, second,
    // index, shift, or margin under the strict-< rules).
    const auto score_quant_lane = [&](std::size_t ti,
                                      const std::int32_t* lane) {
      const RotationTemplate& t = *templates[ti];
      const double ss = q.scale * t.quant_scale;
      const double slack = quant_pair_slack(q, t, n);
      std::int32_t dmax = lane[0];
      std::size_t khat = 0;
      for (std::size_t k = 1; k < n; ++k) {
        if (lane[k] > dmax) {
          dmax = lane[k];
          khat = k;
        }
      }
      const double dot_upper = ss * static_cast<double>(dmax) + slack;
      const double lb = distance_lower_bound(q.sum_sq, t.sum_sq, dot_upper, n);
      if (lb > acc.second) {
        ++st.pruned_templates;
        return;
      }
      const RotationMatch m =
          verify_candidates_quant(q.a, t, n, khat, lane, ss, slack, st);
      top2_update(acc, m.distance, ti, m.shift);
    };

    std::size_t ti = 0;
    while (ti < template_count) {
      const RotationTemplate& t0 = *templates[ti];
      const PairPath p0 = pick_path(mode, q, t0, n);
      if (p0 == PairPath::kQuant && ti + 1 < template_count &&
          pick_path(mode, q, *templates[ti + 1], n) == PairPath::kQuant) {
        bound_scan_two(q, t0, *templates[ti + 1], n, scratch.bound0.data(),
                       scratch.bound1.data());
        score_quant_lane(ti, scratch.bound0.data());
        score_quant_lane(ti + 1, scratch.bound1.data());
        ti += 2;
        continue;
      }
      switch (p0) {
        case PairPath::kQuant:
          bound_scan_one(q, t0, n, scratch.bound0.data());
          score_quant_lane(ti, scratch.bound0.data());
          break;
        case PairPath::kFft: {
          if (!ctx.query_spec_valid) ctx.build_query_spectrum(q);
          const FftBound bound = fft_bound_scan(ctx, q, t0);
          ++st.fft_pairs;
          const double lb = distance_lower_bound(
              q.sum_sq, t0.sum_sq, bound.cmax + bound.slack, n);
          if (lb > acc.second) {
            ++st.pruned_templates;
            break;
          }
          const std::complex<double>* corr = ctx.scratch->corr.data();
          const double slack = bound.slack;
          const RotationMatch m = verify_candidates(
              q.a, t0, n, bound.khat,
              [corr, slack](std::size_t k) { return corr[k].real() + slack; },
              st);
          top2_update(acc, m.distance, ti, m.shift);
          break;
        }
        case PairPath::kFull:
        default: {
          const RotationMatch m = full_scan(q.a, t0, st);
          ++st.fullscan_pairs;
          top2_update(acc, m.distance, ti, m.shift);
          break;
        }
      }
      ++ti;
    }
    out[qi] = acc;
  }

  if (stats != nullptr) {
    stats->pairs += st.pairs;
    stats->pruned_templates += st.pruned_templates;
    stats->exact_dot_shifts += st.exact_dot_shifts;
    stats->total_shifts += st.total_shifts;
    stats->fft_pairs += st.fft_pairs;
    stats->fullscan_pairs += st.fullscan_pairs;
  }
}

double rotation_distance_lower_bound(const Series& a,
                                     const RotationTemplate& t) {
  if (a.size() != t.length) {
    throw std::invalid_argument("rotation_distance_lower_bound: size mismatch");
  }
  const std::size_t n = a.size();
  if (n == 0) return 0.0;
  thread_local RotationBlockScratch scratch;
  scratch.qa.resize(n);
  QueryMeta q;
  prepare_query(a.data(), n, scratch.qa.data(), q, /*quantize=*/true);
  if (q.scale <= 0.0 || t.q_doubled.empty()) return 0.0;
  scratch.bound0.resize(n);
  bound_scan_one(q, t, n, scratch.bound0.data());
  const double ss = q.scale * t.quant_scale;
  const double slack = quant_pair_slack(q, t, n);
  std::int32_t dmax = scratch.bound0[0];
  for (std::size_t k = 1; k < n; ++k) dmax = std::max(dmax, scratch.bound0[k]);
  return distance_lower_bound(q.sum_sq, t.sum_sq,
                              ss * static_cast<double>(dmax) + slack, n);
}

}  // namespace hdc::timeseries
