#include "timeseries/paa.hpp"

#include <cmath>
#include <stdexcept>

namespace hdc::timeseries {

void paa_into(const Series& input, std::size_t segments, Series& out) {
  if (segments == 0) throw std::invalid_argument("paa: segments must be >= 1");
  const std::size_t n = input.size();
  if (n == 0) {
    out.clear();
    return;
  }
  if (segments >= n) {
    out = input;
    return;
  }

  out.assign(segments, 0.0);
  // Fractional-boundary accumulation: sample i covers the index interval
  // [i, i+1); segment s covers [s*n/w, (s+1)*n/w). Each sample's overlap
  // with a segment is added with proportional weight.
  const double seg_len = static_cast<double>(n) / static_cast<double>(segments);
  for (std::size_t s = 0; s < segments; ++s) {
    const double begin = static_cast<double>(s) * seg_len;
    const double end = static_cast<double>(s + 1) * seg_len;
    double sum = 0.0;
    std::size_t i = static_cast<std::size_t>(begin);
    for (; i < n && static_cast<double>(i) < end; ++i) {
      const double lo = std::max(begin, static_cast<double>(i));
      const double hi = std::min(end, static_cast<double>(i + 1));
      if (hi > lo) sum += input[i] * (hi - lo);
    }
    out[s] = sum / seg_len;
  }
}

Series paa(const Series& input, std::size_t segments) {
  Series out;
  paa_into(input, segments, out);
  return out;
}

Series paa_expand(const Series& coefficients, std::size_t target_size) {
  if (coefficients.empty() || target_size == 0) return {};
  Series out(target_size);
  const double seg_len =
      static_cast<double>(target_size) / static_cast<double>(coefficients.size());
  for (std::size_t i = 0; i < target_size; ++i) {
    auto seg = static_cast<std::size_t>(static_cast<double>(i) / seg_len);
    if (seg >= coefficients.size()) seg = coefficients.size() - 1;
    out[i] = coefficients[seg];
  }
  return out;
}

double paa_distance(const Series& a, const Series& b, std::size_t original_length) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("paa_distance: size mismatch");
  }
  if (a.empty()) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum_sq += d * d;
  }
  const double scale =
      static_cast<double>(original_length) / static_cast<double>(a.size());
  return std::sqrt(scale) * std::sqrt(sum_sq);
}

}  // namespace hdc::timeseries
