// Z-normalisation — the "standardising this time series" step of the paper's
// pipeline (Section IV). SAX's Gaussian breakpoints assume the input has
// zero mean and unit variance, so every series is z-normalised before PAA.
#pragma once

#include "timeseries/series.hpp"

namespace hdc::timeseries {

/// Standard-deviation floor below which a series is treated as constant.
/// Normalising a (near-)constant series would amplify numeric noise into
/// arbitrary symbols; such series are mapped to all-zeros instead, the
/// behaviour recommended in the SAX literature.
inline constexpr double kFlatSeriesEpsilon = 1e-9;

/// Returns the z-normalised copy: (x - mean) / stddev (dimensionless
/// output, whatever the input unit), or all zeros when the standard
/// deviation is below kFlatSeriesEpsilon. O(n), allocates the result.
[[nodiscard]] Series z_normalize(const Series& input);

/// z_normalize into `out` (resized in place, allocation-free once warm —
/// the per-query path in SignDatabase relies on this); bit-identical to
/// the allocating version, which delegates here. `out` must not alias
/// `input`. O(n).
void z_normalize_into(const Series& input, Series& out);

/// True if the series is already z-normalised within `tolerance`
/// (|mean| < tolerance and |stddev - 1| < tolerance), or is all-zero flat.
/// O(n), no allocation.
[[nodiscard]] bool is_z_normalized(const Series& input, double tolerance = 1e-6);

/// Min-max scaling to [0, 1]; constant input maps to all 0.5. Used by the
/// baseline recognisers, which do not assume Gaussian-distributed values.
/// O(n), allocates the result.
[[nodiscard]] Series min_max_scale(const Series& input);

}  // namespace hdc::timeseries
