#include "timeseries/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace hdc::timeseries {

std::size_t next_pow2(std::size_t x) noexcept {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

FftPlan::FftPlan(std::size_t m) : m_(m) {
  if (m == 0 || (m & (m - 1)) != 0) {
    throw std::invalid_argument("FftPlan: size must be a power of two >= 1");
  }
  bit_reverse_.resize(m);
  std::size_t log2m = 0;
  while ((std::size_t{1} << log2m) < m) ++log2m;
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t rev = 0;
    for (std::size_t bit = 0; bit < log2m; ++bit) {
      rev = (rev << 1) | ((i >> bit) & 1);
    }
    bit_reverse_[i] = rev;
  }
  twiddles_.resize(m / 2);
  for (std::size_t k = 0; k < m / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(m);
    twiddles_[k] = {std::cos(angle), std::sin(angle)};
  }
}

void FftPlan::transform(std::complex<double>* data) const {
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= m_; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t stride = m_ / len;  // twiddle index step at this stage
    for (std::size_t base = 0; base < m_; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::complex<double> w = twiddles_[k * stride];
        const std::complex<double> odd = data[base + k + half] * w;
        const std::complex<double> even = data[base + k];
        data[base + k] = even + odd;
        data[base + k + half] = even - odd;
      }
    }
  }
}

void FftPlan::forward(std::complex<double>* data) const { transform(data); }

void FftPlan::inverse(std::complex<double>* data) const {
  for (std::size_t i = 0; i < m_; ++i) data[i] = std::conj(data[i]);
  transform(data);
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (std::size_t i = 0; i < m_; ++i) data[i] = std::conj(data[i]) * inv_m;
}

}  // namespace hdc::timeseries
