// Shared inner kernels for the rotation-invariant matching paths.
//
// dot_n / squared_diff_n started life inside distance.cpp's anonymous
// namespace; the blocked multi-query engine (rotation_block.cpp) must score
// candidate shifts with EXACTLY the same floating-point evaluation as the
// single-query kernel — same instruction selection, same accumulator
// splitting, same reduction order — or near-tie shifts could resolve
// differently between the batch and single entry points and break the
// bit-identity contract on euclidean_rotation_invariant_many. Moving the
// kernels into one inline header makes that guarantee structural instead of
// copy-paste discipline.
//
// All variants reassociate the sum (4 independent accumulators); callers
// that need agreement with strict left-to-right accumulation compare
// against euclidean_rotation_invariant_reference within a tolerance, not
// bitwise.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(HDC_SIMD) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define HDC_ROTATION_KERNEL_NAME "avx2-fma"
#define HDC_ROTATION_KERNEL_AVX2 1
#elif defined(HDC_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#define HDC_ROTATION_KERNEL_NAME "neon"
#define HDC_ROTATION_KERNEL_NEON 1
#else
#define HDC_ROTATION_KERNEL_NAME "unrolled-scalar"
#endif

// The int16 bound-scan kernel has its own ISA ladder: SSE2 pmaddwd is part
// of the x86-64 baseline, so the quantised pre-filter vectorises even in
// the portable build where the double kernels fall back to unrolled scalar.
#if defined(HDC_SIMD) && defined(__AVX2__)
#define HDC_PREFILTER_KERNEL_NAME "avx2-madd"
#define HDC_PREFILTER_KERNEL_AVX2 1
#elif defined(HDC_SIMD) && defined(__ARM_NEON)
#define HDC_PREFILTER_KERNEL_NAME "neon-mlal"
#define HDC_PREFILTER_KERNEL_NEON 1
#elif defined(HDC_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#define HDC_PREFILTER_KERNEL_NAME "sse2-madd"
#define HDC_PREFILTER_KERNEL_SSE2 1
#else
#define HDC_PREFILTER_KERNEL_NAME "scalar-int32"
#endif

namespace hdc::timeseries::detail {

#if defined(HDC_ROTATION_KERNEL_AVX2)

inline double dot_n(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8), _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12), _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
  }
  const __m256d acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

inline double squared_diff_n(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

#elif defined(HDC_ROTATION_KERNEL_NEON)

inline double dot_n(const double* a, const double* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc2 = vfmaq_f64(acc2, vld1q_f64(a + i + 4), vld1q_f64(b + i + 4));
    acc3 = vfmaq_f64(acc3, vld1q_f64(a + i + 6), vld1q_f64(b + i + 6));
  }
  for (; i + 2 <= n; i += 2) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
  }
  double sum = vaddvq_f64(vaddq_f64(vaddq_f64(acc0, acc1), vaddq_f64(acc2, acc3)));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

inline double squared_diff_n(const double* a, const double* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d0 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t d1 = vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc0 = vfmaq_f64(acc0, d0, d0);
    acc1 = vfmaq_f64(acc1, d1, d1);
  }
  double sum = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

#else

inline double dot_n(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

inline double squared_diff_n(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

#endif

// Integer dot product of two int16 vectors, accumulated in int32. Exact
// (integer arithmetic is associativity-free), so the bound scan may tile
// and reassociate freely without any bit-identity concern. Safe from
// overflow as long as |values| <= kQuantRange (510) and n <= 8192:
// n * 510 * 510 = 8192 * 260100 < 2^31.
#if defined(HDC_PREFILTER_KERNEL_AVX2)

inline std::int32_t dot_q_n(const std::int16_t* a, const std::int16_t* b,
                            std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int32_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
                     lanes[5] + lanes[6] + lanes[7];
  for (; i < n; ++i)
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return sum;
}

#elif defined(HDC_PREFILTER_KERNEL_NEON)

inline std::int32_t dot_q_n(const std::int16_t* a, const std::int16_t* b,
                            std::size_t n) {
  int32x4_t acc0 = vdupq_n_s32(0);
  int32x4_t acc1 = vdupq_n_s32(0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t va = vld1q_s16(a + i);
    const int16x8_t vb = vld1q_s16(b + i);
    acc0 = vmlal_s16(acc0, vget_low_s16(va), vget_low_s16(vb));
    acc1 = vmlal_s16(acc1, vget_high_s16(va), vget_high_s16(vb));
  }
  std::int32_t sum = vaddvq_s32(vaddq_s32(acc0, acc1));
  for (; i < n; ++i)
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return sum;
}

#elif defined(HDC_PREFILTER_KERNEL_SSE2)

inline std::int32_t dot_q_n(const std::int16_t* a, const std::int16_t* b,
                            std::size_t n) {
  __m128i acc0 = _mm_setzero_si128();
  __m128i acc1 = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i + 8));
    const __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i + 8));
    acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(a0, b0));
    acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(a1, b1));
  }
  for (; i + 8 <= n; i += 8) {
    const __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(a0, b0));
  }
  const __m128i acc = _mm_add_epi32(acc0, acc1);
  alignas(16) std::int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  std::int32_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i)
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return sum;
}

#else

inline std::int32_t dot_q_n(const std::int16_t* a, const std::int16_t* b,
                            std::size_t n) {
  std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
    s1 += static_cast<std::int32_t>(a[i + 1]) * static_cast<std::int32_t>(b[i + 1]);
    s2 += static_cast<std::int32_t>(a[i + 2]) * static_cast<std::int32_t>(b[i + 2]);
    s3 += static_cast<std::int32_t>(a[i + 3]) * static_cast<std::int32_t>(b[i + 3]);
  }
  std::int32_t sum = s0 + s1 + s2 + s3;
  for (; i < n; ++i)
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return sum;
}

#endif

// Register-blocked 1x2 micro-kernel: one quantised query against TWO
// template windows at once. The query vector is loaded into registers once
// per step and multiplied against both panels, halving the dominant load
// traffic of the bound scan — the GEMM move, at the register tile level.
#if defined(HDC_PREFILTER_KERNEL_AVX2)

inline void dot_q_n_x2(const std::int16_t* a, const std::int16_t* b0,
                       const std::int16_t* b1, std::size_t n,
                       std::int32_t& out0, std::int32_t& out1) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b0 + i));
    const __m256i vb1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b1 + i));
    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, vb0));
    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, vb1));
  }
  alignas(32) std::int32_t l0[8];
  alignas(32) std::int32_t l1[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(l0), acc0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(l1), acc1);
  std::int32_t s0 = l0[0] + l0[1] + l0[2] + l0[3] + l0[4] + l0[5] + l0[6] + l0[7];
  std::int32_t s1 = l1[0] + l1[1] + l1[2] + l1[3] + l1[4] + l1[5] + l1[6] + l1[7];
  for (; i < n; ++i) {
    const std::int32_t va = a[i];
    s0 += va * static_cast<std::int32_t>(b0[i]);
    s1 += va * static_cast<std::int32_t>(b1[i]);
  }
  out0 = s0;
  out1 = s1;
}

#elif defined(HDC_PREFILTER_KERNEL_NEON)

inline void dot_q_n_x2(const std::int16_t* a, const std::int16_t* b0,
                       const std::int16_t* b1, std::size_t n,
                       std::int32_t& out0, std::int32_t& out1) {
  int32x4_t acc0 = vdupq_n_s32(0);
  int32x4_t acc1 = vdupq_n_s32(0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t va = vld1q_s16(a + i);
    const int16x8_t vb0 = vld1q_s16(b0 + i);
    const int16x8_t vb1 = vld1q_s16(b1 + i);
    acc0 = vmlal_s16(acc0, vget_low_s16(va), vget_low_s16(vb0));
    acc0 = vmlal_s16(acc0, vget_high_s16(va), vget_high_s16(vb0));
    acc1 = vmlal_s16(acc1, vget_low_s16(va), vget_low_s16(vb1));
    acc1 = vmlal_s16(acc1, vget_high_s16(va), vget_high_s16(vb1));
  }
  std::int32_t s0 = vaddvq_s32(acc0);
  std::int32_t s1 = vaddvq_s32(acc1);
  for (; i < n; ++i) {
    const std::int32_t va = a[i];
    s0 += va * static_cast<std::int32_t>(b0[i]);
    s1 += va * static_cast<std::int32_t>(b1[i]);
  }
  out0 = s0;
  out1 = s1;
}

#elif defined(HDC_PREFILTER_KERNEL_SSE2)

inline void dot_q_n_x2(const std::int16_t* a, const std::int16_t* b0,
                       const std::int16_t* b1, std::size_t n,
                       std::int32_t& out0, std::int32_t& out1) {
  __m128i acc0 = _mm_setzero_si128();
  __m128i acc1 = _mm_setzero_si128();
  __m128i acc2 = _mm_setzero_si128();
  __m128i acc3 = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i + 8));
    acc0 = _mm_add_epi32(
        acc0, _mm_madd_epi16(
                  va, _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + i))));
    acc1 = _mm_add_epi32(
        acc1, _mm_madd_epi16(
                  va, _mm_loadu_si128(reinterpret_cast<const __m128i*>(b1 + i))));
    acc2 = _mm_add_epi32(
        acc2,
        _mm_madd_epi16(
            vc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + i + 8))));
    acc3 = _mm_add_epi32(
        acc3,
        _mm_madd_epi16(
            vc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(b1 + i + 8))));
  }
  for (; i + 8 <= n; i += 8) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + i));
    const __m128i vb1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b1 + i));
    acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(va, vb0));
    acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(va, vb1));
  }
  acc0 = _mm_add_epi32(acc0, acc2);
  acc1 = _mm_add_epi32(acc1, acc3);
  alignas(16) std::int32_t l0[4];
  alignas(16) std::int32_t l1[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(l0), acc0);
  _mm_store_si128(reinterpret_cast<__m128i*>(l1), acc1);
  std::int32_t s0 = l0[0] + l0[1] + l0[2] + l0[3];
  std::int32_t s1 = l1[0] + l1[1] + l1[2] + l1[3];
  for (; i < n; ++i) {
    const std::int32_t va = a[i];
    s0 += va * static_cast<std::int32_t>(b0[i]);
    s1 += va * static_cast<std::int32_t>(b1[i]);
  }
  out0 = s0;
  out1 = s1;
}

#else

inline void dot_q_n_x2(const std::int16_t* a, const std::int16_t* b0,
                       const std::int16_t* b1, std::size_t n,
                       std::int32_t& out0, std::int32_t& out1) {
  std::int32_t s0 = 0, s1 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t va = a[i];
    s0 += va * static_cast<std::int32_t>(b0[i]);
    s1 += va * static_cast<std::int32_t>(b1[i]);
  }
  out0 = s0;
  out1 = s1;
}

#endif

}  // namespace hdc::timeseries::detail
