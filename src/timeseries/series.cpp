#include "timeseries/series.hpp"

#include <algorithm>
#include <cmath>

namespace hdc::timeseries {

Series resample_linear(const Series& input, std::size_t target_size) {
  if (input.empty() || target_size == 0) return {};
  Series out(target_size);
  if (input.size() == 1) {
    std::fill(out.begin(), out.end(), input.front());
    return out;
  }
  if (target_size == 1) {
    out[0] = input.front();
    return out;
  }
  const double step =
      static_cast<double>(input.size() - 1) / static_cast<double>(target_size - 1);
  for (std::size_t i = 0; i < target_size; ++i) {
    const double pos = static_cast<double>(i) * step;
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, input.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = input[lo] + (input[hi] - input[lo]) * frac;
  }
  return out;
}

Series resample_circular(const Series& input, std::size_t target_size) {
  if (input.empty() || target_size == 0) return {};
  Series out(target_size);
  const double step =
      static_cast<double>(input.size()) / static_cast<double>(target_size);
  for (std::size_t i = 0; i < target_size; ++i) {
    const double pos = static_cast<double>(i) * step;
    const auto lo = static_cast<std::size_t>(pos) % input.size();
    const std::size_t hi = (lo + 1) % input.size();
    const double frac = pos - std::floor(pos);
    out[i] = input[lo] + (input[hi] - input[lo]) * frac;
  }
  return out;
}

Series rotate_left(const Series& input, std::size_t shift) {
  if (input.empty()) return {};
  Series out(input.size());
  const std::size_t n = input.size();
  const std::size_t s = shift % n;
  for (std::size_t i = 0; i < n; ++i) out[i] = input[(i + s) % n];
  return out;
}

double mean(const Series& input) {
  if (input.empty()) return 0.0;
  double sum = 0.0;
  for (double v : input) sum += v;
  return sum / static_cast<double>(input.size());
}

double stddev(const Series& input) {
  if (input.size() < 2) return 0.0;
  const double m = mean(input);
  double sum_sq = 0.0;
  for (double v : input) sum_sq += (v - m) * (v - m);
  return std::sqrt(sum_sq / static_cast<double>(input.size()));
}

Series moving_average(const Series& input, std::size_t window) {
  if (window <= 1 || input.empty()) return input;
  const std::size_t half = window / 2;
  Series out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::size_t begin = i >= half ? i - half : 0;
    const std::size_t end = std::min(input.size(), i + half + 1);
    double sum = 0.0;
    for (std::size_t j = begin; j < end; ++j) sum += input[j];
    out[i] = sum / static_cast<double>(end - begin);
  }
  return out;
}

std::size_t argmax(const Series& input) {
  if (input.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(input.begin(), input.end()) - input.begin());
}

std::size_t argmin(const Series& input) {
  if (input.empty()) return 0;
  return static_cast<std::size_t>(
      std::min_element(input.begin(), input.end()) - input.begin());
}

}  // namespace hdc::timeseries
