// Minimal power-of-two complex FFT for the long-signature rotation path.
//
// The blocked matching engine uses circular cross-correlation
// (IFFT(conj(FFT(query)) * FFT(doubled-template))) to approximate all n
// rotation dot products in O(M log M) instead of O(n^2), then re-verifies
// candidate shifts with the exact float kernel. Only forward/inverse
// transforms over pre-sized power-of-two buffers are needed, so this is a
// plain iterative radix-2 Cooley-Tukey with a precomputed plan (bit-reverse
// permutation + twiddle table) — no external dependency, no allocation per
// transform once the plan is built.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace hdc::timeseries {

/// Smallest power of two >= x (x = 0 or 1 -> 1).
[[nodiscard]] std::size_t next_pow2(std::size_t x) noexcept;

/// Precomputed transform plan for one size M (power of two). Immutable
/// after construction; safe to share across threads for concurrent
/// transforms (the work buffers live with the caller).
class FftPlan {
 public:
  /// Builds the bit-reverse permutation and twiddle table for size `m`.
  /// Throws std::invalid_argument unless m is a power of two >= 1.
  explicit FftPlan(std::size_t m);

  [[nodiscard]] std::size_t size() const noexcept { return m_; }

  /// In-place forward DFT of `data` (size() complex values, unscaled).
  void forward(std::complex<double>* data) const;

  /// In-place inverse DFT with the 1/M scale folded in, so
  /// inverse(forward(x)) == x up to round-off. Implemented as
  /// conj(forward(conj(x))) / M over the same twiddle table.
  void inverse(std::complex<double>* data) const;

 private:
  void transform(std::complex<double>* data) const;

  std::size_t m_{1};
  std::vector<std::size_t> bit_reverse_;          // permutation, size m_
  std::vector<std::complex<double>> twiddles_;    // e^{-2πik/m}, size m_/2
};

}  // namespace hdc::timeseries
