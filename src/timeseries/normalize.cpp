#include "timeseries/normalize.hpp"

#include <algorithm>
#include <cmath>

namespace hdc::timeseries {

void z_normalize_into(const Series& input, Series& out) {
  out.clear();
  if (input.empty()) return;
  const double m = mean(input);
  const double sd = stddev(input);
  if (sd < kFlatSeriesEpsilon) {
    out.assign(input.size(), 0.0);
    return;
  }
  out.resize(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) out[i] = (input[i] - m) / sd;
}

Series z_normalize(const Series& input) {
  Series out;
  z_normalize_into(input, out);
  return out;
}

bool is_z_normalized(const Series& input, double tolerance) {
  if (input.empty()) return true;
  const double m = mean(input);
  const double sd = stddev(input);
  if (sd < kFlatSeriesEpsilon) {
    // A flat series is acceptable only if it is the all-zero output of
    // z_normalize itself.
    return std::all_of(input.begin(), input.end(),
                       [tolerance](double v) { return std::abs(v) < tolerance; });
  }
  return std::abs(m) < tolerance && std::abs(sd - 1.0) < tolerance;
}

Series min_max_scale(const Series& input) {
  if (input.empty()) return {};
  const auto [min_it, max_it] = std::minmax_element(input.begin(), input.end());
  const double lo = *min_it;
  const double span = *max_it - lo;
  Series out(input.size());
  if (span < kFlatSeriesEpsilon) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (std::size_t i = 0; i < input.size(); ++i) out[i] = (input[i] - lo) / span;
  return out;
}

}  // namespace hdc::timeseries
