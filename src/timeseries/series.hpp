// Core time-series type and resampling helpers.
//
// The recognition pipeline of the paper converts a 2-D shape into a 1-D
// series (centroid-distance signature) and then processes it with the SAX
// tool chain. A series here is a plain vector of doubles; the functions in
// this header provide the structural operations (resampling, rotation,
// slicing) that the SAX layers build on.
#pragma once

#include <cstddef>
#include <vector>

namespace hdc::timeseries {

/// Values carry whatever unit the producer assigned (the contour signature
/// uses centroid-distance in pixels; after z-normalisation they are
/// dimensionless). All helpers below are O(n) in the input length and
/// allocate only their returned Series.
using Series = std::vector<double>;

/// Resamples `input` to exactly `target_size` points by linear interpolation
/// over the index axis. An empty input yields an empty output; a single
/// point is replicated.
[[nodiscard]] Series resample_linear(const Series& input, std::size_t target_size);

/// Treats `input` as one period of a closed (circular) signal and resamples
/// it to `target_size` points, interpolating across the wrap-around joint.
/// Used for contour signatures, which are inherently periodic.
[[nodiscard]] Series resample_circular(const Series& input, std::size_t target_size);

/// Circularly rotates the series left by `shift` positions
/// (element `shift % size` becomes element 0). The rotation direction
/// matches the shift reported by euclidean_rotation_invariant: rotating the
/// template left by `best_shift` aligns it with the query.
[[nodiscard]] Series rotate_left(const Series& input, std::size_t shift);

/// Arithmetic mean in the series' own unit; 0 for an empty series.
[[nodiscard]] double mean(const Series& input);

/// Population standard deviation (divides by n, not n-1) in the series'
/// own unit; 0 for series shorter than 2.
[[nodiscard]] double stddev(const Series& input);

/// Smooths with a centred moving average of odd window `window` (clamped at
/// the edges). window <= 1 returns the input unchanged. O(n * window).
[[nodiscard]] Series moving_average(const Series& input, std::size_t window);

/// Index of the maximum element (first occurrence); 0 for empty input.
[[nodiscard]] std::size_t argmax(const Series& input);

/// Index of the minimum element (first occurrence); 0 for empty input.
[[nodiscard]] std::size_t argmin(const Series& input);

}  // namespace hdc::timeseries
