// Piecewise Aggregate Approximation (PAA) — the dimensionality-reduction
// step of the paper's pipeline ("apply piecewise aggregation to reduce
// dimensionality", Section IV).
//
// PAA divides a series of length n into w equal segments and replaces each
// segment by its mean. When n is not divisible by w the implementation uses
// fractional segment boundaries (each sample contributes to a segment in
// proportion to its overlap), which keeps the transform exact for any n/w.
#pragma once

#include <cstddef>

#include "timeseries/series.hpp"

namespace hdc::timeseries {

/// Reduces `input` (length n) to `segments` PAA coefficients (same unit as
/// the input; each is a segment mean). Requires segments >= 1; if
/// segments >= n the input is returned unchanged (PAA cannot add
/// information). O(n), allocates the result.
[[nodiscard]] Series paa(const Series& input, std::size_t segments);

/// paa into `out` (resized in place, allocation-free once warm — the SAX
/// encode path in SaxEncoder::encode_normalized_into relies on this);
/// bit-identical to the allocating version, which delegates here. `out`
/// must not alias `input`. O(n).
void paa_into(const Series& input, std::size_t segments, Series& out);

/// Inverse transform for visualisation: expands `coefficients` back to a
/// step function of length `target_size`. O(target_size).
[[nodiscard]] Series paa_expand(const Series& coefficients, std::size_t target_size);

/// Scaled Euclidean distance between two equal-length PAA vectors that
/// lower-bounds the Euclidean distance between the original length-n series:
///   sqrt(n / w) * sqrt(sum_i (a_i - b_i)^2).
/// O(w) for word length w, no allocation.
[[nodiscard]] double paa_distance(const Series& a, const Series& b,
                                  std::size_t original_length);

}  // namespace hdc::timeseries
