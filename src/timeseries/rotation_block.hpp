// Blocked multi-query rotation-invariant matching engine.
//
// The single-query kernel in distance.hpp scores one (query, template) pair
// as n contiguous double dot products. Fleet traffic is Q in-flight queries
// against the same T database templates, which is a (queries x rotations) ·
// templates GEMM-shaped workload. This engine scores the whole Q x T block
// with three cooperating ideas:
//
//   1. Quantised pre-filter (the default). Queries and templates are
//      quantised to int16 (range ±kQuantRange, per-series scale), and the
//      rotation dot scan runs in int32 multiply-accumulate — exact integer
//      arithmetic, 8 lanes per SSE2 `pmaddwd` even in the portable build
//      where the double kernel is scalar. The integer scan yields a rigorous
//      UPPER bound on every float rotation dot (quantisation + float-kernel
//      round-off slack), so only shifts whose bound reaches the running best
//      are re-verified with the exact float kernel (detail::dot_n — the same
//      code the single-query kernel runs, so re-verified values are
//      bit-identical to it). Every shift that could win IS re-verified;
//      selection and distance are therefore bit-identical to the
//      single-query kernel, not merely close.
//
//   2. Register-blocked micro-kernel. The bound scan processes one query
//      against TWO template panels at once (each quantised query window is
//      loaded once and multiplied against both templates), and the panels
//      walk the block in template-major order so a panel stays cache-hot
//      across every query in the tile.
//
//   3. FFT long-signature path. For long signatures the O(n^2) scan loses to
//      circular cross-correlation: IFFT(conj(FFT(a)) * spectrum) gives all n
//      rotation dots in O(M log M), M = next_pow2(2n). The correlation is
//      approximate (float round-off), so the same candidate re-verify step
//      restores bit-identical selection. Templates carry their precomputed
//      spectrum when built at length >= rotation_fft_crossover(); the
//      crossover is measured, not assumed (bench_distance_micro records it —
//      at n = 128 the dot-product constants still win).
//
// The top-2 entry point additionally prunes whole templates: the integer
// bound also yields a LOWER bound on each template's exact rotation
// distance, and a template whose lower bound exceeds the running runner-up
// distance can affect neither the best match, the runner-up, nor the margin
// (strict-< update rules), so its float re-verify is skipped entirely.
// Proof obligation (never drops the true best or second) is enforced by
// property tests in tests/timeseries_block_match_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "timeseries/distance.hpp"
#include "timeseries/fft.hpp"
#include "timeseries/series.hpp"

namespace hdc::timeseries {

/// Quantisation headroom: values map to [-kQuantRange, kQuantRange] so the
/// int32 accumulator cannot overflow for any n <= kQuantPrefilterMaxLength
/// (n * 510^2 < 2^31). Longer series skip the pre-filter (the FFT path
/// covers them long before that).
inline constexpr int kQuantRange = 510;
inline constexpr std::size_t kQuantPrefilterMaxLength = 8192;

/// Below this length RotationScanMode::kAuto skips the quantised bound scan
/// and runs the dense float scan directly: the bound scan is also O(n^2),
/// and at small n its fixed per-shift costs (lane store, cutoff compare)
/// eat the pruning win — measured ~1.0x at n = 32 on this container, i.e.
/// pure overhead plus noise. Forced kQuantized is unaffected (tests
/// exercise the bound machinery at every length through it).
inline constexpr std::size_t kQuantAutoMinLength = 64;

/// Which scan feeds the candidate re-verify step. Selection is about SPEED
/// only — every mode re-verifies candidates with the exact float kernel, so
/// results are bit-identical across modes.
enum class RotationScanMode {
  kAuto,       ///< FFT when the template carries a spectrum, else quantised
               ///< (dense float below kQuantAutoMinLength, where the bound
               ///< scan does not pay)
  kQuantized,  ///< force the int16 bound scan (templates without a
               ///< quantised form fall back to the dense float scan)
  kFft,        ///< force the FFT path; throws if a template has no spectrum
};

/// Work counters for one block call (accumulated into `*stats` when the
/// caller passes one; never reset by the engine). Exposed so bench JSON can
/// record measured prune rates instead of claims.
struct RotationBlockStats {
  std::size_t pairs{0};             ///< (query, template) pairs scored
  std::size_t pruned_templates{0};  ///< pairs skipped whole by the top-2 lower bound
  std::size_t exact_dot_shifts{0};  ///< float dot_n calls spent on candidate re-verify
  std::size_t total_shifts{0};      ///< pairs * n — the full-scan denominator
  std::size_t fft_pairs{0};         ///< pairs whose bound came from the FFT path
  std::size_t fullscan_pairs{0};    ///< pairs that fell back to the dense float scan
};

/// Reusable buffers for one engine-calling thread (quantised query forms,
/// integer bound lanes, FFT plan + spectra). Resized in place; a scratch
/// that has seen one block of a given shape performs zero heap allocations
/// on every later block of that shape. Move-only; never share between
/// concurrently scored blocks.
struct RotationBlockScratch {
  std::vector<std::int16_t> qa;          ///< Q x n quantised queries, row-major
  std::vector<double> q_scale;           ///< per-query quantisation scale (0 = unavailable)
  std::vector<double> q_sum_sq;          ///< per-query sum of squares
  std::vector<double> q_abs_sum;         ///< per-query sum of |values|
  std::vector<double> q_max_abs;         ///< per-query max |value|
  std::vector<std::int64_t> q_int_abs;   ///< per-query sum of |quantised values|
  std::vector<std::int32_t> bound0;      ///< integer dot lanes, template panel 0
  std::vector<std::int32_t> bound1;      ///< integer dot lanes, template panel 1
  std::vector<std::complex<double>> query_spec;  ///< FFT of the current query
  std::vector<std::complex<double>> corr;        ///< correlation work buffer
  std::unique_ptr<FftPlan> plan;                 ///< plan for the current M
};

/// Dense block entry point: scores every query against every template,
/// writing out[q * template_count + t]. Each cell is bit-identical to a
/// standalone euclidean_rotation_invariant(*queries[q], *templates[t])
/// call — same distance bits, same shift, same lowest-shift tie rule.
/// All queries and templates must share one length (mixed lengths throw
/// std::invalid_argument); length 0 yields {0.0, 0} everywhere.
/// Allocation-free once the scratch is warm.
void euclidean_rotation_invariant_block(
    const Series* const* queries, std::size_t query_count,
    const RotationTemplate* const* templates, std::size_t template_count,
    RotationBlockScratch& scratch, RotationMatch* out,
    RotationScanMode mode = RotationScanMode::kAuto,
    RotationBlockStats* stats = nullptr);

/// Best and runner-up template for one query (the shape SignDatabase's
/// exact-verify ranking needs: margin = second - distance).
struct RotationTopMatch {
  double distance{std::numeric_limits<double>::infinity()};
  std::size_t template_index{0};
  std::size_t shift{0};
  /// Runner-up distance; +inf when only one template was scored.
  double second{std::numeric_limits<double>::infinity()};
};

/// Top-2 block entry point: for each query, the best and runner-up template
/// under the same index-order, strict-< update rules as scoring every
/// template with euclidean_rotation_invariant and reducing by hand —
/// bit-identical best/second/index/shift, but templates provably unable to
/// enter the top 2 are pruned by the quantised lower bound before their
/// float re-verify. template_count must be >= 1. Writes out[q].
void rotation_match_top2_block(
    const Series* const* queries, std::size_t query_count,
    const RotationTemplate* const* templates, std::size_t template_count,
    RotationBlockScratch& scratch, RotationTopMatch* out,
    RotationScanMode mode = RotationScanMode::kAuto,
    RotationBlockStats* stats = nullptr);

/// Test hook: the engine's quantised lower bound on the exact
/// rotation-invariant distance between `a` and `t` (0.0 when the pre-filter
/// is unavailable for this pair — zero-signal series or length caps). The
/// pruning proof obligation is exactly `lower_bound <= exact distance`,
/// fuzzed in tests/timeseries_block_match_test.cpp.
[[nodiscard]] double rotation_distance_lower_bound(const Series& a,
                                                   const RotationTemplate& t);

/// Which integer bound-scan implementation this build compiled in:
/// "avx2-madd", "neon-mlal", "sse2-madd", or "scalar-int32". SSE2 is part
/// of the x86-64 baseline, so the pre-filter stays vectorised even when
/// rotation_kernel() reports "unrolled-scalar".
[[nodiscard]] const char* rotation_prefilter_kernel() noexcept;

/// Signature length at and above which make_rotation_template builds the
/// FFT spectrum and RotationScanMode::kAuto prefers the FFT path. Measured
/// on a 1-hardware-thread container via bench_distance_micro's crossover
/// cells (see docs/PERFORMANCE.md for the methodology), not derived from
/// asymptotics.
[[nodiscard]] std::size_t rotation_fft_crossover() noexcept;

}  // namespace hdc::timeseries
