// Symbolic Aggregate approXimation (SAX) — "converting the aggregate to a
// string of characters" (paper Section IV, after Lin/Keogh et al. and the
// shape-motif application of ref [21]).
//
// A z-normalised series is PAA-reduced to w coefficients, then each
// coefficient is mapped to one of `alphabet` symbols using breakpoints that
// divide the standard normal distribution into equiprobable regions. Two SAX
// words can be compared with MINDIST, which lower-bounds the Euclidean
// distance between the original series — the property that makes SAX search
// sound.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "timeseries/series.hpp"

namespace hdc::timeseries {

/// Inclusive bounds accepted for the SAX alphabet size. Symbols are the
/// lowercase letters starting at 'a'.
inline constexpr std::size_t kMinAlphabet = 2;
inline constexpr std::size_t kMaxAlphabet = 20;

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.2e-9). Exposed for tests.
[[nodiscard]] double inverse_normal_cdf(double p);

/// Breakpoints beta_1 < ... < beta_{a-1} that cut N(0,1) into `alphabet`
/// equiprobable regions. Throws std::invalid_argument outside
/// [kMinAlphabet, kMaxAlphabet].
[[nodiscard]] std::vector<double> sax_breakpoints(std::size_t alphabet);

/// Immutable SAX configuration + the derived lookup tables.
class SaxConfig {
 public:
  /// `word_length`: number of PAA segments (paper: tunable, ref [22]).
  /// `alphabet`: alphabet size in [kMinAlphabet, kMaxAlphabet].
  SaxConfig(std::size_t word_length, std::size_t alphabet);

  [[nodiscard]] std::size_t word_length() const noexcept { return word_length_; }
  [[nodiscard]] std::size_t alphabet() const noexcept { return alphabet_; }
  [[nodiscard]] const std::vector<double>& breakpoints() const noexcept {
    return breakpoints_;
  }

  /// Symbol index (0-based) for one z-normalised PAA coefficient.
  [[nodiscard]] std::size_t symbol_index(double value) const noexcept;

  /// Character for a symbol index: 0 -> 'a', 1 -> 'b', ...
  [[nodiscard]] static char symbol_char(std::size_t index) noexcept {
    return static_cast<char>('a' + index);
  }

  /// MINDIST cell distance between two symbol indices: 0 when adjacent or
  /// equal, otherwise the gap between the enclosing breakpoints.
  [[nodiscard]] double cell_distance(std::size_t i, std::size_t j) const noexcept;

 private:
  std::size_t word_length_;
  std::size_t alphabet_;
  std::vector<double> breakpoints_;
  std::vector<double> dist_table_;  // alphabet x alphabet, row-major
};

/// A SAX word plus the provenance needed to compute MINDIST.
struct SaxWord {
  std::string text;             ///< symbol characters, length == word_length
  std::size_t source_length{0};  ///< n of the original series (MINDIST scale)

  [[nodiscard]] bool operator==(const SaxWord& other) const noexcept {
    return text == other.text;
  }
};

/// Encodes series into SAX words under a fixed configuration.
class SaxEncoder {
 public:
  explicit SaxEncoder(SaxConfig config) : config_(std::move(config)) {}

  /// Full pipeline on a raw series: z-normalise -> PAA -> symbols.
  /// O(n + w), allocates the word (and normalisation scratch).
  [[nodiscard]] SaxWord encode(const Series& raw) const;

  /// Encodes a series that is already z-normalised (skips normalisation).
  /// O(n + w), allocates the word.
  [[nodiscard]] SaxWord encode_normalized(const Series& normalized) const;

  /// encode_normalized into `out`, reusing `paa_scratch` for the PAA
  /// coefficients (both resized in place — allocation-free once warm, the
  /// contract QueryScratch relies on); bit-identical to the allocating
  /// version, which delegates here. O(n + w).
  void encode_normalized_into(const Series& normalized, SaxWord& out,
                              Series& paa_scratch) const;

  /// MINDIST between two words produced by this encoder, in the
  /// (dimensionless) unit of the z-normalised series. Lower-bounds the
  /// Euclidean distance between the original z-normalised series. Words
  /// must have equal length and equal source_length. O(w), no allocation.
  [[nodiscard]] double mindist(const SaxWord& a, const SaxWord& b) const;

  /// Minimum MINDIST over all circular rotations of `b`'s word — the
  /// rotation-invariant comparison used for closed-contour signatures
  /// (paper Section IV: "The recognition algorithm must be rotation
  /// invariant"). Rotations move in whole-symbol steps (n/w samples each),
  /// so this does NOT lower-bound the exact rotation-invariant Euclidean
  /// distance under arbitrary sample shifts — exact verification must
  /// score every template (SignDatabase::query does). Returns the best
  /// distance and writes the best word-rotation (multiply by n/w for an
  /// approximate sample shift) to `best_shift` when non-null. O(w^2).
  [[nodiscard]] double mindist_rotation_invariant(const SaxWord& a, const SaxWord& b,
                                                  std::size_t* best_shift = nullptr) const;

  /// mindist_rotation_invariant with a caller-owned scratch word for the
  /// rotations (keeps the batch query path allocation-free once warm);
  /// bit-identical to the version above, which delegates here.
  [[nodiscard]] double mindist_rotation_invariant(const SaxWord& a, const SaxWord& b,
                                                  std::size_t* best_shift,
                                                  SaxWord& rotated_scratch) const;

  /// Exact Hamming distance between the two words' character strings
  /// (symbol count, not a Euclidean bound). O(w), no allocation.
  [[nodiscard]] static std::size_t hamming(const SaxWord& a, const SaxWord& b);

  [[nodiscard]] const SaxConfig& config() const noexcept { return config_; }

 private:
  SaxConfig config_;
};

}  // namespace hdc::timeseries
