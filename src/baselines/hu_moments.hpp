// Hu invariant-moment recogniser: seven algebraic moment invariants of the
// silhouette, invariant to translation, scale and rotation. A standard
// classical-vision shape descriptor; cheap but coarse (global statistics
// lose the limb topology that distinguishes marshalling signs).
#pragma once

#include <array>

#include "baselines/baseline.hpp"

namespace hdc::baselines {

/// The seven Hu invariants of a binary mask.
[[nodiscard]] std::array<double, 7> hu_moments(const imaging::BinaryImage& mask);

class HuMomentsRecognizer final : public BaselineRecognizer {
 public:
  void train(const signs::ViewGeometry& view,
             const signs::RenderOptions& options) override;
  [[nodiscard]] BaselineResult classify(const imaging::GrayImage& frame) const override;
  [[nodiscard]] std::string name() const override { return "hu-moments"; }

 private:
  struct Template {
    signs::HumanSign sign;
    std::array<double, 7> features;
  };
  std::vector<Template> templates_;
};

}  // namespace hdc::baselines
