// Direct template correlation: the silhouette is cropped to its bounding
// box, resampled to a fixed grid and compared to sign templates by
// normalised cross-correlation. Simple and accurate head-on, but with no
// rotation invariance at all — the naive baseline the SAX design argues
// against for a moving drone.
#pragma once

#include "baselines/baseline.hpp"

namespace hdc::baselines {

/// Fixed comparison grid (64x64 keeps the comparison sub-millisecond).
inline constexpr int kTemplateGrid = 64;

/// Crops `mask` to its foreground bounding box and resamples to the grid;
/// all-background masks produce an all-zero grid.
[[nodiscard]] std::vector<double> normalized_grid(const imaging::BinaryImage& mask);

class TemplateMatchRecognizer final : public BaselineRecognizer {
 public:
  void train(const signs::ViewGeometry& view,
             const signs::RenderOptions& options) override;
  [[nodiscard]] BaselineResult classify(const imaging::GrayImage& frame) const override;
  [[nodiscard]] std::string name() const override { return "template-ncc"; }

 private:
  struct Template {
    signs::HumanSign sign;
    std::vector<double> grid;
  };
  std::vector<Template> templates_;
};

}  // namespace hdc::baselines
