#include "baselines/chain_code.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "imaging/contour.hpp"

namespace hdc::baselines {

namespace {

/// Chi-square distance between histograms (standard for frequency features).
[[nodiscard]] double chi_square(const std::array<double, 8>& a,
                                const std::array<double, 8>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double total = a[i] + b[i];
    if (total > 0.0) {
      const double diff = a[i] - b[i];
      sum += diff * diff / total;
    }
  }
  return sum;
}

}  // namespace

std::vector<int> freeman_chain_code(const imaging::Contour& contour) {
  // Direction indices: 0=E, 1=NE, 2=N, ... counter-clockwise in a y-up
  // frame; image y grows downward so dy is negated.
  std::vector<int> code;
  if (contour.size() < 2) return code;
  code.reserve(contour.size());
  for (std::size_t i = 0; i < contour.size(); ++i) {
    const auto& p = contour[i];
    const auto& q = contour[(i + 1) % contour.size()];
    const int dx = static_cast<int>(std::lround(q.x - p.x));
    const int dy = static_cast<int>(std::lround(q.y - p.y));
    if (dx == 0 && dy == 0) continue;
    const double angle = std::atan2(static_cast<double>(-dy), static_cast<double>(dx));
    int dir = static_cast<int>(std::lround(angle / (std::numbers::pi / 4.0)));
    dir = ((dir % 8) + 8) % 8;
    code.push_back(dir);
  }
  return code;
}

std::array<double, 8> curvature_histogram(const std::vector<int>& code) {
  std::array<double, 8> histogram{};
  if (code.size() < 2) return histogram;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const int delta = ((code[(i + 1) % code.size()] - code[i]) % 8 + 8) % 8;
    histogram[static_cast<std::size_t>(delta)] += 1.0;
  }
  for (double& bin : histogram) bin /= static_cast<double>(code.size());
  return histogram;
}

void ChainCodeRecognizer::train(const signs::ViewGeometry& view,
                                const signs::RenderOptions& options) {
  templates_.clear();
  for (const signs::HumanSign sign : signs::kAllSigns) {
    const imaging::GrayImage frame = signs::render_sign(sign, view, options);
    const imaging::Contour contour =
        imaging::trace_boundary(extract_silhouette(frame));
    templates_.push_back({sign, curvature_histogram(freeman_chain_code(contour))});
  }
}

BaselineResult ChainCodeRecognizer::classify(const imaging::GrayImage& frame) const {
  BaselineResult result;
  const imaging::Contour contour = imaging::trace_boundary(extract_silhouette(frame));
  if (contour.size() < 8 || templates_.empty()) return result;

  const std::array<double, 8> histogram =
      curvature_histogram(freeman_chain_code(contour));
  double best = std::numeric_limits<double>::infinity();
  double second = best;
  for (const Template& t : templates_) {
    const double d = chi_square(histogram, t.histogram);
    if (d < best) {
      second = best;
      best = d;
      result.sign = t.sign;
    } else if (d < second) {
      second = d;
    }
  }
  result.valid = true;
  result.distance = best;
  result.margin = second == std::numeric_limits<double>::infinity() ? best : second - best;
  return result;
}

}  // namespace hdc::baselines
