// Baseline recognisers the paper implicitly compares against (§I contrasts
// its cheap SAX approach with "interesting algorithmic techniques like
// neural networks and/or relatively expensive ... sensory systems").
//
// Three classical alternatives at comparable implementation cost:
//   - Hu invariant moments of the silhouette
//   - Freeman chain-code curvature histograms of the contour
//   - direct template correlation of the normalised silhouette raster
// All share the SAX pipeline's silhouette-extraction front end so the
// comparison isolates the *representation and matching* stage (bench ABL-2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "imaging/contour.hpp"
#include "imaging/image.hpp"
#include "signs/scene.hpp"
#include "signs/sign.hpp"

namespace hdc::baselines {

/// Silhouette front end shared by every baseline: invert -> Otsu ->
/// close/open -> largest component. Mirrors the SAX pipeline's stages 1-4.
[[nodiscard]] imaging::BinaryImage extract_silhouette(const imaging::GrayImage& frame,
                                                      std::size_t min_area = 120);

/// Classification outcome of a baseline recogniser.
struct BaselineResult {
  bool valid{false};  ///< false when no silhouette was found
  signs::HumanSign sign{signs::HumanSign::kNeutral};
  double distance{0.0};  ///< representation-specific distance to best template
  double margin{0.0};    ///< runner-up distance minus best
};

/// Interface for baseline recognisers (I.25: empty abstract interface).
class BaselineRecognizer {
 public:
  virtual ~BaselineRecognizer() = default;

  /// Learns one template per sign from canonical renders at `view`.
  virtual void train(const signs::ViewGeometry& view,
                     const signs::RenderOptions& options) = 0;

  /// Classifies one frame against the trained templates.
  [[nodiscard]] virtual BaselineResult classify(const imaging::GrayImage& frame) const = 0;

  /// Human-readable method name for bench tables.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace hdc::baselines
