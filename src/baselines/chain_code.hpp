// Freeman chain-code recogniser: the contour is encoded as 8-direction
// moves; the histogram of direction *changes* (discrete curvature) is
// rotation invariant and very cheap, but discards where along the contour
// the curvature occurs — a weaker descriptor than the SAX signature.
#pragma once

#include <array>

#include "baselines/baseline.hpp"

namespace hdc::baselines {

/// 8-direction Freeman chain code of a pixel contour (consecutive points
/// must be 8-neighbours, as produced by Moore tracing).
[[nodiscard]] std::vector<int> freeman_chain_code(const imaging::Contour& contour);

/// Normalised histogram of chain-code first differences (mod 8).
[[nodiscard]] std::array<double, 8> curvature_histogram(const std::vector<int>& code);

class ChainCodeRecognizer final : public BaselineRecognizer {
 public:
  void train(const signs::ViewGeometry& view,
             const signs::RenderOptions& options) override;
  [[nodiscard]] BaselineResult classify(const imaging::GrayImage& frame) const override;
  [[nodiscard]] std::string name() const override { return "chain-code"; }

 private:
  struct Template {
    signs::HumanSign sign;
    std::array<double, 8> histogram;
  };
  std::vector<Template> templates_;
};

}  // namespace hdc::baselines
