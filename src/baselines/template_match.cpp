#include "baselines/template_match.hpp"

#include <cmath>
#include <limits>

namespace hdc::baselines {

namespace {

/// Normalised cross-correlation in [-1, 1] (1 = identical patterns).
[[nodiscard]] double ncc(const std::vector<double>& a, const std::vector<double>& b) {
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(a.size());
  mean_b /= static_cast<double>(a.size());
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace

std::vector<double> normalized_grid(const imaging::BinaryImage& mask) {
  int min_x = mask.width(), min_y = mask.height(), max_x = -1, max_y = -1;
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      if (mask(x, y) == imaging::kForeground) {
        min_x = std::min(min_x, x);
        min_y = std::min(min_y, y);
        max_x = std::max(max_x, x);
        max_y = std::max(max_y, y);
      }
    }
  }
  std::vector<double> grid(static_cast<std::size_t>(kTemplateGrid) * kTemplateGrid, 0.0);
  if (max_x < min_x || max_y < min_y) return grid;
  const double scale_x = static_cast<double>(max_x - min_x + 1) / kTemplateGrid;
  const double scale_y = static_cast<double>(max_y - min_y + 1) / kTemplateGrid;
  for (int gy = 0; gy < kTemplateGrid; ++gy) {
    for (int gx = 0; gx < kTemplateGrid; ++gx) {
      const int sx = min_x + static_cast<int>((gx + 0.5) * scale_x);
      const int sy = min_y + static_cast<int>((gy + 0.5) * scale_y);
      if (mask.in_bounds(sx, sy) && mask(sx, sy) == imaging::kForeground) {
        grid[static_cast<std::size_t>(gy) * kTemplateGrid + gx] = 1.0;
      }
    }
  }
  return grid;
}

void TemplateMatchRecognizer::train(const signs::ViewGeometry& view,
                                    const signs::RenderOptions& options) {
  templates_.clear();
  for (const signs::HumanSign sign : signs::kAllSigns) {
    const imaging::GrayImage frame = signs::render_sign(sign, view, options);
    templates_.push_back({sign, normalized_grid(extract_silhouette(frame))});
  }
}

BaselineResult TemplateMatchRecognizer::classify(const imaging::GrayImage& frame) const {
  BaselineResult result;
  if (templates_.empty()) return result;
  const std::vector<double> grid = normalized_grid(extract_silhouette(frame));
  bool any = false;
  for (double v : grid) {
    if (v > 0.0) {
      any = true;
      break;
    }
  }
  if (!any) return result;

  // NCC is a similarity; convert to a distance as (1 - ncc) for the shared
  // result contract.
  double best = std::numeric_limits<double>::infinity();
  double second = best;
  for (const Template& t : templates_) {
    const double d = 1.0 - ncc(grid, t.grid);
    if (d < best) {
      second = best;
      best = d;
      result.sign = t.sign;
    } else if (d < second) {
      second = d;
    }
  }
  result.valid = true;
  result.distance = best;
  result.margin = second == std::numeric_limits<double>::infinity() ? best : second - best;
  return result;
}

}  // namespace hdc::baselines
