#include "baselines/hu_moments.hpp"

#include <cmath>
#include <limits>

namespace hdc::baselines {

namespace {

/// Log-compresses a Hu invariant (the customary comparison space: the raw
/// invariants span many orders of magnitude).
[[nodiscard]] double log_scale(double value) {
  if (value == 0.0) return 0.0;
  return -std::copysign(std::log10(std::abs(value)), value);
}

[[nodiscard]] double feature_distance(const std::array<double, 7>& a,
                                      const std::array<double, 7>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < 7; ++i) {
    const double d = log_scale(a[i]) - log_scale(b[i]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace

std::array<double, 7> hu_moments(const imaging::BinaryImage& mask) {
  // Raw moments m_pq over foreground pixels.
  double m00 = 0, m10 = 0, m01 = 0;
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      if (mask(x, y) != imaging::kForeground) continue;
      m00 += 1.0;
      m10 += x;
      m01 += y;
    }
  }
  if (m00 == 0.0) return {};
  const double cx = m10 / m00;
  const double cy = m01 / m00;

  // Central moments mu_pq up to order 3.
  double mu20 = 0, mu02 = 0, mu11 = 0, mu30 = 0, mu03 = 0, mu21 = 0, mu12 = 0;
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      if (mask(x, y) != imaging::kForeground) continue;
      const double dx = x - cx;
      const double dy = y - cy;
      mu20 += dx * dx;
      mu02 += dy * dy;
      mu11 += dx * dy;
      mu30 += dx * dx * dx;
      mu03 += dy * dy * dy;
      mu21 += dx * dx * dy;
      mu12 += dx * dy * dy;
    }
  }

  // Scale-normalised moments eta_pq = mu_pq / m00^(1 + (p+q)/2).
  const auto eta = [m00](double mu, int order) {
    return mu / std::pow(m00, 1.0 + order / 2.0);
  };
  const double n20 = eta(mu20, 2), n02 = eta(mu02, 2), n11 = eta(mu11, 2);
  const double n30 = eta(mu30, 3), n03 = eta(mu03, 3), n21 = eta(mu21, 3),
               n12 = eta(mu12, 3);

  std::array<double, 7> hu{};
  hu[0] = n20 + n02;
  hu[1] = (n20 - n02) * (n20 - n02) + 4.0 * n11 * n11;
  hu[2] = (n30 - 3 * n12) * (n30 - 3 * n12) + (3 * n21 - n03) * (3 * n21 - n03);
  hu[3] = (n30 + n12) * (n30 + n12) + (n21 + n03) * (n21 + n03);
  hu[4] = (n30 - 3 * n12) * (n30 + n12) *
              ((n30 + n12) * (n30 + n12) - 3 * (n21 + n03) * (n21 + n03)) +
          (3 * n21 - n03) * (n21 + n03) *
              (3 * (n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03));
  hu[5] = (n20 - n02) * ((n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03)) +
          4.0 * n11 * (n30 + n12) * (n21 + n03);
  hu[6] = (3 * n21 - n03) * (n30 + n12) *
              ((n30 + n12) * (n30 + n12) - 3 * (n21 + n03) * (n21 + n03)) -
          (n30 - 3 * n12) * (n21 + n03) *
              (3 * (n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03));
  return hu;
}

void HuMomentsRecognizer::train(const signs::ViewGeometry& view,
                                const signs::RenderOptions& options) {
  templates_.clear();
  for (const signs::HumanSign sign : signs::kAllSigns) {
    const imaging::GrayImage frame = signs::render_sign(sign, view, options);
    const imaging::BinaryImage mask = extract_silhouette(frame);
    templates_.push_back({sign, hu_moments(mask)});
  }
}

BaselineResult HuMomentsRecognizer::classify(const imaging::GrayImage& frame) const {
  BaselineResult result;
  const imaging::BinaryImage mask = extract_silhouette(frame);
  bool any = false;
  for (const auto& v : mask.data()) {
    if (v == imaging::kForeground) {
      any = true;
      break;
    }
  }
  if (!any || templates_.empty()) return result;

  const std::array<double, 7> features = hu_moments(mask);
  double best = std::numeric_limits<double>::infinity();
  double second = best;
  for (const Template& t : templates_) {
    const double d = feature_distance(features, t.features);
    if (d < best) {
      second = best;
      best = d;
      result.sign = t.sign;
    } else if (d < second) {
      second = d;
    }
  }
  result.valid = true;
  result.distance = best;
  result.margin = second == std::numeric_limits<double>::infinity() ? best : second - best;
  return result;
}

}  // namespace hdc::baselines
