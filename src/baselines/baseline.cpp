#include "baselines/baseline.hpp"

#include "imaging/components.hpp"
#include "imaging/filter.hpp"
#include "imaging/morphology.hpp"

namespace hdc::baselines {

imaging::BinaryImage extract_silhouette(const imaging::GrayImage& frame,
                                        std::size_t min_area) {
  const imaging::GrayImage inverted = imaging::invert(frame);
  imaging::BinaryImage binary = imaging::otsu_threshold(inverted);
  binary = imaging::close(binary, 1);
  binary = imaging::open(binary, 1);
  return imaging::largest_component_mask(binary, min_area);
}

}  // namespace hdc::baselines
