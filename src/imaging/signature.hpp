// Shape -> time-series conversion ("converting shapes into a time-series",
// paper §IV, after ref [21]). The centroid-distance signature maps each
// boundary point to its distance from the shape centroid, yielding a
// 1-D periodic series whose circular shifts correspond to rotations of the
// shape — the property that makes SAX matching rotation invariant.
#pragma once

#include "imaging/contour.hpp"
#include "timeseries/series.hpp"

namespace hdc::imaging {

/// Default number of samples in a shape signature. 128 balances fidelity
/// against the cost of rotation-invariant matching.
inline constexpr std::size_t kDefaultSignatureSize = 128;

/// Computes the centroid-distance signature of a closed contour:
/// the contour is resampled to `samples` points equally spaced by arc
/// length, then each point is mapped to its distance from the centroid.
/// Returns an empty series for contours with fewer than 3 points.
[[nodiscard]] hdc::timeseries::Series centroid_distance_signature(
    const Contour& contour, std::size_t samples = kDefaultSignatureSize);

/// Complex-coordinate signature variant: angle of each resampled boundary
/// point around the centroid, unwrapped. Provided for ablation comparisons.
[[nodiscard]] hdc::timeseries::Series centroid_angle_signature(
    const Contour& contour, std::size_t samples = kDefaultSignatureSize);

/// Rescales the contour so its bounding box becomes a square of the given
/// side. This cancels the vertical foreshortening induced by the drone's
/// depression angle (altitude/distance geometry), which otherwise dominates
/// the signature variation across the paper's 2-5 m altitude band.
/// A no-op for empty or degenerate (zero-extent) contours.
[[nodiscard]] Contour normalize_contour_aspect(const Contour& contour,
                                               double side = 100.0);

// Buffer-reusing overloads for the batch pipeline; bit-identical to the
// allocating versions, which delegate here. Outputs must not alias inputs.

/// centroid_distance_signature into `out`; `resample_scratch` holds the
/// arc-length-resampled contour.
void centroid_distance_signature_into(const Contour& contour, std::size_t samples,
                                      hdc::timeseries::Series& out,
                                      Contour& resample_scratch);

/// normalize_contour_aspect into `out` (degenerate input is copied verbatim,
/// matching the allocating version's pass-through).
void normalize_contour_aspect_into(const Contour& contour, double side,
                                   Contour& out);

}  // namespace hdc::imaging
