#include "imaging/signature.hpp"

#include <algorithm>
#include <cmath>

#include "util/geometry.hpp"

namespace hdc::imaging {

void centroid_distance_signature_into(const Contour& contour, std::size_t samples,
                                      hdc::timeseries::Series& out,
                                      Contour& resample_scratch) {
  out.clear();
  if (contour.size() < 3 || samples == 0) return;
  resample_by_arc_length_into(contour, samples, resample_scratch);
  const Vec2 centroid = contour_centroid(contour);
  out.reserve(samples);
  for (const Vec2& p : resample_scratch) out.push_back(p.distance_to(centroid));
}

hdc::timeseries::Series centroid_distance_signature(const Contour& contour,
                                                    std::size_t samples) {
  hdc::timeseries::Series signature;
  Contour resample_scratch;
  centroid_distance_signature_into(contour, samples, signature, resample_scratch);
  return signature;
}

void normalize_contour_aspect_into(const Contour& contour, double side,
                                   Contour& out) {
  if (contour.empty()) {
    out.clear();
    return;
  }
  double min_x = contour[0].x, max_x = contour[0].x;
  double min_y = contour[0].y, max_y = contour[0].y;
  for (const Vec2& p : contour) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double width = max_x - min_x;
  const double height = max_y - min_y;
  if (width <= 0.0 || height <= 0.0) {
    out = contour;
    return;
  }
  out.clear();
  out.reserve(contour.size());
  for (const Vec2& p : contour) {
    out.push_back({(p.x - min_x) / width * side, (p.y - min_y) / height * side});
  }
}

Contour normalize_contour_aspect(const Contour& contour, double side) {
  Contour out;
  normalize_contour_aspect_into(contour, side, out);
  return out;
}

hdc::timeseries::Series centroid_angle_signature(const Contour& contour,
                                                 std::size_t samples) {
  if (contour.size() < 3 || samples == 0) return {};
  const Contour resampled = resample_by_arc_length(contour, samples);
  const Vec2 centroid = contour_centroid(contour);
  hdc::timeseries::Series signature;
  signature.reserve(samples);
  double prev = 0.0;
  double offset = 0.0;
  bool first = true;
  for (const Vec2& p : resampled) {
    const double angle = (p - centroid).angle();
    if (!first) {
      // Unwrap: keep the series continuous across the -pi/pi seam.
      double delta = angle - prev;
      while (delta > hdc::util::kPi) delta -= hdc::util::kTwoPi;
      while (delta < -hdc::util::kPi) delta += hdc::util::kTwoPi;
      offset += delta;
      signature.push_back(signature.front() + offset);
    } else {
      signature.push_back(angle);
      offset = 0.0;
      first = false;
    }
    prev = angle;
  }
  return signature;
}

}  // namespace hdc::imaging
