// Raster image types for the vision substrate.
//
// The pipeline works on 8-bit grayscale frames (what a low-cost drone camera
// delivers after luma extraction); RGB images exist for example/debug output
// only. Row-major storage, origin top-left, u right / v down.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace hdc::imaging {

/// 8-bit RGB pixel for visualisation output.
struct Rgb {
  std::uint8_t r{0};
  std::uint8_t g{0};
  std::uint8_t b{0};
  constexpr bool operator==(const Rgb&) const = default;
};

/// Rectangular raster of pixels of type T (row-major).
template <typename T>
class Image {
 public:
  Image() = default;

  Image(int width, int height, T fill_value = T{})
      : width_(width), height_(height) {
    if (width <= 0 || height <= 0) {
      throw std::invalid_argument("Image: dimensions must be positive");
    }
    pixels_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
                   fill_value);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] bool empty() const noexcept { return pixels_.empty(); }
  [[nodiscard]] std::size_t pixel_count() const noexcept { return pixels_.size(); }

  [[nodiscard]] bool in_bounds(int x, int y) const noexcept {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  [[nodiscard]] T& at(int x, int y) {
    check_bounds(x, y);
    return pixels_[index(x, y)];
  }
  [[nodiscard]] const T& at(int x, int y) const {
    check_bounds(x, y);
    return pixels_[index(x, y)];
  }

  /// Unchecked access for hot loops; callers must guarantee bounds.
  [[nodiscard]] T& operator()(int x, int y) noexcept { return pixels_[index(x, y)]; }
  [[nodiscard]] const T& operator()(int x, int y) const noexcept {
    return pixels_[index(x, y)];
  }

  /// Reads with clamp-to-edge semantics (useful for filters).
  [[nodiscard]] const T& clamped(int x, int y) const noexcept {
    const int cx = std::clamp(x, 0, width_ - 1);
    const int cy = std::clamp(y, 0, height_ - 1);
    return pixels_[index(cx, cy)];
  }

  /// Writes only if (x, y) is inside the raster.
  void set_if_inside(int x, int y, T value) noexcept {
    if (in_bounds(x, y)) pixels_[index(x, y)] = value;
  }

  void fill(T value) { std::fill(pixels_.begin(), pixels_.end(), value); }

  /// Reshapes to width x height and resets every pixel to `fill_value`,
  /// reusing the existing heap block whenever its capacity suffices. This is
  /// what makes the batch pipeline's scratch buffers allocation-free after
  /// warm-up.
  void reset(int width, int height, T fill_value = T{}) {
    if (width <= 0 || height <= 0) {
      throw std::invalid_argument("Image::reset: dimensions must be positive");
    }
    width_ = width;
    height_ = height;
    pixels_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
                   fill_value);
  }

  [[nodiscard]] std::vector<T>& data() noexcept { return pixels_; }
  [[nodiscard]] const std::vector<T>& data() const noexcept { return pixels_; }

  [[nodiscard]] bool operator==(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           pixels_ == other.pixels_;
  }

 private:
  [[nodiscard]] std::size_t index(int x, int y) const noexcept {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
  void check_bounds(int x, int y) const {
    if (!in_bounds(x, y)) throw std::out_of_range("Image::at: out of bounds");
  }

  int width_{0};
  int height_{0};
  std::vector<T> pixels_;
};

using GrayImage = Image<std::uint8_t>;
using BinaryImage = Image<std::uint8_t>;  ///< convention: 0 background, 255 foreground
using RgbImage = Image<Rgb>;

inline constexpr std::uint8_t kBackground = 0;
inline constexpr std::uint8_t kForeground = 255;

/// Converts RGB to 8-bit luma (Rec. 601 weights).
[[nodiscard]] GrayImage to_gray(const RgbImage& rgb);

/// Expands grayscale to RGB (for annotation overlays).
[[nodiscard]] RgbImage to_rgb(const GrayImage& gray);

/// Nearest-neighbour downscale by integer factor >= 1.
[[nodiscard]] GrayImage downscale(const GrayImage& src, int factor);

}  // namespace hdc::imaging
