#include "imaging/components.hpp"

#include <algorithm>
#include <numeric>

namespace hdc::imaging {

namespace {

/// Union-find over provisional labels, storing its parents in a
/// caller-owned arena so batch workers can reuse the allocation.
class DisjointSet {
 public:
  explicit DisjointSet(std::vector<std::int32_t>& parent) : parent_(parent) {
    parent_.clear();
  }
  std::int32_t make_set() {
    parent_.push_back(static_cast<std::int32_t>(parent_.size()));
    return parent_.back();
  }
  std::int32_t find(std::int32_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }

 private:
  std::vector<std::int32_t>& parent_;
};

}  // namespace

void label_components_into(const BinaryImage& binary, Labeling& out,
                           LabelScratch& scratch) {
  out.labels.reset(binary.width(), binary.height(), 0);
  out.components.clear();
  auto& labels = out.labels;
  DisjointSet sets(scratch.parent);
  sets.make_set();  // slot 0 = background

  // Pass 1: provisional labels; merge across the 4 already-visited
  // 8-connectivity neighbours (W, NW, N, NE).
  for (int y = 0; y < binary.height(); ++y) {
    for (int x = 0; x < binary.width(); ++x) {
      if (binary(x, y) != kForeground) continue;
      std::int32_t neighbour_label = 0;
      constexpr int offsets[4][2] = {{-1, 0}, {-1, -1}, {0, -1}, {1, -1}};
      for (const auto& off : offsets) {
        const int nx = x + off[0];
        const int ny = y + off[1];
        if (!binary.in_bounds(nx, ny)) continue;
        const std::int32_t nl = labels(nx, ny);
        if (nl == 0) continue;
        if (neighbour_label == 0) {
          neighbour_label = nl;
        } else {
          sets.unite(neighbour_label, nl);
        }
      }
      labels(x, y) = neighbour_label != 0 ? neighbour_label : sets.make_set();
    }
  }

  // Pass 2: flatten labels to 1..n and gather statistics.
  std::vector<std::int32_t>& remap = scratch.remap;  // root -> compact label
  remap.clear();
  std::vector<Component>& comps = out.components;
  for (int y = 0; y < binary.height(); ++y) {
    for (int x = 0; x < binary.width(); ++x) {
      std::int32_t l = labels(x, y);
      if (l == 0) continue;
      const std::int32_t root = sets.find(l);
      if (static_cast<std::size_t>(root) >= remap.size()) {
        remap.resize(static_cast<std::size_t>(root) + 1, 0);
      }
      if (remap[static_cast<std::size_t>(root)] == 0) {
        remap[static_cast<std::size_t>(root)] =
            static_cast<std::int32_t>(comps.size()) + 1;
        comps.push_back(Component{static_cast<std::int32_t>(comps.size()) + 1, 0, x, y,
                                  x, y, {}});
      }
      const std::int32_t compact = remap[static_cast<std::size_t>(root)];
      labels(x, y) = compact;
      Component& comp = comps[static_cast<std::size_t>(compact - 1)];
      ++comp.area;
      comp.min_x = std::min(comp.min_x, x);
      comp.min_y = std::min(comp.min_y, y);
      comp.max_x = std::max(comp.max_x, x);
      comp.max_y = std::max(comp.max_y, y);
      comp.centroid.x += x;
      comp.centroid.y += y;
    }
  }
  for (Component& comp : comps) {
    if (comp.area > 0) {
      comp.centroid.x /= static_cast<double>(comp.area);
      comp.centroid.y /= static_cast<double>(comp.area);
    }
  }
}

Labeling label_components(const BinaryImage& binary) {
  Labeling result;
  LabelScratch scratch;
  label_components_into(binary, result, scratch);
  return result;
}

void largest_component_mask_into(const BinaryImage& binary, std::size_t min_area,
                                 BinaryImage& mask, Labeling& labeling,
                                 LabelScratch& scratch) {
  label_components_into(binary, labeling, scratch);
  mask.reset(binary.width(), binary.height(), kBackground);
  const Component* largest = nullptr;
  for (const Component& comp : labeling.components) {
    if (comp.area >= min_area && (largest == nullptr || comp.area > largest->area)) {
      largest = &comp;
    }
  }
  if (largest == nullptr) return;
  for (int y = 0; y < binary.height(); ++y) {
    for (int x = 0; x < binary.width(); ++x) {
      if (labeling.labels(x, y) == largest->label) mask(x, y) = kForeground;
    }
  }
}

BinaryImage largest_component_mask(const BinaryImage& binary, std::size_t min_area) {
  BinaryImage mask;
  Labeling labeling;
  LabelScratch scratch;
  largest_component_mask_into(binary, min_area, mask, labeling, scratch);
  return mask;
}

BinaryImage remove_small_components(const BinaryImage& binary, std::size_t min_area) {
  const Labeling labeling = label_components(binary);
  BinaryImage out(binary.width(), binary.height(), kBackground);
  for (int y = 0; y < binary.height(); ++y) {
    for (int x = 0; x < binary.width(); ++x) {
      const std::int32_t label = labeling.labels(x, y);
      if (label == 0) continue;
      if (labeling.components[static_cast<std::size_t>(label - 1)].area >= min_area) {
        out(x, y) = kForeground;
      }
    }
  }
  return out;
}

}  // namespace hdc::imaging
