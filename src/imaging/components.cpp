#include "imaging/components.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace hdc::imaging {

namespace {

/// Union-find over provisional labels, storing its parents in a
/// caller-owned arena so batch workers can reuse the allocation.
class DisjointSet {
 public:
  explicit DisjointSet(std::vector<std::int32_t>& parent) : parent_(parent) {
    parent_.clear();
  }
  std::int32_t make_set() {
    parent_.push_back(static_cast<std::int32_t>(parent_.size()));
    return parent_.back();
  }
  std::int32_t find(std::int32_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }

 private:
  std::vector<std::int32_t>& parent_;
};

/// First-nonzero-wins merge of the four already-visited 8-connectivity
/// neighbours, in the fixed W, NW, N, NE order (the order pins the label
/// numbering, so it must never change).
inline std::int32_t merge_neighbours(DisjointSet& sets, std::int32_t w,
                                     std::int32_t nw, std::int32_t n,
                                     std::int32_t ne) {
  std::int32_t label = w;
  if (nw != 0) {
    if (label == 0) label = nw;
    else sets.unite(label, nw);
  }
  if (n != 0) {
    if (label == 0) label = n;
    else sets.unite(label, n);
  }
  if (ne != 0) {
    if (label == 0) label = ne;
    else sets.unite(label, ne);
  }
  return label;
}

/// The next foreground pixel at or after `x` in a {0, 255} row, or `width`
/// when the rest of the row is background. memchr is the branch-light
/// (SIMD in libc) row scan — silhouette frames are mostly background, so
/// skipping runs wholesale is where the time goes. Bytes other than 255
/// are background, exactly like the `!= kForeground` test it replaces.
inline int next_foreground(const std::uint8_t* row, int x, int width) {
  const void* hit = std::memchr(row + x, kForeground,
                                static_cast<std::size_t>(width - x));
  if (hit == nullptr) return width;
  return static_cast<int>(static_cast<const std::uint8_t*>(hit) - row);
}

}  // namespace

void label_components_into(const BinaryImage& binary, Labeling& out,
                           LabelScratch& scratch) {
  out.labels.reset(binary.width(), binary.height(), 0);
  out.components.clear();
  const int w = binary.width();
  const int h = binary.height();
  const std::uint8_t* bin_data = binary.data().data();
  std::int32_t* lab_data = out.labels.data().data();
  const auto row_size = static_cast<std::size_t>(w);
  DisjointSet sets(scratch.parent);
  sets.make_set();  // slot 0 = background

  // Pass 1: provisional labels, merging across the W/NW/N/NE neighbours.
  // Row pointers replace per-pixel index math and bounds checks; the first
  // and last columns (where NW / NE fall off the raster) peel out of the
  // interior loop so it stays branch-light.
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* bin = bin_data + static_cast<std::size_t>(y) * row_size;
    std::int32_t* lab = lab_data + static_cast<std::size_t>(y) * row_size;
    const std::int32_t* up = lab - row_size;  // valid only for y > 0
    if (y == 0) {
      // Top row: the only visited neighbour is W.
      for (int x = next_foreground(bin, 0, w); x < w;
           x = next_foreground(bin, x + 1, w)) {
        const std::int32_t west = x > 0 ? lab[x - 1] : 0;
        lab[x] = west != 0 ? west : sets.make_set();
      }
      continue;
    }
    for (int x = next_foreground(bin, 0, w); x < w;
         x = next_foreground(bin, x + 1, w)) {
      const std::int32_t west = x > 0 ? lab[x - 1] : 0;
      const std::int32_t north_west = x > 0 ? up[x - 1] : 0;
      const std::int32_t north = up[x];
      const std::int32_t north_east = x + 1 < w ? up[x + 1] : 0;
      const std::int32_t label =
          merge_neighbours(sets, west, north_west, north, north_east);
      lab[x] = label != 0 ? label : sets.make_set();
    }
  }

  // Pass 2: flatten labels to 1..n and gather statistics, again skipping
  // background runs via the binary raster (nonzero labels sit exactly on
  // foreground pixels).
  std::vector<std::int32_t>& remap = scratch.remap;  // root -> compact label
  remap.clear();
  std::vector<Component>& comps = out.components;
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* bin = bin_data + static_cast<std::size_t>(y) * row_size;
    std::int32_t* lab = lab_data + static_cast<std::size_t>(y) * row_size;
    for (int x = next_foreground(bin, 0, w); x < w;
         x = next_foreground(bin, x + 1, w)) {
      const std::int32_t root = sets.find(lab[x]);
      if (static_cast<std::size_t>(root) >= remap.size()) {
        remap.resize(static_cast<std::size_t>(root) + 1, 0);
      }
      if (remap[static_cast<std::size_t>(root)] == 0) {
        remap[static_cast<std::size_t>(root)] =
            static_cast<std::int32_t>(comps.size()) + 1;
        comps.push_back(Component{static_cast<std::int32_t>(comps.size()) + 1, 0, x, y,
                                  x, y, {}});
      }
      const std::int32_t compact = remap[static_cast<std::size_t>(root)];
      lab[x] = compact;
      Component& comp = comps[static_cast<std::size_t>(compact - 1)];
      ++comp.area;
      comp.min_x = std::min(comp.min_x, x);
      comp.min_y = std::min(comp.min_y, y);
      comp.max_x = std::max(comp.max_x, x);
      comp.max_y = std::max(comp.max_y, y);
      comp.centroid.x += x;
      comp.centroid.y += y;
    }
  }
  for (Component& comp : comps) {
    if (comp.area > 0) {
      comp.centroid.x /= static_cast<double>(comp.area);
      comp.centroid.y /= static_cast<double>(comp.area);
    }
  }
}

Labeling label_components(const BinaryImage& binary) {
  Labeling result;
  LabelScratch scratch;
  label_components_into(binary, result, scratch);
  return result;
}

void largest_component_mask_into(const BinaryImage& binary, std::size_t min_area,
                                 BinaryImage& mask, Labeling& labeling,
                                 LabelScratch& scratch) {
  label_components_into(binary, labeling, scratch);
  mask.reset(binary.width(), binary.height(), kBackground);
  const Component* largest = nullptr;
  for (const Component& comp : labeling.components) {
    if (comp.area >= min_area && (largest == nullptr || comp.area > largest->area)) {
      largest = &comp;
    }
  }
  if (largest == nullptr) return;
  // Branchless select — 0 - (lab == target) is 0x00 or 0xFF, which IS the
  // {kBackground, kForeground} convention; the compiler vectorises the
  // compare+negate where a conditional store would not.
  const std::int32_t target = largest->label;
  const std::int32_t* lab = labeling.labels.data().data();
  std::uint8_t* dst = mask.data().data();
  const std::size_t count = mask.data().size();
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] = static_cast<std::uint8_t>(-static_cast<std::uint8_t>(lab[i] == target));
  }
}

BinaryImage largest_component_mask(const BinaryImage& binary, std::size_t min_area) {
  BinaryImage mask;
  Labeling labeling;
  LabelScratch scratch;
  largest_component_mask_into(binary, min_area, mask, labeling, scratch);
  return mask;
}

BinaryImage remove_small_components(const BinaryImage& binary, std::size_t min_area) {
  const Labeling labeling = label_components(binary);
  BinaryImage out(binary.width(), binary.height(), kBackground);
  // keep[label] is 0x00/0xFF per component size; the fill is then a pure
  // table gather over the label raster, no per-pixel branching.
  std::vector<std::uint8_t> keep(labeling.components.size() + 1, kBackground);
  for (const Component& comp : labeling.components) {
    if (comp.area >= min_area) {
      keep[static_cast<std::size_t>(comp.label)] = kForeground;
    }
  }
  const std::int32_t* lab = labeling.labels.data().data();
  std::uint8_t* dst = out.data().data();
  const std::size_t count = out.data().size();
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] = keep[static_cast<std::size_t>(lab[i])];
  }
  return out;
}

}  // namespace hdc::imaging
