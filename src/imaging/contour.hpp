// Boundary extraction: Moore-neighbour contour tracing with Jacob's stopping
// criterion. The outer contour of the signaller silhouette is the shape the
// paper converts into a time series.
#pragma once

#include <vector>

#include "imaging/image.hpp"
#include "util/geometry.hpp"

namespace hdc::imaging {

using hdc::util::Vec2;

/// A traced boundary: ordered pixel positions (clockwise in image
/// coordinates, i.e. counter-clockwise in a y-up frame).
using Contour = std::vector<Vec2>;

/// Traces the outer boundary of the first foreground region found in raster
/// scan order. Returns an empty contour when the image has no foreground.
/// The trace follows 8-connected Moore neighbours.
[[nodiscard]] Contour trace_boundary(const BinaryImage& mask);

/// Centroid of a contour (mean of boundary points); (0,0) for empty input.
[[nodiscard]] Vec2 contour_centroid(const Contour& contour);

/// Total polygonal length of the (closed) contour.
[[nodiscard]] double contour_perimeter(const Contour& contour);

/// Area enclosed by the (closed) contour via the shoelace formula
/// (absolute value).
[[nodiscard]] double contour_area(const Contour& contour);

/// Resamples the closed contour to `count` points equally spaced by arc
/// length. Required so the signature is invariant to boundary pixel density.
[[nodiscard]] Contour resample_by_arc_length(const Contour& contour, std::size_t count);

// Buffer-reusing overloads for the batch pipeline; bit-identical to the
// allocating versions, which delegate here. `out` must not alias the input.

/// trace_boundary into `out` (cleared, capacity kept).
void trace_boundary_into(const BinaryImage& mask, Contour& out);

/// resample_by_arc_length into `out` (cleared, capacity kept).
void resample_by_arc_length_into(const Contour& contour, std::size_t count,
                                 Contour& out);

}  // namespace hdc::imaging
