// Rasterisation primitives used by the synthetic scene renderer: lines,
// discs, capsules (thick limbs of the stick-figure signaller), convex
// polygons and rectangles.
#pragma once

#include <vector>

#include "imaging/image.hpp"
#include "util/geometry.hpp"

namespace hdc::imaging {

using hdc::util::Vec2;

/// Bresenham line from (x0, y0) to (x1, y1); clips against the raster.
void draw_line(GrayImage& image, int x0, int y0, int x1, int y1, std::uint8_t value);

/// Filled axis-aligned rectangle [x0, x1] x [y0, y1] (inclusive, clipped).
void fill_rect(GrayImage& image, int x0, int y0, int x1, int y1, std::uint8_t value);

/// Filled disc of the given centre/radius (clipped).
void fill_disc(GrayImage& image, Vec2 center, double radius, std::uint8_t value);

/// Filled capsule: all pixels within `radius` of the segment [a, b]. This is
/// the primitive for rendering limbs (a bone with thickness).
void fill_capsule(GrayImage& image, Vec2 a, Vec2 b, double radius, std::uint8_t value);

/// Filled simple polygon via even-odd scanline; vertices in image
/// coordinates. Handles convex and concave (non-self-intersecting) shapes.
void fill_polygon(GrayImage& image, const std::vector<Vec2>& vertices,
                  std::uint8_t value);

/// 1-pixel polygon outline.
void draw_polygon(GrayImage& image, const std::vector<Vec2>& vertices,
                  std::uint8_t value);

/// Draws a marker cross for annotation output.
void draw_cross(RgbImage& image, int x, int y, int half_size, Rgb color);

/// Draws a contour (pixel chain) onto an RGB image for visual inspection.
void draw_points(RgbImage& image, const std::vector<Vec2>& points, Rgb color);

}  // namespace hdc::imaging
