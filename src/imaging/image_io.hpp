// Binary PGM (P5) / PPM (P6) readers and writers — dependency-free image IO
// so examples can dump frames inspectable with any viewer.
#pragma once

#include <string>

#include "imaging/image.hpp"

namespace hdc::imaging {

/// Writes 8-bit grayscale as binary PGM (P5). Throws std::runtime_error on IO failure.
void write_pgm(const GrayImage& image, const std::string& path);

/// Writes 8-bit RGB as binary PPM (P6). Throws std::runtime_error on IO failure.
void write_ppm(const RgbImage& image, const std::string& path);

/// Reads a binary PGM (P5) file. Throws std::runtime_error on malformed input.
[[nodiscard]] GrayImage read_pgm(const std::string& path);

/// Reads a binary PPM (P6) file. Throws std::runtime_error on malformed input.
[[nodiscard]] RgbImage read_ppm(const std::string& path);

}  // namespace hdc::imaging
