// Connected-component labelling of binary images (8-connectivity) and the
// largest-component extractor that isolates the signaller silhouette from
// background clutter.
#pragma once

#include <cstdint>
#include <vector>

#include "imaging/image.hpp"
#include "util/geometry.hpp"

namespace hdc::imaging {

/// One labelled connected component.
struct Component {
  std::int32_t label{0};
  std::size_t area{0};
  int min_x{0}, min_y{0}, max_x{0}, max_y{0};
  hdc::util::Vec2 centroid{};
};

/// Result of labelling: a label raster (0 = background, 1..n components) and
/// per-component statistics.
struct Labeling {
  Image<std::int32_t> labels;
  std::vector<Component> components;  ///< indexed by label-1
};

/// Two-pass 8-connectivity labelling with union-find.
[[nodiscard]] Labeling label_components(const BinaryImage& binary);

/// Returns a binary mask of the largest component (empty image -> all
/// background). Components below `min_area` pixels are ignored; if none
/// qualify the mask is all background.
[[nodiscard]] BinaryImage largest_component_mask(const BinaryImage& binary,
                                                 std::size_t min_area = 1);

/// Reusable arenas for the labelling passes (union-find parents and the
/// root -> compact-label remap). Keep one per worker; cleared, not freed,
/// between frames.
struct LabelScratch {
  std::vector<std::int32_t> parent;
  std::vector<std::int32_t> remap;
};

/// label_components into a caller-owned Labeling; bit-identical to the
/// allocating version, which delegates here.
void label_components_into(const BinaryImage& binary, Labeling& out,
                           LabelScratch& scratch);

/// largest_component_mask into `mask`, reusing `labeling`/`scratch` arenas.
void largest_component_mask_into(const BinaryImage& binary, std::size_t min_area,
                                 BinaryImage& mask, Labeling& labeling,
                                 LabelScratch& scratch);

/// Removes every component smaller than `min_area` (despeckle).
[[nodiscard]] BinaryImage remove_small_components(const BinaryImage& binary,
                                                  std::size_t min_area);

}  // namespace hdc::imaging
