#include "imaging/contour.hpp"

#include <array>
#include <cmath>

namespace hdc::imaging {

namespace {

/// Moore neighbourhood in clockwise order starting from west.
constexpr std::array<std::array<int, 2>, 8> kMooreOffsets = {{
    {-1, 0}, {-1, -1}, {0, -1}, {1, -1}, {1, 0}, {1, 1}, {0, 1}, {-1, 1},
}};

[[nodiscard]] bool is_foreground(const BinaryImage& mask, int x, int y) {
  return mask.in_bounds(x, y) && mask(x, y) == kForeground;
}

}  // namespace

void trace_boundary_into(const BinaryImage& mask, Contour& contour) {
  contour.clear();
  // Find the first foreground pixel in raster order; its west neighbour is
  // guaranteed background, which seeds the backtrack direction.
  int start_x = -1, start_y = -1;
  for (int y = 0; y < mask.height() && start_x < 0; ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      if (mask(x, y) == kForeground) {
        start_x = x;
        start_y = y;
        break;
      }
    }
  }
  if (start_x < 0) return;

  contour.emplace_back(start_x, start_y);

  // Isolated single pixel: its boundary is itself.
  bool has_neighbour = false;
  for (const auto& off : kMooreOffsets) {
    if (is_foreground(mask, start_x + off[0], start_y + off[1])) {
      has_neighbour = true;
      break;
    }
  }
  if (!has_neighbour) return;

  // Moore tracing with Jacob's stopping criterion. The backtrack is
  // tracked as the *position* of the background neighbour from which the
  // current pixel was entered; the neighbourhood is scanned clockwise
  // starting just past that backtrack. The trace terminates when the start
  // pixel is re-entered from the initial backtrack position.
  int px = start_x, py = start_y;
  int bx = start_x - 1, by = start_y;  // west neighbour: background by raster order
  const int initial_bx = bx, initial_by = by;

  const auto direction_of = [](int dx, int dy) {
    for (int d = 0; d < 8; ++d) {
      if (kMooreOffsets[static_cast<std::size_t>(d)][0] == dx &&
          kMooreOffsets[static_cast<std::size_t>(d)][1] == dy) {
        return d;
      }
    }
    return 0;  // unreachable for valid neighbour deltas
  };

  // Upper bound on steps guards against pathological masks.
  const std::size_t max_steps = mask.pixel_count() * 4 + 8;
  for (std::size_t step = 0; step < max_steps; ++step) {
    const int back_dir = direction_of(bx - px, by - py);
    int found_dir = -1;
    int last_bg_x = bx, last_bg_y = by;
    for (int i = 1; i <= 8; ++i) {
      const int dir = (back_dir + i) % 8;
      const int nx = px + kMooreOffsets[static_cast<std::size_t>(dir)][0];
      const int ny = py + kMooreOffsets[static_cast<std::size_t>(dir)][1];
      if (is_foreground(mask, nx, ny)) {
        found_dir = dir;
        break;
      }
      last_bg_x = nx;
      last_bg_y = ny;
    }
    if (found_dir < 0) break;  // defensive; cannot happen for has_neighbour

    px += kMooreOffsets[static_cast<std::size_t>(found_dir)][0];
    py += kMooreOffsets[static_cast<std::size_t>(found_dir)][1];
    bx = last_bg_x;
    by = last_bg_y;

    // Jacob's criterion: back at the start, entered from the same side.
    if (px == start_x && py == start_y && bx == initial_bx && by == initial_by) {
      break;
    }
    contour.emplace_back(px, py);
  }

  // The loop may append the start pixel again as the final step; drop it.
  if (contour.size() > 1 && contour.back() == contour.front()) contour.pop_back();
}

Contour trace_boundary(const BinaryImage& mask) {
  Contour contour;
  trace_boundary_into(mask, contour);
  return contour;
}

Vec2 contour_centroid(const Contour& contour) {
  if (contour.empty()) return {};
  Vec2 sum{};
  for (const Vec2& p : contour) sum += p;
  return sum / static_cast<double>(contour.size());
}

double contour_perimeter(const Contour& contour) {
  if (contour.size() < 2) return 0.0;
  double length = 0.0;
  for (std::size_t i = 0; i < contour.size(); ++i) {
    length += contour[i].distance_to(contour[(i + 1) % contour.size()]);
  }
  return length;
}

double contour_area(const Contour& contour) {
  if (contour.size() < 3) return 0.0;
  double twice_area = 0.0;
  for (std::size_t i = 0; i < contour.size(); ++i) {
    const Vec2& p = contour[i];
    const Vec2& q = contour[(i + 1) % contour.size()];
    twice_area += p.cross(q);
  }
  return std::abs(twice_area) * 0.5;
}

void resample_by_arc_length_into(const Contour& contour, std::size_t count,
                                 Contour& out) {
  out.clear();
  if (contour.empty() || count == 0) return;
  if (contour.size() == 1) {
    out.assign(count, contour.front());
    return;
  }

  const double total = contour_perimeter(contour);
  if (total <= 0.0) {
    out.assign(count, contour.front());
    return;
  }

  out.reserve(count);
  const double step = total / static_cast<double>(count);

  double target = 0.0;       // arc position of the next output sample
  double walked = 0.0;       // arc length consumed so far
  std::size_t seg = 0;       // current segment index
  Vec2 seg_a = contour[0];
  Vec2 seg_b = contour[1 % contour.size()];
  double seg_len = seg_a.distance_to(seg_b);

  for (std::size_t i = 0; i < count; ++i, target += step) {
    while (walked + seg_len < target && seg < contour.size()) {
      walked += seg_len;
      ++seg;
      seg_a = contour[seg % contour.size()];
      seg_b = contour[(seg + 1) % contour.size()];
      seg_len = seg_a.distance_to(seg_b);
    }
    const double remain = target - walked;
    const double t = seg_len > 0.0 ? remain / seg_len : 0.0;
    out.push_back(seg_a + (seg_b - seg_a) * t);
  }
}

Contour resample_by_arc_length(const Contour& contour, std::size_t count) {
  Contour out;
  resample_by_arc_length_into(contour, count, out);
  return out;
}

}  // namespace hdc::imaging
