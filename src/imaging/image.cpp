#include "imaging/image.hpp"

namespace hdc::imaging {

GrayImage to_gray(const RgbImage& rgb) {
  GrayImage out(rgb.width(), rgb.height());
  for (int y = 0; y < rgb.height(); ++y) {
    for (int x = 0; x < rgb.width(); ++x) {
      const Rgb& p = rgb(x, y);
      const double luma = 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
      out(x, y) = static_cast<std::uint8_t>(luma + 0.5);
    }
  }
  return out;
}

RgbImage to_rgb(const GrayImage& gray) {
  RgbImage out(gray.width(), gray.height());
  for (int y = 0; y < gray.height(); ++y) {
    for (int x = 0; x < gray.width(); ++x) {
      const std::uint8_t v = gray(x, y);
      out(x, y) = Rgb{v, v, v};
    }
  }
  return out;
}

GrayImage downscale(const GrayImage& src, int factor) {
  if (factor < 1) throw std::invalid_argument("downscale: factor must be >= 1");
  if (factor == 1) return src;
  const int w = std::max(1, src.width() / factor);
  const int h = std::max(1, src.height() / factor);
  GrayImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // Average the factor x factor block for a cheap anti-aliased reduce.
      int sum = 0;
      int count = 0;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          const int sx = x * factor + dx;
          const int sy = y * factor + dy;
          if (src.in_bounds(sx, sy)) {
            sum += src(sx, sy);
            ++count;
          }
        }
      }
      out(x, y) = static_cast<std::uint8_t>(count > 0 ? sum / count : 0);
    }
  }
  return out;
}

}  // namespace hdc::imaging
