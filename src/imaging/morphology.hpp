// Binary morphology (square structuring element). Used to clean silhouettes
// before contour tracing: opening removes salt noise, closing bridges small
// gaps between limb segments.
#pragma once

#include "imaging/image.hpp"

namespace hdc::imaging {

/// Erosion with a (2r+1)x(2r+1) square element; pixels outside the raster
/// count as background.
[[nodiscard]] BinaryImage erode(const BinaryImage& src, int radius = 1);

/// Dilation with a (2r+1)x(2r+1) square element.
[[nodiscard]] BinaryImage dilate(const BinaryImage& src, int radius = 1);

/// Opening: erode then dilate (removes specks smaller than the element).
[[nodiscard]] BinaryImage open(const BinaryImage& src, int radius = 1);

/// Closing: dilate then erode (fills holes/gaps smaller than the element).
[[nodiscard]] BinaryImage close(const BinaryImage& src, int radius = 1);

/// Number of foreground pixels.
[[nodiscard]] std::size_t foreground_area(const BinaryImage& src);

}  // namespace hdc::imaging
