// Binary morphology (square structuring element). Used to clean silhouettes
// before contour tracing: opening removes salt noise, closing bridges small
// gaps between limb segments.
//
// Inputs must follow the BinaryImage convention (kBackground/kForeground
// only); the implementation exploits it with bitwise row combines, which is
// what keeps this stage — the pipeline's hottest — vectorisable.
#pragma once

#include "imaging/image.hpp"

namespace hdc::imaging {

/// Erosion with a (2r+1)x(2r+1) square element; pixels outside the raster
/// count as background.
[[nodiscard]] BinaryImage erode(const BinaryImage& src, int radius = 1);

/// Dilation with a (2r+1)x(2r+1) square element.
[[nodiscard]] BinaryImage dilate(const BinaryImage& src, int radius = 1);

/// Opening: erode then dilate (removes specks smaller than the element).
[[nodiscard]] BinaryImage open(const BinaryImage& src, int radius = 1);

/// Closing: dilate then erode (fills holes/gaps smaller than the element).
[[nodiscard]] BinaryImage close(const BinaryImage& src, int radius = 1);

// Buffer-reusing overloads for the batch pipeline; bit-identical to the
// allocating versions above, which delegate here. `out` and `scratch` must
// be distinct objects and must not alias `src`.

/// erode into `out`; `scratch` holds the horizontal pass.
void erode_into(const BinaryImage& src, int radius, BinaryImage& out,
                BinaryImage& scratch);

/// dilate into `out`; `scratch` holds the horizontal pass.
void dilate_into(const BinaryImage& src, int radius, BinaryImage& out,
                 BinaryImage& scratch);

/// open into `out` (erode then dilate).
void open_into(const BinaryImage& src, int radius, BinaryImage& out,
               BinaryImage& scratch_a, BinaryImage& scratch_b);

/// close into `out` (dilate then erode).
void close_into(const BinaryImage& src, int radius, BinaryImage& out,
                BinaryImage& scratch_a, BinaryImage& scratch_b);

/// Number of foreground pixels.
[[nodiscard]] std::size_t foreground_area(const BinaryImage& src);

}  // namespace hdc::imaging
