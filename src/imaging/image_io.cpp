#include "imaging/image_io.hpp"

#include <fstream>
#include <limits>
#include <stdexcept>

namespace hdc::imaging {

namespace {

/// Skips whitespace and '#' comment lines in a PNM header.
void skip_pnm_separators(std::istream& in) {
  while (true) {
    const int c = in.peek();
    if (c == '#') {
      in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    } else if (std::isspace(c)) {
      in.get();
    } else {
      return;
    }
  }
}

struct PnmHeader {
  int width{0};
  int height{0};
  int maxval{0};
};

PnmHeader read_pnm_header(std::istream& in, const std::string& magic,
                          const std::string& path) {
  std::string found(2, '\0');
  in.read(found.data(), 2);
  if (!in || found != magic) {
    throw std::runtime_error("PNM: bad magic in " + path);
  }
  PnmHeader header;
  skip_pnm_separators(in);
  in >> header.width;
  skip_pnm_separators(in);
  in >> header.height;
  skip_pnm_separators(in);
  in >> header.maxval;
  if (!in || header.width <= 0 || header.height <= 0 || header.maxval != 255) {
    throw std::runtime_error("PNM: unsupported header in " + path);
  }
  in.get();  // single whitespace byte before pixel data
  return header;
}

}  // namespace

void write_pgm(const GrayImage& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.data().data()),
            static_cast<std::streamsize>(image.data().size()));
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

void write_ppm(const RgbImage& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  out << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
  for (const Rgb& p : image.data()) {
    out.put(static_cast<char>(p.r));
    out.put(static_cast<char>(p.g));
    out.put(static_cast<char>(p.b));
  }
  if (!out) throw std::runtime_error("write_ppm: write failed for " + path);
}

GrayImage read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pgm: cannot open " + path);
  const PnmHeader header = read_pnm_header(in, "P5", path);
  GrayImage image(header.width, header.height);
  in.read(reinterpret_cast<char*>(image.data().data()),
          static_cast<std::streamsize>(image.data().size()));
  if (!in) throw std::runtime_error("read_pgm: truncated pixel data in " + path);
  return image;
}

RgbImage read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_ppm: cannot open " + path);
  const PnmHeader header = read_pnm_header(in, "P6", path);
  RgbImage image(header.width, header.height);
  for (Rgb& p : image.data()) {
    char rgb[3];
    in.read(rgb, 3);
    p = Rgb{static_cast<std::uint8_t>(rgb[0]), static_cast<std::uint8_t>(rgb[1]),
            static_cast<std::uint8_t>(rgb[2])};
  }
  if (!in) throw std::runtime_error("read_ppm: truncated pixel data in " + path);
  return image;
}

}  // namespace hdc::imaging
