#include "imaging/draw.hpp"

#include <algorithm>
#include <cmath>

namespace hdc::imaging {

void draw_line(GrayImage& image, int x0, int y0, int x1, int y1, std::uint8_t value) {
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    image.set_if_inside(x0, y0, value);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void fill_rect(GrayImage& image, int x0, int y0, int x1, int y1, std::uint8_t value) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  const int cx0 = std::max(0, x0);
  const int cy0 = std::max(0, y0);
  const int cx1 = std::min(image.width() - 1, x1);
  const int cy1 = std::min(image.height() - 1, y1);
  for (int y = cy0; y <= cy1; ++y) {
    for (int x = cx0; x <= cx1; ++x) image(x, y) = value;
  }
}

void fill_disc(GrayImage& image, Vec2 center, double radius, std::uint8_t value) {
  if (radius <= 0.0) return;
  const int x0 = std::max(0, static_cast<int>(std::floor(center.x - radius)));
  const int x1 = std::min(image.width() - 1, static_cast<int>(std::ceil(center.x + radius)));
  const int y0 = std::max(0, static_cast<int>(std::floor(center.y - radius)));
  const int y1 = std::min(image.height() - 1, static_cast<int>(std::ceil(center.y + radius)));
  const double r_sq = radius * radius;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double dx = static_cast<double>(x) + 0.5 - center.x;
      const double dy = static_cast<double>(y) + 0.5 - center.y;
      if (dx * dx + dy * dy <= r_sq) image(x, y) = value;
    }
  }
}

void fill_capsule(GrayImage& image, Vec2 a, Vec2 b, double radius, std::uint8_t value) {
  if (radius <= 0.0) return;
  const double min_x = std::min(a.x, b.x) - radius;
  const double max_x = std::max(a.x, b.x) + radius;
  const double min_y = std::min(a.y, b.y) - radius;
  const double max_y = std::max(a.y, b.y) + radius;
  const int x0 = std::max(0, static_cast<int>(std::floor(min_x)));
  const int x1 = std::min(image.width() - 1, static_cast<int>(std::ceil(max_x)));
  const int y0 = std::max(0, static_cast<int>(std::floor(min_y)));
  const int y1 = std::min(image.height() - 1, static_cast<int>(std::ceil(max_y)));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const Vec2 p{static_cast<double>(x) + 0.5, static_cast<double>(y) + 0.5};
      if (hdc::util::point_segment_distance(p, a, b) <= radius) image(x, y) = value;
    }
  }
}

void fill_polygon(GrayImage& image, const std::vector<Vec2>& vertices,
                  std::uint8_t value) {
  if (vertices.size() < 3) return;
  double min_y = vertices[0].y, max_y = vertices[0].y;
  for (const Vec2& v : vertices) {
    min_y = std::min(min_y, v.y);
    max_y = std::max(max_y, v.y);
  }
  const int y0 = std::max(0, static_cast<int>(std::floor(min_y)));
  const int y1 = std::min(image.height() - 1, static_cast<int>(std::ceil(max_y)));

  std::vector<double> crossings;
  for (int y = y0; y <= y1; ++y) {
    const double scan_y = static_cast<double>(y) + 0.5;
    crossings.clear();
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      const Vec2& p = vertices[i];
      const Vec2& q = vertices[(i + 1) % vertices.size()];
      // Half-open rule avoids double-counting vertices on the scanline.
      if ((p.y <= scan_y && q.y > scan_y) || (q.y <= scan_y && p.y > scan_y)) {
        const double t = (scan_y - p.y) / (q.y - p.y);
        crossings.push_back(p.x + t * (q.x - p.x));
      }
    }
    std::sort(crossings.begin(), crossings.end());
    for (std::size_t i = 0; i + 1 < crossings.size(); i += 2) {
      const int x_begin = std::max(0, static_cast<int>(std::ceil(crossings[i] - 0.5)));
      const int x_end =
          std::min(image.width() - 1, static_cast<int>(std::floor(crossings[i + 1] - 0.5)));
      for (int x = x_begin; x <= x_end; ++x) image(x, y) = value;
    }
  }
}

void draw_polygon(GrayImage& image, const std::vector<Vec2>& vertices,
                  std::uint8_t value) {
  if (vertices.size() < 2) return;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const Vec2& p = vertices[i];
    const Vec2& q = vertices[(i + 1) % vertices.size()];
    draw_line(image, static_cast<int>(std::lround(p.x)), static_cast<int>(std::lround(p.y)),
              static_cast<int>(std::lround(q.x)), static_cast<int>(std::lround(q.y)), value);
  }
}

void draw_cross(RgbImage& image, int x, int y, int half_size, Rgb color) {
  for (int d = -half_size; d <= half_size; ++d) {
    if (image.in_bounds(x + d, y)) image(x + d, y) = color;
    if (image.in_bounds(x, y + d)) image(x, y + d) = color;
  }
}

void draw_points(RgbImage& image, const std::vector<Vec2>& points, Rgb color) {
  for (const Vec2& p : points) {
    const int x = static_cast<int>(std::lround(p.x));
    const int y = static_cast<int>(std::lround(p.y));
    if (image.in_bounds(x, y)) image(x, y) = color;
  }
}

}  // namespace hdc::imaging
