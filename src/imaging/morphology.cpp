#include "imaging/morphology.hpp"

namespace hdc::imaging {

namespace {

enum class MorphOp { kErode, kDilate };

/// Separable square-element pass: horizontal min/max then vertical min/max.
BinaryImage morph(const BinaryImage& src, int radius, MorphOp op) {
  if (radius <= 0) return src;
  const bool is_erode = op == MorphOp::kErode;
  const std::uint8_t outside = is_erode ? kBackground : kBackground;

  BinaryImage horizontal(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      std::uint8_t value = is_erode ? kForeground : kBackground;
      for (int dx = -radius; dx <= radius; ++dx) {
        const int sx = x + dx;
        const std::uint8_t sample = src.in_bounds(sx, y) ? src(sx, y) : outside;
        if (is_erode) {
          if (sample == kBackground) {
            value = kBackground;
            break;
          }
        } else if (sample == kForeground) {
          value = kForeground;
          break;
        }
      }
      horizontal(x, y) = value;
    }
  }

  BinaryImage out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      std::uint8_t value = is_erode ? kForeground : kBackground;
      for (int dy = -radius; dy <= radius; ++dy) {
        const int sy = y + dy;
        const std::uint8_t sample =
            horizontal.in_bounds(x, sy) ? horizontal(x, sy) : outside;
        if (is_erode) {
          if (sample == kBackground) {
            value = kBackground;
            break;
          }
        } else if (sample == kForeground) {
          value = kForeground;
          break;
        }
      }
      out(x, y) = value;
    }
  }
  return out;
}

}  // namespace

BinaryImage erode(const BinaryImage& src, int radius) {
  return morph(src, radius, MorphOp::kErode);
}

BinaryImage dilate(const BinaryImage& src, int radius) {
  return morph(src, radius, MorphOp::kDilate);
}

BinaryImage open(const BinaryImage& src, int radius) {
  return dilate(erode(src, radius), radius);
}

BinaryImage close(const BinaryImage& src, int radius) {
  return erode(dilate(src, radius), radius);
}

std::size_t foreground_area(const BinaryImage& src) {
  std::size_t count = 0;
  for (std::uint8_t v : src.data()) {
    if (v == kForeground) ++count;
  }
  return count;
}

}  // namespace hdc::imaging
