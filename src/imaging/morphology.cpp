#include "imaging/morphology.hpp"

#include <algorithm>
#include <cstring>

namespace hdc::imaging {

namespace {

enum class MorphOp { kErode, kDilate };

/// Separable square-element pass: horizontal min/max then vertical min/max,
/// with pixels outside the raster counting as background for both ops.
///
/// Implemented as bitwise AND (erode) / OR (dilate) over shifted rows, which
/// is exact for the {0, 255} value convention (see image.hpp) and lets the
/// compiler vectorise the inner loops — this is the recognition pipeline's
/// hottest stage (~75% of a frame before this rewrite). Writes into `out`,
/// using `scratch` for the horizontal intermediate.
void morph_into(const BinaryImage& src, int radius, MorphOp op, BinaryImage& out,
                BinaryImage& scratch) {
  if (radius <= 0) {
    out = src;
    return;
  }
  const bool is_erode = op == MorphOp::kErode;
  const int w = src.width();
  const int h = src.height();
  BinaryImage& horizontal = scratch;
  horizontal.reset(w, h);
  out.reset(w, h);
  const std::uint8_t* src_data = src.data().data();
  std::uint8_t* mid_data = horizontal.data().data();

  // Horizontal pass: accumulate the shifted row for each offset in
  // [-radius, radius]. Shifted-out-of-raster samples are background, so
  // erosion forces the `radius` pixels nearest each edge to background and
  // dilation leaves them to the in-raster samples.
  const auto row_size = static_cast<std::size_t>(w);
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* in = src_data + static_cast<std::size_t>(y) * row_size;
    std::uint8_t* mid = mid_data + static_cast<std::size_t>(y) * row_size;
    std::memcpy(mid, in, row_size);
    for (int d = 1; d <= radius; ++d) {
      const int left_end = std::max(w - d, 0);
      if (is_erode) {
        for (int x = 0; x < left_end; ++x) mid[x] &= in[x + d];
        for (int x = left_end; x < w; ++x) mid[x] = kBackground;
        for (int x = w - 1; x >= d; --x) mid[x] &= in[x - d];
        for (int x = 0; x < d && x < w; ++x) mid[x] = kBackground;
      } else {
        for (int x = 0; x < left_end; ++x) mid[x] |= in[x + d];
        for (int x = w - 1; x >= d; --x) mid[x] |= in[x - d];
      }
    }
  }

  // Vertical pass: combine the window's rows of the horizontal result.
  for (int y = 0; y < h; ++y) {
    std::uint8_t* dst = out.data().data() + static_cast<std::size_t>(y) * row_size;
    const int window_top = y - radius;
    const int window_bottom = y + radius;
    if (is_erode) {
      if (window_top < 0 || window_bottom >= h) {
        std::memset(dst, kBackground, row_size);
        continue;
      }
      std::memcpy(dst, mid_data + static_cast<std::size_t>(window_top) * row_size,
                  row_size);
      for (int yy = window_top + 1; yy <= window_bottom; ++yy) {
        const std::uint8_t* mid = mid_data + static_cast<std::size_t>(yy) * row_size;
        for (int x = 0; x < w; ++x) dst[x] &= mid[x];
      }
    } else {
      const int first = std::max(window_top, 0);
      const int last = std::min(window_bottom, h - 1);
      std::memcpy(dst, mid_data + static_cast<std::size_t>(first) * row_size,
                  row_size);
      for (int yy = first + 1; yy <= last; ++yy) {
        const std::uint8_t* mid = mid_data + static_cast<std::size_t>(yy) * row_size;
        for (int x = 0; x < w; ++x) dst[x] |= mid[x];
      }
    }
  }
}

}  // namespace

void erode_into(const BinaryImage& src, int radius, BinaryImage& out,
                BinaryImage& scratch) {
  morph_into(src, radius, MorphOp::kErode, out, scratch);
}

void dilate_into(const BinaryImage& src, int radius, BinaryImage& out,
                 BinaryImage& scratch) {
  morph_into(src, radius, MorphOp::kDilate, out, scratch);
}

void open_into(const BinaryImage& src, int radius, BinaryImage& out,
               BinaryImage& scratch_a, BinaryImage& scratch_b) {
  erode_into(src, radius, scratch_a, scratch_b);
  dilate_into(scratch_a, radius, out, scratch_b);
}

void close_into(const BinaryImage& src, int radius, BinaryImage& out,
                BinaryImage& scratch_a, BinaryImage& scratch_b) {
  dilate_into(src, radius, scratch_a, scratch_b);
  erode_into(scratch_a, radius, out, scratch_b);
}

BinaryImage erode(const BinaryImage& src, int radius) {
  BinaryImage out;
  BinaryImage scratch;
  erode_into(src, radius, out, scratch);
  return out;
}

BinaryImage dilate(const BinaryImage& src, int radius) {
  BinaryImage out;
  BinaryImage scratch;
  dilate_into(src, radius, out, scratch);
  return out;
}

BinaryImage open(const BinaryImage& src, int radius) {
  BinaryImage out;
  BinaryImage scratch_a;
  BinaryImage scratch_b;
  open_into(src, radius, out, scratch_a, scratch_b);
  return out;
}

BinaryImage close(const BinaryImage& src, int radius) {
  BinaryImage out;
  BinaryImage scratch_a;
  BinaryImage scratch_b;
  close_into(src, radius, out, scratch_a, scratch_b);
  return out;
}

std::size_t foreground_area(const BinaryImage& src) {
  std::size_t count = 0;
  for (std::uint8_t v : src.data()) {
    if (v == kForeground) ++count;
  }
  return count;
}

}  // namespace hdc::imaging
