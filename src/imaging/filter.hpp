// Image filters: blur, thresholding (fixed and Otsu) and pixel-wise ops.
// These are the pre-processing steps of the recognition pipeline ("the
// pre-processing of the image ... initially appears expensive", paper §IV).
#pragma once

#include "imaging/image.hpp"
#include "util/rng.hpp"

namespace hdc::imaging {

/// Separable box blur with window (2*radius+1); radius 0 returns the input.
[[nodiscard]] GrayImage box_blur(const GrayImage& src, int radius);

/// Gaussian blur approximated by three successive box blurs (standard
/// technique; error vs true Gaussian < 3% per Kovesi). sigma <= 0 returns
/// the input.
[[nodiscard]] GrayImage gaussian_blur(const GrayImage& src, double sigma);

/// Fixed-threshold binarisation: pixel >= threshold -> kForeground.
[[nodiscard]] BinaryImage threshold(const GrayImage& src, std::uint8_t value);

/// Otsu's automatic threshold (maximises between-class variance).
/// Returns the chosen threshold via `chosen` when non-null.
[[nodiscard]] BinaryImage otsu_threshold(const GrayImage& src,
                                         std::uint8_t* chosen = nullptr);

/// Photometric inversion (255 - v).
[[nodiscard]] GrayImage invert(const GrayImage& src);

// Buffer-reusing overloads for the batch pipeline. Each writes into `out`
// (resized in place, allocation-free once warm) and produces output
// bit-identical to its allocating counterpart, which delegates here.
// `out` (and any scratch) must not alias `src`.

/// box_blur into `out`; `scratch` holds the horizontal pass.
void box_blur_into(const GrayImage& src, int radius, GrayImage& out,
                   GrayImage& scratch);

/// gaussian_blur into `out`; `scratch` is ping-pong storage for the box
/// passes.
void gaussian_blur_into(const GrayImage& src, double sigma, GrayImage& out,
                        GrayImage& scratch);

/// threshold into `out`.
void threshold_into(const GrayImage& src, std::uint8_t value, BinaryImage& out);

/// otsu_threshold into `out`.
void otsu_threshold_into(const GrayImage& src, BinaryImage& out,
                         std::uint8_t* chosen = nullptr);

/// invert into `out`.
void invert_into(const GrayImage& src, GrayImage& out);

/// Adds zero-mean Gaussian pixel noise with the given stddev (clamped to
/// [0, 255]). Models sensor noise for robustness tests.
[[nodiscard]] GrayImage add_gaussian_noise(const GrayImage& src, double stddev,
                                           hdc::util::Rng& rng);

/// Flips a `fraction` of pixels to pure black/white (salt-and-pepper),
/// modelling dead/hot pixels and compression artefacts.
[[nodiscard]] GrayImage add_salt_pepper(const GrayImage& src, double fraction,
                                        hdc::util::Rng& rng);

/// Multiplies intensities by `gain` and adds `bias` (clamped) — crude
/// global illumination change for lighting-robustness tests.
[[nodiscard]] GrayImage adjust_lighting(const GrayImage& src, double gain, double bias);

}  // namespace hdc::imaging
