#include "imaging/filter.hpp"

#include <array>
#include <cmath>

#include "util/geometry.hpp"

namespace hdc::imaging {

namespace {

/// Horizontal box pass with clamp-to-edge; the vertical pass runs the same
/// code on the transposed access pattern.
void box_pass_horizontal(const GrayImage& src, int radius, GrayImage& out) {
  out.reset(src.width(), src.height());
  const int window = 2 * radius + 1;
  for (int y = 0; y < src.height(); ++y) {
    int sum = 0;
    for (int x = -radius; x <= radius; ++x) sum += src.clamped(x, y);
    for (int x = 0; x < src.width(); ++x) {
      out(x, y) = static_cast<std::uint8_t>(sum / window);
      sum += src.clamped(x + radius + 1, y) - src.clamped(x - radius, y);
    }
  }
}

void box_pass_vertical(const GrayImage& src, int radius, GrayImage& out) {
  out.reset(src.width(), src.height());
  const int window = 2 * radius + 1;
  for (int x = 0; x < src.width(); ++x) {
    int sum = 0;
    for (int y = -radius; y <= radius; ++y) sum += src.clamped(x, y);
    for (int y = 0; y < src.height(); ++y) {
      out(x, y) = static_cast<std::uint8_t>(sum / window);
      sum += src.clamped(x, y + radius + 1) - src.clamped(x, y - radius);
    }
  }
}

}  // namespace

void box_blur_into(const GrayImage& src, int radius, GrayImage& out,
                   GrayImage& scratch) {
  if (radius <= 0) {
    out = src;
    return;
  }
  box_pass_horizontal(src, radius, scratch);
  box_pass_vertical(scratch, radius, out);
}

GrayImage box_blur(const GrayImage& src, int radius) {
  if (radius <= 0) return src;
  GrayImage out;
  GrayImage scratch;
  box_blur_into(src, radius, out, scratch);
  return out;
}

void gaussian_blur_into(const GrayImage& src, double sigma, GrayImage& out,
                        GrayImage& scratch) {
  if (sigma <= 0.0) {
    out = src;
    return;
  }
  // Ideal box width for 3 passes: w = sqrt(12 sigma^2 / 3 + 1).
  const double ideal = std::sqrt(4.0 * sigma * sigma + 1.0);
  int radius = static_cast<int>((ideal - 1.0) / 2.0);
  if (radius < 1) radius = 1;
  // Each box pass reads only `scratch` while writing `out`, so chaining
  // out -> out is alias-safe.
  box_pass_horizontal(src, radius, scratch);
  box_pass_vertical(scratch, radius, out);
  box_pass_horizontal(out, radius, scratch);
  box_pass_vertical(scratch, radius, out);
  box_pass_horizontal(out, radius, scratch);
  box_pass_vertical(scratch, radius, out);
}

GrayImage gaussian_blur(const GrayImage& src, double sigma) {
  if (sigma <= 0.0) return src;
  GrayImage out;
  GrayImage scratch;
  gaussian_blur_into(src, sigma, out, scratch);
  return out;
}

void threshold_into(const GrayImage& src, std::uint8_t value, BinaryImage& out) {
  out.reset(src.width(), src.height());
  const std::uint8_t* in = src.data().data();
  std::uint8_t* dst = out.data().data();
  const std::size_t count = src.data().size();
  // Branchless apply: (pixel >= value) is 0/1; negation yields 0x00/0xFF,
  // exactly kBackground/kForeground. A single data-independent row pass
  // like this vectorises to byte-compare + mask (16-32 px per instruction).
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] = static_cast<std::uint8_t>(-static_cast<int>(in[i] >= value));
  }
}

BinaryImage threshold(const GrayImage& src, std::uint8_t value) {
  BinaryImage out;
  threshold_into(src, value, out);
  return out;
}

void otsu_threshold_into(const GrayImage& src, BinaryImage& out,
                         std::uint8_t* chosen) {
  // Four interleaved sub-histograms break the read-modify-write dependency
  // when neighbouring pixels share a bin (the common case on sky/field
  // backgrounds), letting the accumulation loop pipeline ~4x wider. The
  // merged histogram is bit-identical to a single-pass count.
  std::array<std::uint32_t, 256> h0{};
  std::array<std::uint32_t, 256> h1{};
  std::array<std::uint32_t, 256> h2{};
  std::array<std::uint32_t, 256> h3{};
  const std::uint8_t* pixels = src.data().data();
  const std::size_t count = src.data().size();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    ++h0[pixels[i]];
    ++h1[pixels[i + 1]];
    ++h2[pixels[i + 2]];
    ++h3[pixels[i + 3]];
  }
  for (; i < count; ++i) ++h0[pixels[i]];
  std::array<std::uint64_t, 256> histogram{};
  for (int v = 0; v < 256; ++v) {
    histogram[v] = static_cast<std::uint64_t>(h0[v]) + h1[v] + h2[v] + h3[v];
  }

  const double total = static_cast<double>(src.data().size());
  double sum_all = 0.0;
  for (int v = 0; v < 256; ++v) sum_all += static_cast<double>(v) * static_cast<double>(histogram[v]);

  double sum_background = 0.0;
  double weight_background = 0.0;
  double best_variance = -1.0;
  int best_threshold = 128;

  for (int t = 0; t < 256; ++t) {
    weight_background += static_cast<double>(histogram[t]);
    if (weight_background == 0.0) continue;
    const double weight_foreground = total - weight_background;
    if (weight_foreground == 0.0) break;
    sum_background += static_cast<double>(t) * static_cast<double>(histogram[t]);
    const double mean_background = sum_background / weight_background;
    const double mean_foreground = (sum_all - sum_background) / weight_foreground;
    const double diff = mean_background - mean_foreground;
    const double variance = weight_background * weight_foreground * diff * diff;
    if (variance > best_variance) {
      best_variance = variance;
      best_threshold = t + 1;  // foreground is >= threshold
    }
  }
  if (chosen != nullptr) *chosen = static_cast<std::uint8_t>(best_threshold);
  threshold_into(src, static_cast<std::uint8_t>(best_threshold), out);
}

BinaryImage otsu_threshold(const GrayImage& src, std::uint8_t* chosen) {
  BinaryImage out;
  otsu_threshold_into(src, out, chosen);
  return out;
}

void invert_into(const GrayImage& src, GrayImage& out) {
  out.reset(src.width(), src.height());
  for (std::size_t i = 0; i < src.data().size(); ++i) {
    out.data()[i] = static_cast<std::uint8_t>(255 - src.data()[i]);
  }
}

GrayImage invert(const GrayImage& src) {
  GrayImage out;
  invert_into(src, out);
  return out;
}

GrayImage add_gaussian_noise(const GrayImage& src, double stddev, hdc::util::Rng& rng) {
  if (stddev <= 0.0) return src;
  GrayImage out(src.width(), src.height());
  for (std::size_t i = 0; i < src.data().size(); ++i) {
    const double noisy = src.data()[i] + rng.gaussian(0.0, stddev);
    out.data()[i] = static_cast<std::uint8_t>(hdc::util::clamp(noisy, 0.0, 255.0));
  }
  return out;
}

GrayImage add_salt_pepper(const GrayImage& src, double fraction, hdc::util::Rng& rng) {
  GrayImage out = src;
  if (fraction <= 0.0) return out;
  for (std::uint8_t& v : out.data()) {
    if (rng.chance(fraction)) v = rng.chance(0.5) ? 255 : 0;
  }
  return out;
}

GrayImage adjust_lighting(const GrayImage& src, double gain, double bias) {
  GrayImage out(src.width(), src.height());
  for (std::size_t i = 0; i < src.data().size(); ++i) {
    const double adjusted = gain * src.data()[i] + bias;
    out.data()[i] = static_cast<std::uint8_t>(hdc::util::clamp(adjusted, 0.0, 255.0));
  }
  return out;
}

}  // namespace hdc::imaging
