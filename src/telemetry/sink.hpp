// TelemetrySink — consumer hook for metric snapshots.
//
// A sink receives whole MetricsSnapshots (aggregated, name-sorted) from
// MetricsRegistry::publish(). The canonical subscriber is
// protocol::JournalRecorder, which filters the snapshot down to the
// replay-deterministic counter namespace and appends it to the event
// journal as a wire::MetricSnapshotRecord — so a recorded run's counter
// totals survive into deterministic replay (docs/OBSERVABILITY.md).
//
// Publishing is a cold-path registry scan; call it at deterministic
// checkpoints (finalize, drain boundaries), never per frame. Snapshots
// published at wall-clock-driven instants would NOT replay bit-identically.
#pragma once

#include "telemetry/metrics.hpp"

namespace hdc::telemetry {

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  /// Receives one aggregated snapshot. Called on the publishing thread.
  virtual void on_snapshot(const MetricsSnapshot& snapshot) = 0;
};

}  // namespace hdc::telemetry
