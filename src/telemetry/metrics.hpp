// Process-wide metrics registry: named counters, gauges and log-bucketed
// latency histograms for the recognition -> dialogue -> coordination
// pipeline.
//
// Hot-path contract (the whole point of this layer):
//   - Recording through a handle is WAIT-FREE: one relaxed fetch_add into a
//     per-thread stripe (plus a relaxed CAS loop for the histogram max).
//     No locks, no allocation, no stores shared between writer threads —
//     each thread owns a cache-line-aligned stripe, so shards never
//     contend on a metric cell.
//   - Aggregation happens ONLY at snapshot time: `snapshot()` sums the
//     stripes. Totals are exact (every increment lands in exactly one
//     stripe); a snapshot taken mid-write is consistent in the seqlock
//     sense — monotonic, never torn below the field level.
//   - Handle creation (`counter()/gauge()/histogram()`) is the COLD path:
//     it takes a mutex and may allocate. Services create handles at
//     construction and keep them; frames never look a name up.
//
// A default-constructed handle is disarmed: every record is a no-op branch.
// Services accept an optional `MetricsRegistry*` and wire handles only when
// one is supplied, so the un-instrumented build path stays untouched.
// `bench/bench_telemetry_overhead.cpp` gates the instrumented recognition
// path within the 3% noise floor of docs/PERFORMANCE.md.
//
// Exposition: `render_text()` emits Prometheus-style text (summary
// quantiles from the histogram buckets); `docs/OBSERVABILITY.md` is the
// naming scheme + format spec, pinned by tests/telemetry_metrics_test.cpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/histogram_buckets.hpp"

namespace hdc::telemetry {

/// Global kill switch for the clock reads in tracing spans (TELEMETRY_SPAN).
/// Counters stay live regardless — they are cheap and replay-deterministic.
namespace detail {
inline std::atomic<bool> g_enabled{true};
}  // namespace detail

[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

inline constexpr std::size_t kStripes = 8;  // power of two

/// Stable per-thread stripe slot; threads round-robin over the stripes so
/// K shard workers land on K distinct cache lines (for K <= kStripes).
[[nodiscard]] inline std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return slot;
}

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct CounterNode {
  std::string name;
  std::array<CounterCell, kStripes> cells{};
};

struct alignas(64) GaugeCell {
  std::atomic<std::int64_t> value{0};
};

struct GaugeNode {
  std::string name;
  std::array<GaugeCell, kStripes> cells{};
};

struct alignas(64) HistogramStripe {
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> max{0};
};

struct HistogramNode {
  std::string name;
  std::array<HistogramStripe, kStripes> stripes{};
};

}  // namespace detail

/// Monotonic counter handle. Copyable, trivially destructible; the node it
/// points at lives as long as the owning registry.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t delta = 1) noexcept {
    if (node_ == nullptr) return;
    node_->cells[detail::thread_stripe()].value.fetch_add(delta,
                                                          std::memory_order_relaxed);
  }

  [[nodiscard]] bool armed() const noexcept { return node_ != nullptr; }

  /// Exact aggregate across stripes (snapshot-time read; not for hot paths).
  [[nodiscard]] std::uint64_t total() const noexcept {
    if (node_ == nullptr) return 0;
    std::uint64_t sum = 0;
    for (const auto& cell : node_->cells) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterNode* node) noexcept : node_(node) {}
  detail::CounterNode* node_{nullptr};
};

/// Signed up/down gauge (queue depths). The value is the exact sum of the
/// striped deltas, so +1 at push / -1 at pop from different threads still
/// aggregates exactly.
class Gauge {
 public:
  Gauge() = default;

  void add(std::int64_t delta) noexcept {
    if (node_ == nullptr) return;
    node_->cells[detail::thread_stripe()].value.fetch_add(delta,
                                                          std::memory_order_relaxed);
  }

  [[nodiscard]] bool armed() const noexcept { return node_ != nullptr; }

  [[nodiscard]] std::int64_t value() const noexcept {
    if (node_ == nullptr) return 0;
    std::int64_t sum = 0;
    for (const auto& cell : node_->cells) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeNode* node) noexcept : node_(node) {}
  detail::GaugeNode* node_{nullptr};
};

/// Fixed-size log-bucketed latency histogram (nanosecond domain). See
/// telemetry/histogram_buckets.hpp for the bucket geometry and the <= 12.5%
/// percentile error bound.
class Histogram {
 public:
  Histogram() = default;

  void record(std::uint64_t value) noexcept {
    if (node_ == nullptr) return;
    detail::HistogramStripe& stripe = node_->stripes[detail::thread_stripe()];
    stripe.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    stripe.sum.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = stripe.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !stripe.max.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] bool armed() const noexcept { return node_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramNode* node) noexcept : node_(node) {}
  detail::HistogramNode* node_{nullptr};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value{0};
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value{0};
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count{0};
  std::uint64_t sum{0};
  std::uint64_t max{0};
  std::vector<std::uint64_t> buckets;  ///< kBucketCount entries, stripe-summed

  /// Percentile (q in [0, 1]) as the midpoint representative of the bucket
  /// holding the ceil(q * count)-th sample. 0 for an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;
};

/// One consistent view of every metric in a registry, aggregated across
/// stripes. Entries are sorted by name (the canonical exposition order).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] const CounterSnapshot* find_counter(std::string_view name) const noexcept;
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      std::string_view name) const noexcept;

  /// The activity between `prev` and this snapshot of the SAME registry:
  /// counters and histogram count/sum/buckets subtract element-wise (a
  /// metric absent from `prev` keeps its full value), gauges keep their
  /// current level (a gauge is a level, not a rate), and a histogram's
  /// max is kept from the current snapshot — max is not delta-able, so it
  /// is an upper bound for the interval, documented as such. Lets one
  /// registry span a benchmark matrix while each cell reports only its
  /// own percentiles (the streaming bench's per-cell stage stats).
  [[nodiscard]] MetricsSnapshot delta(const MetricsSnapshot& prev) const;
};

class TelemetrySink;

/// Named-metric registry. Get-or-create by name is mutex-guarded (cold
/// path); recording through the returned handles is wait-free. Nodes have
/// stable addresses for the registry's lifetime (deque storage), so handles
/// stay valid across later registrations.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Prometheus-style text exposition of a fresh snapshot: counters and
  /// gauges as single samples, histograms as summaries with
  /// quantile="0.5|0.9|0.99" plus _count/_sum/_max. Format pinned by
  /// tests/telemetry_metrics_test.cpp; spec in docs/OBSERVABILITY.md.
  [[nodiscard]] std::string render_text() const;
  [[nodiscard]] static std::string render_text(const MetricsSnapshot& snapshot);

  /// Push a fresh snapshot to a sink (e.g. protocol::JournalRecorder).
  void publish(TelemetrySink& sink) const;

  /// Process-wide default instance for callers without wiring of their own.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::deque<detail::CounterNode> counters_;
  std::deque<detail::GaugeNode> gauges_;
  std::deque<detail::HistogramNode> histograms_;
};

}  // namespace hdc::telemetry
