// Lock-free flight recorder: per-thread bounded rings of TraceEvent
// records, overwrite-oldest, zero allocation on the frame path.
//
// Each writer thread owns one lane (registered on first emit; a deque
// keeps lane addresses stable). Within a lane the writer is single and
// readers are concurrent, so every slot is a tiny seqlock — the same
// idiom GrantRegistry uses, TSAN-clean under the documented fence
// discipline. collect() validates each slot's version against the exact
// value its logical index implies, so a reader can tell "overwritten
// while I was reading" from "consistent" without ever blocking the
// writer: export-during-write returns only events that were fully
// written and not yet overwritten.
//
// Cost contract (same as span.hpp's SpanTimer): a pipeline stage holds a
// TracedSpan; with no recorder wired and a disarmed histogram it costs
// two predictable branches and zero clock reads. With a recorder, the
// span's single clock pair feeds both the stage histogram and the trace
// event — tracing never adds a second clock read to an already-timed
// stage. The CI gate (bench/bench_telemetry_overhead.cpp, "traced"
// column) holds the armed+traced frame path within the same 3% budget
// as armed metrics alone.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace.hpp"

namespace hdc::telemetry {

class FlightRecorder {
 public:
  /// lane_capacity is rounded up to a power of two; each writer thread
  /// keeps that many most-recent events.
  explicit FlightRecorder(std::size_t lane_capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event to the calling thread's lane, overwriting the
  /// oldest if the lane is full. Wait-free after the thread's first call
  /// (which registers the lane under a mutex).
  void emit(const TraceEvent& event);

  /// Zero-duration event stamped with one clock read — for stages that
  /// mark a point in the causal story (acks, outcomes, terminal drops)
  /// rather than a measured interval.
  void emit_instant(const TraceContext& context, TraceStage stage,
                    TraceOutcome outcome);

  /// Snapshot of every event that is fully written and not yet
  /// overwritten, across all lanes, sorted by (t_start, trace_id, stage).
  /// Safe concurrent with writers; slots the writers are mid-overwrite on
  /// are skipped, never torn.
  [[nodiscard]] std::vector<TraceEvent> collect() const;

  /// Total events ever emitted across all lanes.
  [[nodiscard]] std::uint64_t total_emitted() const;
  /// Events lost to overwrite-oldest across all lanes.
  [[nodiscard]] std::uint64_t overwritten() const;

  [[nodiscard]] std::size_t lane_capacity() const noexcept {
    return lane_capacity_;
  }
  /// Number of registered writer lanes (== distinct writer threads seen).
  [[nodiscard]] std::size_t lanes() const;

 private:
  struct Slot {
    // Seqlock per slot: version is odd while the writer is mid-store,
    // and lands on exactly 2*(wrap_count+1) when slot write w completes —
    // collect() uses that to detect overwrites precisely.
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> meta{0};  ///< stream | stage<<32 | outcome<<40
    std::atomic<std::uint64_t> sequence{0};
    std::atomic<std::uint64_t> t_start{0};
    std::atomic<std::uint64_t> t_end{0};
  };

  struct Lane {
    explicit Lane(std::size_t capacity) : slots(capacity) {}
    std::vector<Slot> slots;
    alignas(64) std::atomic<std::uint64_t> head{0};  ///< next logical index
  };

  Lane& lane_for_this_thread();

  const std::size_t lane_capacity_;
  const std::uint64_t instance_id_;
  mutable std::mutex lanes_mutex_;     ///< guards lane registration + iteration
  std::deque<Lane> lanes_;             ///< deque: stable addresses, no moves
};

/// Scoped stage timer that feeds a histogram AND the flight recorder from
/// one clock pair. Replaces TELEMETRY_SPAN at stages that participate in
/// causal tracing. The trace context may be set after construction
/// (set_context) for sites where the sequence is only known under a lock;
/// an event is emitted only when a recorder is wired AND a context was
/// set. set_outcome() tags the event (default kOk) — terminal outcomes
/// (kRejected, kClosed) are how backpressure paths close their traces.
class TracedSpan {
 public:
  TracedSpan(Histogram histogram, FlightRecorder* recorder,
             const TraceContext& context, TraceStage stage) noexcept
      : histogram_(histogram),
        recorder_(recorder),
        context_(context),
        stage_(stage),
        have_context_(context.trace_id != 0),
        armed_((histogram.armed() || recorder != nullptr) && enabled()),
        start_ns_(armed_ ? now_ns() : 0) {}

  TracedSpan(const TracedSpan&) = delete;
  TracedSpan& operator=(const TracedSpan&) = delete;

  void set_context(const TraceContext& context) noexcept {
    context_ = context;
    have_context_ = context.trace_id != 0;
  }
  void set_outcome(TraceOutcome outcome) noexcept { outcome_ = outcome; }

  ~TracedSpan() {
    if (!armed_) return;
    const std::uint64_t end_ns = now_ns();
    if (histogram_.armed()) {
      histogram_.record(end_ns - start_ns_);
    }
    if (recorder_ != nullptr && have_context_) {
      recorder_->emit({context_.trace_id, context_.stream_id,
                       context_.sequence, stage_, outcome_, start_ns_,
                       end_ns});
    }
  }

 private:
  Histogram histogram_;
  FlightRecorder* recorder_;
  TraceContext context_;
  TraceStage stage_;
  TraceOutcome outcome_{TraceOutcome::kOk};
  bool have_context_;
  bool armed_;
  std::uint64_t start_ns_;
};

}  // namespace hdc::telemetry
