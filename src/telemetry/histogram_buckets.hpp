// Log-bucketed (HDR-style) histogram geometry shared by the metrics
// registry and its tests.
//
// The value domain is unsigned 64-bit (the pipeline records nanoseconds).
// Buckets are exact below 8 and log-spaced above: each power-of-two octave
// is split into kSubBuckets (= 8) equal-width sub-buckets, so a bucket's
// width is at most 1/8th of its lower bound. Reporting the bucket midpoint
// therefore bounds the relative error of any reported percentile by half a
// bucket width — 1/16th (6.25%) of the true value, and never worse than a
// full bucket width (12.5%), the bound `tests/telemetry_metrics_test.cpp`
// asserts against exact sorted samples.
//
// The layout is fixed-size (kBucketCount entries covers the whole u64
// range), so a histogram never allocates after construction and snapshots
// are plain array reads.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace hdc::telemetry {

inline constexpr std::size_t kSubBucketBits = 3;
inline constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;  // 8

/// Buckets 0..7 hold values 0..7 exactly; octave e >= 3 contributes 8
/// sub-buckets starting at index (e - 2) * 8. The top octave (e = 63) ends
/// at index 495.
inline constexpr std::size_t kBucketCount = (64 - kSubBucketBits + 1) * kSubBuckets;

/// Bucket index for a value. Wait-free, branch-light, total over u64.
[[nodiscard]] constexpr std::size_t bucket_index(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const unsigned exponent = static_cast<unsigned>(std::bit_width(value)) - 1;  // >= 3
  const std::uint64_t sub = (value >> (exponent - kSubBucketBits)) & (kSubBuckets - 1);
  return (static_cast<std::size_t>(exponent) - kSubBucketBits + 1) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

/// Smallest value that lands in bucket `index` (inverse of bucket_index).
[[nodiscard]] constexpr std::uint64_t bucket_lower_bound(std::size_t index) noexcept {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const std::size_t block = index / kSubBuckets;               // >= 1
  const std::uint64_t sub = static_cast<std::uint64_t>(index % kSubBuckets);
  const unsigned exponent = static_cast<unsigned>(block) + kSubBucketBits - 1;  // >= 3
  return (kSubBuckets + sub) << (exponent - kSubBucketBits);
}

/// Midpoint representative reported for a bucket (exact for the unit-width
/// buckets below 8).
[[nodiscard]] constexpr std::uint64_t bucket_representative(std::size_t index) noexcept {
  const std::uint64_t lower = bucket_lower_bound(index);
  if (index + 1 >= kBucketCount) return lower;
  const std::uint64_t width = bucket_lower_bound(index + 1) - lower;
  return lower + width / 2;
}

static_assert(bucket_index(0) == 0);
static_assert(bucket_index(7) == 7);
static_assert(bucket_index(8) == 8);
static_assert(bucket_index(15) == 15);
static_assert(bucket_index(16) == 16);
static_assert(bucket_lower_bound(bucket_index(8)) == 8);
static_assert(bucket_lower_bound(bucket_index(1024)) == 1024);
static_assert(bucket_index(~std::uint64_t{0}) == kBucketCount - 1);

}  // namespace hdc::telemetry
