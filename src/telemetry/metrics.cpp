#include "telemetry/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/sink.hpp"

namespace hdc::telemetry {

std::uint64_t HistogramSnapshot::percentile(double q) const noexcept {
  if (count == 0 || buckets.empty()) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return bucket_representative(i);
  }
  return bucket_representative(buckets.size() - 1);
}

const CounterSnapshot* MetricsSnapshot::find_counter(
    std::string_view name) const noexcept {
  for (const CounterSnapshot& entry : counters) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const HistogramSnapshot& entry : histograms) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& prev) const {
  MetricsSnapshot out;

  const auto prev_counter = [&prev](const std::string& name) -> std::uint64_t {
    const CounterSnapshot* entry = prev.find_counter(name);
    return entry != nullptr ? entry->value : 0;
  };

  out.counters.reserve(counters.size());
  for (const CounterSnapshot& entry : counters) {
    const std::uint64_t before = prev_counter(entry.name);
    out.counters.push_back(
        {entry.name, entry.value >= before ? entry.value - before : 0});
  }

  // A gauge is a level, not a rate: the current level IS the interval's
  // reading.
  out.gauges = gauges;

  out.histograms.reserve(histograms.size());
  for (const HistogramSnapshot& entry : histograms) {
    const HistogramSnapshot* before = prev.find_histogram(entry.name);
    HistogramSnapshot diff;
    diff.name = entry.name;
    diff.buckets = entry.buckets;
    diff.sum = entry.sum;
    // Max cannot be subtracted; the current max is an upper bound for the
    // interval (exact when the interval contains the all-time max).
    diff.max = entry.max;
    if (before != nullptr) {
      diff.sum = entry.sum >= before->sum ? entry.sum - before->sum : 0;
      for (std::size_t i = 0;
           i < diff.buckets.size() && i < before->buckets.size(); ++i) {
        diff.buckets[i] = diff.buckets[i] >= before->buckets[i]
                              ? diff.buckets[i] - before->buckets[i]
                              : 0;
      }
    }
    for (const std::uint64_t bucket : diff.buckets) diff.count += bucket;
    out.histograms.push_back(std::move(diff));
  }
  return out;
}

Counter MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  for (detail::CounterNode& node : counters_) {
    if (node.name == name) return Counter(&node);
  }
  detail::CounterNode& node = counters_.emplace_back();
  node.name.assign(name);
  return Counter(&node);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  for (detail::GaugeNode& node : gauges_) {
    if (node.name == name) return Gauge(&node);
  }
  detail::GaugeNode& node = gauges_.emplace_back();
  node.name.assign(name);
  return Gauge(&node);
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  for (detail::HistogramNode& node : histograms_) {
    if (node.name == name) return Histogram(&node);
  }
  detail::HistogramNode& node = histograms_.emplace_back();
  node.name.assign(name);
  return Histogram(&node);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  {
    const std::scoped_lock lock(mutex_);
    out.counters.reserve(counters_.size());
    for (const detail::CounterNode& node : counters_) {
      std::uint64_t sum = 0;
      for (const detail::CounterCell& cell : node.cells) {
        sum += cell.value.load(std::memory_order_relaxed);
      }
      out.counters.push_back({node.name, sum});
    }
    out.gauges.reserve(gauges_.size());
    for (const detail::GaugeNode& node : gauges_) {
      std::int64_t sum = 0;
      for (const detail::GaugeCell& cell : node.cells) {
        sum += cell.value.load(std::memory_order_relaxed);
      }
      out.gauges.push_back({node.name, sum});
    }
    out.histograms.reserve(histograms_.size());
    for (const detail::HistogramNode& node : histograms_) {
      HistogramSnapshot snap;
      snap.name = node.name;
      snap.buckets.assign(kBucketCount, 0);
      for (const detail::HistogramStripe& stripe : node.stripes) {
        for (std::size_t i = 0; i < kBucketCount; ++i) {
          snap.buckets[i] += stripe.buckets[i].load(std::memory_order_relaxed);
        }
        snap.sum += stripe.sum.load(std::memory_order_relaxed);
        snap.max = std::max(snap.max, stripe.max.load(std::memory_order_relaxed));
      }
      // The authoritative count is the bucket sum: count and buckets can
      // never disagree within one snapshot, even when taken mid-write.
      for (const std::uint64_t bucket : snap.buckets) snap.count += bucket;
      out.histograms.push_back(std::move(snap));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

std::string MetricsRegistry::render_text() const { return render_text(snapshot()); }

std::string MetricsRegistry::render_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const CounterSnapshot& entry : snapshot.counters) {
    out << "# TYPE " << entry.name << " counter\n";
    out << entry.name << ' ' << entry.value << '\n';
  }
  for (const GaugeSnapshot& entry : snapshot.gauges) {
    out << "# TYPE " << entry.name << " gauge\n";
    out << entry.name << ' ' << entry.value << '\n';
  }
  for (const HistogramSnapshot& entry : snapshot.histograms) {
    out << "# TYPE " << entry.name << " summary\n";
    out << entry.name << "{quantile=\"0.5\"} " << entry.percentile(0.50) << '\n';
    out << entry.name << "{quantile=\"0.9\"} " << entry.percentile(0.90) << '\n';
    out << entry.name << "{quantile=\"0.99\"} " << entry.percentile(0.99) << '\n';
    out << entry.name << "_count " << entry.count << '\n';
    out << entry.name << "_sum " << entry.sum << '\n';
    out << entry.name << "_max " << entry.max << '\n';
  }
  return out.str();
}

void MetricsRegistry::publish(TelemetrySink& sink) const { sink.on_snapshot(snapshot()); }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace hdc::telemetry
