#include "telemetry/health.hpp"

#include <algorithm>
#include <sstream>

namespace hdc::telemetry {

void FleetHealthMonitor::observe_queues(
    const std::vector<QueueObservation>& queues) {
  for (const QueueObservation& queue : queues) {
    ShardWatch& watch = watch_[queue.shard];
    const bool stale =
        watch.seen && queue.depth > 0 && queue.popped == watch.last_popped;
    watch.stale_rounds = stale ? watch.stale_rounds + 1 : 0;
    watch.last_popped = queue.popped;
    watch.last_depth = queue.depth;
    watch.seen = true;
  }
}

HealthReport FleetHealthMonitor::evaluate(
    const std::vector<TraceEvent>& events,
    const std::vector<StreamAccounting>& streams) const {
  HealthReport report;

  // Envelope totals of completed traces, bucketed per stream.
  std::map<std::uint32_t, std::vector<std::uint64_t>> totals;
  for (const FrameTrace& frame : assemble_frames(events)) {
    if (is_terminal(frame.terminal)) continue;
    totals[frame.stream_id].push_back(frame.total_ns());
  }

  std::vector<StreamAccounting> sorted = streams;
  std::sort(sorted.begin(), sorted.end(),
            [](const StreamAccounting& a, const StreamAccounting& b) {
              return a.stream_id < b.stream_id;
            });

  for (const StreamAccounting& accounting : sorted) {
    StreamHealth health;
    health.stream_id = accounting.stream_id;

    if (auto it = totals.find(accounting.stream_id); it != totals.end()) {
      std::vector<std::uint64_t>& samples = it->second;
      std::sort(samples.begin(), samples.end());
      health.frames = samples.size();
      // Nearest-rank p99: rank ceil(0.99 * n), 1-based.
      const std::size_t rank = (samples.size() * 99 + 99) / 100;
      health.p99_ns = samples[std::min(rank, samples.size()) - 1];
    }

    const std::uint64_t lost = accounting.dropped + accounting.rejected;
    if (accounting.submitted > 0) {
      health.drop_rate = static_cast<double>(lost) /
                         static_cast<double>(accounting.submitted);
    }
    health.latency_violation =
        health.frames > 0 && health.p99_ns > config_.frame_latency_p99_budget_ns;
    health.drop_violation = health.drop_rate > config_.drop_rate_ceiling;

    if (health.latency_violation || health.drop_violation) {
      health.status = HealthStatus::kCritical;
    } else if (lost > 0) {
      health.status = HealthStatus::kWarn;
    }
    report.streams.push_back(health);
  }

  for (const auto& [shard, watch] : watch_) {
    ShardHealth health;
    health.shard = shard;
    health.depth = watch.last_depth;
    health.stalled = watch.stale_rounds >= config_.stall_observations;
    report.shards.push_back(health);
  }

  for (const StreamHealth& stream : report.streams) {
    report.status = std::max(report.status, stream.status);
  }
  for (const ShardHealth& shard : report.shards) {
    if (shard.stalled) report.status = HealthStatus::kCritical;
  }
  return report;
}

std::string HealthReport::render_text() const {
  std::ostringstream out;
  out << "fleet_health " << to_string(status) << "\n";
  for (const StreamHealth& stream : streams) {
    out << "stream " << stream.stream_id << " " << to_string(stream.status)
        << " frames=" << stream.frames << " p99_ns=" << stream.p99_ns
        << " drop_rate=" << stream.drop_rate;
    if (stream.latency_violation) out << " [latency over budget]";
    if (stream.drop_violation) out << " [drop rate over ceiling]";
    out << "\n";
  }
  for (const ShardHealth& shard : shards) {
    out << "shard " << shard.shard << " depth=" << shard.depth
        << (shard.stalled ? " STALLED\n" : " ok\n");
  }
  return out.str();
}

std::string HealthReport::render_json() const {
  std::ostringstream out;
  out << "{\"status\": \"" << to_string(status) << "\", \"streams\": [";
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const StreamHealth& stream = streams[i];
    if (i != 0) out << ", ";
    out << "{\"stream\": " << stream.stream_id << ", \"status\": \""
        << to_string(stream.status) << "\", \"frames\": " << stream.frames
        << ", \"p99_ns\": " << stream.p99_ns
        << ", \"drop_rate\": " << stream.drop_rate
        << ", \"latency_violation\": "
        << (stream.latency_violation ? "true" : "false")
        << ", \"drop_violation\": "
        << (stream.drop_violation ? "true" : "false") << "}";
  }
  out << "], \"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardHealth& shard = shards[i];
    if (i != 0) out << ", ";
    out << "{\"shard\": " << shard.shard << ", \"depth\": " << shard.depth
        << ", \"stalled\": " << (shard.stalled ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace hdc::telemetry
