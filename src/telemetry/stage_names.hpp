// Canonical metric names for the pipeline, so services, benches and tests
// agree on spelling. Naming scheme (docs/OBSERVABILITY.md):
//
//   <layer>_<stage>_ns        latency histogram (steady-clock nanoseconds)
//   <layer>_<what>_total      monotonic counter
//   <layer>_<what>            gauge (queue depths)
//
// Counters under the `interaction_` / `coordination_` layers that are
// incremented only while a worker processes an admitted input are the
// REPLAY-DETERMINISTIC set (protocol::replay_deterministic_counters()):
// their totals are a pure function of the recorded input sequence, so a
// journal snapshot of them must reproduce bit-exactly on replay.
#pragma once

#include <string_view>

#include "telemetry/metrics.hpp"

namespace hdc::telemetry {

// --- perception (frame submit -> shard ring -> recognition) -------------
inline constexpr std::string_view kPerceptionSubmit = "perception_submit_ns";
inline constexpr std::string_view kPerceptionRingWait = "perception_ring_wait_ns";
inline constexpr std::string_view kPerceptionRecognize = "perception_recognize_ns";
inline constexpr std::string_view kPerceptionFramesSubmitted =
    "perception_frames_submitted_total";
inline constexpr std::string_view kPerceptionFramesDropped =
    "perception_frames_dropped_total";
inline constexpr std::string_view kPerceptionFramesRejected =
    "perception_frames_rejected_total";
inline constexpr std::string_view kPerceptionQueueDepth = "perception_queue_depth";

// --- recognition (inside the shared pipeline; per prepare/match/finalize) -
inline constexpr std::string_view kRecognitionPrepare = "recognition_prepare_ns";
inline constexpr std::string_view kRecognitionMatch = "recognition_match_ns";
inline constexpr std::string_view kRecognitionFinalize = "recognition_finalize_ns";

// --- interaction (fuser + dialogue FSM worker) ---------------------------
inline constexpr std::string_view kInteractionFuse = "interaction_fuse_ns";
inline constexpr std::string_view kInteractionTransition = "interaction_transition_ns";
inline constexpr std::string_view kInteractionObservations =
    "interaction_observations_total";
inline constexpr std::string_view kInteractionEvents = "interaction_events_total";
inline constexpr std::string_view kInteractionActions = "interaction_actions_total";
inline constexpr std::string_view kInteractionOutcomes = "interaction_outcomes_total";
inline constexpr std::string_view kInteractionShed = "interaction_shed_total";
inline constexpr std::string_view kInteractionQueueDepth = "interaction_queue_depth";

// --- coordination (arbiter + grant registry worker) ----------------------
inline constexpr std::string_view kCoordinationArbitrate = "coordination_arbitrate_ns";
inline constexpr std::string_view kCoordinationGrantSpan = "coordination_grant_ns";
inline constexpr std::string_view kCoordinationRenewSpan = "coordination_renew_ns";
inline constexpr std::string_view kCoordinationExpireSpan = "coordination_expire_ns";
inline constexpr std::string_view kCoordinationEvents = "coordination_events_total";
inline constexpr std::string_view kCoordinationArbitrations =
    "coordination_arbitrations_total";
inline constexpr std::string_view kCoordinationDeferrals =
    "coordination_deferrals_total";
inline constexpr std::string_view kCoordinationGrants = "coordination_grants_total";
inline constexpr std::string_view kCoordinationDenials = "coordination_denials_total";
inline constexpr std::string_view kCoordinationRevocations =
    "coordination_revocations_total";
inline constexpr std::string_view kCoordinationRenewals =
    "coordination_renewals_total";
inline constexpr std::string_view kCoordinationExpiries =
    "coordination_expiries_total";
inline constexpr std::string_view kCoordinationQueueDepth = "coordination_queue_depth";

// --- protocol (event journal) --------------------------------------------
inline constexpr std::string_view kJournalAppend = "journal_append_ns";
inline constexpr std::string_view kJournalRecords = "journal_records_total";

/// Stage-timer handles threaded into the shared recognition pipeline via
/// RecognizerScratch / MicroBatchScratch (one per worker — same ownership
/// as the scratch buffers). Disarmed by default; PerceptionService and
/// BatchRecognizer arm them when a registry is wired.
struct RecognitionStageMetrics {
  Histogram prepare_ns;   ///< stages 1-6 (imaging -> signature) per frame
  Histogram match_ns;     ///< SignDatabase query / query_many per call
  Histogram finalize_ns;  ///< match -> RecognitionResult per frame

  [[nodiscard]] static RecognitionStageMetrics from(MetricsRegistry& registry) {
    RecognitionStageMetrics metrics;
    metrics.prepare_ns = registry.histogram(kRecognitionPrepare);
    metrics.match_ns = registry.histogram(kRecognitionMatch);
    metrics.finalize_ns = registry.histogram(kRecognitionFinalize);
    return metrics;
  }
};

}  // namespace hdc::telemetry
