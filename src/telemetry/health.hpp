// Fleet health monitor: per-stream SLO evaluation over the flight
// recorder's causal traces plus stream/queue accounting.
//
// Three SLO dimensions per HealthSloConfig:
//   - frame->completion p99 budget, computed from trace envelope totals
//     (dropped/rejected traces excluded — they never completed);
//   - drop-rate ceiling, (dropped + rejected) / submitted per stream;
//   - stalled-shard watchdog: a shard whose queue shows depth but whose
//     pop counter has not advanced across N observe_queues() calls is
//     stalled (the gauge is "stale" — depth without progress).
//
// The monitor is deliberately a pull-model evaluator: it holds no locks
// the pipeline touches and is fed collected traces + gauge snapshots at
// whatever cadence the operator samples. evaluate() is const and
// deterministic for fixed inputs; only the watchdog (observe_queues) is
// stateful. Rendered next to MetricsRegistry::render_text() by the
// streaming bench; enforced by tests/telemetry_health_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace hdc::telemetry {

struct HealthSloConfig {
  /// p99 budget for a frame's end-to-end trace envelope.
  std::uint64_t frame_latency_p99_budget_ns = 50'000'000;
  /// Ceiling on (dropped + rejected) / submitted per stream.
  double drop_rate_ceiling = 0.05;
  /// Consecutive observe_queues() calls with depth > 0 and no pop
  /// progress before a shard is declared stalled.
  std::size_t stall_observations = 3;
};

enum class HealthStatus : std::uint8_t { kOk = 0, kWarn, kCritical };

[[nodiscard]] constexpr const char* to_string(HealthStatus status) noexcept {
  switch (status) {
    case HealthStatus::kOk: return "ok";
    case HealthStatus::kWarn: return "warn";
    case HealthStatus::kCritical: return "critical";
  }
  return "?";
}

/// Per-stream frame accounting, supplied by the caller (the telemetry
/// layer cannot depend on recognition's stream stats — callers convert).
struct StreamAccounting {
  std::uint32_t stream_id{0};
  std::uint64_t submitted{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped{0};
  std::uint64_t rejected{0};
};

/// One shard-queue sample for the stalled-shard watchdog: current depth
/// plus the monotonic count of frames ever popped from that shard's ring.
struct QueueObservation {
  std::size_t shard{0};
  std::size_t depth{0};
  std::uint64_t popped{0};
};

struct StreamHealth {
  std::uint32_t stream_id{0};
  std::uint64_t frames{0};      ///< completed traces evaluated
  std::uint64_t p99_ns{0};      ///< envelope-total p99 (0 when no frames)
  double drop_rate{0.0};
  bool latency_violation{false};
  bool drop_violation{false};
  HealthStatus status{HealthStatus::kOk};
};

struct ShardHealth {
  std::size_t shard{0};
  std::size_t depth{0};
  bool stalled{false};
};

struct HealthReport {
  HealthStatus status{HealthStatus::kOk};
  std::vector<StreamHealth> streams;  ///< sorted by stream_id
  std::vector<ShardHealth> shards;    ///< sorted by shard

  [[nodiscard]] std::string render_text() const;
  [[nodiscard]] std::string render_json() const;
};

class FleetHealthMonitor {
 public:
  explicit FleetHealthMonitor(HealthSloConfig config = {}) : config_(config) {}

  /// Feeds one round of shard-queue samples to the watchdog. A shard with
  /// depth > 0 whose popped counter matches the previous round's is stale;
  /// config.stall_observations consecutive stale rounds mark it stalled.
  /// Progress (or an empty queue) resets the count.
  void observe_queues(const std::vector<QueueObservation>& queues);

  /// Evaluates per-stream SLOs over collected trace events + accounting,
  /// folding in the watchdog's current stall verdicts. Pure with respect
  /// to the inputs; deterministic ordering in the report.
  [[nodiscard]] HealthReport evaluate(
      const std::vector<TraceEvent>& events,
      const std::vector<StreamAccounting>& streams) const;

  [[nodiscard]] const HealthSloConfig& config() const noexcept {
    return config_;
  }

 private:
  struct ShardWatch {
    std::uint64_t last_popped{0};
    std::size_t last_depth{0};
    std::size_t stale_rounds{0};
    bool seen{false};
  };

  HealthSloConfig config_;
  std::map<std::size_t, ShardWatch> watch_;  ///< ordered: deterministic report
};

}  // namespace hdc::telemetry
