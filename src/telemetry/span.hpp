// Tracing spans: RAII stage timers recording steady-clock elapsed
// nanoseconds into a telemetry::Histogram.
//
//   telemetry::Histogram recognize_ns = registry.histogram(
//       telemetry::kPerceptionRecognize);
//   ...
//   {
//     TELEMETRY_SPAN(recognize_ns);
//     recognize_frames_micro_batch(...);
//   }  // elapsed ns recorded here
//
// Cost model: a span against a disarmed handle (no registry wired) or with
// telemetry::set_enabled(false) is two predictable branches and zero clock
// reads. Armed and enabled, it is two steady_clock reads plus one wait-free
// histogram record. The span inventory for the pipeline lives in
// docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <cstdint>

#include "telemetry/metrics.hpp"

namespace hdc::telemetry {

[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class SpanTimer {
 public:
  explicit SpanTimer(Histogram histogram) noexcept {
    if (histogram.armed() && enabled()) {
      histogram_ = histogram;
      start_ns_ = now_ns();
    }
  }

  ~SpanTimer() {
    if (histogram_.armed()) {
      const std::uint64_t end_ns = now_ns();
      histogram_.record(end_ns > start_ns_ ? end_ns - start_ns_ : 0);
    }
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  Histogram histogram_{};
  std::uint64_t start_ns_{0};
};

}  // namespace hdc::telemetry

#define HDC_TELEMETRY_CONCAT_INNER(a, b) a##b
#define HDC_TELEMETRY_CONCAT(a, b) HDC_TELEMETRY_CONCAT_INNER(a, b)

/// Times the enclosing scope into `histogram` (a telemetry::Histogram
/// handle). No-op when the handle is disarmed or telemetry is disabled.
#define TELEMETRY_SPAN(histogram)                                          \
  ::hdc::telemetry::SpanTimer HDC_TELEMETRY_CONCAT(telemetry_span_,        \
                                                   __COUNTER__)(histogram)
