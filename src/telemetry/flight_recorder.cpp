#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <unordered_map>

namespace hdc::telemetry {

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Recorder instance ids are minted once and never recycled, so a stale
/// thread-local cache entry for a destroyed recorder can never alias a
/// live one.
std::atomic<std::uint64_t> g_next_instance_id{1};

}  // namespace

FlightRecorder::FlightRecorder(std::size_t lane_capacity)
    : lane_capacity_(round_up_pow2(lane_capacity < 2 ? 2 : lane_capacity)),
      instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {}

FlightRecorder::Lane& FlightRecorder::lane_for_this_thread() {
  // Single-entry cache in front of a per-thread map: the common case — a
  // pipeline thread emitting into one recorder — is one compare; a thread
  // alternating between recorders (tests, replay alongside a live run)
  // falls back to the map instead of registering a fresh lane per switch.
  struct Cached {
    std::uint64_t instance_id{0};
    Lane* lane{nullptr};
  };
  thread_local Cached cached;
  thread_local std::unordered_map<std::uint64_t, Lane*> known;

  if (cached.instance_id == instance_id_) return *cached.lane;
  if (auto it = known.find(instance_id_); it != known.end()) {
    cached = {instance_id_, it->second};
    return *it->second;
  }
  Lane* lane = nullptr;
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    lane = &lanes_.emplace_back(lane_capacity_);
  }
  known.emplace(instance_id_, lane);
  cached = {instance_id_, lane};
  return *lane;
}

void FlightRecorder::emit(const TraceEvent& event) {
  Lane& lane = lane_for_this_thread();
  const std::uint64_t head = lane.head.load(std::memory_order_relaxed);
  Slot& slot = lane.slots[head & (lane_capacity_ - 1)];

  // Seqlock write: odd version -> release fence -> payload -> even
  // version (release). The completed version for logical index i is
  // exactly 2 * (i / capacity + 1); collect() validates against that to
  // detect overwrites without locking the writer out.
  const std::uint64_t version = slot.version.load(std::memory_order_relaxed);
  slot.version.store(version + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.trace_id.store(event.trace_id, std::memory_order_relaxed);
  slot.meta.store(static_cast<std::uint64_t>(event.stream_id) |
                      static_cast<std::uint64_t>(event.stage) << 32 |
                      static_cast<std::uint64_t>(event.outcome) << 40,
                  std::memory_order_relaxed);
  slot.sequence.store(event.sequence, std::memory_order_relaxed);
  slot.t_start.store(event.t_start_ns, std::memory_order_relaxed);
  slot.t_end.store(event.t_end_ns, std::memory_order_relaxed);
  slot.version.store(version + 2, std::memory_order_release);
  lane.head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::emit_instant(const TraceContext& context,
                                  TraceStage stage, TraceOutcome outcome) {
  const std::uint64_t now = now_ns();
  emit({context.trace_id, context.stream_id, context.sequence, stage, outcome,
        now, now});
}

std::vector<TraceEvent> FlightRecorder::collect() const {
  std::vector<TraceEvent> events;
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  for (const Lane& lane : lanes_) {
    const std::uint64_t head = lane.head.load(std::memory_order_acquire);
    const std::uint64_t begin =
        head > lane_capacity_ ? head - lane_capacity_ : 0;
    for (std::uint64_t i = begin; i < head; ++i) {
      const Slot& slot = lane.slots[i & (lane_capacity_ - 1)];
      const std::uint64_t expected = 2 * (i / lane_capacity_ + 1);
      const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 != expected) continue;  // mid-write (odd) or overwritten
      TraceEvent event;
      event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      event.stream_id = static_cast<std::uint32_t>(meta & 0xFFFF'FFFFu);
      event.stage = static_cast<TraceStage>(meta >> 32 & 0xFF);
      event.outcome = static_cast<TraceOutcome>(meta >> 40 & 0xFF);
      event.sequence = slot.sequence.load(std::memory_order_relaxed);
      event.t_start_ns = slot.t_start.load(std::memory_order_relaxed);
      event.t_end_ns = slot.t_end.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.version.load(std::memory_order_relaxed) != v1) continue;
      events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.t_start_ns != b.t_start_ns)
                return a.t_start_ns < b.t_start_ns;
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.stage < b.stage;
            });
  return events;
}

std::uint64_t FlightRecorder::total_emitted() const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.head.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t FlightRecorder::overwritten() const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) {
    const std::uint64_t head = lane.head.load(std::memory_order_acquire);
    if (head > lane_capacity_) total += head - lane_capacity_;
  }
  return total;
}

std::size_t FlightRecorder::lanes() const {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  return lanes_.size();
}

}  // namespace hdc::telemetry
