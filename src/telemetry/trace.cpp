#include "telemetry/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace hdc::telemetry {

namespace {

/// Chrome trace-event timestamps are microseconds. We keep nanosecond
/// precision with deterministic, locale-free integer formatting (never a
/// double — doubles would make the pinned-JSON test flaky): 12345 ns
/// renders as "12.345".
std::string format_us(std::uint64_t ns) {
  std::ostringstream out;
  out << ns / 1000 << '.';
  const std::uint64_t frac = ns % 1000;
  out << static_cast<char>('0' + frac / 100)
      << static_cast<char>('0' + frac / 10 % 10)
      << static_cast<char>('0' + frac % 10);
  return out.str();
}

std::string format_hex_id(std::uint64_t id) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const auto nibble = static_cast<unsigned>(id >> shift & 0xF);
    if (nibble != 0) started = true;
    if (started) out.push_back(kDigits[nibble]);
  }
  if (!started) out.push_back('0');
  return out;
}

/// One async begin/end pair. The Chrome format matches async events by
/// (cat, id): using the STAGE NAME as the category gives every stage its
/// own balanced track per frame, so stages whose intervals overlap (e.g.
/// submit and queue_wait) can never be mis-nested by the viewer.
void append_async_pair(std::ostringstream& out, const char* cat,
                       const std::string& id, std::uint32_t pid,
                       const std::string& name, const char* args_key,
                       const char* args_value, std::uint64_t t_start_ns,
                       std::uint64_t t_end_ns, bool& first) {
  const char* sep = first ? "\n" : ",\n";
  first = false;
  out << sep << R"({"ph":"b","cat":")" << cat << R"(","id":")" << id
      << R"(","pid":)" << pid << R"(,"tid":0,"ts":)" << format_us(t_start_ns)
      << R"(,"name":")" << name << '"';
  if (args_key != nullptr) {
    out << R"(,"args":{")" << args_key << R"(":")" << args_value << R"("})";
  }
  out << '}';
  out << ",\n"
      << R"({"ph":"e","cat":")" << cat << R"(","id":")" << id
      << R"(","pid":)" << pid << R"(,"tid":0,"ts":)" << format_us(t_end_ns)
      << R"(,"name":")" << name << "\"}";
}

}  // namespace

std::vector<FrameTrace> assemble_frames(std::vector<TraceEvent> events) {
  std::unordered_map<std::uint64_t, FrameTrace> by_id;
  by_id.reserve(events.size());
  for (TraceEvent& event : events) {
    FrameTrace& frame = by_id[event.trace_id];
    if (frame.events.empty()) {
      frame.trace_id = event.trace_id;
      frame.stream_id = event.stream_id;
      frame.sequence = event.sequence;
      frame.t_start_ns = event.t_start_ns;
      frame.t_end_ns = event.t_end_ns;
    } else {
      frame.t_start_ns = std::min(frame.t_start_ns, event.t_start_ns);
      frame.t_end_ns = std::max(frame.t_end_ns, event.t_end_ns);
    }
    if (is_terminal(event.outcome)) frame.terminal = event.outcome;
    frame.events.push_back(event);
  }

  std::vector<FrameTrace> frames;
  frames.reserve(by_id.size());
  for (auto& [id, frame] : by_id) {
    std::sort(frame.events.begin(), frame.events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.t_start_ns != b.t_start_ns)
                  return a.t_start_ns < b.t_start_ns;
                return a.stage < b.stage;
              });
    frames.push_back(std::move(frame));
  }
  std::sort(frames.begin(), frames.end(),
            [](const FrameTrace& a, const FrameTrace& b) {
              if (a.stream_id != b.stream_id) return a.stream_id < b.stream_id;
              return a.sequence < b.sequence;
            });
  return frames;
}

std::string export_chrome_trace(const std::vector<TraceEvent>& events) {
  const std::vector<FrameTrace> frames = assemble_frames(events);

  std::ostringstream out;
  out << R"({"displayTimeUnit":"ms","traceEvents":[)";
  bool first = true;

  // One process per stream, named so the Perfetto track list reads
  // "drone-stream N" instead of bare pids.
  std::map<std::uint32_t, bool> streams;
  for (const FrameTrace& frame : frames) streams.emplace(frame.stream_id, true);
  for (const auto& [stream_id, unused] : streams) {
    const char* sep = first ? "\n" : ",\n";
    first = false;
    out << sep
        << R"({"ph":"M","pid":)" << stream_id
        << R"(,"tid":0,"ts":0,"name":"process_name","args":{"name":"drone-stream )"
        << stream_id << R"("}})";
  }

  for (const FrameTrace& frame : frames) {
    const std::string id = format_hex_id(frame.trace_id);
    std::ostringstream frame_name;
    frame_name << "frame " << frame.sequence;
    append_async_pair(out, "frame", id, frame.stream_id, frame_name.str(),
                      "terminal", to_string(frame.terminal), frame.t_start_ns,
                      frame.t_end_ns, first);
    for (const TraceEvent& event : frame.events) {
      append_async_pair(out, to_string(event.stage), id, frame.stream_id,
                        to_string(event.stage), "outcome",
                        to_string(event.outcome), event.t_start_ns,
                        event.t_end_ns, first);
    }
  }

  out << "\n]}\n";
  return out.str();
}

TailReport build_tail_report(const std::vector<TraceEvent>& events,
                             std::size_t worst_k, std::uint64_t min_total_ns) {
  TailReport report;
  report.threshold_ns = min_total_ns;

  std::vector<FrameTrace> frames = assemble_frames(events);
  std::vector<TailFrame> candidates;
  for (const FrameTrace& frame : frames) {
    // A dropped/rejected trace never completed: it cannot be an exemplar
    // for a completion-latency percentile.
    if (is_terminal(frame.terminal)) continue;
    ++report.frames_seen;
    if (frame.total_ns() < min_total_ns) continue;

    TailFrame tail;
    tail.trace_id = frame.trace_id;
    tail.stream_id = frame.stream_id;
    tail.sequence = frame.sequence;
    tail.total_ns = frame.total_ns();

    std::uint64_t per_stage[kTraceStageCount] = {};
    for (const TraceEvent& event : frame.events) {
      per_stage[static_cast<std::size_t>(event.stage)] +=
          event.t_end_ns - event.t_start_ns;
    }
    for (std::size_t s = 0; s < kTraceStageCount; ++s) {
      if (per_stage[s] == 0) continue;
      tail.breakdown.push_back({static_cast<TraceStage>(s), per_stage[s]});
    }
    std::stable_sort(tail.breakdown.begin(), tail.breakdown.end(),
                     [](const StageShare& a, const StageShare& b) {
                       return a.ns > b.ns;
                     });
    if (!tail.breakdown.empty()) {
      tail.dominant_stage = tail.breakdown.front().stage;
      tail.dominant_ns = tail.breakdown.front().ns;
    }
    candidates.push_back(std::move(tail));
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const TailFrame& a, const TailFrame& b) {
                     return a.total_ns > b.total_ns;
                   });
  if (candidates.size() > worst_k) candidates.resize(worst_k);
  report.worst = std::move(candidates);
  return report;
}

std::string TailReport::render_json() const {
  std::ostringstream out;
  out << "{\"frames_seen\": " << frames_seen
      << ", \"threshold_ns\": " << threshold_ns << ", \"worst\": [";
  for (std::size_t i = 0; i < worst.size(); ++i) {
    const TailFrame& frame = worst[i];
    if (i != 0) out << ", ";
    out << "{\"stream\": " << frame.stream_id
        << ", \"sequence\": " << frame.sequence
        << ", \"total_ns\": " << frame.total_ns
        << ", \"dominant_stage\": \"" << to_string(frame.dominant_stage)
        << "\", \"dominant_ns\": " << frame.dominant_ns
        << ", \"breakdown\": {";
    for (std::size_t j = 0; j < frame.breakdown.size(); ++j) {
      if (j != 0) out << ", ";
      out << '"' << to_string(frame.breakdown[j].stage)
          << "\": " << frame.breakdown[j].ns;
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace hdc::telemetry
