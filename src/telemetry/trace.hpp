// End-to-end causal tracing: per-frame trace identity, fixed-size trace
// events, a Chrome/Perfetto exporter and tail-latency attribution.
//
// PR 8's histograms say THAT a p99 is high; this layer says WHICH frame,
// stage, queue or arbitration made it high. The design rests on one
// decision: a frame's trace identity is a PURE FUNCTION of the identity
// the pipeline already carries everywhere — (stream_id, sequence) —
//
//   trace_id = ((stream_id + 1) & 0xFFFF) << 48 | (sequence & 2^48-1)
//
// so the context "propagates" by construction: StreamResult carries it
// explicitly, and every downstream record (SignEvent onset/end sequences,
// AckAction {stream_id, tick}, OutcomeRecord {stream_id, final_sequence},
// FleetEvent {drone_id, sequence}) reconstitutes the identical context
// from the fields it already has. No wire format changes, no bytes added
// to journaled records, and journal replay mints bit-identical ids —
// tracing can stay armed through a replay without perturbing it.
//
// Stages append fixed-size TraceEvent records into a FlightRecorder
// (telemetry/flight_recorder.hpp) — bounded, lock-free, overwrite-oldest.
// On top of the collected events:
//   - export_chrome_trace(): Chrome trace-event JSON, openable in
//     ui.perfetto.dev — one process track per stream, one async track per
//     stage, frame envelopes enclosing the stage slices;
//   - build_tail_report(): names, for the worst-k frames, which stage or
//     queue-wait dominated the end-to-end latency (the exemplars behind
//     every p99 the streaming bench reports).
//
// The enforcing tests are tests/telemetry_trace_test.cpp; the cost gate is
// bench/bench_telemetry_overhead.cpp's "traced" column.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hdc::telemetry {

/// Deterministic trace identity for one frame of one stream. Never zero
/// (the +1 keeps stream 0 / sequence 0 distinguishable from "no context"),
/// stable across live runs and journal replays of the same input. The top
/// 16 bits disambiguate streams, the low 48 the per-stream sequence — both
/// far beyond any deployment in this codebase.
[[nodiscard]] constexpr std::uint64_t make_trace_id(
    std::uint32_t stream_id, std::uint64_t sequence) noexcept {
  return ((static_cast<std::uint64_t>(stream_id) + 1) & 0xFFFFu) << 48 |
         (sequence & 0xFFFF'FFFF'FFFFu);
}

/// The causal identity minted at PerceptionService::submit and carried (or
/// reconstituted via of()) through every later stage of the frame's life.
struct TraceContext {
  std::uint32_t stream_id{0};
  std::uint64_t sequence{0};
  std::uint64_t trace_id{0};

  [[nodiscard]] static constexpr TraceContext of(std::uint32_t stream_id,
                                                 std::uint64_t sequence) noexcept {
    return {stream_id, sequence, make_trace_id(stream_id, sequence)};
  }
};

/// Pipeline stages a trace event can belong to, in causal order.
enum class TraceStage : std::uint8_t {
  kSubmit = 0,   ///< PerceptionService::submit (admission)
  kQueueWait,    ///< shard ring residency, submit -> worker pop
  kRecognize,    ///< micro-batched recognition window
  kAdmit,        ///< InteractionService admission (shed/drop/reject here)
  kFuse,         ///< SignEventFuser::observe
  kTransition,   ///< dialogue FSM on_event/on_tick/abort
  kAck,          ///< one applied AckAction (instant)
  kOutcome,      ///< dialogue outcome decided (instant)
  kArbitrate,    ///< SessionArbiter::on_phase for the triggering event
  kGrantUpdate,  ///< GrantRegistry mutation (grant/deny/revoke/renew)
};
inline constexpr std::size_t kTraceStageCount = 10;

[[nodiscard]] constexpr const char* to_string(TraceStage stage) noexcept {
  switch (stage) {
    case TraceStage::kSubmit: return "submit";
    case TraceStage::kQueueWait: return "queue_wait";
    case TraceStage::kRecognize: return "recognize";
    case TraceStage::kAdmit: return "admit";
    case TraceStage::kFuse: return "fuse";
    case TraceStage::kTransition: return "transition";
    case TraceStage::kAck: return "ack";
    case TraceStage::kOutcome: return "outcome";
    case TraceStage::kArbitrate: return "arbitrate";
    case TraceStage::kGrantUpdate: return "grant_update";
  }
  return "?";
}

/// Outcome code of one trace event. kDropped / kRejected / kClosed / kShed
/// are TERMINAL: they are the last event of their trace (no trace may end
/// open — the backpressure paths emit them exactly where the frame dies).
enum class TraceOutcome : std::uint8_t {
  kOk = 0,    ///< stage completed normally
  kAccepted,  ///< recognition accepted the frame
  kNoMatch,   ///< recognition rejected the frame (not an error)
  kConflict,  ///< grant refused: the cell was held by another drone
  kDropped,   ///< terminal: evicted under kDropOldest before processing
  kRejected,  ///< terminal: refused at admission under kReject
  kClosed,    ///< terminal: refused because the service is stopping
  kShed,      ///< terminal: neutral observation shed under congestion
  kError,     ///< terminal: the pipeline threw processing this frame
};

[[nodiscard]] constexpr const char* to_string(TraceOutcome outcome) noexcept {
  switch (outcome) {
    case TraceOutcome::kOk: return "ok";
    case TraceOutcome::kAccepted: return "accepted";
    case TraceOutcome::kNoMatch: return "no_match";
    case TraceOutcome::kConflict: return "conflict";
    case TraceOutcome::kDropped: return "dropped";
    case TraceOutcome::kRejected: return "rejected";
    case TraceOutcome::kClosed: return "closed";
    case TraceOutcome::kShed: return "shed";
    case TraceOutcome::kError: return "error";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_terminal(TraceOutcome outcome) noexcept {
  switch (outcome) {
    case TraceOutcome::kDropped:
    case TraceOutcome::kRejected:
    case TraceOutcome::kClosed:
    case TraceOutcome::kShed:
    case TraceOutcome::kError:
      return true;
    default:
      return false;
  }
}

/// One fixed-size record in the flight recorder. Trivially copyable; the
/// recorder packs it into six u64 seqlock-protected atomics per slot.
struct TraceEvent {
  std::uint64_t trace_id{0};
  std::uint32_t stream_id{0};
  std::uint64_t sequence{0};
  TraceStage stage{TraceStage::kSubmit};
  TraceOutcome outcome{TraceOutcome::kOk};
  std::uint64_t t_start_ns{0};
  std::uint64_t t_end_ns{0};

  [[nodiscard]] bool operator==(const TraceEvent&) const = default;
};

/// All collected events of one trace_id: the frame's causal story, with
/// the envelope [t_start_ns, t_end_ns] spanning first submit to last
/// stage, and the terminal outcome if the trace ended in one.
struct FrameTrace {
  std::uint64_t trace_id{0};
  std::uint32_t stream_id{0};
  std::uint64_t sequence{0};
  std::uint64_t t_start_ns{0};
  std::uint64_t t_end_ns{0};
  TraceOutcome terminal{TraceOutcome::kOk};  ///< kOk when no terminal event
  std::vector<TraceEvent> events;            ///< sorted by (t_start, stage)

  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return t_end_ns > t_start_ns ? t_end_ns - t_start_ns : 0;
  }
};

/// Groups raw events by trace_id into per-frame stories, sorted by
/// (stream_id, sequence) — the deterministic assembly every consumer
/// (exporter, tail report, health monitor) shares.
[[nodiscard]] std::vector<FrameTrace> assemble_frames(
    std::vector<TraceEvent> events);

/// Chrome trace-event JSON (the ui.perfetto.dev / chrome://tracing
/// format): one process (pid) per stream with a process_name metadata
/// record, one async track per stage category, every frame an async
/// "frame <seq>" envelope (cat "frame", id = hex trace_id) enclosing its
/// stage slices. Timestamps are microseconds with nanosecond precision,
/// formatted deterministically — the exporter's output for a fixed event
/// set is byte-stable (pinned by tests/telemetry_trace_test.cpp).
[[nodiscard]] std::string export_chrome_trace(
    const std::vector<TraceEvent>& events);

/// Per-stage share of one tail frame's end-to-end latency.
struct StageShare {
  TraceStage stage{TraceStage::kSubmit};
  std::uint64_t ns{0};
};

/// One worst-k frame: who it was, how long it took, and which stage ate
/// the time.
struct TailFrame {
  std::uint64_t trace_id{0};
  std::uint32_t stream_id{0};
  std::uint64_t sequence{0};
  std::uint64_t total_ns{0};
  TraceStage dominant_stage{TraceStage::kSubmit};
  std::uint64_t dominant_ns{0};
  std::vector<StageShare> breakdown;  ///< per stage, descending ns
};

/// Tail-latency attribution: joins the recorder's per-frame stories
/// against a latency threshold (typically the frame->ack or submit->result
/// p99 from the histogram layer) and names the dominant stage of each of
/// the worst-k frames. Frames that ended in a terminal drop/reject are
/// excluded — they never completed, so they cannot explain a completion
/// percentile.
struct TailReport {
  std::uint64_t frames_seen{0};     ///< completed traces considered
  std::uint64_t threshold_ns{0};    ///< min_total_ns the caller filtered by
  std::vector<TailFrame> worst;     ///< descending total_ns, at most k

  /// Machine-readable rendering (the streaming bench embeds this as its
  /// `tail_attribution` JSON value).
  [[nodiscard]] std::string render_json() const;
};

[[nodiscard]] TailReport build_tail_report(const std::vector<TraceEvent>& events,
                                           std::size_t worst_k,
                                           std::uint64_t min_total_ns = 0);

}  // namespace hdc::telemetry
