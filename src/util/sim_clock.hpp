// Discrete simulation time. All world simulation (drone, orchard, protocol)
// advances on a fixed-step SimClock rather than wall time so runs are exactly
// reproducible and can execute faster than real time.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace hdc::util {

/// Fixed-step simulation clock. Time is tracked in integer ticks to avoid
/// floating-point drift over long missions; seconds are derived.
class SimClock {
 public:
  explicit SimClock(double tick_seconds = 0.02) : tick_seconds_(tick_seconds) {
    if (tick_seconds <= 0.0) {
      throw std::invalid_argument("SimClock: tick must be positive");
    }
  }

  void advance(std::uint64_t ticks = 1) noexcept { ticks_ += ticks; }

  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(ticks_) * tick_seconds_;
  }
  [[nodiscard]] double tick_seconds() const noexcept { return tick_seconds_; }

  /// Number of whole ticks covering `seconds` (rounded up, at least 1).
  [[nodiscard]] std::uint64_t ticks_for(double seconds) const noexcept {
    if (seconds <= 0.0) return 0;
    const double exact = seconds / tick_seconds_;
    auto whole = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(whole) < exact) ++whole;
    return whole == 0 ? 1 : whole;
  }

 private:
  std::uint64_t ticks_{0};
  double tick_seconds_;
};

/// Simple countdown timer bound to simulation seconds.
class SimTimer {
 public:
  SimTimer() = default;

  void start(double now_seconds, double duration_seconds) noexcept {
    deadline_ = now_seconds + duration_seconds;
    armed_ = true;
  }
  void cancel() noexcept { armed_ = false; }
  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] bool expired(double now_seconds) const noexcept {
    return armed_ && now_seconds >= deadline_;
  }
  [[nodiscard]] double remaining(double now_seconds) const noexcept {
    return armed_ ? (deadline_ - now_seconds) : 0.0;
  }

 private:
  double deadline_{0.0};
  bool armed_{false};
};

}  // namespace hdc::util
