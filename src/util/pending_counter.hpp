// In-flight work accounting shared by the streaming services
// (PerceptionService, InteractionService): producers raise() BEFORE
// publishing an item — the consumer may finish it before the publish call
// even returns, and the decrement must never precede the increment —
// workers finish() it, and drain() blocks until everything raised before
// the call is finished, rethrowing the first recorded worker error (the
// slot clears, so the next drain reports only newer failures). finish()
// takes the mutex only on the ->0 transition, so the per-item hot path
// never locks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <utility>

namespace hdc::util {

class PendingCounter {
 public:
  void raise(std::size_t count = 1) noexcept {
    pending_.fetch_add(count, std::memory_order_acq_rel);
  }

  void finish(std::size_t count = 1) {
    if (pending_.fetch_sub(count, std::memory_order_acq_rel) == count) {
      // ->0 transition: publish under the mutex so a drain() that just
      // checked the predicate and is about to sleep cannot miss the wakeup.
      std::lock_guard<std::mutex> lock(mutex_);
      cv_.notify_all();
    }
  }

  /// Stores the first error (later ones are dropped — the first is what
  /// drain() reports).
  void record_error(std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (first_error_ == nullptr) first_error_ = std::move(error);
  }

  /// Blocks until the count reaches zero, then rethrows the first recorded
  /// error, if any. Safe to call repeatedly and concurrently.
  void drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock,
             [this] { return pending_.load(std::memory_order_acquire) == 0; });
    if (first_error_ != nullptr) {
      std::exception_ptr error = std::exchange(first_error_, nullptr);
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

 private:
  std::atomic<std::uint64_t> pending_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::exception_ptr first_error_;  ///< guarded by mutex_
};

}  // namespace hdc::util
