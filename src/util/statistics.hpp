// Streaming statistics (Welford) and small descriptive-statistics helpers
// used by benches and the orchard mission reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace hdc::util {

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double value) noexcept {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Percentile of a sample by linear interpolation (copies + sorts the data).
[[nodiscard]] inline double percentile(std::vector<double> values, double pct) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (pct < 0.0 || pct > 100.0) throw std::invalid_argument("percentile: pct out of range");
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

/// Sample mean (convenience for bench reporting).
[[nodiscard]] inline double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace hdc::util
