#include "util/table.hpp"

#include <algorithm>
#include <cmath>

namespace hdc::util {

std::string ascii_plot(const std::vector<double>& values, int height, int max_width) {
  if (values.empty() || height < 2) return "(empty series)\n";

  // Downsample to at most max_width columns by bucket-averaging.
  std::vector<double> cols;
  const std::size_t n = values.size();
  const std::size_t width = std::min<std::size_t>(n, static_cast<std::size_t>(max_width));
  cols.reserve(width);
  for (std::size_t c = 0; c < width; ++c) {
    const std::size_t begin = c * n / width;
    const std::size_t end = std::max(begin + 1, (c + 1) * n / width);
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += values[i];
    cols.push_back(sum / static_cast<double>(end - begin));
  }

  const auto [min_it, max_it] = std::minmax_element(cols.begin(), cols.end());
  const double lo = *min_it;
  const double hi = *max_it;
  const double span = (hi - lo) > 1e-12 ? (hi - lo) : 1.0;

  std::string out;
  for (int row = height - 1; row >= 0; --row) {
    const double row_lo = lo + span * row / height;
    for (double v : cols) {
      out += (v >= row_lo) ? '#' : ' ';
    }
    out += '\n';
  }
  out += "min=" + fmt(lo) + " max=" + fmt(hi) + " n=" + std::to_string(n) + "\n";
  return out;
}

}  // namespace hdc::util
