// Geometry primitives shared by every HDC module: 2-D/3-D vectors, angle
// helpers, axis-aligned boxes and small linear-algebra utilities.
//
// Conventions
//  - World frame: x east, y north, z up (metres).
//  - Image frame: u right, v down (pixels).
//  - Headings are radians counter-clockwise from +x unless a function name
//    says degrees.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <ostream>

namespace hdc::util {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Degrees -> radians.
[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept {
  return deg * kPi / 180.0;
}

/// Radians -> degrees.
[[nodiscard]] constexpr double rad_to_deg(double rad) noexcept {
  return rad * 180.0 / kPi;
}

/// Wraps an angle to [-pi, pi).
[[nodiscard]] inline double wrap_angle(double rad) noexcept {
  double a = std::fmod(rad + kPi, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a - kPi;
}

/// Wraps an angle to [0, 2*pi).
[[nodiscard]] inline double wrap_angle_positive(double rad) noexcept {
  double a = std::fmod(rad, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}

/// Smallest absolute difference between two angles, in [0, pi].
[[nodiscard]] inline double angle_distance(double a, double b) noexcept {
  return std::abs(wrap_angle(a - b));
}

/// Linear interpolation; t outside [0,1] extrapolates.
[[nodiscard]] constexpr double lerp(double a, double b, double t) noexcept {
  return a + (b - a) * t;
}

/// Clamps x into [lo, hi].
[[nodiscard]] constexpr double clamp(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// 2-D vector with the usual arithmetic. Used for image-plane points,
/// ground-plane positions and generic pairs of doubles.
struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }
  Vec2& operator+=(const Vec2& o) noexcept { x += o.x; y += o.y; return *this; }
  Vec2& operator-=(const Vec2& o) noexcept { x -= o.x; y -= o.y; return *this; }
  Vec2& operator*=(double s) noexcept { x *= s; y *= s; return *this; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] constexpr double dot(const Vec2& o) const noexcept { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product of the two vectors lifted to z=0.
  [[nodiscard]] constexpr double cross(const Vec2& o) const noexcept { return x * o.y - y * o.x; }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(x * x + y * y); }
  [[nodiscard]] constexpr double norm_sq() const noexcept { return x * x + y * y; }
  [[nodiscard]] double distance_to(const Vec2& o) const noexcept { return (*this - o).norm(); }
  /// Unit vector; the zero vector normalises to itself.
  [[nodiscard]] Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Angle of the vector from +x, in (-pi, pi].
  [[nodiscard]] double angle() const noexcept { return std::atan2(y, x); }
  /// Rotates counter-clockwise by `rad`.
  [[nodiscard]] Vec2 rotated(double rad) const noexcept {
    const double c = std::cos(rad), s = std::sin(rad);
    return {x * c - y * s, x * s + y * c};
  }
  /// Perpendicular vector (90 degrees counter-clockwise).
  [[nodiscard]] constexpr Vec2 perp() const noexcept { return {-y, x}; }
};

[[nodiscard]] constexpr Vec2 operator*(double s, const Vec2& v) noexcept { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

/// 3-D vector: world positions (x east, y north, z up) and directions.
struct Vec3 {
  double x{0.0};
  double y{0.0};
  double z{0.0};

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const noexcept { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const noexcept { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const noexcept { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const noexcept { return {-x, -y, -z}; }
  Vec3& operator+=(const Vec3& o) noexcept { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) noexcept { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(double s) noexcept { x *= s; y *= s; z *= s; return *this; }
  constexpr bool operator==(const Vec3&) const = default;

  [[nodiscard]] constexpr double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(x * x + y * y + z * z); }
  [[nodiscard]] constexpr double norm_sq() const noexcept { return x * x + y * y + z * z; }
  [[nodiscard]] double distance_to(const Vec3& o) const noexcept { return (*this - o).norm(); }
  [[nodiscard]] Vec3 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
  /// Projection onto the ground plane (z dropped).
  [[nodiscard]] constexpr Vec2 xy() const noexcept { return {x, y}; }
  /// Rotates around the +z axis by `rad` (counter-clockwise seen from above).
  [[nodiscard]] Vec3 rotated_z(double rad) const noexcept {
    const double c = std::cos(rad), s = std::sin(rad);
    return {x * c - y * s, x * s + y * c, z};
  }
};

[[nodiscard]] constexpr Vec3 operator*(double s, const Vec3& v) noexcept { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// Axis-aligned 2-D box; used for geofences, image ROIs and orchard plots.
struct Box2 {
  Vec2 min{};
  Vec2 max{};

  [[nodiscard]] constexpr bool contains(const Vec2& p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  [[nodiscard]] constexpr double width() const noexcept { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const noexcept { return max.y - min.y; }
  [[nodiscard]] constexpr Vec2 center() const noexcept {
    return {(min.x + max.x) * 0.5, (min.y + max.y) * 0.5};
  }
  /// Grows the box symmetrically by `margin` on every side.
  [[nodiscard]] constexpr Box2 inflated(double margin) const noexcept {
    return {{min.x - margin, min.y - margin}, {max.x + margin, max.y + margin}};
  }
  /// Smallest box covering both operands.
  [[nodiscard]] constexpr Box2 merged(const Box2& o) const noexcept {
    return {{std::min(min.x, o.min.x), std::min(min.y, o.min.y)},
            {std::max(max.x, o.max.x), std::max(max.y, o.max.y)}};
  }
  /// Nearest point of the box to `p` (p itself when inside).
  [[nodiscard]] constexpr Vec2 clamp_point(const Vec2& p) const noexcept {
    return {clamp(p.x, min.x, max.x), clamp(p.y, min.y, max.y)};
  }
};

/// Distance from point `p` to the segment [a, b].
[[nodiscard]] inline double point_segment_distance(const Vec2& p, const Vec2& a,
                                                   const Vec2& b) noexcept {
  const Vec2 ab = b - a;
  const double len_sq = ab.norm_sq();
  if (len_sq == 0.0) return p.distance_to(a);
  const double t = clamp((p - a).dot(ab) / len_sq, 0.0, 1.0);
  return p.distance_to(a + ab * t);
}

}  // namespace hdc::util
