// Fixed-size worker pool with a parallel-for primitive.
//
// Built for the batch recognition engine: a batch of N independent jobs is
// dispatched once, workers claim job indices from a shared atomic counter
// (no per-job queue churn), and every callback receives its worker id so it
// can use a per-worker scratch arena. The pool threads persist across
// batches, so steady-state dispatch performs no thread creation. The caller
// of run() participates as worker 0, so a 1-worker pool spawns no threads
// and degenerates to a plain sequential loop over the jobs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hdc::util {

class ThreadPool {
 public:
  /// Job callback: (worker_index in [0, worker_count()), job_index in
  /// [0, job_count)).
  using Job = std::function<void(std::size_t, std::size_t)>;

  /// Total worker count including the calling thread; `workers` == 0 selects
  /// std::thread::hardware_concurrency() (minimum 1). A pool of W workers
  /// spawns W - 1 threads.
  explicit ThreadPool(std::size_t workers = 0) {
    if (workers == 0) {
      workers = std::thread::hardware_concurrency();
      if (workers == 0) workers = 1;
    }
    worker_count_ = workers;
    threads_.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return worker_count_; }

  /// Runs `job` for every index in [0, job_count) across the pool and blocks
  /// until every job has finished. The calling thread drains jobs as
  /// worker 0 alongside the pool threads (workers 1..W-1). If any job
  /// throws, the batch still runs to completion and the first exception is
  /// rethrown here; the pool remains usable. Not reentrant: one batch at a
  /// time.
  void run(std::size_t job_count, const Job& job) {
    if (job_count == 0) return;
    auto batch = std::make_shared<Batch>();
    batch->job = &job;
    batch->count = job_count;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch_ = batch;
      ++generation_;
    }
    wake_workers_.notify_all();
    drain(*batch, 0);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      batch->done_cv.wait(lock, [&batch] {
        return batch->done.load(std::memory_order_acquire) == batch->count;
      });
    }
    // `job` may not be referenced past this point: workers still holding the
    // batch shared_ptr only observe an exhausted claim counter.
    if (batch->failed.load(std::memory_order_acquire)) {
      std::rethrow_exception(batch->error);
    }
  }

 private:
  /// One dispatched batch. Held via shared_ptr so a worker waking late (or
  /// finishing late) can never touch freed state: a stale batch is simply
  /// exhausted. `job` stays valid while any claimed index is in flight,
  /// because run() cannot return before `done` reaches `count`.
  struct Batch {
    const Job* job{nullptr};
    std::size_t count{0};
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  ///< first job exception; written once under mutex_
    std::condition_variable done_cv;
  };

  void drain(Batch& batch, std::size_t worker_index) {
    while (true) {
      const std::size_t index = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (index >= batch.count) break;
      // A throwing job must not tear down a pool thread (std::terminate) or
      // let run() unwind while other workers are mid-batch; capture the
      // first exception, count the job done, and rethrow from run() after
      // the batch has fully settled.
      try {
        (*batch.job)(worker_index, index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!batch.failed.load(std::memory_order_relaxed)) {
          batch.error = std::current_exception();
          batch.failed.store(true, std::memory_order_release);
        }
      }
      if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.count) {
        // Last job of the batch: wake the caller blocked in run(). The lock
        // orders the notify against the caller entering its wait.
        std::lock_guard<std::mutex> lock(mutex_);
        batch.done_cv.notify_all();
      }
    }
  }

  void worker_loop(std::size_t worker_index) {
    std::uint64_t seen_generation = 0;
    while (true) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_workers_.wait(lock, [this, seen_generation] {
          return stopping_ || generation_ != seen_generation;
        });
        if (stopping_) return;
        seen_generation = generation_;
        batch = batch_;
      }
      drain(*batch, worker_index);
    }
  }

  std::size_t worker_count_{1};
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::shared_ptr<Batch> batch_;   // guarded by mutex_
  std::uint64_t generation_{0};    // guarded by mutex_
  bool stopping_{false};           // guarded by mutex_
};

}  // namespace hdc::util
