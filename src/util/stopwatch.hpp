// Wall-clock stopwatch and accumulating stage timers used by the recognition
// pipeline's latency instrumentation (experiment T-LAT).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace hdc::util {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  [[nodiscard]] double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates per-stage durations and call counts, keyed by stage name.
/// Cheap enough to leave enabled in production paths.
class StageTimers {
 public:
  /// RAII scope that charges its lifetime to one stage.
  class Scope {
   public:
    Scope(StageTimers& owner, std::string stage)
        : owner_(owner), stage_(std::move(stage)) {}
    ~Scope() { owner_.add(stage_, watch_.elapsed_seconds()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageTimers& owner_;
    std::string stage_;
    Stopwatch watch_;
  };

  [[nodiscard]] Scope scope(std::string stage) { return Scope(*this, std::move(stage)); }

  void add(const std::string& stage, double seconds) {
    auto& entry = stages_[stage];
    entry.total_seconds += seconds;
    ++entry.calls;
  }

  struct Entry {
    double total_seconds{0.0};
    std::uint64_t calls{0};
    [[nodiscard]] double mean_ms() const {
      return calls == 0 ? 0.0 : total_seconds * 1e3 / static_cast<double>(calls);
    }
  };

  [[nodiscard]] const std::map<std::string, Entry>& entries() const { return stages_; }
  void reset() { stages_.clear(); }

 private:
  std::map<std::string, Entry> stages_;
};

}  // namespace hdc::util
