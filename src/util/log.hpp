// Lightweight leveled logger. Deliberately minimal: a global level filter and
// stream sink, no locking (HDC simulation is single-threaded by design; see
// DESIGN.md), no allocation on suppressed messages.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace hdc::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration (set once at startup by tools/benches).
class LogConfig {
 public:
  static LogLevel& level() noexcept {
    static LogLevel instance = LogLevel::kWarn;
    return instance;
  }
  static std::ostream*& sink() noexcept {
    static std::ostream* instance = &std::cerr;
    return instance;
  }
};

[[nodiscard]] inline const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Builds one log line and emits it on destruction if the level passes.
class LogLine {
 public:
  LogLine(LogLevel level, const char* component) : level_(level) {
    enabled_ = level >= LogConfig::level() && level != LogLevel::kOff;
    if (enabled_) stream_ << '[' << level_name(level) << "] " << component << ": ";
  }
  ~LogLine() {
    if (enabled_ && LogConfig::sink() != nullptr) {
      *LogConfig::sink() << stream_.str() << '\n';
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace hdc::util

#define HDC_LOG_DEBUG(component) ::hdc::util::LogLine(::hdc::util::LogLevel::kDebug, component)
#define HDC_LOG_INFO(component) ::hdc::util::LogLine(::hdc::util::LogLevel::kInfo, component)
#define HDC_LOG_WARN(component) ::hdc::util::LogLine(::hdc::util::LogLevel::kWarn, component)
#define HDC_LOG_ERROR(component) ::hdc::util::LogLine(::hdc::util::LogLevel::kError, component)
