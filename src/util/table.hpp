// Plain-text table and CSV writers used by the bench harnesses to print the
// rows/series the paper reports.
#pragma once

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace hdc::util {

/// Column-aligned plain-text table. Collects rows of strings and renders
/// them with a header rule, suitable for bench stdout.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size()) {
      throw std::invalid_argument("TextTable: row width != header width");
    }
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(os, header_, widths);
    std::size_t rule = 0;
    for (std::size_t w : widths) rule += w + 2;
    os << std::string(rule, '-') << '\n';
    for (const auto& row : rows_) print_row(os, row, widths);
  }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
[[nodiscard]] inline std::string fmt(double value, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

/// Minimal CSV writer (RFC-4180-style quoting for commas/quotes/newlines).
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path) : out_(path) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  }

  void write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out_ << ',';
      out_ << quoted(cells[i]);
    }
    out_ << '\n';
  }

 private:
  [[nodiscard]] static std::string quoted(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted_cell = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted_cell += '"';
      quoted_cell += ch;
    }
    quoted_cell += '"';
    return quoted_cell;
  }

  std::ofstream out_;
};

/// Renders a single numeric series as a compact ASCII sparkline-style plot,
/// one row per bucket of the value range. Used to print the Figure-4 style
/// time-series in bench output.
[[nodiscard]] std::string ascii_plot(const std::vector<double>& values, int height = 12,
                                     int max_width = 100);

}  // namespace hdc::util
