// Deterministic random number generation.
//
// Every stochastic component in HDC draws from an explicitly seeded Rng so
// that simulations, tests and benches are reproducible run-to-run. The core
// generator is xoshiro256**, seeded through splitmix64 as its authors
// recommend; distributions are implemented locally so results do not depend
// on standard-library implementation details.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace hdc::util {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG with local distribution implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    has_cached_gaussian_ = false;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t value = next();
    while (value >= limit) value = next();
    return lo + static_cast<std::int64_t>(value % span);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double probability) noexcept {
    return uniform() < probability;
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  [[nodiscard]] double gaussian() noexcept {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }

  /// Normal with the given mean / standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Exponential with the given mean (inverse-CDF method).
  [[nodiscard]] double exponential(double mean) noexcept {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Poisson draw (Knuth for small means, normal approximation above 30).
  [[nodiscard]] int poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean > 30.0) {
      const double value = gaussian(mean, std::sqrt(mean));
      return value < 0.0 ? 0 : static_cast<int>(value + 0.5);
    }
    const double limit = std::exp(-mean);
    int count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }

  /// Picks an index in [0, weights.size()) proportionally to `weights`.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) {
    if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
    double total = 0.0;
    for (double w : weights) {
      if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
      total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("weighted_index: zero total weight");
    double target = uniform() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent child generator (for per-component streams).
  [[nodiscard]] Rng fork() noexcept { return Rng(next()); }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_{0.0};
  bool has_cached_gaussian_{false};
};

}  // namespace hdc::util
