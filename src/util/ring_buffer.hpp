// Bounded MPSC ring buffer with a configurable full-queue policy.
//
// Built for the streaming perception service: any number of producer
// threads push frames, exactly one consumer (a shard worker) pops them in
// FIFO order. Capacity is fixed at construction — a live camera feed must
// not buffer unboundedly — and what happens when the ring is full is a
// policy decision the caller makes per deployment:
//
//   kBlock      — the producer waits for space (lossless; backpressure
//                 propagates to the feed, e.g. a file replay).
//   kDropOldest — the oldest queued item is evicted to admit the new one
//                 (a live feed prefers fresh frames over stale ones).
//   kReject     — the new item is refused (the caller decides what to do,
//                 e.g. skip the frame and count it).
//
// The ring never reorders: items pop in push order regardless of policy,
// so per-stream sequence numbers stay monotonic downstream. Eviction and
// rejection are counted, and kDropOldest hands the evicted item back to
// the producer so it can account the loss (e.g. per stream).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace hdc::util {

/// What a full ring does with a new item.
enum class OverflowPolicy : std::uint8_t { kBlock, kDropOldest, kReject };

[[nodiscard]] constexpr const char* to_string(OverflowPolicy policy) noexcept {
  switch (policy) {
    case OverflowPolicy::kBlock: return "block";
    case OverflowPolicy::kDropOldest: return "drop-oldest";
    case OverflowPolicy::kReject: return "reject";
  }
  return "?";
}

/// Outcome of one push.
enum class PushOutcome : std::uint8_t {
  kEnqueued,       ///< item admitted, nothing lost
  kEvictedOldest,  ///< item admitted, the oldest queued item was evicted
  kRejected,       ///< ring full under kReject — item refused
  kClosed,         ///< ring closed — item refused
};

template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(std::size_t capacity,
                       OverflowPolicy policy = OverflowPolicy::kBlock)
      : storage_(checked_capacity(capacity)), policy_(policy) {}

  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  /// Pushes one item (any thread). Under kDropOldest a full ring evicts its
  /// oldest item into `*evicted` (when non-null) before admitting `item`;
  /// under kBlock the call waits until space frees, the ring closes, or the
  /// policy is switched away from kBlock (see set_policy()).
  PushOutcome push(T item, T* evicted = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return closed_ || size_ < storage_.size() ||
             policy_ != OverflowPolicy::kBlock;
    });
    return push_locked(lock, std::move(item), evicted);
  }

  /// Non-blocking push: identical to push() except under kBlock on a full
  /// ring, where it returns kRejected immediately instead of waiting. Lets
  /// a consumer of ring A safely feed ring B when B's consumer also feeds
  /// A (no blocking cycle); the caller owns the retry.
  PushOutcome try_push(T item, T* evicted = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && size_ == storage_.size() &&
        policy_ == OverflowPolicy::kBlock) {
      return PushOutcome::kRejected;
    }
    return push_locked(lock, std::move(item), evicted);
  }

  /// Pops the oldest item, blocking until one arrives or the ring is closed
  /// AND drained. Returns false only on closed-and-empty (the consumer's
  /// shutdown signal). Single consumer.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
    if (size_ == 0) return false;  // closed and drained
    out = std::move(storage_[head_]);
    head_ = next(head_);
    --size_;
    ++popped_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop; returns false when the ring is currently empty.
  bool try_pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == 0) return false;
    out = std::move(storage_[head_]);
    head_ = next(head_);
    --size_;
    ++popped_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Closes the ring: subsequent pushes return kClosed, blocked producers
  /// wake, and the consumer drains what remains before pop() returns false.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return storage_.size(); }
  [[nodiscard]] OverflowPolicy policy() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return policy_;
  }

  /// Switches the overflow policy at runtime (dynamic backpressure: a
  /// congested live feed flips kBlock -> kDropOldest and back). Producers
  /// blocked on a full kBlock ring wake and re-resolve under the new
  /// policy; queued items are untouched (FIFO order is preserved).
  void set_policy(OverflowPolicy policy) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      policy_ = policy;
    }
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }
  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }
  /// Items evicted under kDropOldest since construction.
  [[nodiscard]] std::uint64_t evicted_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evicted_;
  }
  /// Items refused under kReject since construction.
  [[nodiscard]] std::uint64_t rejected_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
  }
  /// Items ever popped since construction. Monotonic: a consumer that is
  /// alive makes this advance, which is exactly the progress signal the
  /// stalled-shard watchdog (telemetry::FleetHealthMonitor) keys on.
  [[nodiscard]] std::uint64_t popped_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return popped_;
  }

 private:
  [[nodiscard]] static std::size_t checked_capacity(std::size_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("BoundedRing: capacity must be positive");
    }
    return capacity;
  }

  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return i + 1 == storage_.size() ? 0 : i + 1;
  }

  /// Shared tail of push()/try_push(): caller holds `lock` and has already
  /// resolved the kBlock wait (or chosen not to wait).
  PushOutcome push_locked(std::unique_lock<std::mutex>& lock, T item,
                          T* evicted) {
    if (closed_) return PushOutcome::kClosed;
    PushOutcome outcome = PushOutcome::kEnqueued;
    if (size_ == storage_.size()) {
      if (policy_ != OverflowPolicy::kDropOldest) {
        ++rejected_;  // kReject (kBlock never reaches here full and open)
        return PushOutcome::kRejected;
      }
      // kDropOldest: overwrite the head slot's occupant.
      T old = std::move(storage_[head_]);
      head_ = next(head_);
      --size_;
      ++evicted_;
      if (evicted != nullptr) *evicted = std::move(old);
      outcome = PushOutcome::kEvictedOldest;
    }
    storage_[tail_] = std::move(item);
    tail_ = next(tail_);
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
    return outcome;
  }

  std::vector<T> storage_;
  OverflowPolicy policy_;  ///< guarded by mutex_ (runtime-switchable)
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::size_t head_{0};  ///< oldest occupied slot
  std::size_t tail_{0};  ///< next free slot
  std::size_t size_{0};
  bool closed_{false};
  std::uint64_t evicted_{0};
  std::uint64_t rejected_{0};
  std::uint64_t popped_{0};
};

}  // namespace hdc::util
