#include "interaction/interaction_service.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/span.hpp"

namespace hdc::interaction {

InteractionService::InteractionService(InteractionServiceConfig config,
                                       CommandGrammar grammar)
    : config_(config),
      grammar_(std::move(grammar)),
      ring_(config.queue_capacity, config.overflow) {
  // Surface a misconfigured fusion policy here, at build time, instead of
  // on the worker thread when the first stream's session is created.
  (void)SignEventFuser(config_.fusion, 0);
  if (config_.metrics != nullptr) {
    telemetry::MetricsRegistry& metrics = *config_.metrics;
    fuse_ns_ = metrics.histogram(telemetry::kInteractionFuse);
    transition_ns_ = metrics.histogram(telemetry::kInteractionTransition);
    observations_counter_ = metrics.counter(telemetry::kInteractionObservations);
    events_counter_ = metrics.counter(telemetry::kInteractionEvents);
    actions_counter_ = metrics.counter(telemetry::kInteractionActions);
    outcomes_counter_ = metrics.counter(telemetry::kInteractionOutcomes);
    shed_counter_ = metrics.counter(telemetry::kInteractionShed);
    queue_depth_ = metrics.gauge(telemetry::kInteractionQueueDepth);
  }
  recorder_ = config_.recorder;
  worker_ = std::thread([this] { worker_loop(); });
}

InteractionService::~InteractionService() { stop(); }

void InteractionService::set_ack_observer(AckObserver observer) {
  ack_observer_ = std::move(observer);
}

void InteractionService::set_dialogue_listener(DialogueListener listener) {
  listener_ = std::move(listener);
}

bool InteractionService::congested() const {
  const recognition::PerceptionService* perception =
      watched_.load(std::memory_order_acquire);
  if (perception == nullptr) return false;
  for (std::size_t s = 0; s < perception->shard_count(); ++s) {
    if (perception->shard_gauge(s).depth >= config_.congestion_depth) {
      return true;
    }
  }
  return false;
}

void InteractionService::on_result(const recognition::StreamResult& result) {
  Observation observation;
  observation.stream_id = result.stream_id;
  observation.sequence = result.sequence;
  observation.confidence = config_.fusion.confidence_of(result.result);
  observation.sign = observation.confidence > 0.0 ? result.result.sign
                                                  : signs::HumanSign::kNeutral;

  // Backpressure decision: while the perception shards are backed up,
  // neutral frames carry no dialogue evidence worth queueing. Opt-in, and
  // the gauges are scanned only for neutral observations (the only shed
  // candidates) — non-neutral frames, and everything when the option is
  // off, must not take cross-shard ring locks on the recognition hot path.
  if (config_.shed_neutral_when_congested &&
      observation.sign == signs::HumanSign::kNeutral) {
    const recognition::PerceptionService* perception =
        watched_.load(std::memory_order_acquire);
    if (perception != nullptr) {
      std::size_t deepest = 0;
      for (std::size_t s = 0; s < perception->shard_count(); ++s) {
        deepest = std::max(deepest, perception->shard_gauge(s).depth);
      }
      std::size_t seen = max_watched_depth_.load(std::memory_order_relaxed);
      while (deepest > seen && !max_watched_depth_.compare_exchange_weak(
                                   seen, deepest, std::memory_order_relaxed)) {
      }
      if (deepest >= config_.congestion_depth) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        shed_counter_.add(1);
        if (recorder_ != nullptr && telemetry::enabled()) {
          // A shed frame dies here: close its trace terminally.
          recorder_->emit_instant(
              result.trace.trace_id != 0
                  ? result.trace
                  : telemetry::TraceContext::of(result.stream_id,
                                                result.sequence),
              telemetry::TraceStage::kAdmit, telemetry::TraceOutcome::kShed);
        }
        return;
      }
    }
  }
  admit(std::move(observation));
}

void InteractionService::abort_stream(std::uint32_t stream_id) {
  Observation observation;
  observation.kind = ObservationKind::kAbort;
  observation.stream_id = stream_id;
  admit(std::move(observation));
}

void InteractionService::inject_observation(std::uint32_t stream_id,
                                            std::uint64_t sequence,
                                            signs::HumanSign sign,
                                            double confidence) {
  Observation observation;
  observation.stream_id = stream_id;
  observation.sequence = sequence;
  observation.sign = sign;
  observation.confidence = confidence;
  admit(std::move(observation));
}

bool InteractionService::try_abort_stream(std::uint32_t stream_id) {
  if (stopping_.load(std::memory_order_acquire)) return false;
  Observation observation;
  observation.kind = ObservationKind::kAbort;
  observation.stream_id = stream_id;
  pending_.raise();  // same raise-before-push contract as admit()
  Observation evicted;
  const util::PushOutcome outcome =
      ring_.try_push(std::move(observation), &evicted);
  if (outcome == util::PushOutcome::kEnqueued) {
    queue_depth_.add(1);
    return true;
  }
  finish_observations(1);
  // kEvictedOldest swaps one queued observation for another: depth net zero.
  return outcome == util::PushOutcome::kEvictedOldest;
}

void InteractionService::admit(Observation observation) {
  if (stopping_.load(std::memory_order_acquire)) return;
  // push() consumes the observation, so its identity must be saved first
  // for the terminal trace events on the refusal paths.
  const telemetry::TraceContext admitted_context =
      telemetry::TraceContext::of(observation.stream_id, observation.sequence);
  // Raise pending BEFORE the push — the worker can process the observation
  // before push() returns (PendingCounter's contract).
  pending_.raise();
  Observation evicted;
  const util::PushOutcome outcome = ring_.push(std::move(observation), &evicted);
  const bool traced = recorder_ != nullptr && telemetry::enabled();
  switch (outcome) {
    case util::PushOutcome::kEnqueued:
      queue_depth_.add(1);
      break;
    case util::PushOutcome::kEvictedOldest:  // depth net zero: one in, one out
      if (traced) {
        recorder_->emit_instant(
            telemetry::TraceContext::of(evicted.stream_id, evicted.sequence),
            telemetry::TraceStage::kAdmit, telemetry::TraceOutcome::kDropped);
      }
      finish_observations(1);
      break;
    case util::PushOutcome::kRejected:
      if (traced) {
        recorder_->emit_instant(admitted_context, telemetry::TraceStage::kAdmit,
                                telemetry::TraceOutcome::kRejected);
      }
      finish_observations(1);
      break;
    case util::PushOutcome::kClosed:
      if (traced) {
        recorder_->emit_instant(admitted_context, telemetry::TraceStage::kAdmit,
                                telemetry::TraceOutcome::kClosed);
      }
      finish_observations(1);
      break;
  }
}

void InteractionService::worker_loop() {
  Observation observation;
  while (ring_.pop(observation)) {
    queue_depth_.add(-1);
    try {
      process(observation);
    } catch (...) {
      pending_.record_error(std::current_exception());
    }
    finish_observations(1);
  }
}

void InteractionService::process(const Observation& observation) {
  Session& session = session_for(observation.stream_id);
  std::lock_guard<std::mutex> lock(session.mutex);
  actions_scratch_.clear();
  observations_counter_.add(1);

  if (listener_.on_observation) {
    ObservationSample sample;
    sample.stream_id = observation.stream_id;
    sample.abort = observation.kind == ObservationKind::kAbort;
    // Aborts carry no frame; stamp the stream's last processed sequence so
    // the journal entry still orders against the frame stream.
    sample.sequence = sample.abort ? session.last_sequence : observation.sequence;
    sample.sign = observation.sign;
    sample.confidence = observation.confidence;
    listener_.on_observation(sample);
  }

  if (observation.kind == ObservationKind::kAbort) {
    {
      // Aborts carry no frame: their trace anchors to the last processed
      // sequence, the same identity the journal sample records.
      telemetry::TracedSpan span(
          transition_ns_, recorder_,
          telemetry::TraceContext::of(observation.stream_id,
                                      session.last_sequence),
          telemetry::TraceStage::kTransition);
      session.fsm.abort(session.last_sequence, actions_scratch_);
    }
    apply_actions(session, actions_scratch_);
    notify_listener(session, events_scratch_, 0, actions_scratch_);
    return;
  }

  ++session.frames;
  session.last_sequence = observation.sequence;
  const telemetry::TraceContext trace_context =
      telemetry::TraceContext::of(observation.stream_id, observation.sequence);
  std::size_t emitted = 0;
  {
    telemetry::TracedSpan span(fuse_ns_, recorder_, trace_context,
                               telemetry::TraceStage::kFuse);
    emitted = session.fuser.observe(observation.sequence, observation.sign,
                                    observation.confidence, events_scratch_);
  }
  events_counter_.add(emitted);
  {
    telemetry::TracedSpan span(transition_ns_, recorder_, trace_context,
                               telemetry::TraceStage::kTransition);
    for (std::size_t i = 0; i < emitted; ++i) {
      session.fsm.on_event(events_scratch_[i], actions_scratch_);
    }
    session.fsm.on_tick(observation.sequence, actions_scratch_);
  }
  apply_actions(session, actions_scratch_);
  notify_listener(session, events_scratch_, emitted, actions_scratch_);
}

void InteractionService::notify_listener(
    Session& session, const SignEventFuser::Events& events,
    std::size_t event_count, const DialogueStateMachine::Actions& actions) {
  if (listener_.on_event) {
    for (std::size_t i = 0; i < event_count; ++i) listener_.on_event(events[i]);
  }
  if (listener_.on_transition) {
    for (const AckAction& action : actions) listener_.on_transition(action);
  }
  // Outcome decisions are detected (and counted) regardless of whether a
  // listener is attached, so interaction_outcomes_total does not depend on
  // the listener configuration.
  const protocol::OutcomeRecord record = session.fsm.outcome_record();
  if (record.outcome != protocol::Outcome::kPending &&
      record != session.reported_outcome) {
    session.reported_outcome = record;
    outcomes_counter_.add(1);
    if (recorder_ != nullptr && telemetry::enabled()) {
      // The outcome's trace identity derives from the record's own
      // deciding-sequence field — the propagation map's OutcomeRecord row.
      recorder_->emit_instant(
          telemetry::TraceContext::of(record.stream_id, record.final_sequence),
          telemetry::TraceStage::kOutcome, telemetry::TraceOutcome::kOk);
    }
    if (listener_.on_outcome) listener_.on_outcome(record);
  }
}

void InteractionService::apply_actions(
    Session& session, const DialogueStateMachine::Actions& actions) {
  if (!actions.empty()) actions_counter_.add(actions.size());
  for (const AckAction& action : actions) {
    if (action.set_ring) session.led.set_mode(action.ring);
    if (action.fly_pattern) {
      // Anchor at the communication altitude, facing the signaller (+y,
      // the synthetic scene's convention); real deployments would inject
      // the vehicle pose here.
      const drone::PatternParams params;
      session.last_pattern = drone::make_pattern(
          action.pattern, {0.0, 0.0, params.comm_altitude}, {0.0, 1.0}, params);
    }
    ++session.acks;
    if (recorder_ != nullptr && telemetry::enabled()) {
      // An ack's trace identity is (stream_id, tick) — the sequence the
      // FSM acted on — per the propagation map's AckAction row.
      recorder_->emit_instant(
          telemetry::TraceContext::of(action.stream_id, action.tick),
          telemetry::TraceStage::kAck, telemetry::TraceOutcome::kOk);
    }
    if (ack_observer_) ack_observer_(action);
  }
}

InteractionService::Session& InteractionService::session_for(
    std::uint32_t stream_id) {
  {
    std::shared_lock<std::shared_mutex> lock(sessions_mutex_);
    const auto it = sessions_.find(stream_id);
    if (it != sessions_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(sessions_mutex_);
  auto it = sessions_.find(stream_id);
  if (it == sessions_.end()) {
    // Construct BEFORE inserting: if Session construction ever throws, the
    // map must not retain a null entry for later lookups to dereference.
    auto session = std::make_unique<Session>(stream_id, config_, &grammar_);
    it = sessions_.emplace(stream_id, std::move(session)).first;
  }
  return *it->second;
}

const InteractionService::Session* InteractionService::find_session(
    std::uint32_t stream_id) const {
  std::shared_lock<std::shared_mutex> lock(sessions_mutex_);
  const auto it = sessions_.find(stream_id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void InteractionService::finish_observations(std::size_t count) {
  pending_.finish(count);
}

void InteractionService::drain() { pending_.drain(); }

void InteractionService::stop() noexcept {
  std::lock_guard<std::mutex> guard(stop_mutex_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  ring_.close();
  if (worker_.joinable()) worker_.join();
  stopped_ = true;
}

InteractionStreamStats InteractionService::stream_stats(
    std::uint32_t stream_id) const {
  InteractionStreamStats stats;
  const Session* session = find_session(stream_id);
  if (session == nullptr) return stats;
  std::lock_guard<std::mutex> lock(session->mutex);
  stats.frames = session->frames;
  stats.events_begun = session->fuser.events_begun();
  stats.events_ended = session->fuser.events_ended();
  stats.acks = session->acks;
  stats.state = session->fsm.state();
  stats.outcome = session->fsm.outcome();
  stats.dialogue = session->fsm.stats();
  return stats;
}

DialogueState InteractionService::dialogue_state(std::uint32_t stream_id) const {
  const Session* session = find_session(stream_id);
  if (session == nullptr) return DialogueState::kIdle;
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->fsm.state();
}

protocol::Outcome InteractionService::outcome(std::uint32_t stream_id) const {
  const Session* session = find_session(stream_id);
  if (session == nullptr) return protocol::Outcome::kPending;
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->fsm.outcome();
}

protocol::OutcomeRecord InteractionService::outcome_record(
    std::uint32_t stream_id) const {
  const Session* session = find_session(stream_id);
  if (session == nullptr) return {protocol::Outcome::kPending, stream_id, 0};
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->fsm.outcome_record();
}

drone::LedRing InteractionService::led_ring(std::uint32_t stream_id) const {
  const Session* session = find_session(stream_id);
  if (session == nullptr) return drone::LedRing{};  // kDanger fail-safe
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->led;
}

drone::RingMode InteractionService::ring_mode(std::uint32_t stream_id) const {
  return led_ring(stream_id).mode();
}

drone::FlightPattern InteractionService::last_pattern(
    std::uint32_t stream_id) const {
  const Session* session = find_session(stream_id);
  if (session == nullptr) return {};
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->last_pattern;
}

protocol::Transcript InteractionService::transcript(
    std::uint32_t stream_id) const {
  const Session* session = find_session(stream_id);
  if (session == nullptr) return {};
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->fsm.transcript();
}

}  // namespace hdc::interaction
