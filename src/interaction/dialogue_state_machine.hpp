// DialogueStateMachine — one human/stream dialogue session over fused sign
// events, closing the perceive -> decide -> acknowledge loop.
//
// Where protocol::DroneNegotiator plays the *drone-initiated* Figure-3
// exchange (drone pokes, human answers), this FSM is the human-initiated
// dual the paper's collaborative scenarios need at scale: the human raises
// a sign, the drone acknowledges on its LED ring, parses a command sequence
// through a CommandGrammar, *echoes its interpretation back* for
// confirmation, and only then executes — with every wait bounded by a
// timeout and an abort path from any state:
//
//            Begin(Attention)        Begin(Yes/No): prefix
//   Idle ────────────────> Attending ─────────────> CommandPending
//    ^  <── timeout ───────┘   ^  <─ dead-end/timeout ──┘     │ complete
//    │                         └───────────────<─────────┐    v  (or gap
//    │   abort done                 confirm No / timeout │ Confirming
//    ├─────────────< Aborting <──────────────────────────┘    │ Begin(Yes)
//    │                   ^          cancel (Begin(No))        v
//    └────────────< Executing <───────────────────────────────┘
//        pattern done
//
// Time is the per-stream frame sequence number — the FSM is fully
// deterministic and thread-free; it never blocks and never reads a clock.
// Every transition emits an AckAction (the drone's half of the dialogue):
// which LED ring mode to show and/or which communicative flight pattern to
// fly, for InteractionService to apply to the per-stream drone::LedRing /
// drone::FlightPattern. Sessions log a protocol::Transcript and end in a
// protocol::Outcome, reusing the negotiation vocabulary so orchard-level
// tooling reads both FSMs the same way.
#pragma once

#include <cstdint>
#include <vector>

#include "drone/flight_pattern.hpp"
#include "drone/led_ring.hpp"
#include "interaction/command_grammar.hpp"
#include "interaction/sign_event_fuser.hpp"
#include "protocol/messages.hpp"

namespace hdc::interaction {

enum class DialogueState : std::uint8_t {
  kIdle = 0,        ///< no human engaged
  kAttending,       ///< attention gained; waiting for a command sequence
  kCommandPending,  ///< mid-sequence; waiting for the next sign or the gap
  kConfirming,      ///< command echoed; waiting for Yes / No
  kExecuting,       ///< flying the commanded pattern
  kAborting,        ///< signalling abort before returning to idle
};

[[nodiscard]] constexpr const char* to_string(DialogueState state) noexcept {
  switch (state) {
    case DialogueState::kIdle: return "Idle";
    case DialogueState::kAttending: return "Attending";
    case DialogueState::kCommandPending: return "CommandPending";
    case DialogueState::kConfirming: return "Confirming";
    case DialogueState::kExecuting: return "Executing";
    case DialogueState::kAborting: return "Aborting";
  }
  return "?";
}

/// Timeouts and durations, in frames (the stream's sequence domain). The
/// defaults assume the synthetic feed cadence: a held sign spans ~15
/// frames and fused Begin events of consecutive signs are ~20-25 frames
/// apart.
struct DialogueConfig {
  std::uint64_t attending_timeout{150};  ///< Attending with no sign -> Idle
  std::uint64_t sequence_gap{36};        ///< frames after a sign Begin before
                                         ///< an extendable match resolves
  std::uint64_t confirm_timeout{90};     ///< Confirming unanswered -> Aborting
  std::uint64_t execute_ticks{48};       ///< simulated pattern duration
  std::uint64_t abort_ticks{16};         ///< abort signalling duration
};

/// The drone's acknowledgement for one transition: what to show on the LED
/// ring, which communicative pattern to fly, and bookkeeping for benches
/// (tick = the frame sequence that caused the transition, so frame->ack
/// latency is measurable end to end).
struct AckAction {
  std::uint32_t stream_id{0};
  DialogueState from{DialogueState::kIdle};
  DialogueState to{DialogueState::kIdle};
  bool set_ring{false};
  drone::RingMode ring{drone::RingMode::kNavigation};
  bool fly_pattern{false};
  drone::PatternType pattern{drone::PatternType::kNodYes};
  DroneCommandKind command{DroneCommandKind::kNone};
  std::uint64_t tick{0};
  const char* event{""};  ///< stable literal, mirrors the transcript entry
};

struct DialogueStats {
  std::uint64_t events_consumed{0};
  std::uint64_t commands_parsed{0};    ///< reached Confirming
  std::uint64_t commands_executed{0};  ///< Executing ran to completion
  std::uint64_t confirm_rejections{0};  ///< human answered No in Confirming
  std::uint64_t dead_ends{0};          ///< sequences outside the grammar
  std::uint64_t timeouts{0};
  std::uint64_t aborts{0};  ///< external + cancel aborts
};

class DialogueStateMachine {
 public:
  using Actions = std::vector<AckAction>;

  /// `grammar` is shared, immutable, and must outlive the FSM.
  DialogueStateMachine(std::uint32_t stream_id, const CommandGrammar* grammar,
                       DialogueConfig config = {});

  /// Consumes one fused event (call in event order, before the frame's
  /// on_tick). End events are transcript bookkeeping; Begin events drive
  /// transitions. Appends any acknowledgements to `out`.
  void on_event(const SignEvent& event, Actions& out);

  /// Advances the frame clock; fires timeouts and completions. Call exactly
  /// once per observed frame, after that frame's events.
  void on_tick(std::uint64_t sequence, Actions& out);

  /// External abort (safety/battery): jumps to kAborting from any state
  /// except kIdle / kAborting (where it is a no-op).
  void abort(std::uint64_t sequence, Actions& out);

  [[nodiscard]] DialogueState state() const noexcept { return state_; }
  [[nodiscard]] const DialogueStats& stats() const noexcept { return stats_; }
  [[nodiscard]] protocol::Outcome outcome() const noexcept { return outcome_; }
  /// The outcome plus its downstream-usable identity: this FSM's stream id
  /// and the frame sequence at which the outcome was decided (0 while the
  /// dialogue is still kPending). Fleet-level consumers key on this.
  [[nodiscard]] protocol::OutcomeRecord outcome_record() const noexcept {
    return {outcome_, stream_id_, outcome_sequence_};
  }
  [[nodiscard]] const protocol::Transcript& transcript() const noexcept {
    return transcript_;
  }
  /// The command most recently parsed to Confirming (kNone before any).
  [[nodiscard]] const DroneCommand& last_command() const noexcept {
    return last_command_;
  }
  [[nodiscard]] const DialogueConfig& config() const noexcept { return config_; }

 private:
  void log(std::uint64_t sequence, const char* actor, std::string event);
  /// Single write point for outcome_ so the deciding sequence can never
  /// drift from the value (outcome_record()'s coherence rests on this).
  void set_outcome(protocol::Outcome outcome, std::uint64_t sequence) noexcept {
    outcome_ = outcome;
    outcome_sequence_ = outcome == protocol::Outcome::kPending ? 0 : sequence;
  }
  /// Appends the transition ack, logs it, and switches state; the returned
  /// reference (valid until `out` grows) lets callers attach ring/pattern.
  AckAction& transition(DialogueState next, std::uint64_t sequence,
                        const char* event, Actions& out);
  void consume_sign(signs::HumanSign sign, std::uint64_t sequence, Actions& out);
  void accept_command(const CommandRule& rule, std::uint64_t sequence,
                      Actions& out);

  std::uint32_t stream_id_{0};
  const CommandGrammar* grammar_{nullptr};
  DialogueConfig config_;

  DialogueState state_{DialogueState::kIdle};
  std::uint64_t now_{0};
  std::uint64_t state_entered_{0};
  std::uint64_t last_sign_seq_{0};
  std::vector<signs::HumanSign> sequence_buffer_;
  const CommandRule* pending_rule_{nullptr};  ///< complete-but-extendable match
  DroneCommand last_command_{};

  DialogueStats stats_;
  protocol::Outcome outcome_{protocol::Outcome::kPending};
  std::uint64_t outcome_sequence_{0};  ///< sequence that decided outcome_
  protocol::Transcript transcript_;
};

}  // namespace hdc::interaction
