// Dialogue scenario driver — deterministic multi-human scripts over
// signs::MultiDroneFeed's scripted schedules.
//
// A scenario spells one full dialogue per stream in the grammar's terms —
// gain attention, sign a command sequence, wait out the disambiguation
// gap, confirm (or deny) — and then *roughs it up* with the noise model
// the fuser must absorb:
//   - every few clean frames a one-tick oblique view (≈60° extra azimuth)
//     slips in, which the recogniser rejects (the paper's dead angle);
//   - alternating with one-tick flickers of a DIFFERENT sign at clean
//     geometry, which the recogniser accepts — the classic single-frame
//     misread a majority filter must never promote to an event.
// Noise ticks are inserted *between* clean runs, so a hold's clean support
// is untouched and the expected fused-event count per script is exact:
// zero spurious begin/end pairs is a testable property, not a hope.
//
// Everything is deterministic per (stream, tick): the schedules are plain
// data, the feed renders them reproducibly, and the expected command /
// outcome per stream is computed alongside the script.
#pragma once

#include <cstdint>
#include <vector>

#include "interaction/command_grammar.hpp"
#include "interaction/dialogue_state_machine.hpp"
#include "signs/multi_drone_feed.hpp"

namespace hdc::interaction {

/// Shape of one scripted dialogue. Defaults are tuned to the default
/// FusionPolicy (window 5 / majority 3) and DialogueConfig (gap 36,
/// execute 48): holds are long enough to fuse, gaps long enough to
/// resolve, tails long enough to finish executing.
struct ScenarioOptions {
  std::uint64_t lead_ticks{6};      ///< neutral warm-up before the dialogue
  std::uint64_t hold_ticks{12};     ///< clean frames per held sign
  std::uint64_t intra_gap_ticks{6}; ///< neutral frames between sequence signs
  std::uint64_t resolve_gap_ticks{45};  ///< neutral frames after the last
                                        ///< command sign (must exceed the
                                        ///< FSM's sequence_gap)
  std::uint64_t tail_ticks{80};     ///< neutral run-out (covers execution)
  std::uint64_t clean_run{4};       ///< clean frames between noise ticks
  double oblique_offset_deg{60.0};  ///< extra azimuth of a reject tick
  bool inject_noise{true};
};

/// Ground truth for one stream's script.
struct ScenarioExpectation {
  DroneCommandKind command{DroneCommandKind::kNone};
  bool confirmed{true};  ///< script ends with Yes (execute) vs No (deny)
  protocol::Outcome outcome{protocol::Outcome::kGranted};
  std::size_t sign_events{0};  ///< exact fused Begin count the script yields
};

/// The sign sequence the standard grammar maps to `command`.
[[nodiscard]] std::vector<signs::HumanSign> command_sequence(
    const CommandGrammar& grammar, DroneCommandKind command);

/// One stream's schedule: attention -> command sequence -> resolve gap ->
/// Yes (confirm) or No (deny) -> tail, with the noise model applied to
/// every hold when `options.inject_noise`.
[[nodiscard]] signs::SignSchedule make_dialogue_schedule(
    const CommandGrammar& grammar, DroneCommandKind command, bool confirm,
    const ScenarioOptions& options = {});

/// Expected fused events / outcome for the same schedule parameters.
[[nodiscard]] ScenarioExpectation make_expectation(
    const CommandGrammar& grammar, DroneCommandKind command, bool confirm);

/// An N-stream cohort cycling the four standard commands; every fourth
/// session past the first cycle is denied (stream % 4 == 2 && stream >= 4
/// keeps the small cohorts all-confirmed). Index i of both vectors belongs
/// to stream i.
struct ScenarioCohort {
  std::vector<signs::SignSchedule> scripts;
  std::vector<ScenarioExpectation> expectations;
};

[[nodiscard]] ScenarioCohort make_cohort(std::size_t streams,
                                         const CommandGrammar& grammar,
                                         const ScenarioOptions& options = {});

/// Feed configuration that plays a cohort: scripted mode, gentle base
/// azimuths (±12° — comfortably inside the recogniser's acceptance band,
/// so only the scripted noise rejects), working-band altitudes.
[[nodiscard]] signs::MultiDroneFeedConfig make_feed_config(
    std::size_t streams, std::vector<signs::SignSchedule> scripts);

}  // namespace hdc::interaction
