#include "interaction/command_grammar.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hdc::interaction {

GrammarLibrary::GrammarLibrary(
    std::vector<std::pair<std::string, CommandGrammar>> vocabularies)
    : vocabularies_(std::move(vocabularies)) {
  if (vocabularies_.empty()) {
    throw std::invalid_argument("GrammarLibrary: no vocabularies");
  }
  for (std::size_t i = 0; i < vocabularies_.size(); ++i) {
    for (std::size_t j = i + 1; j < vocabularies_.size(); ++j) {
      if (vocabularies_[i].first == vocabularies_[j].first) {
        throw std::invalid_argument("GrammarLibrary: duplicate vocabulary " +
                                    vocabularies_[i].first);
      }
    }
  }
}

const CommandGrammar* GrammarLibrary::find(std::string_view name) const noexcept {
  for (const auto& [vocabulary_name, grammar] : vocabularies_) {
    if (vocabulary_name == name) return &grammar;
  }
  return nullptr;
}

const CommandGrammar& GrammarLibrary::at(std::string_view name) const {
  const CommandGrammar* grammar = find(name);
  if (grammar == nullptr) {
    throw std::out_of_range("GrammarLibrary: unknown vocabulary " +
                            std::string(name));
  }
  return *grammar;
}

CommandGrammar::CommandGrammar(std::vector<CommandRule> rules)
    : rules_(std::move(rules)) {
  if (rules_.empty()) {
    throw std::invalid_argument("CommandGrammar: rule table is empty");
  }
  for (const CommandRule& rule : rules_) {
    if (rule.sequence.empty()) {
      throw std::invalid_argument("CommandGrammar: empty sign sequence");
    }
    if (rule.command.kind == DroneCommandKind::kNone) {
      throw std::invalid_argument("CommandGrammar: rule must name a command");
    }
    for (const signs::HumanSign sign : rule.sequence) {
      if (sign == signs::HumanSign::kNeutral) {
        throw std::invalid_argument(
            "CommandGrammar: sequences use communicative signs only");
      }
    }
    max_sequence_length_ = std::max(max_sequence_length_, rule.sequence.size());
  }
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    for (std::size_t j = i + 1; j < rules_.size(); ++j) {
      if (rules_[i].sequence == rules_[j].sequence) {
        throw std::invalid_argument("CommandGrammar: duplicate sign sequence");
      }
    }
  }
}

CommandGrammar CommandGrammar::standard() {
  using signs::HumanSign;
  std::vector<CommandRule> rules;
  rules.push_back(
      {{HumanSign::kYes}, standard_command(DroneCommandKind::kApproach)});
  rules.push_back({{HumanSign::kYes, HumanSign::kYes},
                   standard_command(DroneCommandKind::kLand)});
  rules.push_back(
      {{HumanSign::kNo}, standard_command(DroneCommandKind::kRetreat)});
  rules.push_back({{HumanSign::kNo, HumanSign::kNo},
                   standard_command(DroneCommandKind::kLeave)});
  return CommandGrammar(std::move(rules));
}

DroneCommand CommandGrammar::standard_command(DroneCommandKind kind) {
  switch (kind) {
    case DroneCommandKind::kApproach:
      return {kind, drone::PatternType::kHorizontalTransit,
              drone::RingMode::kNavigation};
    case DroneCommandKind::kLand:
      return {kind, drone::PatternType::kLanding, drone::RingMode::kLanding};
    case DroneCommandKind::kRetreat:
      return {kind, drone::PatternType::kHorizontalTransit,
              drone::RingMode::kNavigation};
    case DroneCommandKind::kLeave:
      return {kind, drone::PatternType::kTakeOff, drone::RingMode::kTakeoff};
    case DroneCommandKind::kNone:
      break;
  }
  throw std::invalid_argument("standard_command: no embodiment for None");
}

namespace {

[[noreturn]] void parse_fail(std::string_view origin, std::size_t line,
                             const std::string& message) {
  std::ostringstream out;
  out << origin << ":" << line << ": " << message;
  throw std::runtime_error(out.str());
}

/// signs::to_string spelling -> sign; nullopt for unknown names.
[[nodiscard]] const signs::HumanSign* sign_by_name(std::string_view token) {
  static constexpr auto kSigns = signs::kAllSigns;
  for (const signs::HumanSign& sign : kSigns) {
    if (signs::to_string(sign) == token) return &sign;
  }
  return nullptr;
}

[[nodiscard]] const DroneCommandKind* command_by_name(std::string_view token) {
  static constexpr auto kCommands = kAllCommands;
  for (const DroneCommandKind& kind : kCommands) {
    if (to_string(kind) == token) return &kind;
  }
  return nullptr;
}

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split_tokens(std::string_view s) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    if (i > start) tokens.push_back(s.substr(start, i - start));
  }
  return tokens;
}

}  // namespace

GrammarLibrary CommandGrammar::parse_library(std::string_view text,
                                             std::string_view origin) {
  struct Section {
    std::string name;
    std::size_t line;  ///< header line, for section-level error reports
    std::vector<CommandRule> rules;
  };
  std::vector<Section> sections;
  auto section_rules = [&sections, &origin](
                           std::string name,
                           std::size_t line) -> std::vector<CommandRule>& {
    for (const Section& section : sections) {
      if (section.name == name) {
        parse_fail(origin, line, "duplicate vocabulary [" + name + "]");
      }
    }
    sections.push_back({std::move(name), line, {}});
    return sections.back().rules;
  };

  std::vector<CommandRule>* current = nullptr;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        parse_fail(origin, line_no, "unterminated section header");
      }
      const std::string_view name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) {
        parse_fail(origin, line_no, "empty vocabulary name");
      }
      current = &section_rules(std::string(name), line_no);
      continue;
    }

    const std::size_t arrow = line.find("->");
    if (arrow == std::string_view::npos) {
      parse_fail(origin, line_no,
                 "expected 'SIGN [SIGN...] -> COMMAND' or '[section]'");
    }
    CommandRule rule;
    for (const std::string_view token : split_tokens(trim(line.substr(0, arrow)))) {
      const signs::HumanSign* sign = sign_by_name(token);
      if (sign == nullptr) {
        parse_fail(origin, line_no, "unknown sign '" + std::string(token) + "'");
      }
      rule.sequence.push_back(*sign);
    }
    if (rule.sequence.empty()) {
      parse_fail(origin, line_no, "rule has no sign sequence");
    }
    const std::vector<std::string_view> command_tokens =
        split_tokens(trim(line.substr(arrow + 2)));
    if (command_tokens.size() != 1) {
      parse_fail(origin, line_no, "expected exactly one command after '->'");
    }
    const DroneCommandKind* kind = command_by_name(command_tokens.front());
    if (kind == nullptr) {
      parse_fail(origin, line_no,
                 "unknown command '" + std::string(command_tokens.front()) + "'");
    }
    rule.command = standard_command(*kind);
    if (current == nullptr) {
      current = &section_rules("default", line_no);
    }
    current->push_back(std::move(rule));
  }

  if (sections.empty()) {
    parse_fail(origin, line_no, "grammar file defines no rules");
  }
  std::vector<std::pair<std::string, CommandGrammar>> vocabularies;
  vocabularies.reserve(sections.size());
  for (Section& section : sections) {
    // Section-level failures blame the section's own header line, not
    // wherever the file happened to end.
    if (section.rules.empty()) {
      parse_fail(origin, section.line,
                 "vocabulary [" + section.name + "] has no rules");
    }
    try {
      vocabularies.emplace_back(section.name,
                                CommandGrammar(std::move(section.rules)));
    } catch (const std::invalid_argument& error) {
      parse_fail(origin, section.line,
                 "vocabulary [" + section.name + "]: " + error.what());
    }
  }
  return GrammarLibrary(std::move(vocabularies));
}

GrammarLibrary CommandGrammar::load_library(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("CommandGrammar::load: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_library(buffer.str(), path);
}

CommandGrammar CommandGrammar::load(const std::string& path) {
  GrammarLibrary library = load_library(path);
  if (const CommandGrammar* grammar = library.find("default")) {
    return *grammar;
  }
  if (library.vocabularies().size() == 1) {
    return library.vocabularies().front().second;
  }
  throw std::runtime_error("CommandGrammar::load: " + path +
                           " has no [default] vocabulary");
}

MatchResult CommandGrammar::classify(
    std::span<const signs::HumanSign> buffer) const noexcept {
  MatchResult result;
  if (buffer.empty()) return result;  // kDeadEnd: nothing to match yet
  bool prefix_of_any = false;
  for (const CommandRule& rule : rules_) {
    if (rule.sequence.size() < buffer.size()) continue;
    if (!std::equal(buffer.begin(), buffer.end(), rule.sequence.begin())) {
      continue;
    }
    if (rule.sequence.size() == buffer.size()) {
      result.rule = &rule;
    } else {
      prefix_of_any = true;
    }
  }
  if (result.rule != nullptr) {
    result.state = prefix_of_any ? MatchState::kCompleteExtendable
                                 : MatchState::kComplete;
  } else if (prefix_of_any) {
    result.state = MatchState::kPrefix;
  } else {
    result.state = MatchState::kDeadEnd;
  }
  return result;
}

}  // namespace hdc::interaction
