#include "interaction/command_grammar.hpp"

#include <algorithm>
#include <stdexcept>

namespace hdc::interaction {

CommandGrammar::CommandGrammar(std::vector<CommandRule> rules)
    : rules_(std::move(rules)) {
  if (rules_.empty()) {
    throw std::invalid_argument("CommandGrammar: rule table is empty");
  }
  for (const CommandRule& rule : rules_) {
    if (rule.sequence.empty()) {
      throw std::invalid_argument("CommandGrammar: empty sign sequence");
    }
    if (rule.command.kind == DroneCommandKind::kNone) {
      throw std::invalid_argument("CommandGrammar: rule must name a command");
    }
    for (const signs::HumanSign sign : rule.sequence) {
      if (sign == signs::HumanSign::kNeutral) {
        throw std::invalid_argument(
            "CommandGrammar: sequences use communicative signs only");
      }
    }
    max_sequence_length_ = std::max(max_sequence_length_, rule.sequence.size());
  }
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    for (std::size_t j = i + 1; j < rules_.size(); ++j) {
      if (rules_[i].sequence == rules_[j].sequence) {
        throw std::invalid_argument("CommandGrammar: duplicate sign sequence");
      }
    }
  }
}

CommandGrammar CommandGrammar::standard() {
  using signs::HumanSign;
  std::vector<CommandRule> rules;
  rules.push_back({{HumanSign::kYes},
                   {DroneCommandKind::kApproach,
                    drone::PatternType::kHorizontalTransit,
                    drone::RingMode::kNavigation}});
  rules.push_back({{HumanSign::kYes, HumanSign::kYes},
                   {DroneCommandKind::kLand, drone::PatternType::kLanding,
                    drone::RingMode::kLanding}});
  rules.push_back({{HumanSign::kNo},
                   {DroneCommandKind::kRetreat,
                    drone::PatternType::kHorizontalTransit,
                    drone::RingMode::kNavigation}});
  rules.push_back({{HumanSign::kNo, HumanSign::kNo},
                   {DroneCommandKind::kLeave, drone::PatternType::kTakeOff,
                    drone::RingMode::kTakeoff}});
  return CommandGrammar(std::move(rules));
}

MatchResult CommandGrammar::classify(
    std::span<const signs::HumanSign> buffer) const noexcept {
  MatchResult result;
  if (buffer.empty()) return result;  // kDeadEnd: nothing to match yet
  bool prefix_of_any = false;
  for (const CommandRule& rule : rules_) {
    if (rule.sequence.size() < buffer.size()) continue;
    if (!std::equal(buffer.begin(), buffer.end(), rule.sequence.begin())) {
      continue;
    }
    if (rule.sequence.size() == buffer.size()) {
      result.rule = &rule;
    } else {
      prefix_of_any = true;
    }
  }
  if (result.rule != nullptr) {
    result.state = prefix_of_any ? MatchState::kCompleteExtendable
                                 : MatchState::kComplete;
  } else if (prefix_of_any) {
    result.state = MatchState::kPrefix;
  } else {
    result.state = MatchState::kDeadEnd;
  }
  return result;
}

}  // namespace hdc::interaction
