#include "interaction/dialogue_state_machine.hpp"

#include <stdexcept>
#include <string>

namespace hdc::interaction {

DialogueStateMachine::DialogueStateMachine(std::uint32_t stream_id,
                                           const CommandGrammar* grammar,
                                           DialogueConfig config)
    : stream_id_(stream_id), grammar_(grammar), config_(config) {
  if (grammar_ == nullptr) {
    throw std::invalid_argument("DialogueStateMachine: null grammar");
  }
  sequence_buffer_.reserve(grammar_->max_sequence_length());
}

void DialogueStateMachine::log(std::uint64_t sequence, const char* actor,
                               std::string event) {
  transcript_.push_back(
      {static_cast<double>(sequence), actor, std::move(event)});
}

AckAction& DialogueStateMachine::transition(DialogueState next,
                                            std::uint64_t sequence,
                                            const char* event, Actions& out) {
  AckAction action;
  action.stream_id = stream_id_;
  action.from = state_;
  action.to = next;
  action.tick = sequence;
  action.event = event;
  out.push_back(action);
  log(sequence, "drone", event);
  state_ = next;
  state_entered_ = sequence;
  return out.back();
}

void DialogueStateMachine::accept_command(const CommandRule& rule,
                                          std::uint64_t sequence, Actions& out) {
  last_command_ = rule.command;
  sequence_buffer_.clear();
  pending_rule_ = nullptr;
  ++stats_.commands_parsed;
  // Echo the interpretation: nod, and preview the execution ring mode so
  // the human sees the intent before anything moves.
  AckAction& ack = transition(DialogueState::kConfirming, sequence,
                              "ack:confirm-request", out);
  ack.set_ring = true;
  ack.ring = last_command_.execute_ring;
  ack.fly_pattern = true;
  ack.pattern = drone::PatternType::kNodYes;
  ack.command = last_command_.kind;
  log(sequence, "drone",
      std::string("parsed:") + std::string(to_string(last_command_.kind)));
}

void DialogueStateMachine::consume_sign(signs::HumanSign sign,
                                        std::uint64_t sequence, Actions& out) {
  sequence_buffer_.push_back(sign);
  last_sign_seq_ = sequence;
  const MatchResult match = grammar_->classify(sequence_buffer_);
  switch (match.state) {
    case MatchState::kDeadEnd: {
      ++stats_.dead_ends;
      sequence_buffer_.clear();
      pending_rule_ = nullptr;
      // Shake "no" — the sequence means nothing — and listen again.
      AckAction& ack =
          transition(DialogueState::kAttending, sequence, "grammar:dead-end", out);
      ack.fly_pattern = true;
      ack.pattern = drone::PatternType::kTurnNo;
      break;
    }
    case MatchState::kPrefix:
      pending_rule_ = nullptr;
      transition(DialogueState::kCommandPending, sequence, "grammar:prefix", out);
      break;
    case MatchState::kCompleteExtendable:
      pending_rule_ = match.rule;
      transition(DialogueState::kCommandPending, sequence, "grammar:extendable",
                 out);
      break;
    case MatchState::kComplete:
      accept_command(*match.rule, sequence, out);
      break;
  }
}

void DialogueStateMachine::on_event(const SignEvent& event, Actions& out) {
  ++stats_.events_consumed;
  log(event.kind == SignEventKind::kBegin ? event.onset_seq : event.end_seq,
      "human",
      std::string(event.kind == SignEventKind::kBegin ? "sign-begin:"
                                                      : "sign-end:") +
          std::string(signs::to_string(event.label)));
  if (event.kind == SignEventKind::kEnd) return;  // boundaries only log

  const signs::HumanSign label = event.label;
  const std::uint64_t seq = event.onset_seq;
  switch (state_) {
    case DialogueState::kIdle:
      if (label == signs::HumanSign::kAttentionGained) {
        set_outcome(protocol::Outcome::kPending, seq);
        AckAction& ack =
            transition(DialogueState::kAttending, seq, "ack:attention", out);
        ack.set_ring = true;
        ack.ring = drone::RingMode::kAllGreen;
        ack.fly_pattern = true;
        ack.pattern = drone::PatternType::kNodYes;
      }
      break;

    case DialogueState::kAttending:
    case DialogueState::kCommandPending:
      if (label == signs::HumanSign::kAttentionGained) {
        state_entered_ = seq;  // refresh the attention window
        log(seq, "human", "attention:refresh");
        break;
      }
      consume_sign(label, seq, out);
      break;

    case DialogueState::kConfirming:
      if (label == signs::HumanSign::kYes) {
        AckAction& ack =
            transition(DialogueState::kExecuting, seq, "execute:start", out);
        ack.set_ring = true;
        ack.ring = last_command_.execute_ring;
        ack.fly_pattern = true;
        ack.pattern = last_command_.execute_pattern;
        ack.command = last_command_.kind;
      } else if (label == signs::HumanSign::kNo) {
        ++stats_.confirm_rejections;
        set_outcome(protocol::Outcome::kDenied, seq);
        AckAction& ack =
            transition(DialogueState::kAborting, seq, "confirm:denied", out);
        ack.set_ring = true;
        ack.ring = drone::RingMode::kDanger;
        ack.fly_pattern = true;
        ack.pattern = drone::PatternType::kTurnNo;
      }
      break;

    case DialogueState::kExecuting:
      if (label == signs::HumanSign::kNo) {
        // Mid-execution cancel: the human withdrew consent.
        ++stats_.aborts;
        set_outcome(protocol::Outcome::kAborted, seq);
        AckAction& ack =
            transition(DialogueState::kAborting, seq, "execute:cancelled", out);
        ack.set_ring = true;
        ack.ring = drone::RingMode::kDanger;
        ack.fly_pattern = true;
        ack.pattern = drone::PatternType::kTurnNo;
      }
      break;

    case DialogueState::kAborting:
      break;  // signalling; events are logged but not consumed
  }
}

void DialogueStateMachine::on_tick(std::uint64_t sequence, Actions& out) {
  now_ = sequence;
  const std::uint64_t in_state = now_ - state_entered_;
  switch (state_) {
    case DialogueState::kIdle:
      break;

    case DialogueState::kAttending:
      if (in_state >= config_.attending_timeout) {
        ++stats_.timeouts;
        set_outcome(protocol::Outcome::kNoAnswer, sequence);
        sequence_buffer_.clear();
        AckAction& ack =
            transition(DialogueState::kIdle, sequence, "timeout:attending", out);
        ack.set_ring = true;
        ack.ring = drone::RingMode::kNavigation;
      }
      break;

    case DialogueState::kCommandPending:
      if (now_ - last_sign_seq_ >= config_.sequence_gap) {
        if (pending_rule_ != nullptr) {
          // The gap elapsed with a complete-but-extendable match: it wins.
          accept_command(*pending_rule_, sequence, out);
        } else {
          ++stats_.timeouts;
          sequence_buffer_.clear();
          AckAction& ack = transition(DialogueState::kAttending, sequence,
                                      "grammar:timeout", out);
          ack.fly_pattern = true;
          ack.pattern = drone::PatternType::kTurnNo;
        }
      }
      break;

    case DialogueState::kConfirming:
      if (in_state >= config_.confirm_timeout) {
        ++stats_.timeouts;
        set_outcome(protocol::Outcome::kNoAnswer, sequence);
        AckAction& ack =
            transition(DialogueState::kAborting, sequence, "timeout:confirm", out);
        ack.set_ring = true;
        ack.ring = drone::RingMode::kDanger;
        ack.fly_pattern = true;
        ack.pattern = drone::PatternType::kTurnNo;
      }
      break;

    case DialogueState::kExecuting:
      if (in_state >= config_.execute_ticks) {
        ++stats_.commands_executed;
        set_outcome(protocol::Outcome::kGranted, sequence);
        AckAction& ack =
            transition(DialogueState::kIdle, sequence, "execute:done", out);
        ack.set_ring = true;
        ack.ring = drone::RingMode::kNavigation;
        ack.command = last_command_.kind;
      }
      break;

    case DialogueState::kAborting:
      if (in_state >= config_.abort_ticks) {
        AckAction& ack =
            transition(DialogueState::kIdle, sequence, "abort:done", out);
        ack.set_ring = true;
        ack.ring = drone::RingMode::kNavigation;
      }
      break;
  }
}

void DialogueStateMachine::abort(std::uint64_t sequence, Actions& out) {
  if (state_ == DialogueState::kIdle || state_ == DialogueState::kAborting) {
    log(sequence, "drone", "abort:ignored");
    return;
  }
  ++stats_.aborts;
  set_outcome(protocol::Outcome::kAborted, sequence);
  sequence_buffer_.clear();
  pending_rule_ = nullptr;
  AckAction& ack =
      transition(DialogueState::kAborting, sequence, "abort:external", out);
  ack.set_ring = true;
  ack.ring = drone::RingMode::kDanger;
  ack.fly_pattern = true;
  ack.pattern = drone::PatternType::kTurnNo;
}

}  // namespace hdc::interaction
