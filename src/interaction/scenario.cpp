#include "interaction/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace hdc::interaction {

namespace {

/// The accepted-but-wrong sign a one-frame misread flips to.
signs::HumanSign flicker_of(signs::HumanSign sign) noexcept {
  switch (sign) {
    case signs::HumanSign::kYes: return signs::HumanSign::kNo;
    case signs::HumanSign::kNo: return signs::HumanSign::kYes;
    default: return signs::HumanSign::kYes;
  }
}

void append_neutral(signs::SignSchedule& schedule, std::uint64_t ticks) {
  if (ticks > 0) schedule.push_back({signs::HumanSign::kNeutral, ticks, 0.0});
}

/// A held sign with the noise model: clean runs of `clean_run` frames
/// separated by single noise ticks — alternating an oblique (rejecting)
/// view of the SAME sign and a head-on one-frame flicker of ANOTHER sign.
/// Noise is inserted between runs, so the hold still contributes exactly
/// `hold_ticks` clean frames; `noise_phase` carries the alternation across
/// holds so consecutive holds don't all start with the same noise kind.
void append_noisy_hold(signs::SignSchedule& schedule, signs::HumanSign sign,
                       const ScenarioOptions& options,
                       std::uint64_t& noise_phase) {
  std::uint64_t remaining = options.hold_ticks;
  const std::uint64_t run = std::max<std::uint64_t>(1, options.clean_run);
  while (remaining > 0) {
    const std::uint64_t take = std::min(run, remaining);
    schedule.push_back({sign, take, 0.0});
    remaining -= take;
    if (remaining > 0 && options.inject_noise) {
      if (noise_phase++ % 2 == 0) {
        schedule.push_back({sign, 1, options.oblique_offset_deg});
      } else {
        schedule.push_back({flicker_of(sign), 1, 0.0});
      }
    }
  }
}

}  // namespace

std::vector<signs::HumanSign> command_sequence(const CommandGrammar& grammar,
                                               DroneCommandKind command) {
  for (const CommandRule& rule : grammar.rules()) {
    if (rule.command.kind == command) return rule.sequence;
  }
  throw std::invalid_argument("command_sequence: command not in grammar");
}

signs::SignSchedule make_dialogue_schedule(const CommandGrammar& grammar,
                                           DroneCommandKind command,
                                           bool confirm,
                                           const ScenarioOptions& options) {
  if (options.hold_ticks == 0) {
    throw std::invalid_argument("make_dialogue_schedule: hold_ticks == 0");
  }
  signs::SignSchedule schedule;
  std::uint64_t noise_phase = 0;

  append_neutral(schedule, options.lead_ticks);
  append_noisy_hold(schedule, signs::HumanSign::kAttentionGained, options,
                    noise_phase);
  append_neutral(schedule, options.intra_gap_ticks);

  const std::vector<signs::HumanSign> sequence =
      command_sequence(grammar, command);
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    append_noisy_hold(schedule, sequence[i], options, noise_phase);
    append_neutral(schedule, i + 1 < sequence.size() ? options.intra_gap_ticks
                                                     : options.resolve_gap_ticks);
  }

  append_noisy_hold(schedule,
                    confirm ? signs::HumanSign::kYes : signs::HumanSign::kNo,
                    options, noise_phase);
  append_neutral(schedule, options.tail_ticks);
  return schedule;
}

ScenarioExpectation make_expectation(const CommandGrammar& grammar,
                                     DroneCommandKind command, bool confirm) {
  ScenarioExpectation expectation;
  expectation.command = command;
  expectation.confirmed = confirm;
  expectation.outcome =
      confirm ? protocol::Outcome::kGranted : protocol::Outcome::kDenied;
  // Attention + every command sign + the confirmation/denial — the noise
  // model adds ZERO events (that is the property under test).
  expectation.sign_events = 1 + command_sequence(grammar, command).size() + 1;
  return expectation;
}

ScenarioCohort make_cohort(std::size_t streams, const CommandGrammar& grammar,
                           const ScenarioOptions& options) {
  if (streams == 0) {
    throw std::invalid_argument("make_cohort: need at least one stream");
  }
  ScenarioCohort cohort;
  cohort.scripts.reserve(streams);
  cohort.expectations.reserve(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    const DroneCommandKind command = kAllCommands[s % kAllCommands.size()];
    const bool confirm = !(s % 4 == 2 && s >= 4);
    cohort.scripts.push_back(
        make_dialogue_schedule(grammar, command, confirm, options));
    cohort.expectations.push_back(make_expectation(grammar, command, confirm));
  }
  return cohort;
}

signs::MultiDroneFeedConfig make_feed_config(
    std::size_t streams, std::vector<signs::SignSchedule> scripts) {
  signs::MultiDroneFeedConfig config;
  config.streams = streams;
  config.azimuth_step_deg = 6.0;  // base azimuths within ±12°: always accepted
  config.scripts = std::move(scripts);
  return config;
}

}  // namespace hdc::interaction
