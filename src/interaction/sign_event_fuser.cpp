#include "interaction/sign_event_fuser.hpp"

#include <algorithm>
#include <stdexcept>

namespace hdc::interaction {

double FusionPolicy::confidence_of(
    const recognition::RecognitionResult& result) const noexcept {
  if (!result.accepted || result.sign == signs::HumanSign::kNeutral) return 0.0;
  if (reference_distance <= 0.0) return 1.0;
  return std::clamp(1.0 - result.distance / reference_distance, 0.0, 1.0);
}

SignEventFuser::SignEventFuser(FusionPolicy policy, std::uint32_t stream_id)
    : policy_(policy), stream_id_(stream_id), ring_(policy.window) {
  if (policy_.window == 0) {
    throw std::invalid_argument("SignEventFuser: window must be positive");
  }
  if (policy_.majority == 0 || policy_.majority > policy_.window) {
    throw std::invalid_argument(
        "SignEventFuser: majority must be in [1, window]");
  }
  if (policy_.release_misses == 0) {
    throw std::invalid_argument("SignEventFuser: release_misses must be positive");
  }
}

void SignEventFuser::reset() {
  head_ = 0;
  fill_ = 0;
  counts_.fill(0);
  confidence_sums_.fill(0.0);
  active_ = false;
  active_label_ = signs::HumanSign::kNeutral;
  miss_run_ = 0;
  held_frames_ = 0;
  event_confidence_sum_ = 0.0;
  event_support_ = 0;
}

void SignEventFuser::push_frame(signs::HumanSign sign, double confidence) {
  if (fill_ == ring_.size()) {
    const Slot& old = ring_[head_];
    const auto old_index = static_cast<std::size_t>(old.sign);
    --counts_[old_index];
    confidence_sums_[old_index] -= old.confidence;
  } else {
    ++fill_;
  }
  ring_[head_] = {sign, confidence};
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  const auto index = static_cast<std::size_t>(sign);
  ++counts_[index];
  confidence_sums_[index] += confidence;
}

signs::HumanSign SignEventFuser::window_winner() const noexcept {
  signs::HumanSign winner = signs::HumanSign::kNeutral;
  std::uint32_t best = 0;
  for (const signs::HumanSign sign : signs::kCommunicativeSigns) {
    const std::uint32_t count = counts_[static_cast<std::size_t>(sign)];
    if (count >= policy_.majority && count > best) {
      winner = sign;
      best = count;
    }
  }
  return winner;
}

double SignEventFuser::window_mean_confidence(signs::HumanSign sign) const noexcept {
  const auto index = static_cast<std::size_t>(sign);
  if (counts_[index] == 0) return 0.0;
  return confidence_sums_[index] / static_cast<double>(counts_[index]);
}

SignEvent SignEventFuser::make_event(SignEventKind kind, std::uint64_t onset,
                                     std::uint64_t end,
                                     double confidence) const noexcept {
  SignEvent event;
  event.stream_id = stream_id_;
  event.kind = kind;
  event.label = active_label_;
  event.onset_seq = onset;
  event.end_seq = end;
  event.confidence = confidence;
  return event;
}

std::size_t SignEventFuser::observe(std::uint64_t sequence,
                                    const recognition::RecognitionResult& result,
                                    Events& out) {
  const double confidence = policy_.confidence_of(result);
  const signs::HumanSign sign =
      confidence > 0.0 ? result.sign : signs::HumanSign::kNeutral;
  return observe(sequence, sign, confidence, out);
}

std::size_t SignEventFuser::observe(std::uint64_t sequence, signs::HumanSign sign,
                                    double confidence, Events& out) {
  push_frame(sign, confidence);
  std::size_t emitted = 0;

  if (active_) {
    ++held_frames_;
    const bool supported =
        counts_[static_cast<std::size_t>(active_label_)] >= policy_.majority &&
        window_mean_confidence(active_label_) >= policy_.release_confidence;
    if (supported) {
      miss_run_ = 0;
      last_support_seq_ = sequence;
      event_confidence_sum_ += window_mean_confidence(active_label_);
      ++event_support_;
    } else {
      ++miss_run_;
    }
    if (miss_run_ >= policy_.release_misses && held_frames_ >= policy_.min_hold) {
      const double mean =
          event_support_ == 0
              ? 0.0
              : event_confidence_sum_ / static_cast<double>(event_support_);
      out[emitted++] =
          make_event(SignEventKind::kEnd, onset_seq_, last_support_seq_, mean);
      ++events_ended_;
      active_ = false;
      active_label_ = signs::HumanSign::kNeutral;
    }
  }

  if (!active_) {
    const signs::HumanSign winner = window_winner();
    if (winner != signs::HumanSign::kNeutral &&
        window_mean_confidence(winner) >= policy_.onset_confidence) {
      active_ = true;
      active_label_ = winner;
      onset_seq_ = sequence;
      last_support_seq_ = sequence;
      held_frames_ = 1;
      miss_run_ = 0;
      event_confidence_sum_ = window_mean_confidence(winner);
      event_support_ = 1;
      out[emitted++] = make_event(SignEventKind::kBegin, sequence, sequence,
                                  window_mean_confidence(winner));
      ++events_begun_;
    }
  }
  return emitted;
}

std::size_t SignEventFuser::finish(Events& out) {
  if (!active_) return 0;
  const double mean = event_support_ == 0 ? 0.0
                                          : event_confidence_sum_ /
                                                static_cast<double>(event_support_);
  out[0] = make_event(SignEventKind::kEnd, onset_seq_, last_support_seq_, mean);
  ++events_ended_;
  active_ = false;
  active_label_ = signs::HumanSign::kNeutral;
  return 1;
}

}  // namespace hdc::interaction
