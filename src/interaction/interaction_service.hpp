// InteractionService — the dialogue layer over PerceptionService, closing
// the perceive -> decide -> acknowledge loop for every stream at once.
//
//   cameras ─> PerceptionService ─┐  (shard workers: recognition only)
//                                 │ StreamResult callback
//                                 v
//              bounded MPSC ring (util::BoundedRing) ─> dialogue worker
//                                                        │ per stream:
//                                                        │  SignEventFuser
//                                                        │  DialogueStateMachine
//                                                        v
//                              AckActions applied to drone::LedRing +
//                              drone::FlightPattern, protocol::Transcript
//
// Design points:
//   - Event processing runs OFF the perception shard workers: the shard
//     callback only derives a compact Observation (label + confidence) and
//     pushes it into a bounded ring, so recognition throughput never waits
//     on dialogue logic. One dedicated worker drains the ring — dialogue
//     state needs no locking on the hot path, and per-stream processing
//     order equals perception delivery order (sequence order per stream).
//   - Per-stream sessions are created on first observation: each owns a
//     fuser, an FSM, a drone::LedRing (the visible acknowledgement state)
//     and the last generated drone::FlightPattern.
//   - Backpressure: the service watches the PerceptionService's per-shard
//     queue-depth gauges. congested() exposes the decision to producers,
//     and (opt-in) shed_neutral_when_congested drops no-evidence
//     observations at admission while perception is backed up — the fuser
//     tolerates gaps by construction, so dialogue degrades gracefully
//     instead of queueing stale neutral frames. Default OFF: with shedding
//     off the service is fully deterministic for a given per-stream frame
//     sequence, regardless of stream/shard/thread counts.
//
// Threading contract: on_result() may be called from any thread (it is the
// perception callback). Accessors snapshot per-session state under a
// session mutex and may run concurrently with processing. The ack observer
// runs on the dialogue worker and must not call back into the service.
// Destruction order: stop (or destroy) the PerceptionService holding this
// service's callback BEFORE destroying the InteractionService.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "drone/flight_pattern.hpp"
#include "drone/led_ring.hpp"
#include "interaction/command_grammar.hpp"
#include "interaction/dialogue_state_machine.hpp"
#include "interaction/sign_event_fuser.hpp"
#include "recognition/perception_service.hpp"
#include "telemetry/stage_names.hpp"
#include "util/pending_counter.hpp"
#include "util/ring_buffer.hpp"

namespace hdc::interaction {

struct InteractionServiceConfig {
  FusionPolicy fusion{};
  DialogueConfig dialogue{};
  std::size_t queue_capacity{256};  ///< observation ring slots
  /// kBlock propagates dialogue backpressure to the perception shards
  /// (lossless); kDropOldest prefers fresh observations under overload.
  util::OverflowPolicy overflow{util::OverflowPolicy::kBlock};
  /// A watched perception shard at or above this queue depth counts as
  /// congested (see congested()).
  std::size_t congestion_depth{24};
  /// Opt-in load shedding: drop neutral (no-evidence) observations at
  /// admission while perception is congested. Trades a slower event
  /// offset for not queueing stale frames; leaves determinism guarantees
  /// to uncongested runs.
  bool shed_neutral_when_congested{false};
  /// Optional telemetry registry (must outlive the service). When set, the
  /// worker records fuse/transition spans, dialogue counters and the
  /// observation-ring depth gauge; when null every handle stays disarmed
  /// and recording is a single predictable branch.
  telemetry::MetricsRegistry* metrics{nullptr};
  /// Optional causal tracing (must outlive the service). When set, the
  /// worker emits admit/fuse/transition/ack/outcome TraceEvents, and the
  /// backpressure paths close dying traces with terminal kShed/kDropped/
  /// kRejected events. Null = disarmed, same cost contract as `metrics`.
  telemetry::FlightRecorder* recorder{nullptr};
};

/// Aggregate per-stream snapshot across fuser, FSM and ack bookkeeping.
struct InteractionStreamStats {
  std::uint64_t frames{0};        ///< observations processed
  std::uint64_t events_begun{0};  ///< fused sign onsets
  std::uint64_t events_ended{0};  ///< fused sign offsets
  std::uint64_t acks{0};          ///< AckActions applied
  DialogueState state{DialogueState::kIdle};
  protocol::Outcome outcome{protocol::Outcome::kPending};
  DialogueStats dialogue{};
};

class InteractionService {
 public:
  /// Observes every applied AckAction (dialogue worker thread; must not
  /// re-enter the service). Used by benches to timestamp frame->ack.
  using AckObserver = std::function<void(const AckAction&)>;

  /// One observation exactly as the dialogue worker processed it — the
  /// service's replayable input unit. Re-feeding the recorded samples of a
  /// run through inject_observation() / abort_stream() in recorded order
  /// reproduces the run bit-identically (protocol::JournalRecorder and the
  /// replay driver are built on this).
  struct ObservationSample {
    std::uint32_t stream_id{0};
    /// Frame sequence; for an abort sample this is the stream's last
    /// processed sequence (aborts carry no frame of their own).
    std::uint64_t sequence{0};
    signs::HumanSign sign{signs::HumanSign::kNeutral};
    double confidence{0.0};
    bool abort{false};  ///< external abort, not a frame
  };

  /// Fleet-coordination hook: a listener sees, on the dialogue worker,
  /// every processed observation, every fused SignEvent, every FSM
  /// transition (as the AckAction that embodied it), and every decided
  /// dialogue outcome — exactly once each, in per-stream processing
  /// order. This is the seam CoordinationService and the event journal
  /// consume; the separate AckObserver slot stays free for benches.
  /// Callbacks must not re-enter this service (abort_stream() is re-entry;
  /// use try_abort_stream() from a listener-fed worker instead).
  struct DialogueListener {
    /// Fired for every observation BEFORE it is processed (the input-side
    /// tap journal recording needs; outputs follow on the same callstack).
    std::function<void(const ObservationSample&)> on_observation;
    std::function<void(const SignEvent&)> on_event;
    std::function<void(const AckAction&)> on_transition;
    /// Fired when a dialogue DECIDES its outcome (kGranted at execution
    /// end, kDenied at the confirm-No, kAborted / kNoAnswer when they
    /// strike) — not when the session later returns to Idle.
    std::function<void(const protocol::OutcomeRecord&)> on_outcome;
  };

  explicit InteractionService(InteractionServiceConfig config = {},
                              CommandGrammar grammar = CommandGrammar::standard());
  ~InteractionService();

  InteractionService(const InteractionService&) = delete;
  InteractionService& operator=(const InteractionService&) = delete;

  /// The glue to PerceptionService: pass as its result callback.
  [[nodiscard]] recognition::PerceptionService::ResultCallback callback() {
    return [this](const recognition::StreamResult& r) { on_result(r); };
  }

  /// Ingests one perception result (thread-safe; this IS the callback).
  void on_result(const recognition::StreamResult& result);

  /// Watches a perception service's shard gauges for congestion decisions.
  /// The pointee must outlive this service (or call watch(nullptr) first).
  void watch(const recognition::PerceptionService* perception) {
    watched_.store(perception, std::memory_order_release);
  }

  /// True while any watched perception shard queue is at or above
  /// congestion_depth. Producers may consult this to pace submission;
  /// admission uses it for opt-in neutral shedding. Always false when
  /// nothing is watched.
  [[nodiscard]] bool congested() const;

  void set_ack_observer(AckObserver observer);  ///< set before streaming
  void set_dialogue_listener(DialogueListener listener);  ///< set before streaming

  /// External safety abort for one stream's dialogue (processed in order
  /// with the observation stream).
  void abort_stream(std::uint32_t stream_id);

  /// Admits one observation directly, bypassing perception — the replay
  /// path (and tests): re-feeding a journal's ObservationSamples through
  /// here in recorded order reproduces the recorded run. Thread-safe, but
  /// replay feeds from ONE thread so ring order equals recorded order.
  void inject_observation(std::uint32_t stream_id, std::uint64_t sequence,
                          signs::HumanSign sign, double confidence);

  /// Non-blocking abort_stream(): returns false (and admits nothing) when
  /// the observation ring is full under kBlock, instead of waiting. The
  /// coordination worker uses this — it consumes this service's listener
  /// events, so blocking here could cycle with the dialogue worker
  /// blocking on the coordination ring.
  [[nodiscard]] bool try_abort_stream(std::uint32_t stream_id);

  /// Blocks until every observation admitted before the call is processed.
  /// Same checkpoint contract as PerceptionService::drain().
  void drain();

  /// Graceful shutdown: drains the ring, joins the worker. Idempotent.
  void stop() noexcept;

  // --- per-stream observability (all snapshot under the session lock) ---
  [[nodiscard]] InteractionStreamStats stream_stats(std::uint32_t stream_id) const;
  [[nodiscard]] DialogueState dialogue_state(std::uint32_t stream_id) const;
  [[nodiscard]] protocol::Outcome outcome(std::uint32_t stream_id) const;
  /// Outcome plus stream identity + deciding sequence (kPending record for
  /// a stream never seen).
  [[nodiscard]] protocol::OutcomeRecord outcome_record(std::uint32_t stream_id) const;
  /// The stream's acknowledgement LED ring (copy; kDanger fail-safe default
  /// for a stream never seen — same boot state as the hardware).
  [[nodiscard]] drone::LedRing led_ring(std::uint32_t stream_id) const;
  [[nodiscard]] drone::RingMode ring_mode(std::uint32_t stream_id) const;
  /// The last communicative pattern generated for the stream (empty
  /// waypoints if none yet).
  [[nodiscard]] drone::FlightPattern last_pattern(std::uint32_t stream_id) const;
  [[nodiscard]] protocol::Transcript transcript(std::uint32_t stream_id) const;

  [[nodiscard]] std::uint64_t shed_observations() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Highest watched-shard queue depth seen by the admission path. Only
  /// sampled while shed_neutral_when_congested is on — with shedding off
  /// the admission path never touches the gauges (no cross-shard locking
  /// on the recognition hot path); use congested() for on-demand reads.
  [[nodiscard]] std::size_t max_watched_depth() const noexcept {
    return max_watched_depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const InteractionServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const CommandGrammar& grammar() const noexcept { return grammar_; }

 private:
  enum class ObservationKind : std::uint8_t { kFrame = 0, kAbort };

  /// Compact admission record — the frame itself stays with perception.
  struct Observation {
    ObservationKind kind{ObservationKind::kFrame};
    std::uint32_t stream_id{0};
    std::uint64_t sequence{0};
    signs::HumanSign sign{signs::HumanSign::kNeutral};
    double confidence{0.0};
  };

  /// One stream's dialogue session. `mutex` guards everything below it:
  /// the worker holds it while processing, accessors while snapshotting.
  struct Session {
    explicit Session(std::uint32_t stream_id, const InteractionServiceConfig& c,
                     const CommandGrammar* grammar)
        : fuser(c.fusion, stream_id), fsm(stream_id, grammar, c.dialogue) {}
    mutable std::mutex mutex;
    SignEventFuser fuser;
    DialogueStateMachine fsm;
    drone::LedRing led;  ///< boots kDanger (fail-safe), like the hardware
    drone::FlightPattern last_pattern;
    std::uint64_t frames{0};
    std::uint64_t acks{0};
    std::uint64_t last_sequence{0};
    /// Last OutcomeRecord reported to the dialogue listener, so each
    /// decided outcome fires exactly once (worker-only).
    protocol::OutcomeRecord reported_outcome{};
  };

  void worker_loop();
  void process(const Observation& observation);
  void notify_listener(Session& session, const SignEventFuser::Events& events,
                       std::size_t event_count,
                       const DialogueStateMachine::Actions& actions);
  void apply_actions(Session& session, const DialogueStateMachine::Actions& actions);
  Session& session_for(std::uint32_t stream_id);
  [[nodiscard]] const Session* find_session(std::uint32_t stream_id) const;
  void admit(Observation observation);
  void finish_observations(std::size_t count);

  InteractionServiceConfig config_;
  CommandGrammar grammar_;
  util::BoundedRing<Observation> ring_;
  std::atomic<const recognition::PerceptionService*> watched_{nullptr};
  AckObserver ack_observer_;
  DialogueListener listener_;

  mutable std::shared_mutex sessions_mutex_;
  std::unordered_map<std::uint32_t, std::unique_ptr<Session>> sessions_;

  DialogueStateMachine::Actions actions_scratch_;  ///< worker-only, reused
  SignEventFuser::Events events_scratch_{};        ///< worker-only, reused

  /// Admitted observations not yet processed, plus the first worker error
  /// for drain() (shared machinery with PerceptionService).
  util::PendingCounter pending_;

  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::size_t> max_watched_depth_{0};

  // Telemetry handles (disarmed when config_.metrics is null). The counters
  // below except shed_counter_ are incremented only on the dialogue worker
  // while processing an admitted observation, so their totals are part of
  // the replay-deterministic set (see telemetry/stage_names.hpp).
  telemetry::Histogram fuse_ns_;
  telemetry::Histogram transition_ns_;
  telemetry::Counter observations_counter_;
  telemetry::Counter events_counter_;
  telemetry::Counter actions_counter_;
  telemetry::Counter outcomes_counter_;
  telemetry::Counter shed_counter_;  ///< producer-thread; NOT replay-deterministic
  telemetry::Gauge queue_depth_;
  telemetry::FlightRecorder* recorder_{nullptr};

  std::atomic<bool> stopping_{false};
  bool stopped_{false};  ///< guarded by stop_mutex_
  std::mutex stop_mutex_;
  std::thread worker_;
};

}  // namespace hdc::interaction
