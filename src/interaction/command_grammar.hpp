// CommandGrammar — table-driven mapping of fused sign sequences to drone
// commands.
//
// The paper's vocabulary is deliberately tiny (AttentionGained / Yes / No),
// so commands richer than a single yes/no are spelt as short *sequences*
// of signs, exactly like multi-stroke marshalling: Yes = "approach",
// Yes-Yes = "land here", No = "keep clear", No-No = "leave the area". The
// grammar is a plain rule table so deployments can swap vocabularies
// without touching the dialogue FSM; the FSM resolves prefix ambiguity
// ([Yes] is complete but extendable to [Yes, Yes]) with its sequence-gap
// timeout, mirroring how multi-stroke gestures are segmented.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "drone/flight_pattern.hpp"
#include "drone/led_ring.hpp"
#include "signs/sign.hpp"

namespace hdc::interaction {

/// What the human asked the drone to do.
enum class DroneCommandKind : std::uint8_t {
  kNone = 0,
  kApproach,  ///< come closer / proceed toward the signaller
  kLand,      ///< land at the negotiated spot
  kRetreat,   ///< back away, keep the human's space clear
  kLeave,     ///< depart the area entirely (climb out)
};

inline constexpr std::array<DroneCommandKind, 4> kAllCommands = {
    DroneCommandKind::kApproach, DroneCommandKind::kLand,
    DroneCommandKind::kRetreat, DroneCommandKind::kLeave};

[[nodiscard]] constexpr std::string_view to_string(DroneCommandKind kind) noexcept {
  switch (kind) {
    case DroneCommandKind::kNone: return "None";
    case DroneCommandKind::kApproach: return "Approach";
    case DroneCommandKind::kLand: return "Land";
    case DroneCommandKind::kRetreat: return "Retreat";
    case DroneCommandKind::kLeave: return "Leave";
  }
  return "?";
}

/// A parsed command plus the drone-side embodiment used while executing it:
/// the flight pattern flown and the LED ring mode shown (the ring previews
/// the same mode during confirmation, so the human sees what the drone
/// *intends* before it moves — the paper's negotiation principle).
struct DroneCommand {
  DroneCommandKind kind{DroneCommandKind::kNone};
  drone::PatternType execute_pattern{drone::PatternType::kHorizontalTransit};
  drone::RingMode execute_ring{drone::RingMode::kNavigation};
};

/// One grammar rule: a sign sequence and the command it parses to.
struct CommandRule {
  std::vector<signs::HumanSign> sequence;  ///< communicative signs, in order
  DroneCommand command;
};

/// How a sign buffer relates to the rule table.
enum class MatchState : std::uint8_t {
  kDeadEnd = 0,         ///< no rule starts with this buffer
  kPrefix,              ///< a strict prefix of >= 1 rule, completes none
  kComplete,            ///< exactly one rule, and no rule extends it
  kCompleteExtendable,  ///< a rule, but a longer rule extends it (wait or act)
};

[[nodiscard]] constexpr const char* to_string(MatchState state) noexcept {
  switch (state) {
    case MatchState::kDeadEnd: return "DeadEnd";
    case MatchState::kPrefix: return "Prefix";
    case MatchState::kComplete: return "Complete";
    case MatchState::kCompleteExtendable: return "CompleteExtendable";
  }
  return "?";
}

struct MatchResult {
  MatchState state{MatchState::kDeadEnd};
  const CommandRule* rule{nullptr};  ///< set for kComplete / kCompleteExtendable
};

class CommandGrammar;

/// A deployment's grammar file: one or more named vocabularies (the
/// per-deployment default plus per-human overrides — a surveyor who only
/// ever lands and leaves gets a two-rule table, see
/// examples/grammars/orchard_default.grammar). Vocabularies keep file
/// order; lookup is by section name.
class GrammarLibrary {
 public:
  explicit GrammarLibrary(
      std::vector<std::pair<std::string, CommandGrammar>> vocabularies);

  /// The vocabulary for one signaller, nullptr when the name is unknown.
  [[nodiscard]] const CommandGrammar* find(std::string_view name) const noexcept;
  /// Like find(), but throws std::out_of_range for an unknown name.
  [[nodiscard]] const CommandGrammar& at(std::string_view name) const;

  [[nodiscard]] const std::vector<std::pair<std::string, CommandGrammar>>&
  vocabularies() const noexcept {
    return vocabularies_;
  }

 private:
  std::vector<std::pair<std::string, CommandGrammar>> vocabularies_;
};

class CommandGrammar {
 public:
  /// Validates the table: rules must be non-empty, sequences non-empty,
  /// built from communicative (non-neutral) signs, and pairwise distinct.
  explicit CommandGrammar(std::vector<CommandRule> rules);

  /// The default four-command vocabulary described above.
  [[nodiscard]] static CommandGrammar standard();

  /// The embodiment standard() assigns to each command (pattern flown +
  /// ring mode shown while executing); the loader uses the same mapping so
  /// file-defined rules behave exactly like the built-in table.
  [[nodiscard]] static DroneCommand standard_command(DroneCommandKind kind);

  // --- rule-table file format (ROADMAP: richer command grammars) --------
  //
  //   # comment (blank lines ignored)
  //   [default]             <- section header = vocabulary name
  //   Yes        -> Approach
  //   Yes Yes    -> Land    <- sign names, whitespace-separated, then the
  //   No         -> Retreat    command (signs::to_string / DroneCommandKind
  //   No No      -> Leave      spellings, case-sensitive)
  //   [human:7]             <- per-human vocabulary section
  //   Yes        -> Land
  //
  // Rules before any section header belong to "default". Every parse error
  // reports origin:line. Validation is CommandGrammar's constructor —
  // duplicate sequences, neutral signs etc. fail the load.

  /// Parses a grammar file. Throws std::runtime_error (with origin:line)
  /// on malformed input or an unreadable path.
  [[nodiscard]] static GrammarLibrary load_library(const std::string& path);
  /// Convenience: load_library(path), then the "default" vocabulary (the
  /// sole vocabulary when the file defines exactly one under another name).
  [[nodiscard]] static CommandGrammar load(const std::string& path);
  /// The parser behind load_library, for in-memory tables and tests.
  [[nodiscard]] static GrammarLibrary parse_library(
      std::string_view text, std::string_view origin = "<string>");

  /// Classifies a sign buffer against the table (stateless — the dialogue
  /// FSM owns the buffer and the disambiguation clock).
  [[nodiscard]] MatchResult classify(
      std::span<const signs::HumanSign> buffer) const noexcept;

  [[nodiscard]] const std::vector<CommandRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] std::size_t max_sequence_length() const noexcept {
    return max_sequence_length_;
  }

 private:
  std::vector<CommandRule> rules_;
  std::size_t max_sequence_length_{0};
};

}  // namespace hdc::interaction
