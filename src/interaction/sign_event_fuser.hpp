// SignEventFuser — temporal fusion of noisy per-frame recognition into
// stable sign begin/end events.
//
// PerceptionService delivers one classification per frame, and single
// frames are noisy: the recogniser rejects oblique views, a one-frame
// glitch can flip the label, and the human holds a sign across dozens of
// frames. Dialogue needs the *utterance*, not the frames (cf. temporal
// filtering in semi-autonomous drone cohorts, Cleland-Huang et al. 2020).
// The fuser collapses the frame stream into SignEvents:
//
//   frames:  n n Y Y y Y Y n Y Y n n n n n ...      (y = low confidence,
//   events:      ^Begin(Yes)          ^End(Yes)      n = neutral/rejected)
//
// via three stacked guards, all tunable through FusionPolicy:
//   - majority vote over a sliding window (a one-frame flicker of another
//     sign can never reach majority, so it can never open an event);
//   - confidence hysteresis (opening demands `onset_confidence`, staying
//     open only `release_confidence`, so a borderline sign does not
//     chatter);
//   - min-hold + release debounce (an open event survives short detection
//     gaps — `release_misses` consecutive unsupported frames are needed to
//     close it, and never before `min_hold` frames have elapsed).
//
// The fuser is synchronous and deterministic: observe() consumes one frame
// and reports 0..2 events (an End of the previous sign and a Begin of the
// next can coincide). It allocates only at construction (the window ring),
// so the streaming hot path stays allocation-free, and it knows nothing of
// threads — InteractionService serialises calls per stream.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "recognition/recognizer.hpp"
#include "signs/sign.hpp"

namespace hdc::interaction {

/// Tuning of the temporal filter. Defaults are matched to the synthetic
/// feed's noise model (one-frame flickers, two-to-three-frame reject gaps)
/// and the recogniser's observed distance range.
struct FusionPolicy {
  std::size_t window{5};            ///< sliding-window length, frames
  std::size_t majority{3};          ///< window votes needed to open/support
  double onset_confidence{0.35};    ///< windowed mean confidence to open
  double release_confidence{0.18};  ///< hysteresis low bar while open
  std::size_t min_hold{3};          ///< frames an event must last before it may close
  std::size_t release_misses{3};    ///< consecutive unsupported frames to close
  /// Maps a match distance to confidence: 1 - distance / reference_distance
  /// (clamped to [0, 1]). Must equal the producing recogniser's
  /// accept_distance or accepted frames near the threshold fuse as zero
  /// evidence — wire it with matching() rather than trusting the default
  /// (which mirrors RecognizerConfig's default, 6.5).
  double reference_distance{6.5};

  /// The policy whose distance->confidence mapping matches the recogniser
  /// producing the results: reference_distance = config.accept_distance,
  /// so an accepted frame always carries positive confidence no matter how
  /// the threshold is tuned. Prefer this at every wiring site.
  [[nodiscard]] static FusionPolicy matching(
      const recognition::RecognizerConfig& config) noexcept {
    FusionPolicy policy;
    policy.reference_distance = config.accept_distance;
    return policy;
  }

  /// Confidence of one frame: rejected frames (and accepted-neutral frames,
  /// which carry no communicative content) contribute zero evidence.
  [[nodiscard]] double confidence_of(
      const recognition::RecognitionResult& result) const noexcept;
};

enum class SignEventKind : std::uint8_t {
  kBegin = 0,  ///< the sign became stable (onset)
  kEnd,        ///< the sign's support drained (offset)
};

[[nodiscard]] constexpr const char* to_string(SignEventKind kind) noexcept {
  switch (kind) {
    case SignEventKind::kBegin: return "Begin";
    case SignEventKind::kEnd: return "End";
  }
  return "?";
}

/// One fused utterance boundary. For kBegin, end_seq == onset_seq and
/// confidence is the windowed mean at onset; for kEnd, end_seq is the last
/// frame that still supported the sign and confidence is the mean over the
/// event's supported frames.
struct SignEvent {
  std::uint32_t stream_id{0};
  SignEventKind kind{SignEventKind::kBegin};
  signs::HumanSign label{signs::HumanSign::kNeutral};
  std::uint64_t onset_seq{0};
  std::uint64_t end_seq{0};
  double confidence{0.0};
};

class SignEventFuser {
 public:
  /// observe() emits at most an End (of the previous sign) plus a Begin (of
  /// the next) per frame.
  using Events = std::array<SignEvent, 2>;

  explicit SignEventFuser(FusionPolicy policy = {}, std::uint32_t stream_id = 0);

  /// Consumes one frame's label + confidence (kNeutral = no sign evidence).
  /// `sequence` must be strictly increasing per fuser. Returns how many
  /// events were written to `out`.
  std::size_t observe(std::uint64_t sequence, signs::HumanSign sign,
                      double confidence, Events& out);

  /// Convenience over a raw recognition result (rejected and neutral frames
  /// map to kNeutral with zero confidence, per FusionPolicy::confidence_of).
  std::size_t observe(std::uint64_t sequence,
                      const recognition::RecognitionResult& result, Events& out);

  /// Closes the active event, if any (stream shutdown). Returns 0 or 1.
  std::size_t finish(Events& out);

  /// Drops all window and event state (counters survive).
  void reset();

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] signs::HumanSign active_label() const noexcept { return active_label_; }
  [[nodiscard]] const FusionPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint64_t events_begun() const noexcept { return events_begun_; }
  [[nodiscard]] std::uint64_t events_ended() const noexcept { return events_ended_; }

 private:
  static constexpr std::size_t kSignSlots = signs::kAllSigns.size();

  struct Slot {
    signs::HumanSign sign{signs::HumanSign::kNeutral};
    double confidence{0.0};
  };

  /// The communicative sign with a window majority (ties break toward the
  /// lower enum value — deterministic), or kNeutral when none qualifies.
  [[nodiscard]] signs::HumanSign window_winner() const noexcept;
  [[nodiscard]] double window_mean_confidence(signs::HumanSign sign) const noexcept;
  void push_frame(signs::HumanSign sign, double confidence);
  SignEvent make_event(SignEventKind kind, std::uint64_t onset,
                       std::uint64_t end, double confidence) const noexcept;

  FusionPolicy policy_;
  std::uint32_t stream_id_{0};

  std::vector<Slot> ring_;  ///< last `window` frames; sized at construction
  std::size_t head_{0};     ///< next slot to overwrite
  std::size_t fill_{0};
  std::array<std::uint32_t, kSignSlots> counts_{};
  std::array<double, kSignSlots> confidence_sums_{};

  bool active_{false};
  signs::HumanSign active_label_{signs::HumanSign::kNeutral};
  std::uint64_t onset_seq_{0};
  std::uint64_t last_support_seq_{0};
  std::size_t held_frames_{0};
  std::size_t miss_run_{0};
  double event_confidence_sum_{0.0};
  std::uint64_t event_support_{0};

  std::uint64_t events_begun_{0};
  std::uint64_t events_ended_{0};
};

}  // namespace hdc::interaction
