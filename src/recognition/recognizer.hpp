// SaxSignRecognizer — the paper's recognition pipeline (§IV), end to end:
//
//   camera frame -> (invert, blur) -> Otsu threshold -> morphology ->
//   largest component -> Moore contour -> centroid-distance signature ->
//   z-normalise -> PAA -> SAX word -> string-database nearest match
//
// Rotation invariance comes from circular-shift matching of the periodic
// contour signature; real-time behaviour from the symbolic representation
// (dimensionality w << n) with optional exact verification. Per-stage wall
// times are recorded to reproduce the paper's latency measurements (T-LAT).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "imaging/components.hpp"
#include "imaging/contour.hpp"
#include "imaging/image.hpp"
#include "recognition/sign_database.hpp"
#include "telemetry/stage_names.hpp"
#include "util/stopwatch.hpp"

namespace hdc::recognition {

/// Why a frame produced no accepted sign.
enum class RejectReason : std::uint8_t {
  kNone = 0,         ///< accepted
  kNoSilhouette,     ///< nothing above threshold / too small
  kDegenerateShape,  ///< contour too short for a signature
  kAboveThreshold,   ///< nearest template too far (paper's "erratic" zone)
  kLowMargin,        ///< two templates nearly tied — ambiguous
};

[[nodiscard]] constexpr const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "None";
    case RejectReason::kNoSilhouette: return "NoSilhouette";
    case RejectReason::kDegenerateShape: return "DegenerateShape";
    case RejectReason::kAboveThreshold: return "AboveThreshold";
    case RejectReason::kLowMargin: return "LowMargin";
  }
  return "?";
}

/// Pipeline configuration.
struct RecognizerConfig {
  std::size_t signature_samples{128};
  std::size_t word_length{16};   ///< PAA segments (tunable, ref [22])
  std::size_t alphabet{9};       ///< SAX alphabet size (tunable, ref [22])
  double accept_distance{6.5};   ///< max distance for acceptance
  double min_margin{0.35};       ///< min (runner-up - best) separation
  std::size_t min_silhouette_area{120};  ///< pixels
  /// Off by default: the Otsu + morphology chain is robust on clean frames,
  /// and heavy blur thins distant limbs out of the silhouette. Enable
  /// (e.g. 1.0) when frames carry strong sensor noise.
  double preprocess_blur_sigma{0.0};
  int morphology_radius{1};
  bool exact_verify{true};       ///< re-rank SAX candidates exactly
  bool dark_silhouette{true};    ///< signaller darker than background
  /// Rescale the contour bounding box to a square before the signature.
  /// Cancels depression-angle foreshortening across the 2-5 m altitude
  /// band; disable only for the ablation that measures its effect.
  bool aspect_normalize{true};
};

/// Full result of one frame.
struct RecognitionResult {
  bool accepted{false};
  signs::HumanSign sign{signs::HumanSign::kNeutral};
  RejectReason reject_reason{RejectReason::kNoSilhouette};
  double distance{0.0};
  double margin{0.0};
  std::string sax_word;
  double total_ms{0.0};
};

/// Intermediate artefacts for debugging/visualisation (requested per call).
struct RecognitionTrace {
  imaging::BinaryImage silhouette;
  imaging::Contour contour;
  timeseries::Series raw_signature;
  timeseries::Series normalized_signature;
};

/// Every buffer the per-frame pipeline needs, owned by the caller so the hot
/// path performs no heap allocation after the first frame of a given size.
/// One scratch per worker thread; a scratch must never be shared between
/// concurrently processed frames.
struct RecognizerScratch {
  imaging::GrayImage working;        ///< inverted frame
  imaging::GrayImage blurred;        ///< optional blur output
  imaging::GrayImage blur_scratch;   ///< box-pass ping-pong
  imaging::BinaryImage binary;       ///< threshold / morphology result
  imaging::BinaryImage morph;        ///< morphology intermediate
  imaging::BinaryImage morph_a;      ///< separable-pass scratch
  imaging::BinaryImage morph_b;      ///< separable-pass scratch
  imaging::BinaryImage mask;         ///< largest-component silhouette
  imaging::Labeling labeling;
  imaging::LabelScratch label_scratch;
  imaging::Contour contour;
  imaging::Contour normalized_contour;
  imaging::Contour resampled;
  timeseries::Series signature;
  /// Database-query buffers, incl. the exact-verify rotation-match slots —
  /// the template-side doubled buffers live in the (shared, immutable)
  /// SignDatabase itself, so N scratches never duplicate them.
  QueryScratch query;
  /// Optional prepare/match/finalize span handles (disarmed by default —
  /// recording through a disarmed handle is a no-op branch). Engines that
  /// wire a telemetry::MetricsRegistry arm them once per worker scratch.
  telemetry::RecognitionStageMetrics metrics;
};

/// The full single-frame pipeline writing into caller-owned buffers. This is
/// the one canonical implementation: SaxSignRecognizer::recognize delegates
/// here with a fresh scratch (so its results are bit-identical to the batch
/// engine's, which reuses scratches). `timers`/`trace` may be null; both
/// cost extra when set, so the batch hot path passes null.
void recognize_frame_into(const RecognizerConfig& config, const SignDatabase& database,
                          const imaging::GrayImage& frame, RecognizerScratch& scratch,
                          RecognitionResult& result, util::StageTimers* timers = nullptr,
                          RecognitionTrace* trace = nullptr);

/// Buffers for recognize_frames_micro_batch: per-frame signature copies (the
/// imaging stages share ONE RecognizerScratch, so each frame's signature must
/// survive until the batched database query) plus the multi-query scratch.
/// Same warm-reuse contract as RecognizerScratch; one per worker.
struct MicroBatchScratch {
  MultiQueryScratch query;
  std::vector<timeseries::Series> raw_signatures;  ///< slot j = pending frame j
  std::vector<const timeseries::Series*> signature_ptrs;
  std::vector<std::size_t> pending;  ///< frame indices that reached the query stage
  std::vector<std::optional<DatabaseMatch>> matches;
  std::vector<double> prepare_ms;  ///< per-pending-frame stage 1-6 wall time
  /// Wall time of the most recent recognize_frames_micro_batch call. The
  /// per-frame total_ms values of that call sum to exactly this (the
  /// attribution invariant pinned in tests/recognition_micro_batch_test.cpp).
  double last_batch_ms{0.0};
};

/// Micro-batched recognition: runs the imaging stages (1-6) of each frame in
/// turn through `scratch`, then answers every frame that produced a signature
/// with ONE SignDatabase::query_many call — the exact-verify pass walks the
/// template panels once per micro-batch instead of once per frame. Writes
/// *results[i] for every frame. Every payload field (accepted / sign /
/// reject_reason / distance / margin / sax_word) is bit-identical to calling
/// recognize_frame_into on each frame in order with the same scratch; only
/// total_ms differs. Timing attribution: each frame keeps its own measured
/// stage 1-6 wall time and the remaining batch wall time (the shared query
/// plus finalize/loop overhead) is split evenly across the frames that
/// reached the query, so the per-frame totals sum to the batch wall time
/// (exposed as MicroBatchScratch::last_batch_ms). Callers bound `count`
/// (the batching window) to keep single-frame latency bounded — see
/// BatchRecognizer / PerceptionService.
void recognize_frames_micro_batch(const RecognizerConfig& config,
                                  const SignDatabase& database,
                                  const imaging::GrayImage* const* frames,
                                  std::size_t count, RecognizerScratch& scratch,
                                  MicroBatchScratch& micro,
                                  RecognitionResult* const* results);

class SaxSignRecognizer {
 public:
  /// Builds the recogniser and its canonical database. `db_options.render`
  /// should match the camera the drone actually carries.
  SaxSignRecognizer(const RecognizerConfig& config,
                    const DatabaseBuildOptions& db_options);

  /// Builds with an externally constructed database (must use a compatible
  /// encoder configuration). Wraps the value in a fresh shared handle.
  SaxSignRecognizer(const RecognizerConfig& config, SignDatabase database);

  /// Builds against an existing shared database handle — no copy. The
  /// database is immutable after build, so any number of recognisers,
  /// batch engines and perception shards may share one instance.
  SaxSignRecognizer(const RecognizerConfig& config,
                    std::shared_ptr<const SignDatabase> database);

  /// Processes one frame. When `trace` is non-null, intermediates are
  /// copied out (costs extra; keep null on the hot path).
  [[nodiscard]] RecognitionResult recognize(const imaging::GrayImage& frame,
                                            RecognitionTrace* trace = nullptr) const;

  /// The silhouette signature of a frame without matching (used by the
  /// uniqueness study and tests).
  [[nodiscard]] timeseries::Series extract_signature(const imaging::GrayImage& frame) const;

  [[nodiscard]] const RecognizerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const SignDatabase& database() const noexcept { return *database_; }

  /// The shared handle itself, so callers can fan the one immutable
  /// database out to other engines without copying templates.
  [[nodiscard]] const std::shared_ptr<const SignDatabase>& database_ptr()
      const noexcept {
    return database_;
  }

  /// Accumulated per-stage timings across all recognize() calls
  /// (preprocess / threshold / morphology / component / contour / signature
  /// / sax+search). Reset with timers().reset().
  [[nodiscard]] util::StageTimers& timers() const noexcept { return timers_; }

 private:
  RecognizerConfig config_;
  std::shared_ptr<const SignDatabase> database_;
  mutable util::StageTimers timers_;
};

/// Encoder matching a RecognizerConfig (shared by DB builders and tests).
[[nodiscard]] inline timeseries::SaxEncoder make_encoder(const RecognizerConfig& config) {
  return timeseries::SaxEncoder(
      timeseries::SaxConfig(config.word_length, config.alphabet));
}

}  // namespace hdc::recognition
