#include "recognition/batch_recognizer.hpp"

namespace hdc::recognition {

namespace {

SignDatabase build_database(const RecognizerConfig& config,
                            const DatabaseBuildOptions& db_options) {
  // Templates run through the same single-frame pipeline the recogniser
  // uses, so a query under canonical conditions reproduces its template
  // bit-for-bit (mirrors SaxSignRecognizer's database constructor).
  const SaxSignRecognizer reference(config, db_options);
  return reference.database();
}

}  // namespace

BatchRecognizer::BatchRecognizer(const RecognizerConfig& config,
                                 const DatabaseBuildOptions& db_options,
                                 std::size_t workers)
    : BatchRecognizer(config, build_database(config, db_options), workers) {}

BatchRecognizer::BatchRecognizer(const RecognizerConfig& config, SignDatabase database,
                                 std::size_t workers)
    : config_(config),
      database_(std::move(database)),
      pool_(workers),
      scratch_(pool_.worker_count()) {}

void BatchRecognizer::recognize_batch(const std::vector<imaging::GrayImage>& frames,
                                      std::vector<RecognitionResult>& results) {
  results.resize(frames.size());
  pool_.run(frames.size(), [this, &frames, &results](std::size_t worker,
                                                     std::size_t index) {
    recognize_frame_into(config_, database_, frames[index], scratch_[worker],
                         results[index]);
  });
}

std::vector<RecognitionResult> BatchRecognizer::recognize_batch(
    const std::vector<imaging::GrayImage>& frames) {
  std::vector<RecognitionResult> results;
  recognize_batch(frames, results);
  return results;
}

}  // namespace hdc::recognition
