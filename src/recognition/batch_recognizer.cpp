#include "recognition/batch_recognizer.hpp"

#include <stdexcept>

namespace hdc::recognition {

namespace {

std::shared_ptr<const SignDatabase> build_database(
    const RecognizerConfig& config, const DatabaseBuildOptions& db_options) {
  // Templates run through the same single-frame pipeline the recogniser
  // uses, so a query under canonical conditions reproduces its template
  // bit-for-bit (mirrors SaxSignRecognizer's database constructor). The
  // reference recogniser already owns a shared handle; adopt it directly.
  const SaxSignRecognizer reference(config, db_options);
  return reference.database_ptr();
}

}  // namespace

BatchRecognizer::BatchRecognizer(const RecognizerConfig& config,
                                 const DatabaseBuildOptions& db_options,
                                 std::size_t workers)
    : BatchRecognizer(config, build_database(config, db_options), workers) {}

BatchRecognizer::BatchRecognizer(const RecognizerConfig& config, SignDatabase database,
                                 std::size_t workers)
    : BatchRecognizer(config,
                      std::make_shared<const SignDatabase>(std::move(database)),
                      workers) {}

BatchRecognizer::BatchRecognizer(const RecognizerConfig& config,
                                 std::shared_ptr<const SignDatabase> database,
                                 std::size_t workers)
    : config_(config),
      database_(std::move(database)),
      pool_(workers),
      scratch_(pool_.worker_count()) {
  if (database_ == nullptr) {
    throw std::invalid_argument("BatchRecognizer: null database handle");
  }
}

void BatchRecognizer::recognize_batch(const std::vector<imaging::GrayImage>& frames,
                                      std::vector<RecognitionResult>& results) {
  if (frames.empty()) {
    // An empty batch is a defined no-op: the results vector is cleared and
    // the worker pool is never touched (no wake-up, no scratch access).
    results.clear();
    return;
  }
  results.resize(frames.size());
  pool_.run(frames.size(), [this, &frames, &results](std::size_t worker,
                                                     std::size_t index) {
    recognize_frame_into(config_, *database_, frames[index], scratch_[worker],
                         results[index]);
  });
}

std::vector<RecognitionResult> BatchRecognizer::recognize_batch(
    const std::vector<imaging::GrayImage>& frames) {
  std::vector<RecognitionResult> results;
  recognize_batch(frames, results);
  return results;
}

}  // namespace hdc::recognition
