#include "recognition/batch_recognizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace hdc::recognition {

namespace {

std::shared_ptr<const SignDatabase> build_database(
    const RecognizerConfig& config, const DatabaseBuildOptions& db_options) {
  // Templates run through the same single-frame pipeline the recogniser
  // uses, so a query under canonical conditions reproduces its template
  // bit-for-bit (mirrors SaxSignRecognizer's database constructor). The
  // reference recogniser already owns a shared handle; adopt it directly.
  const SaxSignRecognizer reference(config, db_options);
  return reference.database_ptr();
}

}  // namespace

BatchRecognizer::BatchRecognizer(const RecognizerConfig& config,
                                 const DatabaseBuildOptions& db_options,
                                 std::size_t workers)
    : BatchRecognizer(config, build_database(config, db_options), workers) {}

BatchRecognizer::BatchRecognizer(const RecognizerConfig& config, SignDatabase database,
                                 std::size_t workers)
    : BatchRecognizer(config,
                      std::make_shared<const SignDatabase>(std::move(database)),
                      workers) {}

BatchRecognizer::BatchRecognizer(const RecognizerConfig& config,
                                 std::shared_ptr<const SignDatabase> database,
                                 std::size_t workers)
    : config_(config),
      database_(std::move(database)),
      pool_(workers),
      scratch_(pool_.worker_count()),
      micro_(pool_.worker_count()) {
  if (database_ == nullptr) {
    throw std::invalid_argument("BatchRecognizer: null database handle");
  }
}

void BatchRecognizer::instrument(telemetry::MetricsRegistry& metrics) {
  const telemetry::RecognitionStageMetrics handles =
      telemetry::RecognitionStageMetrics::from(metrics);
  for (RecognizerScratch& scratch : scratch_) scratch.metrics = handles;
}

void BatchRecognizer::recognize_batch(const std::vector<imaging::GrayImage>& frames,
                                      std::vector<RecognitionResult>& results) {
  if (frames.empty()) {
    // An empty batch is a defined no-op: the results vector is cleared and
    // the worker pool is never touched (no wake-up, no scratch access).
    results.clear();
    return;
  }
  results.resize(frames.size());
  // Jobs are contiguous windows of kMicroBatchWindow frames, each answered
  // by one recognize_frames_micro_batch call so the blocked exact-verify
  // pass amortises its template-panel walks across the window. Payload
  // fields stay bit-identical to per-frame dispatch (see recognizer.hpp).
  constexpr std::size_t kWindow = kMicroBatchWindow;
  const std::size_t windows = (frames.size() + kWindow - 1) / kWindow;
  pool_.run(windows, [this, &frames, &results](std::size_t worker,
                                               std::size_t window_index) {
    const std::size_t begin = window_index * kWindow;
    const std::size_t end = std::min(begin + kWindow, frames.size());
    const imaging::GrayImage* frame_ptrs[kWindow];
    RecognitionResult* result_ptrs[kWindow];
    for (std::size_t i = begin; i < end; ++i) {
      frame_ptrs[i - begin] = &frames[i];
      result_ptrs[i - begin] = &results[i];
    }
    recognize_frames_micro_batch(config_, *database_, frame_ptrs, end - begin,
                                 scratch_[worker], micro_[worker], result_ptrs);
  });
}

std::vector<RecognitionResult> BatchRecognizer::recognize_batch(
    const std::vector<imaging::GrayImage>& frames) {
  std::vector<RecognitionResult> results;
  recognize_batch(frames, results);
  return results;
}

}  // namespace hdc::recognition
