// The string database of canonical sign signatures (paper §IV: "a
// comparison of the string against a database of strings ... can be used
// quite effectively to identify features in images").
//
// Each template stores the SAX word of a sign's canonical silhouette
// signature plus the z-normalised signature itself, so queries can use the
// cheap symbolic MINDIST first and optionally confirm with the exact
// rotation-invariant Euclidean distance. add_template also precomputes the
// doubled-buffer form of the signature (timeseries::RotationTemplate) so
// the exact-verify pass runs the vectorised rotation kernel with no
// per-query setup — the database pays the O(n) precompute once per
// template, every query reaps it.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "imaging/image.hpp"

#include "signs/scene.hpp"
#include "signs/sign.hpp"
#include "timeseries/distance.hpp"
#include "timeseries/rotation_block.hpp"
#include "timeseries/sax.hpp"
#include "timeseries/series.hpp"

namespace hdc::recognition {

/// One stored reference.
struct SignTemplate {
  signs::HumanSign sign{signs::HumanSign::kNeutral};
  timeseries::SaxWord word{};
  timeseries::Series normalized_signature{};  ///< z-normalised, length = samples
  /// Doubled-buffer form of normalized_signature for the vectorised
  /// rotation-invariant kernel; built in add_template, immutable after.
  timeseries::RotationTemplate rotation{};
  std::string label;                          ///< provenance, e.g. "No@az0/alt5"
};

/// Query result against the database.
struct DatabaseMatch {
  signs::HumanSign sign{signs::HumanSign::kNeutral};
  double distance{0.0};        ///< rotation-invariant MINDIST (or exact, see flag)
  double margin{0.0};          ///< runner-up distance minus best distance
  std::size_t template_index{0};
  std::size_t best_shift{0};   ///< rotation at which the best match occurred
};

/// Reusable buffers for one querying thread. Queries against a shared
/// database from N workers need N scratches; the database itself is
/// immutable after build and safe to share. All vectors are resized in
/// place by query(), so a scratch that has seen one query of a given
/// signature length performs zero heap allocations on every later query of
/// that length — the contract the streaming shards (RecognizerScratch
/// embeds one QueryScratch per shard) rely on. A scratch must never be
/// shared between concurrently processed frames.
struct QueryScratch {
  struct Scored {
    double distance;
    std::size_t index;
    std::size_t shift;
  };
  timeseries::Series normalized;  ///< z-normalised query signature
  timeseries::Series paa;         ///< PAA coefficients for the SAX encode
  timeseries::SaxWord word;       ///< query SAX word (kept: recognizer reads it)
  timeseries::SaxWord rotated;    ///< rotation scratch for symbolic MINDIST
  std::vector<Scored> scored;     ///< per-template symbolic distances
  /// Exact-verify panel: one RotationTemplate pointer per stored template.
  std::vector<const timeseries::RotationTemplate*> rotation_templates;
  /// Blocked-engine scratch for the exact-verify top-2 pass (move-only, so
  /// QueryScratch itself is move-only — the shards each own one anyway).
  timeseries::RotationBlockScratch block;
};

/// Reusable buffers for query_many(): per-query signature slots plus one
/// shared blocked-engine scratch. Same warm-reuse contract as QueryScratch;
/// never share between concurrently processed micro-batches.
struct MultiQueryScratch {
  /// Per-query encode buffers (slot i belongs to raw_signatures[i]).
  struct Slot {
    timeseries::Series normalized;
    timeseries::Series paa;
    timeseries::SaxWord word;
  };
  std::vector<Slot> slots;
  std::vector<std::size_t> active;  ///< indices of non-empty queries
  std::vector<const timeseries::Series*> queries;  ///< normalized ptrs, active only
  std::vector<const timeseries::RotationTemplate*> rotation_templates;
  std::vector<timeseries::RotationTopMatch> top;
  std::vector<QueryScratch::Scored> scored;  ///< symbolic path, reused per query
  timeseries::SaxWord rotated;               ///< symbolic rotation scratch
  timeseries::RotationBlockScratch block;
};

/// Immutable-after-build template store.
class SignDatabase {
 public:
  explicit SignDatabase(timeseries::SaxEncoder encoder) : encoder_(std::move(encoder)) {}

  /// Adds a template from a raw (not yet normalised) signature: z-normalises
  /// it, encodes the SAX word, and precomputes the doubled rotation buffer.
  /// O(n + w) per call. Not thread-safe; build fully before sharing.
  void add_template(signs::HumanSign sign, const timeseries::Series& raw_signature,
                    std::string label);

  /// Nearest template. Without `exact_verify`: by symbolic
  /// rotation-invariant MINDIST. With it: every template is scored by exact
  /// rotation-invariant Euclidean distance through the batch kernel (the
  /// symbolic rotation scan moves in whole-symbol steps, so MINDIST is NOT
  /// a sound lower bound under arbitrary shifts — all templates must be
  /// verified, and the symbolic per-template scan is skipped entirely) and
  /// the result carries the exact distance/margin/shift. Either way the
  /// query's SAX word is encoded into the scratch (the recogniser reads it
  /// back). Returns nullopt when the database is empty or the query
  /// signature is empty. O(T * n^2) with exact_verify, O(T * w^2) without,
  /// for T templates, word length w, signature length n.
  [[nodiscard]] std::optional<DatabaseMatch> query(
      const timeseries::Series& raw_signature, bool exact_verify = false) const;

  /// query with caller-owned scratch buffers (allocation-free once warm —
  /// see QueryScratch); bit-identical to the version above, which delegates
  /// here.
  [[nodiscard]] std::optional<DatabaseMatch> query(
      const timeseries::Series& raw_signature, bool exact_verify,
      QueryScratch& scratch) const;

  /// Multi-query entry point: answers `count` queries in ONE pass, writing
  /// out[i] (nullopt exactly when query(raw[i]) would return nullopt). Each
  /// answer is bit-identical to a standalone query(raw[i], exact_verify)
  /// call — with exact_verify the whole micro-batch runs through the blocked
  /// rotation engine (rotation_match_top2_block), so the T template panels
  /// are walked once per block instead of once per query; without it each
  /// query runs the symbolic ranking in turn. After the call,
  /// scratch.slots[i].word holds query i's SAX word (the micro-batch
  /// recogniser reads it back, mirroring the single-query scratch contract).
  void query_many(const timeseries::Series* const* raw_signatures,
                  std::size_t count, bool exact_verify,
                  MultiQueryScratch& scratch,
                  std::optional<DatabaseMatch>* out) const;

  [[nodiscard]] const std::vector<SignTemplate>& templates() const noexcept {
    return templates_;
  }
  [[nodiscard]] const timeseries::SaxEncoder& encoder() const noexcept {
    return encoder_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return templates_.size(); }

 private:
  /// Shared with query()/query_many() so single and batched answers are
  /// bit-identical by construction, not by parallel maintenance.
  [[nodiscard]] DatabaseMatch match_from_top(
      const timeseries::RotationTopMatch& top) const;
  [[nodiscard]] DatabaseMatch symbolic_rank(
      const timeseries::SaxWord& query_word,
      std::vector<QueryScratch::Scored>& scored,
      timeseries::SaxWord& rotated) const;
  void fill_template_panel(
      std::vector<const timeseries::RotationTemplate*>& panel) const;

  timeseries::SaxEncoder encoder_;
  std::vector<SignTemplate> templates_;
};

/// Options controlling database construction from the synthetic renderer.
/// The canonical view is the paper's "0-deg relative azimuth image as the
/// canonical reference"; the altitude sits mid-way through the paper's
/// working band (2-5 m) so one reference serves the whole band.
struct DatabaseBuildOptions {
  signs::ViewGeometry canonical_view{3.5, 3.0, 0.0};
  signs::RenderOptions render{};
  std::size_t signature_samples{128};
  bool include_neutral{true};  ///< store the neutral stance as a negative class
  /// Extra reference altitudes (extension beyond the paper's single
  /// canonical image): one additional template per sign per entry, at the
  /// canonical azimuth/distance. Widens the working envelope at the cost
  /// of a linearly larger database.
  std::vector<double> extra_altitudes{};
};

/// Extracts a signature series from a rendered frame. The recogniser passes
/// its own pipeline here so templates and queries go through *identical*
/// processing — any asymmetry would show up as spurious distance.
using SignatureExtractor =
    std::function<timeseries::Series(const imaging::GrayImage&)>;

/// Renders each sign's canonical pose at the canonical view and stores its
/// signature — the reproduction of the authors' reference-image database.
[[nodiscard]] SignDatabase build_canonical_database(const timeseries::SaxEncoder& encoder,
                                                    const DatabaseBuildOptions& options,
                                                    const SignatureExtractor& extractor);

}  // namespace hdc::recognition
