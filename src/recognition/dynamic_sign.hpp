// Dynamic marshalling signs — the paper's §V future-work item: "The
// flexibility of the system with respect to other static and, possibly
// later, dynamic marshalling signals should also be examined."
//
// A dynamic sign is a short periodic pose sequence. The recogniser treats
// it as alternation between keyframe silhouettes: each camera frame is
// matched against the keyframe database with the same SAX pipeline, and a
// dynamic sign fires when enough keyframe alternations occur inside a
// sliding window. First (and aviation-standard) vocabulary entry:
// **WaveOff** — one arm waving overhead, "abort / go away" — the natural
// complement to the static Yes/No for untrained bystanders.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "recognition/recognizer.hpp"
#include "signs/skeleton.hpp"

namespace hdc::recognition {

enum class DynamicSign : std::uint8_t { kNone = 0, kWaveOff };

[[nodiscard]] constexpr const char* to_string(DynamicSign sign) noexcept {
  return sign == DynamicSign::kWaveOff ? "WaveOff" : "None";
}

/// Pose of the wave gesture at `phase01` in [0, 1): the raised arm swings
/// between vertical-ish and diagonal across one period.
[[nodiscard]] signs::BodyPose wave_pose(double phase01);

/// Detection parameters.
struct DynamicSignConfig {
  RecognizerConfig pipeline{};       ///< silhouette/SAX settings reused
  double window_s{3.0};              ///< sliding detection window
  int min_alternations{4};           ///< high<->low flips required
  double accept_distance{6.5};       ///< per-frame keyframe match threshold
  double hold_s{1.5};                ///< detection latched this long
};

/// Streaming detector: feed timestamped frames, read the active sign.
class DynamicSignRecognizer {
 public:
  DynamicSignRecognizer(const DynamicSignConfig& config,
                        const DatabaseBuildOptions& db_options);

  /// Processes one camera frame taken at simulation time `t_seconds`
  /// (monotonically non-decreasing). Returns the sign active after this
  /// frame (detections latch for hold_s).
  DynamicSign update(double t_seconds, const imaging::GrayImage& frame);

  [[nodiscard]] DynamicSign current() const noexcept { return active_; }
  [[nodiscard]] const DynamicSignConfig& config() const noexcept { return config_; }

  /// Keyframe class of the latest frame (exposed for tests/benches):
  /// 0 = wave-high, 1 = wave-low, nullopt = neither matched.
  [[nodiscard]] std::optional<int> last_keyframe() const noexcept {
    return last_keyframe_;
  }

 private:
  DynamicSignConfig config_;
  SaxSignRecognizer matcher_;  ///< owns the keyframe database
  std::deque<std::pair<double, int>> keyframes_;  ///< (t, class) in window
  std::optional<int> last_keyframe_;
  DynamicSign active_{DynamicSign::kNone};
  double hold_until_{-1.0};
};

}  // namespace hdc::recognition
