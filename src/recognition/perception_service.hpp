// PerceptionService — sharded, streaming multi-drone recognition.
//
// The paper validates one frame at a time from one drone; a deployed system
// serves many simultaneous perception streams (drone cohorts, cf.
// Cleland-Huang & Agrawal 2020; swarm signalling, cf. Grispino et al.
// 2020). This service turns the batch engine inside out:
//
//   streams ──submit()──> router ──rings──> shards ──callback──> caller
//
//   - Callers submit(stream_id, frame) from ANY thread; frames never wait
//     for a batch boundary.
//   - A router pins each stream to one of K worker shards (stable
//     stream -> shard affinity, so a shard's scratch arena stays warm for
//     the frame geometry it keeps seeing) via a bounded MPSC ring
//     (util::BoundedRing) with a configurable overflow policy: block,
//     drop-oldest (live feeds prefer fresh frames) or reject.
//   - Every shard owns a RecognizerScratch + MicroBatchScratch and runs the
//     same canonical pipeline as SaxSignRecognizer/BatchRecognizer. A shard
//     pops one frame (blocking), then gathers whatever is ALREADY queued up
//     to micro_batch_window frames (non-blocking try_pop — the gather never
//     waits for frames that have not arrived, so an idle stream keeps plain
//     single-frame latency) and answers the window with one blocked
//     database pass (recognize_frames_micro_batch). Payload fields are
//     bit-identical to sequential recognition of the same frames; only the
//     timing field total_ms reflects the batching.
//   - Completed frames are delivered through a per-frame callback carrying
//     {stream_id, sequence, result}. RecognitionResult itself is unchanged
//     (wrapped, not mutated), keeping the single-frame API ABI-stable.
//   - All shards match against ONE immutable SignDatabase behind a
//     std::shared_ptr<const SignDatabase> — N streams no longer mean N
//     template-store copies.
//
// Ordering guarantee: within a stream, callbacks arrive in strictly
// increasing sequence order (one shard per stream, FIFO ring, one worker
// per shard). Across streams there is no ordering. Under kDropOldest the
// delivered sequences stay monotonic but may skip the evicted (always the
// oldest queued) frames.
//
// Threading contract: the result callback runs on shard worker threads,
// potentially concurrently for different streams — it must be thread-safe
// and must not call submit()/drain()/stop() on this service (a callback
// that re-enters submit() on a full kBlock ring would deadlock the shard).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "recognition/recognizer.hpp"
#include "telemetry/trace.hpp"
#include "util/pending_counter.hpp"
#include "util/ring_buffer.hpp"

namespace hdc::telemetry {
class FlightRecorder;
}  // namespace hdc::telemetry

namespace hdc::recognition {

/// One delivered frame: the unchanged single-frame RecognitionResult plus
/// its stream coordinates (wrap, don't mutate — see header comment).
struct StreamResult {
  std::uint32_t stream_id{0};
  std::uint64_t sequence{0};  ///< per-stream, assigned at submit, starts at 0
  RecognitionResult result;
  /// Causal trace identity minted at submit. Always populated (the id is
  /// a pure function of stream_id/sequence, so filling it is branch-free
  /// integer math); only consulted when a FlightRecorder is wired.
  telemetry::TraceContext trace{};
};

/// What happened to a submitted frame at admission time.
enum class SubmitStatus : std::uint8_t {
  kEnqueued,            ///< admitted, nothing lost
  kEnqueuedDropOldest,  ///< admitted; the shard's oldest queued frame was evicted
  kRejected,            ///< refused (kReject policy, ring full)
  kStopped,             ///< refused (service stopping/stopped)
};

struct SubmitReceipt {
  SubmitStatus status{SubmitStatus::kEnqueued};
  /// The per-stream sequence assigned to the frame. Only an ADMITTED frame
  /// consumes a sequence number — a rejected or stopped submit leaves the
  /// stream's counter untouched, so delivered sequences under kReject stay
  /// contiguous while kDropOldest eviction shows up as gaps.
  std::uint64_t sequence{0};
  std::size_t shard{0};  ///< the shard this stream is pinned to
};

/// Runtime backpressure-policy switching (ROADMAP: dynamic backpressure).
/// With `enabled`, each submit watches its shard's queue depth: at or above
/// `high_water` a kBlock shard flips to kDropOldest (a congested live feed
/// must prefer fresh frames over stalling the camera thread), and at or
/// below `low_water` it flips back to kBlock (lossless again). The two
/// thresholds are a hysteresis band so a depth hovering near one mark
/// cannot thrash the policy. Shards configured kDropOldest/kReject at
/// construction are left alone — the switch only manages the
/// kBlock <-> kDropOldest pair.
struct DynamicBackpressureConfig {
  bool enabled{false};
  std::size_t high_water{48};  ///< depth >= this: switch to kDropOldest
  std::size_t low_water{8};    ///< depth <= this: switch back to kBlock
};

/// Service shape. Defaults suit a live multi-camera feed on a multi-core
/// companion computer.
struct PerceptionServiceConfig {
  std::size_t shards{0};           ///< worker shards; 0 = hardware concurrency
  std::size_t queue_capacity{64};  ///< frames buffered per shard ring
  util::OverflowPolicy overflow{util::OverflowPolicy::kBlock};
  DynamicBackpressureConfig dynamic_backpressure{};
  /// Max frames a shard answers with one blocked database pass. The gather
  /// is bounded AND non-blocking (only frames already queued join a window),
  /// so raising it amortises the exact-verify template walks under load
  /// without adding latency when the queue is shallow. 1 = micro-batching
  /// off. Must be >= 1 (std::invalid_argument otherwise).
  std::size_t micro_batch_window{4};
  /// Optional telemetry wiring (must outlive the service). When set, the
  /// service records submit/ring-wait/recognize spans, the per-stage
  /// recognition histograms, frame counters and a queue-depth gauge
  /// (names in telemetry/stage_names.hpp). Null = zero instrumentation
  /// cost beyond a predictable disarmed-handle branch per site.
  telemetry::MetricsRegistry* metrics{nullptr};
  /// Optional causal tracing (must outlive the service). When set, every
  /// frame's submit/queue-wait/recognize stages emit TraceEvents into the
  /// flight recorder, including terminal kDropped/kRejected events on the
  /// backpressure paths — no trace ends open. Null = same disarmed cost
  /// contract as `metrics`.
  telemetry::FlightRecorder* recorder{nullptr};
};

/// Per-stream accounting snapshot.
struct StreamStats {
  std::uint64_t submitted{0};  ///< frames admitted (incl. later-evicted)
  std::uint64_t delivered{0};  ///< callbacks fired
  std::uint64_t dropped{0};    ///< evicted under kDropOldest before processing
  std::uint64_t rejected{0};   ///< refused at submit under kReject
};

/// Live gauge of one shard's ingress ring (ROADMAP: per-shard queue-depth
/// gauges). `depth` is instantaneous — by the time the caller reads it the
/// worker may have drained frames — so treat it as a congestion signal, not
/// an exact count. Downstream consumers (e.g. InteractionService) use it
/// for backpressure decisions; dashboards use the cumulative counters.
struct ShardGauge {
  std::size_t depth{0};         ///< frames queued right now
  std::size_t capacity{0};      ///< ring capacity
  std::uint64_t evicted{0};     ///< cumulative kDropOldest evictions
  std::uint64_t rejected{0};    ///< cumulative kReject refusals
  /// Cumulative frames ever popped by the shard worker — the liveness
  /// signal the stalled-shard watchdog keys on (depth without popped
  /// progress across observations = stalled).
  std::uint64_t popped{0};
  /// The shard's overflow policy right now (== the configured policy
  /// unless dynamic backpressure switched it).
  util::OverflowPolicy policy{util::OverflowPolicy::kBlock};
};

class PerceptionService {
 public:
  using ResultCallback = std::function<void(const StreamResult&)>;

  /// Builds the service over an existing shared database handle. All
  /// shards reference exactly this instance (no copies).
  PerceptionService(const RecognizerConfig& config,
                    std::shared_ptr<const SignDatabase> database,
                    ResultCallback on_result,
                    const PerceptionServiceConfig& service_config = {});

  /// Convenience: builds the canonical database first (same semantics as
  /// SaxSignRecognizer), then shares it across the shards.
  PerceptionService(const RecognizerConfig& config,
                    const DatabaseBuildOptions& db_options,
                    ResultCallback on_result,
                    const PerceptionServiceConfig& service_config = {});

  /// Stops the service (drains queued frames, joins shard threads).
  ~PerceptionService();

  PerceptionService(const PerceptionService&) = delete;
  PerceptionService& operator=(const PerceptionService&) = delete;

  /// Submits one frame of `stream_id` from any thread. The frame is copied
  /// (the camera keeps its buffer); use the rvalue overload to move. The
  /// returned receipt carries the per-stream sequence number the frame was
  /// assigned. Throws std::invalid_argument for an empty frame.
  SubmitReceipt submit(std::uint32_t stream_id, const imaging::GrayImage& frame);
  SubmitReceipt submit(std::uint32_t stream_id, imaging::GrayImage&& frame);

  /// Blocks until every frame admitted by a submit() that returned before
  /// this call has been delivered (or evicted). Rethrows the first pipeline
  /// exception raised on a shard, if any (the error slot is cleared, so the
  /// next drain() reports only newer failures).
  ///
  /// drain() is a checkpoint, NOT a terminator: the service keeps running.
  /// The full contract of interleaving drain() with submit():
  ///   - submit() after drain() is well-defined — frames are admitted,
  ///     processed, and delivered exactly as before the drain; per-stream
  ///     sequence counters continue (no reset), and stats accumulate across
  ///     drain boundaries. Any number of submit/drain cycles is valid.
  ///   - submit() concurrent with drain(): the drain only promises to cover
  ///     frames whose submit() returned before drain() was entered; racing
  ///     frames may land before or after the wakeup.
  ///   - drain() after stop() returns immediately (nothing is pending) —
  ///     it never blocks on a stopped service.
  /// tests/perception_service_test.cpp pins this contract.
  void drain();

  /// Graceful shutdown: admits nothing new, drains what is queued, joins
  /// the shard threads. Idempotent; called by the destructor. Pipeline
  /// exceptions are swallowed here (use drain() to observe them).
  void stop() noexcept;

  /// Stable stream -> shard routing (exposed for tests and capacity math).
  [[nodiscard]] std::size_t shard_of(std::uint32_t stream_id) const noexcept {
    return static_cast<std::size_t>(stream_id) % shards_.size();
  }

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] const RecognizerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const SignDatabase& database() const noexcept { return *database_; }
  [[nodiscard]] const std::shared_ptr<const SignDatabase>& database_ptr()
      const noexcept {
    return database_;
  }
  /// The database a given shard matches against — by construction the same
  /// object for every shard (pointer-equality is pinned in tests).
  [[nodiscard]] const SignDatabase* shard_database(std::size_t shard) const;

  /// Accounting snapshot for one stream (zeros for an unknown stream).
  [[nodiscard]] StreamStats stream_stats(std::uint32_t stream_id) const;
  /// Aggregate accounting across all streams.
  [[nodiscard]] StreamStats total_stats() const;

  /// Live queue gauge for one shard (throws std::out_of_range on a bad
  /// index), and the full per-shard vector for dashboards/backpressure.
  [[nodiscard]] ShardGauge shard_gauge(std::size_t shard) const;
  [[nodiscard]] std::vector<ShardGauge> shard_gauges() const;

  /// One shard's overflow policy right now (dynamic backpressure may have
  /// switched it away from the configured policy). Throws std::out_of_range
  /// on a bad index.
  [[nodiscard]] util::OverflowPolicy shard_policy(std::size_t shard) const;
  /// Cumulative dynamic-backpressure switches (both directions, all shards).
  [[nodiscard]] std::uint64_t policy_switches() const noexcept {
    return policy_switches_.load(std::memory_order_relaxed);
  }

 private:
  struct StreamState;

  /// One queued frame. Carries its origin so eviction and delivery can be
  /// accounted to the right stream without a registry lookup.
  struct Job {
    std::uint32_t stream_id{0};
    std::uint64_t sequence{0};
    imaging::GrayImage frame;
    StreamState* origin{nullptr};
    /// Submit timestamp for the ring-wait span; 0 when telemetry is off at
    /// submit time (the pop side then skips the frame).
    std::uint64_t submitted_at_ns{0};
  };

  /// One worker shard: FIFO ring, dedicated thread, warm scratch arena.
  /// Each shard holds a raw pointer into the service's single shared
  /// database — all K pointers compare equal by construction.
  struct Shard {
    Shard(std::size_t capacity, util::OverflowPolicy policy,
          const SignDatabase* db)
        : ring(capacity, policy), database(db) {}
    util::BoundedRing<Job> ring;
    const SignDatabase* database{nullptr};
    RecognizerScratch scratch;
    MicroBatchScratch micro;  ///< window-gather scratch (worker thread only)
    /// Serialises dynamic-backpressure decisions: the depth read, the
    /// hysteresis comparison and the set_policy must be one atomic step
    /// across producer threads or a flip double-applies and
    /// policy_switches() over-counts.
    std::mutex policy_mutex;
    std::thread worker;
  };

  SubmitReceipt submit_job(std::uint32_t stream_id, imaging::GrayImage frame);
  StreamState& stream_state(std::uint32_t stream_id);
  void shard_loop(Shard& shard);
  void finish_frames(std::size_t count);
  /// Dynamic backpressure: applies the hysteresis switch to one shard's
  /// ring from its observed depth (submit path, only when enabled).
  void maybe_switch_policy(Shard& shard);

  RecognizerConfig config_;
  PerceptionServiceConfig service_config_;
  std::shared_ptr<const SignDatabase> database_;
  ResultCallback on_result_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> policy_switches_{0};

  /// Telemetry handles — disarmed (no-op) unless the config wired a
  /// registry. Recording through them is wait-free (see telemetry/).
  telemetry::Histogram submit_ns_;
  telemetry::Histogram ring_wait_ns_;
  telemetry::Histogram recognize_ns_;
  telemetry::Counter frames_submitted_;
  telemetry::Counter frames_dropped_;
  telemetry::Counter frames_rejected_;
  telemetry::Gauge queue_depth_;
  telemetry::FlightRecorder* recorder_{nullptr};

  /// Registry shape is read-mostly (one miss per new stream ever): the
  /// steady-state submit path takes only a shared lock.
  mutable std::shared_mutex streams_mutex_;
  std::unordered_map<std::uint32_t, std::unique_ptr<StreamState>> streams_;

  /// Admitted frames not yet delivered/evicted, plus the first pipeline
  /// error for drain() (util::PendingCounter keeps the raise-before-push
  /// / lock-free-finish invariants in one place for every service).
  util::PendingCounter pending_;

  std::atomic<bool> stopping_{false};
  bool stopped_{false};  ///< set by stop(); guarded by stop_mutex_
  std::mutex stop_mutex_;
};

}  // namespace hdc::recognition
