#include "recognition/recognizer.hpp"

#include <stdexcept>

#include "imaging/components.hpp"
#include "imaging/filter.hpp"
#include "imaging/morphology.hpp"
#include "imaging/signature.hpp"
#include "telemetry/span.hpp"
#include "timeseries/normalize.hpp"

namespace hdc::recognition {

SaxSignRecognizer::SaxSignRecognizer(const RecognizerConfig& config,
                                     const DatabaseBuildOptions& db_options)
    : config_(config) {
  DatabaseBuildOptions options = db_options;
  options.signature_samples = config.signature_samples;
  // Templates run through this recogniser's own pipeline so a query under
  // canonical conditions reproduces its template bit-for-bit. The built
  // database is immediately frozen behind a const handle.
  database_ = std::make_shared<const SignDatabase>(build_canonical_database(
      make_encoder(config), options,
      [this](const imaging::GrayImage& frame) { return extract_signature(frame); }));
}

SaxSignRecognizer::SaxSignRecognizer(const RecognizerConfig& config, SignDatabase database)
    : SaxSignRecognizer(config,
                        std::make_shared<const SignDatabase>(std::move(database))) {}

SaxSignRecognizer::SaxSignRecognizer(const RecognizerConfig& config,
                                     std::shared_ptr<const SignDatabase> database)
    : config_(config), database_(std::move(database)) {
  if (database_ == nullptr) {
    throw std::invalid_argument("SaxSignRecognizer: null database handle");
  }
}

timeseries::Series SaxSignRecognizer::extract_signature(
    const imaging::GrayImage& frame) const {
  imaging::GrayImage working = config_.dark_silhouette ? imaging::invert(frame) : frame;
  if (config_.preprocess_blur_sigma > 0.0) {
    working = imaging::gaussian_blur(working, config_.preprocess_blur_sigma);
  }
  imaging::BinaryImage binary = imaging::otsu_threshold(working);
  if (config_.morphology_radius > 0) {
    // Close first (bridge hairline gaps at limb joints), then open
    // (remove speckle) — the other order can sever thin limbs.
    binary = imaging::close(binary, config_.morphology_radius);
    binary = imaging::open(binary, config_.morphology_radius);
  }
  binary = imaging::largest_component_mask(binary, config_.min_silhouette_area);
  imaging::Contour contour = imaging::trace_boundary(binary);
  if (config_.aspect_normalize) contour = imaging::normalize_contour_aspect(contour);
  return imaging::centroid_distance_signature(contour, config_.signature_samples);
}

namespace {

/// Conditional stage-timer scope: charges its lifetime to `timers` when
/// non-null (the batch hot path passes null and pays nothing).
class MaybeScope {
 public:
  MaybeScope(util::StageTimers* timers, const char* stage)
      : timers_(timers), stage_(stage) {}
  ~MaybeScope() {
    if (timers_ != nullptr) timers_->add(stage_, watch_.elapsed_seconds());
  }
  MaybeScope(const MaybeScope&) = delete;
  MaybeScope& operator=(const MaybeScope&) = delete;

 private:
  util::StageTimers* timers_;
  const char* stage_;
  util::Stopwatch watch_;
};

void reset_result(RecognitionResult& result) {
  result.accepted = false;
  result.sign = signs::HumanSign::kNeutral;
  result.reject_reason = RejectReason::kNoSilhouette;
  result.distance = 0.0;
  result.margin = 0.0;
  result.sax_word.clear();  // keeps capacity for reuse across batches
  result.total_ms = 0.0;
}

/// Stages 1-6 (photometrics through signature extraction) of the canonical
/// pipeline. Returns true when scratch.signature is ready for the database
/// query; on false the result's reject fields are final (the caller stamps
/// total_ms). Shared verbatim by the single-frame and micro-batched entry
/// points so their per-frame imaging behaviour cannot diverge.
bool prepare_frame(const RecognizerConfig& config, const imaging::GrayImage& frame,
                   RecognizerScratch& scratch, RecognitionResult& result,
                   util::StageTimers* timers, RecognitionTrace* trace) {
  // Stage 1: photometric pre-processing. `source` tracks the latest image
  // without copying when a step is disabled.
  const imaging::GrayImage* source = &frame;
  {
    MaybeScope scope(timers, "1-preprocess");
    if (config.dark_silhouette) {
      imaging::invert_into(frame, scratch.working);
      source = &scratch.working;
    }
    if (config.preprocess_blur_sigma > 0.0) {
      imaging::gaussian_blur_into(*source, config.preprocess_blur_sigma,
                                  scratch.blurred, scratch.blur_scratch);
      source = &scratch.blurred;
    }
  }

  // Stage 2: binarisation.
  {
    MaybeScope scope(timers, "2-threshold");
    imaging::otsu_threshold_into(*source, scratch.binary);
  }

  // Stage 3: morphology cleanup (close before open; see extract_signature).
  {
    MaybeScope scope(timers, "3-morphology");
    if (config.morphology_radius > 0) {
      imaging::close_into(scratch.binary, config.morphology_radius, scratch.morph,
                          scratch.morph_a, scratch.morph_b);
      imaging::open_into(scratch.morph, config.morphology_radius, scratch.binary,
                         scratch.morph_a, scratch.morph_b);
    }
  }

  // Stage 4: silhouette isolation.
  {
    MaybeScope scope(timers, "4-component");
    imaging::largest_component_mask_into(scratch.binary, config.min_silhouette_area,
                                         scratch.mask, scratch.labeling,
                                         scratch.label_scratch);
  }

  // Stage 5: contour.
  {
    MaybeScope scope(timers, "5-contour");
    imaging::trace_boundary_into(scratch.mask, scratch.contour);
  }
  if (trace != nullptr) {
    trace->silhouette = scratch.mask;
    trace->contour = scratch.contour;
  }
  if (scratch.contour.empty()) {
    result.reject_reason = RejectReason::kNoSilhouette;
    return false;
  }
  if (scratch.contour.size() < 8) {
    result.reject_reason = RejectReason::kDegenerateShape;
    return false;
  }

  // Stage 6: shape -> time series.
  {
    MaybeScope scope(timers, "6-signature");
    if (config.aspect_normalize) {
      imaging::normalize_contour_aspect_into(scratch.contour, 100.0,
                                             scratch.normalized_contour);
      imaging::centroid_distance_signature_into(scratch.normalized_contour,
                                                config.signature_samples,
                                                scratch.signature, scratch.resampled);
    } else {
      imaging::centroid_distance_signature_into(scratch.contour,
                                                config.signature_samples,
                                                scratch.signature, scratch.resampled);
    }
  }
  if (scratch.signature.empty()) {
    result.reject_reason = RejectReason::kDegenerateShape;
    return false;
  }
  if (trace != nullptr) {
    trace->raw_signature = scratch.signature;
    trace->normalized_signature = timeseries::z_normalize(scratch.signature);
  }
  return true;
}

/// Maps a stage-7 database answer onto the result's payload fields — the one
/// acceptance policy both entry points share. `sax_word` is the query word
/// the database encoded during the search (only read when a match exists,
/// mirroring the historical early-return on nullopt).
void finalize_from_match(const RecognizerConfig& config,
                         const std::optional<DatabaseMatch>& match,
                         const std::string& sax_word, RecognitionResult& result) {
  if (!match) {
    result.reject_reason = RejectReason::kNoSilhouette;
    return;
  }
  result.sign = match->sign;
  result.distance = match->distance;
  result.margin = match->margin;
  result.sax_word = sax_word;

  if (match->distance > config.accept_distance) {
    result.reject_reason = RejectReason::kAboveThreshold;
  } else if (match->margin < config.min_margin) {
    result.reject_reason = RejectReason::kLowMargin;
  } else {
    result.accepted = true;
    result.reject_reason = RejectReason::kNone;
  }
  // A match to the neutral stance is a valid outcome but not a sign.
  if (result.accepted && result.sign == signs::HumanSign::kNeutral) {
    result.accepted = false;
    result.reject_reason = RejectReason::kNone;  // recognised, just not communicative
  }
}

}  // namespace

void recognize_frame_into(const RecognizerConfig& config, const SignDatabase& database,
                          const imaging::GrayImage& frame, RecognizerScratch& scratch,
                          RecognitionResult& result, util::StageTimers* timers,
                          RecognitionTrace* trace) {
  reset_result(result);
  util::Stopwatch total;

  bool ready;
  {
    TELEMETRY_SPAN(scratch.metrics.prepare_ns);
    ready = prepare_frame(config, frame, scratch, result, timers, trace);
  }
  if (!ready) {
    result.total_ms = total.elapsed_ms();
    return;
  }

  // Stage 7: SAX encoding + database search.
  std::optional<DatabaseMatch> match;
  {
    MaybeScope scope(timers, "7-sax-search");
    TELEMETRY_SPAN(scratch.metrics.match_ns);
    match = database.query(scratch.signature, config.exact_verify, scratch.query);
  }
  // The query already encoded this signature's SAX word into its scratch.
  {
    TELEMETRY_SPAN(scratch.metrics.finalize_ns);
    finalize_from_match(config, match, scratch.query.word.text, result);
  }
  result.total_ms = total.elapsed_ms();
}

void recognize_frames_micro_batch(const RecognizerConfig& config,
                                  const SignDatabase& database,
                                  const imaging::GrayImage* const* frames,
                                  std::size_t count, RecognizerScratch& scratch,
                                  MicroBatchScratch& micro,
                                  RecognitionResult* const* results) {
  micro.pending.clear();
  micro.prepare_ms.clear();
  micro.last_batch_ms = 0.0;
  if (count == 0) return;
  if (micro.raw_signatures.size() < count) micro.raw_signatures.resize(count);

  util::Stopwatch batch_watch;
  double accounted_ms = 0.0;  // per-frame wall time already stamped/recorded

  // Imaging stages run frame-at-a-time through the one shared scratch (same
  // calls, same order as the single-frame path), keeping only the signature
  // copy per frame — the cheapest artefact that lets stage 7 batch.
  for (std::size_t i = 0; i < count; ++i) {
    RecognitionResult& result = *results[i];
    reset_result(result);
    util::Stopwatch watch;
    bool ready;
    {
      TELEMETRY_SPAN(scratch.metrics.prepare_ns);
      ready = prepare_frame(config, *frames[i], scratch, result, nullptr, nullptr);
    }
    if (!ready) {
      result.total_ms = watch.elapsed_ms();
      accounted_ms += result.total_ms;
      continue;
    }
    const std::size_t j = micro.pending.size();
    micro.raw_signatures[j] = scratch.signature;  // copy reuses slot capacity
    micro.pending.push_back(i);
    micro.prepare_ms.push_back(watch.elapsed_ms());
    accounted_ms += micro.prepare_ms.back();
  }

  if (!micro.pending.empty()) {
    // One multi-query call answers every surviving frame; per-query answers
    // are independent inside the engine, so each equals what query() returns.
    micro.signature_ptrs.clear();
    for (std::size_t j = 0; j < micro.pending.size(); ++j) {
      micro.signature_ptrs.push_back(&micro.raw_signatures[j]);
    }
    micro.matches.resize(micro.pending.size());
    {
      TELEMETRY_SPAN(scratch.metrics.match_ns);
      database.query_many(micro.signature_ptrs.data(), micro.pending.size(),
                          config.exact_verify, micro.query, micro.matches.data());
    }
    for (std::size_t j = 0; j < micro.pending.size(); ++j) {
      RecognitionResult& result = *results[micro.pending[j]];
      TELEMETRY_SPAN(scratch.metrics.finalize_ns);
      finalize_from_match(config, micro.matches[j], micro.query.slots[j].word.text,
                          result);
      result.total_ms = micro.prepare_ms[j];
    }
  }

  // total_ms is a timing field, not a payload field. Attribution contract
  // (regression-pinned in tests/recognition_micro_batch_test.cpp): the
  // per-frame totals sum to the batch wall time. Each frame keeps its own
  // measured stage 1-6 wall time; the remainder — the shared query, the
  // finalize pass and loop overhead — is split evenly across the frames
  // that reached the query (or across all frames when none did).
  micro.last_batch_ms = batch_watch.elapsed_ms();
  const std::size_t shared_over = micro.pending.empty() ? count : micro.pending.size();
  const double shared_ms =
      (micro.last_batch_ms - accounted_ms) / static_cast<double>(shared_over);
  if (micro.pending.empty()) {
    for (std::size_t i = 0; i < count; ++i) results[i]->total_ms += shared_ms;
  } else {
    for (const std::size_t i : micro.pending) results[i]->total_ms += shared_ms;
  }
}

RecognitionResult SaxSignRecognizer::recognize(const imaging::GrayImage& frame,
                                               RecognitionTrace* trace) const {
  RecognitionResult result;
  RecognizerScratch scratch;
  recognize_frame_into(config_, *database_, frame, scratch, result, &timers_, trace);
  return result;
}

}  // namespace hdc::recognition
