#include "recognition/recognizer.hpp"

#include "imaging/components.hpp"
#include "imaging/filter.hpp"
#include "imaging/morphology.hpp"
#include "imaging/signature.hpp"
#include "timeseries/normalize.hpp"

namespace hdc::recognition {

SaxSignRecognizer::SaxSignRecognizer(const RecognizerConfig& config,
                                     const DatabaseBuildOptions& db_options)
    : config_(config),
      database_(timeseries::SaxEncoder(
          timeseries::SaxConfig(config.word_length, config.alphabet))) {
  DatabaseBuildOptions options = db_options;
  options.signature_samples = config.signature_samples;
  // Templates run through this recogniser's own pipeline so a query under
  // canonical conditions reproduces its template bit-for-bit.
  database_ = build_canonical_database(
      make_encoder(config), options,
      [this](const imaging::GrayImage& frame) { return extract_signature(frame); });
}

SaxSignRecognizer::SaxSignRecognizer(const RecognizerConfig& config, SignDatabase database)
    : config_(config), database_(std::move(database)) {}

timeseries::Series SaxSignRecognizer::extract_signature(
    const imaging::GrayImage& frame) const {
  imaging::GrayImage working = config_.dark_silhouette ? imaging::invert(frame) : frame;
  if (config_.preprocess_blur_sigma > 0.0) {
    working = imaging::gaussian_blur(working, config_.preprocess_blur_sigma);
  }
  imaging::BinaryImage binary = imaging::otsu_threshold(working);
  if (config_.morphology_radius > 0) {
    // Close first (bridge hairline gaps at limb joints), then open
    // (remove speckle) — the other order can sever thin limbs.
    binary = imaging::close(binary, config_.morphology_radius);
    binary = imaging::open(binary, config_.morphology_radius);
  }
  binary = imaging::largest_component_mask(binary, config_.min_silhouette_area);
  imaging::Contour contour = imaging::trace_boundary(binary);
  if (config_.aspect_normalize) contour = imaging::normalize_contour_aspect(contour);
  return imaging::centroid_distance_signature(contour, config_.signature_samples);
}

RecognitionResult SaxSignRecognizer::recognize(const imaging::GrayImage& frame,
                                               RecognitionTrace* trace) const {
  RecognitionResult result;
  util::Stopwatch total;

  // Stage 1: photometric pre-processing.
  imaging::GrayImage working(1, 1);
  {
    auto scope = timers_.scope("1-preprocess");
    working = config_.dark_silhouette ? imaging::invert(frame) : frame;
    if (config_.preprocess_blur_sigma > 0.0) {
      working = imaging::gaussian_blur(working, config_.preprocess_blur_sigma);
    }
  }

  // Stage 2: binarisation.
  imaging::BinaryImage binary(1, 1);
  {
    auto scope = timers_.scope("2-threshold");
    binary = imaging::otsu_threshold(working);
  }

  // Stage 3: morphology cleanup (close before open; see extract_signature).
  {
    auto scope = timers_.scope("3-morphology");
    if (config_.morphology_radius > 0) {
      binary = imaging::close(binary, config_.morphology_radius);
      binary = imaging::open(binary, config_.morphology_radius);
    }
  }

  // Stage 4: silhouette isolation.
  {
    auto scope = timers_.scope("4-component");
    binary = imaging::largest_component_mask(binary, config_.min_silhouette_area);
  }

  // Stage 5: contour.
  imaging::Contour contour;
  {
    auto scope = timers_.scope("5-contour");
    contour = imaging::trace_boundary(binary);
  }
  if (trace != nullptr) {
    trace->silhouette = binary;
    trace->contour = contour;
  }
  if (contour.empty()) {
    result.reject_reason = RejectReason::kNoSilhouette;
    result.total_ms = total.elapsed_ms();
    return result;
  }
  if (contour.size() < 8) {
    result.reject_reason = RejectReason::kDegenerateShape;
    result.total_ms = total.elapsed_ms();
    return result;
  }

  // Stage 6: shape -> time series.
  timeseries::Series signature;
  {
    auto scope = timers_.scope("6-signature");
    if (config_.aspect_normalize) {
      signature = imaging::centroid_distance_signature(
          imaging::normalize_contour_aspect(contour), config_.signature_samples);
    } else {
      signature = imaging::centroid_distance_signature(contour, config_.signature_samples);
    }
  }
  if (signature.empty()) {
    result.reject_reason = RejectReason::kDegenerateShape;
    result.total_ms = total.elapsed_ms();
    return result;
  }
  if (trace != nullptr) {
    trace->raw_signature = signature;
    trace->normalized_signature = timeseries::z_normalize(signature);
  }

  // Stage 7: SAX encoding + database search.
  std::optional<DatabaseMatch> match;
  {
    auto scope = timers_.scope("7-sax-search");
    match = database_.query(signature, config_.exact_verify);
  }
  if (!match) {
    result.reject_reason = RejectReason::kNoSilhouette;
    result.total_ms = total.elapsed_ms();
    return result;
  }

  result.sign = match->sign;
  result.distance = match->distance;
  result.margin = match->margin;
  result.sax_word =
      database_.encoder().encode(signature).text;

  if (match->distance > config_.accept_distance) {
    result.reject_reason = RejectReason::kAboveThreshold;
  } else if (match->margin < config_.min_margin) {
    result.reject_reason = RejectReason::kLowMargin;
  } else {
    result.accepted = true;
    result.reject_reason = RejectReason::kNone;
  }
  // A match to the neutral stance is a valid outcome but not a sign.
  if (result.accepted && result.sign == signs::HumanSign::kNeutral) {
    result.accepted = false;
    result.reject_reason = RejectReason::kNone;  // recognised, just not communicative
  }
  result.total_ms = total.elapsed_ms();
  return result;
}

}  // namespace hdc::recognition
