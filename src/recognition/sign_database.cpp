#include "recognition/sign_database.hpp"

#include <algorithm>
#include <limits>

#include "imaging/components.hpp"
#include "imaging/contour.hpp"
#include "imaging/filter.hpp"
#include "imaging/morphology.hpp"
#include "imaging/signature.hpp"
#include "timeseries/distance.hpp"
#include "timeseries/normalize.hpp"

namespace hdc::recognition {

void SignDatabase::add_template(signs::HumanSign sign,
                                const timeseries::Series& raw_signature,
                                std::string label) {
  SignTemplate entry;
  entry.sign = sign;
  entry.normalized_signature = timeseries::z_normalize(raw_signature);
  entry.word = encoder_.encode_normalized(entry.normalized_signature);
  // Precompute the doubled buffer once here so every exact-verify query
  // runs the vectorised rotation kernel with zero per-query setup.
  entry.rotation = timeseries::make_rotation_template(entry.normalized_signature);
  entry.label = std::move(label);
  templates_.push_back(std::move(entry));
}

std::optional<DatabaseMatch> SignDatabase::query(const timeseries::Series& raw_signature,
                                                 bool exact_verify) const {
  QueryScratch scratch;
  return query(raw_signature, exact_verify, scratch);
}

std::optional<DatabaseMatch> SignDatabase::query(const timeseries::Series& raw_signature,
                                                 bool exact_verify,
                                                 QueryScratch& scratch) const {
  if (templates_.empty() || raw_signature.empty()) return std::nullopt;

  timeseries::z_normalize_into(raw_signature, scratch.normalized);
  const timeseries::Series& normalized = scratch.normalized;
  // Always encode: the recogniser reads the query word out of the scratch
  // (RecognitionResult::sax_word) whichever ranking path runs below.
  encoder_.encode_normalized_into(normalized, scratch.word, scratch.paa);
  const timeseries::SaxWord& query_word = scratch.word;

  if (exact_verify) {
    // Score by exact rotation-invariant distance. Note: the symbolic
    // rotation-invariant distance only explores shifts in whole-symbol
    // steps, so it is NOT a sound lower bound for the exact distance under
    // arbitrary shifts — every template is verified exactly, and the
    // symbolic per-template scan is skipped entirely (it used to provide
    // the early-abandon visit order; the batch kernel has no use for one).
    // One call scores all templates against this query through their
    // precomputed doubled buffers; exact ties across templates resolve to
    // the lowest template index.
    scratch.rotation_templates.clear();
    scratch.rotation_templates.reserve(templates_.size());
    for (const SignTemplate& entry : templates_) {
      scratch.rotation_templates.push_back(&entry.rotation);
    }
    scratch.rotation_matches.resize(templates_.size());
    timeseries::euclidean_rotation_invariant_many(
        normalized, scratch.rotation_templates.data(), templates_.size(),
        scratch.rotation_matches.data());

    double best_exact = std::numeric_limits<double>::infinity();
    double second_exact = std::numeric_limits<double>::infinity();
    std::size_t best_index = 0;
    std::size_t best_shift = 0;
    for (std::size_t i = 0; i < scratch.rotation_matches.size(); ++i) {
      const timeseries::RotationMatch& exact = scratch.rotation_matches[i];
      if (exact.distance < best_exact) {
        second_exact = best_exact;
        best_exact = exact.distance;
        best_index = i;
        best_shift = exact.shift;
      } else if (exact.distance < second_exact) {
        second_exact = exact.distance;
      }
    }
    DatabaseMatch match;
    match.sign = templates_[best_index].sign;
    match.distance = best_exact;
    match.margin = (second_exact == std::numeric_limits<double>::infinity())
                       ? best_exact
                       : second_exact - best_exact;
    match.template_index = best_index;
    match.best_shift = best_shift;
    return match;
  }

  // Symbolic-only ranking: per-template rotation-invariant MINDIST.
  using Scored = QueryScratch::Scored;
  std::vector<Scored>& scored = scratch.scored;
  scored.clear();
  scored.reserve(templates_.size());
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    std::size_t shift = 0;
    const double d = encoder_.mindist_rotation_invariant(query_word, templates_[i].word,
                                                         &shift, scratch.rotated);
    scored.push_back({d, i, shift});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.distance < b.distance; });

  DatabaseMatch match;
  match.sign = templates_[scored.front().index].sign;
  match.distance = scored.front().distance;
  match.margin = scored.size() > 1 ? scored[1].distance - scored[0].distance
                                   : scored[0].distance;
  match.template_index = scored.front().index;
  match.best_shift = scored.front().shift;
  return match;
}

SignDatabase build_canonical_database(const timeseries::SaxEncoder& encoder,
                                      const DatabaseBuildOptions& options,
                                      const SignatureExtractor& extractor) {
  SignDatabase db(encoder);
  std::vector<signs::ViewGeometry> views = {options.canonical_view};
  for (const double altitude : options.extra_altitudes) {
    signs::ViewGeometry view = options.canonical_view;
    view.altitude_m = altitude;
    views.push_back(view);
  }
  for (const signs::HumanSign sign : signs::kAllSigns) {
    if (sign == signs::HumanSign::kNeutral && !options.include_neutral) continue;
    for (const signs::ViewGeometry& view : views) {
      const imaging::GrayImage frame = signs::render_sign(sign, view, options.render);
      const timeseries::Series signature = extractor(frame);
      if (signature.empty()) continue;  // defensive: canonical renders never fail
      std::string label = std::string(signs::to_string(sign)) + "@az" +
                          std::to_string(static_cast<int>(view.relative_azimuth_deg)) +
                          "/alt" + std::to_string(static_cast<int>(view.altitude_m));
      db.add_template(sign, signature, std::move(label));
    }
  }
  return db;
}

}  // namespace hdc::recognition
