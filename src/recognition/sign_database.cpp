#include "recognition/sign_database.hpp"

#include <algorithm>
#include <limits>

#include "imaging/components.hpp"
#include "imaging/contour.hpp"
#include "imaging/filter.hpp"
#include "imaging/morphology.hpp"
#include "imaging/signature.hpp"
#include "timeseries/distance.hpp"
#include "timeseries/normalize.hpp"

namespace hdc::recognition {

void SignDatabase::add_template(signs::HumanSign sign,
                                const timeseries::Series& raw_signature,
                                std::string label) {
  SignTemplate entry;
  entry.sign = sign;
  entry.normalized_signature = timeseries::z_normalize(raw_signature);
  entry.word = encoder_.encode_normalized(entry.normalized_signature);
  // Precompute the doubled buffer once here so every exact-verify query
  // runs the vectorised rotation kernel with zero per-query setup.
  entry.rotation = timeseries::make_rotation_template(entry.normalized_signature);
  entry.label = std::move(label);
  templates_.push_back(std::move(entry));
}

std::optional<DatabaseMatch> SignDatabase::query(const timeseries::Series& raw_signature,
                                                 bool exact_verify) const {
  QueryScratch scratch;
  return query(raw_signature, exact_verify, scratch);
}

std::optional<DatabaseMatch> SignDatabase::query(const timeseries::Series& raw_signature,
                                                 bool exact_verify,
                                                 QueryScratch& scratch) const {
  if (templates_.empty() || raw_signature.empty()) return std::nullopt;

  timeseries::z_normalize_into(raw_signature, scratch.normalized);
  const timeseries::Series& normalized = scratch.normalized;
  // Always encode: the recogniser reads the query word out of the scratch
  // (RecognitionResult::sax_word) whichever ranking path runs below.
  encoder_.encode_normalized_into(normalized, scratch.word, scratch.paa);
  const timeseries::SaxWord& query_word = scratch.word;

  if (exact_verify) {
    // Score by exact rotation-invariant distance. Note: the symbolic
    // rotation-invariant distance only explores shifts in whole-symbol
    // steps, so it is NOT a sound lower bound for the exact distance under
    // arbitrary shifts — every template must be covered exactly. The top-2
    // blocked engine does exactly that: its quantised lower bound prunes a
    // template's float re-verify only when it provably cannot enter the
    // top 2, and its update rules are the same index-order, strict-< reduce
    // this function historically ran by hand, so best/second/index/shift
    // (and therefore margin) are bit-identical to scoring every template
    // with euclidean_rotation_invariant and reducing in a loop.
    fill_template_panel(scratch.rotation_templates);
    const timeseries::Series* query_ptr = &normalized;
    timeseries::RotationTopMatch top;
    timeseries::rotation_match_top2_block(&query_ptr, 1,
                                          scratch.rotation_templates.data(),
                                          templates_.size(), scratch.block, &top);
    return match_from_top(top);
  }

  return symbolic_rank(query_word, scratch.scored, scratch.rotated);
}

void SignDatabase::query_many(const timeseries::Series* const* raw_signatures,
                              std::size_t count, bool exact_verify,
                              MultiQueryScratch& scratch,
                              std::optional<DatabaseMatch>* out) const {
  if (count == 0) return;
  if (scratch.slots.size() < count) scratch.slots.resize(count);
  scratch.active.clear();
  scratch.queries.clear();

  // Per-query normalisation + SAX encode — the same calls, in the same
  // order, as the single-query path, so slot state (and the word the
  // recogniser reads back) matches query() bit for bit.
  for (std::size_t i = 0; i < count; ++i) {
    if (templates_.empty() || raw_signatures[i]->empty()) {
      out[i] = std::nullopt;
      continue;
    }
    MultiQueryScratch::Slot& slot = scratch.slots[i];
    timeseries::z_normalize_into(*raw_signatures[i], slot.normalized);
    encoder_.encode_normalized_into(slot.normalized, slot.word, slot.paa);
    scratch.active.push_back(i);
    scratch.queries.push_back(&slot.normalized);
  }
  if (scratch.active.empty()) return;

  if (exact_verify) {
    // One blocked call answers every live query: template panels are walked
    // once per block (cache-hot across the whole micro-batch) instead of
    // once per query. Per-query results remain independent, so each cell is
    // bit-identical to the single-query engine call query() makes.
    fill_template_panel(scratch.rotation_templates);
    scratch.top.resize(scratch.active.size());
    timeseries::rotation_match_top2_block(
        scratch.queries.data(), scratch.queries.size(),
        scratch.rotation_templates.data(), templates_.size(), scratch.block,
        scratch.top.data());
    for (std::size_t j = 0; j < scratch.active.size(); ++j) {
      out[scratch.active[j]] = match_from_top(scratch.top[j]);
    }
    return;
  }

  for (std::size_t j = 0; j < scratch.active.size(); ++j) {
    const std::size_t i = scratch.active[j];
    out[i] = symbolic_rank(scratch.slots[i].word, scratch.scored, scratch.rotated);
  }
}

void SignDatabase::fill_template_panel(
    std::vector<const timeseries::RotationTemplate*>& panel) const {
  panel.clear();
  panel.reserve(templates_.size());
  for (const SignTemplate& entry : templates_) {
    panel.push_back(&entry.rotation);
  }
}

DatabaseMatch SignDatabase::match_from_top(
    const timeseries::RotationTopMatch& top) const {
  DatabaseMatch match;
  match.sign = templates_[top.template_index].sign;
  match.distance = top.distance;
  match.margin = (top.second == std::numeric_limits<double>::infinity())
                     ? top.distance
                     : top.second - top.distance;
  match.template_index = top.template_index;
  match.best_shift = top.shift;
  return match;
}

// Symbolic-only ranking: per-template rotation-invariant MINDIST.
DatabaseMatch SignDatabase::symbolic_rank(
    const timeseries::SaxWord& query_word,
    std::vector<QueryScratch::Scored>& scored,
    timeseries::SaxWord& rotated) const {
  using Scored = QueryScratch::Scored;
  scored.clear();
  scored.reserve(templates_.size());
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    std::size_t shift = 0;
    const double d = encoder_.mindist_rotation_invariant(query_word, templates_[i].word,
                                                         &shift, rotated);
    scored.push_back({d, i, shift});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.distance < b.distance; });

  DatabaseMatch match;
  match.sign = templates_[scored.front().index].sign;
  match.distance = scored.front().distance;
  match.margin = scored.size() > 1 ? scored[1].distance - scored[0].distance
                                   : scored[0].distance;
  match.template_index = scored.front().index;
  match.best_shift = scored.front().shift;
  return match;
}

SignDatabase build_canonical_database(const timeseries::SaxEncoder& encoder,
                                      const DatabaseBuildOptions& options,
                                      const SignatureExtractor& extractor) {
  SignDatabase db(encoder);
  std::vector<signs::ViewGeometry> views = {options.canonical_view};
  for (const double altitude : options.extra_altitudes) {
    signs::ViewGeometry view = options.canonical_view;
    view.altitude_m = altitude;
    views.push_back(view);
  }
  for (const signs::HumanSign sign : signs::kAllSigns) {
    if (sign == signs::HumanSign::kNeutral && !options.include_neutral) continue;
    for (const signs::ViewGeometry& view : views) {
      const imaging::GrayImage frame = signs::render_sign(sign, view, options.render);
      const timeseries::Series signature = extractor(frame);
      if (signature.empty()) continue;  // defensive: canonical renders never fail
      std::string label = std::string(signs::to_string(sign)) + "@az" +
                          std::to_string(static_cast<int>(view.relative_azimuth_deg)) +
                          "/alt" + std::to_string(static_cast<int>(view.altitude_m));
      db.add_template(sign, signature, std::move(label));
    }
  }
  return db;
}

}  // namespace hdc::recognition
