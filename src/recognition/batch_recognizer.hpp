// BatchRecognizer — multi-frame, multi-worker recognition engine.
//
// The paper validates one frame at a time; a production deployment (many
// drones, many simultaneous perception streams — cf. Cleland-Huang &
// Agrawal 2020 on drone cohorts) needs the same pipeline over a stream of
// frames. This engine runs the full camera-frame -> Otsu -> morphology ->
// contour -> signature -> SAX -> database-match pipeline over a batch using
// a fixed worker pool. Each worker owns a RecognizerScratch (image, label,
// contour, signature and query arenas), so after the first batch the hot
// path performs zero per-frame heap allocations.
//
// Results are deterministic and bit-identical to SaxSignRecognizer: frame i
// always lands in results[i] and every frame is processed independently
// against the shared immutable database. Workers claim frames in contiguous
// micro-batches of kMicroBatchWindow and run them through
// recognize_frames_micro_batch, so the exact-verify pass walks the template
// panels once per window (blocked rotation engine) instead of once per
// frame — the micro-batch entry point is payload-bit-identical to the
// single-frame pipeline, so worker count, scheduling and windowing can
// change timing fields (total_ms) but never a payload field.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "recognition/recognizer.hpp"
#include "util/thread_pool.hpp"

namespace hdc::recognition {

class BatchRecognizer {
 public:
  /// Frames dispatched to a worker per claim: large enough that the blocked
  /// database pass amortises its panel walks, small enough that one claim
  /// never holds a meaningful slice of a batch hostage on one worker.
  static constexpr std::size_t kMicroBatchWindow = 8;

  /// Builds the engine and its canonical database (same semantics as
  /// SaxSignRecognizer). `workers` == 0 selects hardware concurrency.
  BatchRecognizer(const RecognizerConfig& config,
                  const DatabaseBuildOptions& db_options, std::size_t workers = 0);

  /// Builds with an externally constructed database (must use a compatible
  /// encoder configuration). Wraps the value in a fresh shared handle.
  BatchRecognizer(const RecognizerConfig& config, SignDatabase database,
                  std::size_t workers = 0);

  /// Builds against an existing shared database handle — no copy. N engines
  /// (or PerceptionService shards) constructed this way all match against
  /// the same immutable template store.
  BatchRecognizer(const RecognizerConfig& config,
                  std::shared_ptr<const SignDatabase> database,
                  std::size_t workers = 0);

  /// Arms the per-worker recognition stage spans (prepare/match/finalize
  /// histograms — telemetry/stage_names.hpp) on every worker scratch.
  /// `metrics` must outlive this engine; call between batches, never
  /// concurrently with recognize_batch().
  void instrument(telemetry::MetricsRegistry& metrics);

  /// Recognises every frame of the batch; results[i] is frame i's result.
  /// The results vector is reused in place (including each result's string
  /// capacity), so a caller that keeps one results vector across batches
  /// stays allocation-free on the hot path.
  ///
  /// One batch at a time per engine: the caller participates as worker 0
  /// and the scratch arenas belong to this engine, so concurrent calls on
  /// one BatchRecognizer are a data race. Feeds that must overlap use one
  /// engine each (the SignDatabase can be shared — it is immutable after
  /// build).
  void recognize_batch(const std::vector<imaging::GrayImage>& frames,
                       std::vector<RecognitionResult>& results);

  /// Convenience overload returning a fresh results vector.
  [[nodiscard]] std::vector<RecognitionResult> recognize_batch(
      const std::vector<imaging::GrayImage>& frames);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_.worker_count();
  }
  [[nodiscard]] const RecognizerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const SignDatabase& database() const noexcept { return *database_; }

  /// The shared handle itself (for fanning one database out to more engines).
  [[nodiscard]] const std::shared_ptr<const SignDatabase>& database_ptr()
      const noexcept {
    return database_;
  }

 private:
  RecognizerConfig config_;
  std::shared_ptr<const SignDatabase> database_;
  util::ThreadPool pool_;
  std::vector<RecognizerScratch> scratch_;   ///< one arena per worker
  std::vector<MicroBatchScratch> micro_;     ///< one micro-batch arena per worker
};

}  // namespace hdc::recognition
