#include "recognition/perception_service.hpp"

#include <stdexcept>
#include <utility>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/span.hpp"

namespace hdc::recognition {

/// Registry entry for one stream. `order_mutex` serialises sequence
/// assignment *and* the ring push of concurrent same-stream submitters, so
/// frames of a stream always enqueue in sequence order (the per-stream
/// ordering guarantee rests on this). Counters are atomics because shard
/// workers bump `delivered`/`dropped` without taking the mutex.
struct PerceptionService::StreamState {
  std::mutex order_mutex;
  std::uint64_t next_sequence{0};  ///< guarded by order_mutex
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> rejected{0};
};

namespace {

std::shared_ptr<const SignDatabase> build_shared_database(
    const RecognizerConfig& config, const DatabaseBuildOptions& db_options) {
  // Same canonical construction as SaxSignRecognizer: templates run through
  // the identical pipeline, then freeze behind a const handle.
  const SaxSignRecognizer reference(config, db_options);
  return reference.database_ptr();
}

std::size_t resolve_shards(std::size_t requested) {
  if (requested != 0) return requested;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

PerceptionService::PerceptionService(const RecognizerConfig& config,
                                     std::shared_ptr<const SignDatabase> database,
                                     ResultCallback on_result,
                                     const PerceptionServiceConfig& service_config)
    : config_(config),
      service_config_(service_config),
      database_(std::move(database)),
      on_result_(std::move(on_result)) {
  if (database_ == nullptr) {
    throw std::invalid_argument("PerceptionService: null database handle");
  }
  const DynamicBackpressureConfig& dynamic =
      service_config_.dynamic_backpressure;
  if (dynamic.enabled && dynamic.low_water >= dynamic.high_water) {
    throw std::invalid_argument(
        "PerceptionService: dynamic backpressure needs low_water < high_water");
  }
  if (service_config_.micro_batch_window == 0) {
    throw std::invalid_argument(
        "PerceptionService: micro_batch_window must be >= 1");
  }
  if (telemetry::MetricsRegistry* registry = service_config_.metrics) {
    submit_ns_ = registry->histogram(telemetry::kPerceptionSubmit);
    ring_wait_ns_ = registry->histogram(telemetry::kPerceptionRingWait);
    recognize_ns_ = registry->histogram(telemetry::kPerceptionRecognize);
    frames_submitted_ = registry->counter(telemetry::kPerceptionFramesSubmitted);
    frames_dropped_ = registry->counter(telemetry::kPerceptionFramesDropped);
    frames_rejected_ = registry->counter(telemetry::kPerceptionFramesRejected);
    queue_depth_ = registry->gauge(telemetry::kPerceptionQueueDepth);
  }
  recorder_ = service_config_.recorder;
  const std::size_t shard_count = resolve_shards(service_config.shards);
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(service_config.queue_capacity,
                                              service_config.overflow,
                                              database_.get()));
    if (service_config_.metrics != nullptr) {
      // Arm the shared pipeline's prepare/match/finalize spans per shard
      // scratch (one handle set per worker, same ownership as the buffers).
      shards_.back()->scratch.metrics =
          telemetry::RecognitionStageMetrics::from(*service_config_.metrics);
    }
  }
  // Threads start only after the shard vector is fully built: shard_of()
  // reads shards_.size() and must never observe a growing vector.
  for (std::unique_ptr<Shard>& shard : shards_) {
    Shard* raw = shard.get();
    raw->worker = std::thread([this, raw] { shard_loop(*raw); });
  }
}

PerceptionService::PerceptionService(const RecognizerConfig& config,
                                     const DatabaseBuildOptions& db_options,
                                     ResultCallback on_result,
                                     const PerceptionServiceConfig& service_config)
    : PerceptionService(config, build_shared_database(config, db_options),
                        std::move(on_result), service_config) {}

PerceptionService::~PerceptionService() { stop(); }

SubmitReceipt PerceptionService::submit(std::uint32_t stream_id,
                                        const imaging::GrayImage& frame) {
  return submit_job(stream_id, frame);  // copies: the camera keeps its buffer
}

SubmitReceipt PerceptionService::submit(std::uint32_t stream_id,
                                        imaging::GrayImage&& frame) {
  return submit_job(stream_id, std::move(frame));
}

SubmitReceipt PerceptionService::submit_job(std::uint32_t stream_id,
                                            imaging::GrayImage frame) {
  if (frame.empty()) {
    throw std::invalid_argument("PerceptionService::submit: empty frame");
  }
  telemetry::TracedSpan span(submit_ns_, recorder_, {},
                             telemetry::TraceStage::kSubmit);
  SubmitReceipt receipt;
  receipt.shard = shard_of(stream_id);
  if (stopping_.load(std::memory_order_acquire)) {
    receipt.status = SubmitStatus::kStopped;
    return receipt;
  }
  StreamState& state = stream_state(stream_id);
  Shard& shard = *shards_[receipt.shard];
  if (service_config_.dynamic_backpressure.enabled) {
    maybe_switch_policy(shard);
  }

  std::lock_guard<std::mutex> order(state.order_mutex);
  // The trace context is minted here, once the sequence this frame will
  // claim is known. A rejected/closed submit never consumes the sequence,
  // so its terminal trace carries the stream's next UNCONSUMED sequence —
  // exactly which admission attempt died.
  const telemetry::TraceContext trace_context =
      telemetry::TraceContext::of(stream_id, state.next_sequence);
  span.set_context(trace_context);
  // Raise pending BEFORE the push: a shard can pop, process and deliver
  // this frame before push() even returns, and its decrement must never
  // precede our increment.
  pending_.raise();
  Job job;
  job.stream_id = stream_id;
  job.sequence = state.next_sequence;
  job.frame = std::move(frame);
  job.origin = &state;
  if ((ring_wait_ns_.armed() || recorder_ != nullptr) && telemetry::enabled()) {
    job.submitted_at_ns = telemetry::now_ns();
  }
  Job evicted;
  const util::PushOutcome outcome = shard.ring.push(std::move(job), &evicted);
  switch (outcome) {
    case util::PushOutcome::kEnqueued:
      receipt.status = SubmitStatus::kEnqueued;
      receipt.sequence = state.next_sequence++;
      state.submitted.fetch_add(1, std::memory_order_relaxed);
      frames_submitted_.add(1);
      queue_depth_.add(1);
      break;
    case util::PushOutcome::kEvictedOldest: {
      // The new frame is in; the shard's oldest queued frame (possibly from
      // another stream) will never be processed — account it now. Queue
      // depth is net zero: one frame in, one evicted out.
      receipt.status = SubmitStatus::kEnqueuedDropOldest;
      receipt.sequence = state.next_sequence++;
      state.submitted.fetch_add(1, std::memory_order_relaxed);
      evicted.origin->dropped.fetch_add(1, std::memory_order_relaxed);
      frames_submitted_.add(1);
      frames_dropped_.add(1);
      if (recorder_ != nullptr && telemetry::enabled()) {
        // The evicted frame's trace must not end open: close it with a
        // terminal kDropped event spanning its time in the ring.
        const std::uint64_t now = telemetry::now_ns();
        recorder_->emit({telemetry::make_trace_id(evicted.stream_id,
                                                  evicted.sequence),
                         evicted.stream_id, evicted.sequence,
                         telemetry::TraceStage::kQueueWait,
                         telemetry::TraceOutcome::kDropped,
                         evicted.submitted_at_ns != 0 ? evicted.submitted_at_ns
                                                      : now,
                         now});
      }
      finish_frames(1);
      break;
    }
    case util::PushOutcome::kRejected:
      receipt.status = SubmitStatus::kRejected;
      state.rejected.fetch_add(1, std::memory_order_relaxed);
      frames_rejected_.add(1);
      span.set_outcome(telemetry::TraceOutcome::kRejected);  // terminal
      finish_frames(1);
      break;
    case util::PushOutcome::kClosed:
      receipt.status = SubmitStatus::kStopped;
      span.set_outcome(telemetry::TraceOutcome::kClosed);  // terminal
      finish_frames(1);
      break;
  }
  return receipt;
}

void PerceptionService::shard_loop(Shard& shard) {
  const std::size_t window = service_config_.micro_batch_window;
  // Window arenas (worker-thread only). Reused across windows, so the
  // steady state stays allocation-free; result string capacity survives.
  std::vector<Job> jobs(window);
  std::vector<RecognitionResult> results(window);
  std::vector<const imaging::GrayImage*> frame_ptrs(window);
  std::vector<RecognitionResult*> result_ptrs(window);
  StreamResult delivery;
  while (shard.ring.pop(jobs[0])) {
    // Bounded, non-blocking gather: whatever is already queued joins this
    // window, up to the configured cap. The gather NEVER waits — with a
    // shallow queue (e.g. one live stream) m stays 1 and the frame takes
    // the plain single-frame path, which is the latency bound the config
    // documents.
    std::size_t m = 1;
    while (m < window && shard.ring.try_pop(jobs[m])) ++m;
    queue_depth_.add(-static_cast<std::int64_t>(m));
    if ((ring_wait_ns_.armed() || recorder_ != nullptr) &&
        telemetry::enabled()) {
      // One clock read covers the window; frames stamped while telemetry
      // was off carry 0 and are skipped.
      const std::uint64_t popped_at_ns = telemetry::now_ns();
      for (std::size_t k = 0; k < m; ++k) {
        const std::uint64_t submitted_at_ns = jobs[k].submitted_at_ns;
        if (submitted_at_ns == 0) continue;
        ring_wait_ns_.record(
            popped_at_ns > submitted_at_ns ? popped_at_ns - submitted_at_ns : 0);
        if (recorder_ != nullptr) {
          recorder_->emit({telemetry::make_trace_id(jobs[k].stream_id,
                                                    jobs[k].sequence),
                           jobs[k].stream_id, jobs[k].sequence,
                           telemetry::TraceStage::kQueueWait,
                           telemetry::TraceOutcome::kOk, submitted_at_ns,
                           popped_at_ns});
        }
      }
    }
    for (std::size_t k = 0; k < m; ++k) {
      frame_ptrs[k] = &jobs[k].frame;
      result_ptrs[k] = &results[k];
    }
    try {
      // The recognize window is timed manually rather than via a span so
      // ONE clock pair can feed both the stage histogram and the per-frame
      // kRecognize trace events (tracing never buys a second clock read).
      const bool timed = (recognize_ns_.armed() || recorder_ != nullptr) &&
                         telemetry::enabled();
      const std::uint64_t recognize_start_ns = timed ? telemetry::now_ns() : 0;
      recognize_frames_micro_batch(config_, *shard.database, frame_ptrs.data(),
                                   m, shard.scratch, shard.micro,
                                   result_ptrs.data());
      if (timed) {
        const std::uint64_t recognize_end_ns = telemetry::now_ns();
        if (recognize_ns_.armed()) {
          recognize_ns_.record(recognize_end_ns - recognize_start_ns);
        }
        if (recorder_ != nullptr) {
          for (std::size_t k = 0; k < m; ++k) {
            recorder_->emit({telemetry::make_trace_id(jobs[k].stream_id,
                                                      jobs[k].sequence),
                             jobs[k].stream_id, jobs[k].sequence,
                             telemetry::TraceStage::kRecognize,
                             results[k].accepted
                                 ? telemetry::TraceOutcome::kAccepted
                                 : telemetry::TraceOutcome::kNoMatch,
                             recognize_start_ns, recognize_end_ns});
          }
        }
      }
      // Deliver in pop (== per-stream sequence) order, preserving the
      // stream-ordering guarantee documented in the header.
      for (std::size_t k = 0; k < m; ++k) {
        delivery.stream_id = jobs[k].stream_id;
        delivery.sequence = jobs[k].sequence;
        delivery.result = results[k];  // copy: both sides keep warm capacity
        delivery.trace =
            telemetry::TraceContext::of(jobs[k].stream_id, jobs[k].sequence);
        if (on_result_) on_result_(delivery);
        jobs[k].origin->delivered.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (...) {
      if (recorder_ != nullptr && telemetry::enabled()) {
        // The window's frames will never be delivered: close their traces
        // with terminal kError events.
        for (std::size_t k = 0; k < m; ++k) {
          recorder_->emit_instant(
              telemetry::TraceContext::of(jobs[k].stream_id, jobs[k].sequence),
              telemetry::TraceStage::kRecognize,
              telemetry::TraceOutcome::kError);
        }
      }
      pending_.record_error(std::current_exception());
    }
    finish_frames(m);
  }
}

void PerceptionService::finish_frames(std::size_t count) {
  pending_.finish(count);
}

void PerceptionService::maybe_switch_policy(Shard& shard) {
  // Only the kBlock <-> kDropOldest pair is managed: a deployment that
  // chose kDropOldest or kReject at construction made a static decision.
  if (service_config_.overflow != util::OverflowPolicy::kBlock) return;
  const DynamicBackpressureConfig& dynamic =
      service_config_.dynamic_backpressure;
  // One decider at a time per shard: without this, two producers can both
  // observe kBlock at high water and the switch counter ticks twice for
  // one logical transition.
  std::lock_guard<std::mutex> decide(shard.policy_mutex);
  const std::size_t depth = shard.ring.size();
  const util::OverflowPolicy current = shard.ring.policy();
  if (current == util::OverflowPolicy::kBlock && depth >= dynamic.high_water) {
    shard.ring.set_policy(util::OverflowPolicy::kDropOldest);
    policy_switches_.fetch_add(1, std::memory_order_relaxed);
  } else if (current == util::OverflowPolicy::kDropOldest &&
             depth <= dynamic.low_water) {
    shard.ring.set_policy(util::OverflowPolicy::kBlock);
    policy_switches_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PerceptionService::drain() { pending_.drain(); }

void PerceptionService::stop() noexcept {
  std::lock_guard<std::mutex> guard(stop_mutex_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  // close() wakes producers blocked on a full kBlock ring (their submit
  // returns kStopped) and lets each worker drain its remaining queue.
  for (std::unique_ptr<Shard>& shard : shards_) shard->ring.close();
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  stopped_ = true;
}

ShardGauge PerceptionService::shard_gauge(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("PerceptionService::shard_gauge: bad shard index");
  }
  const util::BoundedRing<Job>& ring = shards_[shard]->ring;
  return {ring.size(), ring.capacity(), ring.evicted_count(),
          ring.rejected_count(), ring.popped_count(), ring.policy()};
}

util::OverflowPolicy PerceptionService::shard_policy(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("PerceptionService::shard_policy: bad shard index");
  }
  return shards_[shard]->ring.policy();
}

std::vector<ShardGauge> PerceptionService::shard_gauges() const {
  std::vector<ShardGauge> gauges;
  gauges.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    gauges.push_back(shard_gauge(s));
  }
  return gauges;
}

const SignDatabase* PerceptionService::shard_database(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("PerceptionService::shard_database: bad shard index");
  }
  return shards_[shard]->database;
}

PerceptionService::StreamState& PerceptionService::stream_state(
    std::uint32_t stream_id) {
  {
    // Fast path: the stream already exists (every frame after a stream's
    // first). StreamState pointers are stable, so the reference stays
    // valid after the lock drops — the registry only ever grows.
    std::shared_lock<std::shared_mutex> lock(streams_mutex_);
    const auto it = streams_.find(stream_id);
    if (it != streams_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(streams_mutex_);
  std::unique_ptr<StreamState>& slot = streams_[stream_id];
  if (slot == nullptr) slot = std::make_unique<StreamState>();
  return *slot;
}

StreamStats PerceptionService::stream_stats(std::uint32_t stream_id) const {
  std::shared_lock<std::shared_mutex> lock(streams_mutex_);
  const auto it = streams_.find(stream_id);
  if (it == streams_.end()) return {};
  const StreamState& state = *it->second;
  return {state.submitted.load(std::memory_order_relaxed),
          state.delivered.load(std::memory_order_relaxed),
          state.dropped.load(std::memory_order_relaxed),
          state.rejected.load(std::memory_order_relaxed)};
}

StreamStats PerceptionService::total_stats() const {
  std::shared_lock<std::shared_mutex> lock(streams_mutex_);
  StreamStats total;
  for (const auto& entry : streams_) {
    const StreamState& state = *entry.second;
    total.submitted += state.submitted.load(std::memory_order_relaxed);
    total.delivered += state.delivered.load(std::memory_order_relaxed);
    total.dropped += state.dropped.load(std::memory_order_relaxed);
    total.rejected += state.rejected.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace hdc::recognition
