#include "recognition/dynamic_sign.hpp"

#include <cmath>
#include <numbers>

#include "signs/scene.hpp"
#include "timeseries/normalize.hpp"

namespace hdc::recognition {

signs::BodyPose wave_pose(double phase01) {
  signs::BodyPose pose;
  // Arm swings 105 deg <-> 165 deg abduction, sinusoidally.
  const double swing =
      std::sin(2.0 * std::numbers::pi * phase01);  // -1 .. 1
  pose.right_arm = {135.0 + 30.0 * swing, 0.0};
  pose.left_arm = {8.0, 5.0};
  return pose;
}

namespace {

/// Builds a database holding the two wave keyframes. HumanSign labels are
/// repurposed as class tags: kYes = wave-high, kNo = wave-low (the dynamic
/// layer never surfaces them as static signs).
SignDatabase build_wave_database(const timeseries::SaxEncoder& encoder,
                                 const DatabaseBuildOptions& options,
                                 const SignatureExtractor& extractor) {
  SignDatabase db(encoder);
  struct Keyframe {
    double phase;
    signs::HumanSign tag;
    const char* label;
  };
  for (const Keyframe key : {Keyframe{0.25, signs::HumanSign::kYes, "wave-high"},
                             Keyframe{0.75, signs::HumanSign::kNo, "wave-low"}}) {
    const imaging::GrayImage frame = signs::render_scene(
        wave_pose(key.phase), signs::BodyDimensions{}, options.canonical_view,
        options.render);
    const timeseries::Series signature = extractor(frame);
    if (!signature.empty()) db.add_template(key.tag, signature, key.label);
  }
  return db;
}

}  // namespace

DynamicSignRecognizer::DynamicSignRecognizer(const DynamicSignConfig& config,
                                             const DatabaseBuildOptions& db_options)
    : config_(config),
      matcher_(config.pipeline,
               SignDatabase(timeseries::SaxEncoder(timeseries::SaxConfig(
                   config.pipeline.word_length, config.pipeline.alphabet)))) {
  DatabaseBuildOptions options = db_options;
  options.signature_samples = config.pipeline.signature_samples;
  matcher_ = SaxSignRecognizer(
      config.pipeline,
      build_wave_database(
          timeseries::SaxEncoder(
              timeseries::SaxConfig(config.pipeline.word_length,
                                    config.pipeline.alphabet)),
          options,
          [this](const imaging::GrayImage& frame) {
            return matcher_.extract_signature(frame);
          }));
}

DynamicSign DynamicSignRecognizer::update(double t_seconds,
                                          const imaging::GrayImage& frame) {
  // Classify the frame against the keyframe database.
  last_keyframe_.reset();
  const timeseries::Series signature = matcher_.extract_signature(frame);
  if (!signature.empty()) {
    const auto match = matcher_.database().query(signature, true);
    if (match.has_value() && match->distance <= config_.accept_distance) {
      last_keyframe_ = match->sign == signs::HumanSign::kYes ? 0 : 1;
    }
  }

  // Maintain the sliding window of keyframe observations. Consecutive
  // duplicates collapse (only transitions matter).
  if (last_keyframe_.has_value()) {
    if (keyframes_.empty() || keyframes_.back().second != *last_keyframe_) {
      keyframes_.emplace_back(t_seconds, *last_keyframe_);
    } else {
      keyframes_.back().first = t_seconds;  // refresh recency
    }
  }
  while (!keyframes_.empty() &&
         keyframes_.front().first < t_seconds - config_.window_s) {
    keyframes_.pop_front();
  }

  // Alternations within the window = transitions recorded (deduplicated).
  const int alternations =
      keyframes_.empty() ? 0 : static_cast<int>(keyframes_.size()) - 1;
  if (alternations >= config_.min_alternations) {
    active_ = DynamicSign::kWaveOff;
    hold_until_ = t_seconds + config_.hold_s;
  } else if (t_seconds > hold_until_) {
    active_ = DynamicSign::kNone;
  }
  return active_;
}

}  // namespace hdc::recognition
