// Flight patterns — the drone->human half of the embodied language
// (paper §III).
//
// Three standard patterns: vertical take-off to flying height, horizontal
// flight, and vertical landing (Figure 2). Four communicative patterns:
//   poke       — a short dart toward the human to attract attention
//   nod (yes)  — vertical bobbing, the aerial "nod"
//   turn (no)  — yaw-like lateral shake, the aerial "head shake"
//   rectangle  — flying the outline of an area the drone wants to occupy
// "The communicative flight patterns are unmistakable flight patterns and
// thus can be considered an embodied statement of intent by the drone." The
// PatternClassifier below verifies exactly that property (bench FIG2).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/geometry.hpp"

namespace hdc::drone {

using hdc::util::Vec3;

enum class PatternType : std::uint8_t {
  kTakeOff = 0,
  kHorizontalTransit,
  kLanding,
  kPoke,
  kNodYes,
  kTurnNo,
  kRectangleRequest,
};

inline constexpr std::array<PatternType, 7> kAllPatterns = {
    PatternType::kTakeOff,   PatternType::kHorizontalTransit,
    PatternType::kLanding,   PatternType::kPoke,
    PatternType::kNodYes,    PatternType::kTurnNo,
    PatternType::kRectangleRequest,
};

[[nodiscard]] constexpr std::string_view to_string(PatternType type) noexcept {
  switch (type) {
    case PatternType::kTakeOff: return "TakeOff";
    case PatternType::kHorizontalTransit: return "HorizontalTransit";
    case PatternType::kLanding: return "Landing";
    case PatternType::kPoke: return "Poke";
    case PatternType::kNodYes: return "NodYes";
    case PatternType::kTurnNo: return "TurnNo";
    case PatternType::kRectangleRequest: return "RectangleRequest";
  }
  return "?";
}

/// Parameters shared by the pattern generators.
struct PatternParams {
  double flight_altitude{5.0};     ///< standard transit height, m
  double comm_altitude{2.2};       ///< eye-friendly height for communication
  double poke_advance{0.8};        ///< forward dart distance, m
  double nod_amplitude{0.5};       ///< vertical bob half-stroke, m
  double shake_amplitude{0.7};     ///< lateral shake half-stroke, m
  int repeat_count{3};             ///< bobs/shakes per pattern
  double rectangle_width{2.0};     ///< requested-area outline, m
  double rectangle_depth{1.5};
  double comm_speed_scale{0.35};   ///< slow-down for readability
};

/// A waypoint with a per-leg speed scale (communicative legs fly slowly so
/// the pattern reads clearly).
struct PatternWaypoint {
  Vec3 position{};
  double speed_scale{1.0};
};

/// A generated pattern: ordered waypoints + bookkeeping.
struct FlightPattern {
  PatternType type{PatternType::kTakeOff};
  std::vector<PatternWaypoint> waypoints;
};

/// Generates the waypoint script of `type`, anchored at the drone's current
/// position `origin`. For communicative patterns `facing` is the horizontal
/// unit direction from the drone toward the human observer; for transit
/// patterns it is the direction of travel. `transit_target` is only used by
/// kHorizontalTransit.
[[nodiscard]] FlightPattern make_pattern(PatternType type, const Vec3& origin,
                                         const hdc::util::Vec2& facing,
                                         const PatternParams& params = {},
                                         const Vec3& transit_target = {});

/// A recorded trajectory sample.
struct TrajectorySample {
  double t{0.0};
  Vec3 position{};
};

using Trajectory = std::vector<TrajectorySample>;

/// Summary features extracted from a trajectory (exposed for tests/benches).
struct TrajectoryFeatures {
  double vertical_range{0.0};       ///< max z - min z
  double horizontal_range{0.0};     ///< diagonal of the xy bounding box
  double net_displacement{0.0};     ///< |end - start|
  double path_length{0.0};
  int vertical_reversals{0};        ///< sign changes of dz
  int lateral_reversals{0};         ///< sign changes along the dominant xy axis
  double closure_ratio{0.0};        ///< net displacement / path length
  bool starts_on_ground{false};
  bool ends_on_ground{false};
};

[[nodiscard]] TrajectoryFeatures extract_features(const Trajectory& trajectory);

/// Rule-based classifier that maps an observed trajectory back to the
/// pattern vocabulary. Returns the best-matching type and a confidence in
/// [0, 1] (margin-based). Used to verify the "unmistakable" property and by
/// the human-agent model to "read" drone intent.
struct PatternClassification {
  PatternType type{PatternType::kHorizontalTransit};
  double confidence{0.0};
};

[[nodiscard]] PatternClassification classify_trajectory(const Trajectory& trajectory,
                                                        const PatternParams& params = {});

/// Executes a pattern against DroneKinematics: call step() repeatedly; the
/// executor feeds waypoint velocity commands and reports completion.
class DroneKinematics;  // fwd

class PatternExecutor {
 public:
  PatternExecutor() = default;
  explicit PatternExecutor(FlightPattern pattern) : pattern_(std::move(pattern)) {}

  void start(FlightPattern pattern) {
    pattern_ = std::move(pattern);
    next_waypoint_ = 0;
  }

  /// Advances the kinematics one tick along the pattern; returns true while
  /// the pattern is still running, false once complete (or empty).
  bool step(DroneKinematics& kinematics, double dt, const Vec3& wind = {});

  [[nodiscard]] bool finished() const noexcept {
    return next_waypoint_ >= pattern_.waypoints.size();
  }
  [[nodiscard]] const FlightPattern& pattern() const noexcept { return pattern_; }
  [[nodiscard]] std::size_t next_waypoint() const noexcept { return next_waypoint_; }

 private:
  FlightPattern pattern_{};
  std::size_t next_waypoint_{0};
};

}  // namespace hdc::drone
