#include "drone/flight_pattern.hpp"

#include <algorithm>
#include <cmath>

#include "drone/kinematics.hpp"

namespace hdc::drone {

using hdc::util::Vec2;

FlightPattern make_pattern(PatternType type, const Vec3& origin, const Vec2& facing,
                           const PatternParams& params, const Vec3& transit_target) {
  FlightPattern pattern;
  pattern.type = type;
  auto& wp = pattern.waypoints;
  const Vec2 f = facing.normalized();
  const Vec2 lateral = f.perp();
  const double slow = params.comm_speed_scale;

  const auto push = [&wp](const Vec3& p, double scale) {
    wp.push_back({p, scale});
  };

  switch (type) {
    case PatternType::kTakeOff:
      // Vertical lift-off to flying height (Figure 2 mirrored).
      push({origin.x, origin.y, params.flight_altitude}, 1.0);
      break;

    case PatternType::kHorizontalTransit:
      push({origin.x, origin.y, params.flight_altitude}, 1.0);
      push({transit_target.x, transit_target.y, params.flight_altitude}, 1.0);
      break;

    case PatternType::kLanding:
      // "The drone reduces altitude until landed" — straight down.
      push({origin.x, origin.y, 0.0}, 0.6);
      break;

    case PatternType::kPoke: {
      // Short darts toward the human and back: enough approach to trip the
      // human's looming reflex, repeated for salience.
      const Vec3 out = origin + Vec3{f.x, f.y, 0.0} * params.poke_advance;
      for (int i = 0; i < std::max(1, params.repeat_count - 1); ++i) {
        push(out, slow * 1.6);  // the dart is brisk on purpose
        push(origin, slow * 1.6);
      }
      break;
    }

    case PatternType::kNodYes: {
      const Vec3 up = origin + Vec3{0.0, 0.0, params.nod_amplitude};
      const Vec3 down = origin - Vec3{0.0, 0.0, params.nod_amplitude};
      for (int i = 0; i < params.repeat_count; ++i) {
        push(up, slow);
        push(down, slow);
      }
      push(origin, slow);
      break;
    }

    case PatternType::kTurnNo: {
      const Vec3 right = origin + Vec3{lateral.x, lateral.y, 0.0} * params.shake_amplitude;
      const Vec3 left = origin - Vec3{lateral.x, lateral.y, 0.0} * params.shake_amplitude;
      for (int i = 0; i < params.repeat_count; ++i) {
        push(right, slow);
        push(left, slow);
      }
      push(origin, slow);
      break;
    }

    case PatternType::kRectangleRequest: {
      // Outline of the requested area, flown as a closed loop starting and
      // ending at the drone's hold point.
      const Vec3 fw{f.x, f.y, 0.0};
      const Vec3 side{lateral.x, lateral.y, 0.0};
      const double w = params.rectangle_width;
      const double d = params.rectangle_depth;
      push(origin + side * (w / 2.0), slow);
      push(origin + side * (w / 2.0) + fw * d, slow);
      push(origin - side * (w / 2.0) + fw * d, slow);
      push(origin - side * (w / 2.0), slow);
      push(origin, slow);
      break;
    }
  }
  return pattern;
}

TrajectoryFeatures extract_features(const Trajectory& trajectory) {
  TrajectoryFeatures features{};
  if (trajectory.size() < 2) return features;

  double min_z = trajectory.front().position.z, max_z = min_z;
  Vec2 min_xy = trajectory.front().position.xy();
  Vec2 max_xy = min_xy;
  double path = 0.0;
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    const Vec3& p = trajectory[i].position;
    min_z = std::min(min_z, p.z);
    max_z = std::max(max_z, p.z);
    min_xy.x = std::min(min_xy.x, p.x);
    min_xy.y = std::min(min_xy.y, p.y);
    max_xy.x = std::max(max_xy.x, p.x);
    max_xy.y = std::max(max_xy.y, p.y);
    if (i > 0) path += p.distance_to(trajectory[i - 1].position);
  }
  features.vertical_range = max_z - min_z;
  features.horizontal_range = (max_xy - min_xy).norm();
  features.net_displacement =
      trajectory.back().position.distance_to(trajectory.front().position);
  features.path_length = path;
  features.closure_ratio = path > 1e-9 ? features.net_displacement / path : 0.0;
  features.starts_on_ground = trajectory.front().position.z < 0.15;
  features.ends_on_ground = trajectory.back().position.z < 0.15;

  // Dominant horizontal axis from the xy displacement covariance.
  Vec2 mean{};
  for (const auto& s : trajectory) mean += s.position.xy();
  mean = mean / static_cast<double>(trajectory.size());
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (const auto& s : trajectory) {
    const Vec2 d = s.position.xy() - mean;
    sxx += d.x * d.x;
    sxy += d.x * d.y;
    syy += d.y * d.y;
  }
  // Principal eigenvector of [[sxx, sxy], [sxy, syy]].
  const double theta = 0.5 * std::atan2(2.0 * sxy, sxx - syy);
  const Vec2 axis{std::cos(theta), std::sin(theta)};

  // Reversal counting on accumulated displacement: a direction is only
  // confirmed once `kDeadBand` metres have been covered since the last
  // confirmation, so controller dither and tiny per-tick steps are ignored
  // regardless of the sampling rate.
  constexpr double kDeadBand = 0.15;  // metres of confirmed travel
  int sign_v = 0, sign_l = 0;
  double accum_v = 0.0, accum_l = 0.0;
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    const Vec3 step = trajectory[i].position - trajectory[i - 1].position;
    accum_v += step.z;
    if (std::abs(accum_v) > kDeadBand) {
      const int s = accum_v > 0.0 ? 1 : -1;
      if (sign_v != 0 && s != sign_v) ++features.vertical_reversals;
      sign_v = s;
      accum_v = 0.0;
    }
    accum_l += step.xy().dot(axis);
    if (std::abs(accum_l) > kDeadBand) {
      const int s = accum_l > 0.0 ? 1 : -1;
      if (sign_l != 0 && s != sign_l) ++features.lateral_reversals;
      sign_l = s;
      accum_l = 0.0;
    }
  }
  return features;
}

namespace {

/// Soft indicator: 1 inside [lo, hi], decaying linearly to 0 over `soft`
/// outside the band.
[[nodiscard]] double band_score(double value, double lo, double hi, double soft) {
  if (value >= lo && value <= hi) return 1.0;
  const double out = value < lo ? lo - value : value - hi;
  return std::max(0.0, 1.0 - out / soft);
}

}  // namespace

PatternClassification classify_trajectory(const Trajectory& trajectory,
                                          const PatternParams& params) {
  const TrajectoryFeatures f = extract_features(trajectory);

  // Per-type scores in [0, 1]: the product of the soft checks that define
  // each pattern's shape. Parameters give the expected scales.
  std::array<double, kAllPatterns.size()> scores{};

  const double nod_stroke = 2.0 * params.nod_amplitude;
  const double shake_stroke = 2.0 * params.shake_amplitude;
  const double rect_diag = std::hypot(params.rectangle_width, params.rectangle_depth);
  const double rect_perimeter =
      2.0 * (params.rectangle_width + params.rectangle_depth);

  // TakeOff: climbs from the ground, little horizontal motion.
  scores[0] = (f.starts_on_ground && !f.ends_on_ground ? 1.0 : 0.0) *
              band_score(f.vertical_range, 0.5 * params.flight_altitude,
                         1.5 * params.flight_altitude, params.flight_altitude) *
              band_score(f.horizontal_range, 0.0, 0.6, 1.0);

  // HorizontalTransit: large net displacement, high closure ratio and a
  // genuinely horizontal extent (distinguishes it from a straight descent).
  // The vertical band tolerates the initial climb to flight altitude.
  scores[1] = band_score(f.closure_ratio, 0.7, 1.0, 0.3) *
              band_score(f.net_displacement, 1.5, 1e9, 1.0) *
              band_score(f.horizontal_range, 1.0, 1e9, 0.8) *
              band_score(f.vertical_range, 0.0, 0.7 * params.flight_altitude,
                         0.6 * params.flight_altitude);

  // Landing: descends to the ground, little horizontal motion.
  scores[2] = (!f.starts_on_ground && f.ends_on_ground ? 1.0 : 0.0) *
              band_score(f.horizontal_range, 0.0, 0.6, 1.0);

  // Poke: small closed dart along one horizontal axis, few reversals.
  scores[3] = band_score(f.horizontal_range,
                         0.5 * params.poke_advance, 1.8 * params.poke_advance, 0.5) *
              band_score(f.vertical_range, 0.0, 0.3, 0.3) *
              band_score(static_cast<double>(f.lateral_reversals), 1.0, 5.0, 2.0) *
              band_score(f.closure_ratio, 0.0, 0.3, 0.3);

  // Axis-dominance ratios make the oscillation patterns robust to wind
  // drift: gusts add horizontal wander to a nod (and vice versa), but the
  // commanded axis still dominates.
  const double vertical_dominance =
      f.vertical_range / std::max(f.horizontal_range, 0.05);
  const double horizontal_dominance =
      f.horizontal_range / std::max(f.vertical_range, 0.05);

  // NodYes: repeated vertical strokes; vertical motion comparable to or
  // exceeding any wind-induced horizontal wander.
  scores[4] = band_score(f.vertical_range, 0.6 * nod_stroke, 1.6 * nod_stroke, 0.4) *
              band_score(static_cast<double>(f.vertical_reversals), 3.0, 1e9, 2.0) *
              band_score(vertical_dominance, 0.7, 1e9, 0.4);

  // TurnNo: repeated lateral strokes, flat altitude (strong horizontal
  // dominance separates it from a wind-blown nod).
  scores[5] =
      band_score(f.horizontal_range, 0.6 * shake_stroke, 1.8 * shake_stroke, 0.6) *
      band_score(static_cast<double>(f.lateral_reversals), 3.0, 1e9, 2.0) *
      band_score(horizontal_dominance, 2.5, 1e9, 1.2);

  // RectangleRequest: closed loop with substantial extent in both axes and
  // path length near the perimeter.
  scores[6] = band_score(f.closure_ratio, 0.0, 0.25, 0.25) *
              band_score(f.horizontal_range, 0.6 * rect_diag, 1.6 * rect_diag, 0.8) *
              band_score(f.path_length, 0.8 * rect_perimeter, 2.0 * rect_perimeter,
                         rect_perimeter) *
              band_score(f.vertical_range, 0.0, 0.3, 0.3);

  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  double second = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i != best) second = std::max(second, scores[i]);
  }
  PatternClassification result;
  result.type = kAllPatterns[best];
  result.confidence =
      scores[best] <= 0.0 ? 0.0 : (scores[best] - second) / scores[best];
  return result;
}

bool PatternExecutor::step(DroneKinematics& kinematics, double dt, const Vec3& wind) {
  if (finished()) return false;
  const PatternWaypoint& wp = pattern_.waypoints[next_waypoint_];
  kinematics.step_towards(dt, wp.position, wp.speed_scale, wind);
  if (kinematics.reached(wp.position)) ++next_waypoint_;
  return !finished();
}

}  // namespace hdc::drone
