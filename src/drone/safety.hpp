// Safety monitor (paper §II): "The ring can be turned to all red should a
// safety function be triggered, which can be achieved as a default setting."
//
// Monitored conditions: geofence breach, altitude ceiling, minimum human
// separation, battery reserve, and an external fault input. Any active
// condition forces the safety state; the LED ring and the behaviour layer
// subscribe to it. The monitor starts in the Danger state by design — a
// drone must prove healthy before showing navigation colours.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/geometry.hpp"

namespace hdc::drone {

using hdc::util::Box2;
using hdc::util::Vec3;

enum class SafetyCause : std::uint8_t {
  kNone = 0,
  kStartupCheck,      ///< not yet proven healthy (the default-red rule)
  kGeofenceBreach,
  kAltitudeCeiling,
  kHumanTooClose,
  kBatteryReserve,
  kExternalFault,
};

[[nodiscard]] constexpr const char* to_string(SafetyCause cause) noexcept {
  switch (cause) {
    case SafetyCause::kNone: return "None";
    case SafetyCause::kStartupCheck: return "StartupCheck";
    case SafetyCause::kGeofenceBreach: return "GeofenceBreach";
    case SafetyCause::kAltitudeCeiling: return "AltitudeCeiling";
    case SafetyCause::kHumanTooClose: return "HumanTooClose";
    case SafetyCause::kBatteryReserve: return "BatteryReserve";
    case SafetyCause::kExternalFault: return "ExternalFault";
  }
  return "?";
}

/// Limits the monitor enforces.
struct SafetyLimits {
  Box2 geofence{{-100.0, -100.0}, {100.0, 100.0}};
  double altitude_ceiling{30.0};       ///< m AGL
  double min_human_separation{1.5};    ///< m, hard floor (poke keeps outside this)
};

class SafetyMonitor {
 public:
  explicit SafetyMonitor(SafetyLimits limits = {}) : limits_(limits) {}

  /// Clears the startup check after pre-flight tests pass.
  void mark_healthy() noexcept { startup_cleared_ = true; }

  void set_external_fault(bool fault) noexcept { external_fault_ = fault; }

  /// Evaluates all conditions. `human_positions` are ground positions of
  /// people near the work area; `battery_reserve` is the battery's
  /// reserve_reached() flag.
  SafetyCause evaluate(const Vec3& drone_position, bool in_flight,
                       const std::vector<hdc::util::Vec2>& human_positions,
                       bool battery_reserve);

  [[nodiscard]] bool danger() const noexcept { return cause_ != SafetyCause::kNone; }
  [[nodiscard]] SafetyCause cause() const noexcept { return cause_; }
  [[nodiscard]] const SafetyLimits& limits() const noexcept { return limits_; }

 private:
  SafetyLimits limits_;
  SafetyCause cause_{SafetyCause::kStartupCheck};
  bool startup_cleared_{false};
  bool external_fault_{false};
};

}  // namespace hdc::drone
