// Drone -> human visual indicator: the all-round LED ring (paper §II).
//
// "Based on FAA regulations, a ring with 10 tri-colour light emitting diodes
// was constructed" — depending on the direction of controlled flight the
// position of red, green and white lighting changes; the ring turns all red
// when a safety function triggers (and all-red is the power-on default, a
// fail-safe). Aviation position-light sectors are used:
//   green : starboard,  0..+110 deg relative to the course
//   red   : port,       0..-110 deg
//   white : aft,        the remaining 140-deg tail sector
// A multicopter has no aerodynamic "nose", so sectors are anchored to the
// commanded course over ground, exactly as the paper describes.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/geometry.hpp"

namespace hdc::drone {

/// Colour a tri-colour (RGW) indicator LED can show.
enum class LedColor : std::uint8_t { kOff = 0, kRed, kGreen, kWhite, kAmber };

[[nodiscard]] constexpr const char* to_string(LedColor color) noexcept {
  switch (color) {
    case LedColor::kOff: return "off";
    case LedColor::kRed: return "red";
    case LedColor::kGreen: return "green";
    case LedColor::kWhite: return "white";
    case LedColor::kAmber: return "amber";
  }
  return "?";
}

/// Ring display modes.
enum class RingMode : std::uint8_t {
  kDanger = 0,     ///< all red; fail-safe default and safety-trigger state
  kNavigation,     ///< FAA-style sectors anchored to the course
  kTakeoff,        ///< extension: phase palette (green/white pulse)
  kLanding,        ///< extension: phase palette (amber/white pulse)
  kAllGreen,       ///< "no consensus" option from the paper, kept selectable
  kOff,            ///< rotors off, lights extinguished (end of Figure 2)
};

[[nodiscard]] constexpr const char* to_string(RingMode mode) noexcept {
  switch (mode) {
    case RingMode::kDanger: return "Danger";
    case RingMode::kNavigation: return "Navigation";
    case RingMode::kTakeoff: return "Takeoff";
    case RingMode::kLanding: return "Landing";
    case RingMode::kAllGreen: return "AllGreen";
    case RingMode::kOff: return "Off";
  }
  return "?";
}

/// The 10-LED all-round ring.
class LedRing {
 public:
  static constexpr std::size_t kLedCount = 10;

  /// Sector half-widths per FAA position-light convention (degrees).
  static constexpr double kSideSectorDeg = 110.0;

  LedRing() { apply(); }  // boots in kDanger (fail-safe default)

  /// Switches mode. Navigation keeps the last commanded course.
  void set_mode(RingMode mode) {
    mode_ = mode;
    apply();
  }

  /// Updates the course over ground (radians, world frame) used to anchor
  /// the navigation sectors.
  void set_course(double course_rad) {
    course_rad_ = course_rad;
    apply();
  }

  /// Advances the animation clock (takeoff/landing palettes pulse at 1 Hz).
  void tick(double dt_seconds) {
    animation_clock_ += dt_seconds;
    if (mode_ == RingMode::kTakeoff || mode_ == RingMode::kLanding) apply();
  }

  [[nodiscard]] RingMode mode() const noexcept { return mode_; }
  [[nodiscard]] double course() const noexcept { return course_rad_; }
  [[nodiscard]] const std::array<LedColor, kLedCount>& leds() const noexcept {
    return leds_;
  }

  /// World azimuth that LED `index` points toward (radians, counter-
  /// clockwise from +x like every other angle in HDC). The flight
  /// controller holds the airframe yaw, so these directions are constant.
  [[nodiscard]] static double led_azimuth(std::size_t index) noexcept {
    return hdc::util::kTwoPi * static_cast<double>(index) /
           static_cast<double>(kLedCount);
  }

  /// The sector colour for an LED pointing `relative_bearing_rad` away from
  /// the course (counter-clockwise positive). Positive bearings are to
  /// port (left of travel) -> red; negative to starboard -> green; the
  /// tail sector beyond +/-110 deg -> white.
  [[nodiscard]] static LedColor navigation_color(double relative_bearing_rad) noexcept;

  /// One-line rendering such as "R R W G G G W R R R" for logs/examples.
  [[nodiscard]] std::string to_line() const;

 private:
  void apply();

  RingMode mode_{RingMode::kDanger};
  double course_rad_{0.0};
  double animation_clock_{0.0};
  std::array<LedColor, kLedCount> leds_{};
};

}  // namespace hdc::drone
