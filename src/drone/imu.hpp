// IMU sensor model + flight-state estimator.
//
// The paper notes (§II): "The integration of an appropriate sensor like an
// IMU to indicate actual flight is yet to be discussed in greater detail."
// This module implements that integration as a documented extension: a
// noisy accelerometer/gyro model driven by the kinematic state, and an
// estimator that decides Landed / InFlight from vibration energy and
// specific force, so the navigation lights can indicate *actual* flight
// rather than commanded flight.
#pragma once

#include <cstdint>
#include <deque>

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace hdc::drone {

using hdc::util::Vec3;

/// One IMU sample (body frame approximated by the world frame for a
/// yaw-held multicopter).
struct ImuSample {
  Vec3 accel{};  ///< specific force, m/s^2 (gravity-included)
  Vec3 gyro{};   ///< angular rate, rad/s
};

/// Accel/gyro error model: constant bias plus white noise; rotors add
/// vibration proportional to throttle.
class ImuModel {
 public:
  explicit ImuModel(std::uint64_t seed) : rng_(seed) {
    bias_accel_ = {rng_.gaussian(0.0, 0.05), rng_.gaussian(0.0, 0.05),
                   rng_.gaussian(0.0, 0.05)};
    bias_gyro_ = {rng_.gaussian(0.0, 0.002), rng_.gaussian(0.0, 0.002),
                  rng_.gaussian(0.0, 0.002)};
  }

  /// Produces a sample given the true acceleration (world, without gravity)
  /// and whether rotors are spinning (vibration source).
  [[nodiscard]] ImuSample sample(const Vec3& true_accel, bool rotors_on);

 private:
  hdc::util::Rng rng_;
  Vec3 bias_accel_{};
  Vec3 bias_gyro_{};
  static constexpr double kAccelNoise = 0.08;      // m/s^2 1-sigma
  static constexpr double kGyroNoise = 0.004;      // rad/s 1-sigma
  static constexpr double kRotorVibration = 0.45;  // m/s^2 1-sigma extra
};

/// Estimated gross flight state.
enum class FlightState : std::uint8_t { kLanded = 0, kInFlight };

[[nodiscard]] constexpr const char* to_string(FlightState state) noexcept {
  return state == FlightState::kLanded ? "Landed" : "InFlight";
}

/// Decides Landed vs InFlight from a short window of IMU samples: rotors
/// induce vibration energy, and climb/descent shows in the specific force.
/// Hysteresis prevents flicker at the transitions.
class FlightStateEstimator {
 public:
  explicit FlightStateEstimator(std::size_t window = 25) : window_(window) {}

  FlightState update(const ImuSample& sample);

  [[nodiscard]] FlightState state() const noexcept { return state_; }
  [[nodiscard]] double vibration_energy() const noexcept { return energy_; }

 private:
  std::size_t window_;
  std::deque<double> magnitudes_;
  FlightState state_{FlightState::kLanded};
  double energy_{0.0};
  int streak_{0};
  static constexpr double kEnergyThreshold = 0.12;  // accel variance, (m/s^2)^2
  static constexpr int kSwitchStreak = 10;          // consecutive agreeing windows
};

}  // namespace hdc::drone
