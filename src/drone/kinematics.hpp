// Point-mass quadrotor kinematics with velocity/acceleration limits, a
// waypoint P-controller and a wind-gust disturbance model.
//
// This substitutes for the paper's Yuneec H520 airframe (DESIGN.md §1): the
// communication experiments only observe the drone's trajectory and lights,
// so first-order translational dynamics with realistic limits suffice.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace hdc::drone {

using hdc::util::Vec3;

/// Physical limits of the simulated airframe (H520-like defaults).
struct DroneLimits {
  double max_horizontal_speed{8.0};   ///< m/s
  double max_vertical_speed{2.5};     ///< m/s
  double max_acceleration{4.0};       ///< m/s^2 per axis group
  double position_tolerance{0.12};    ///< waypoint capture radius, m
};

/// Translational state of the airframe.
struct DroneState {
  Vec3 position{};
  Vec3 velocity{};
  /// Course over ground (radians CCW from +x); meaningful when moving.
  [[nodiscard]] double course() const noexcept {
    return std::atan2(velocity.y, velocity.x);
  }
  [[nodiscard]] double ground_speed() const noexcept { return velocity.xy().norm(); }
};

/// Ornstein-Uhlenbeck wind gusts: a slowly-varying horizontal disturbance
/// velocity added to the commanded velocity each step.
class WindModel {
 public:
  WindModel(double mean_speed, double gust_intensity, std::uint64_t seed)
      : mean_speed_(mean_speed), gust_intensity_(gust_intensity), rng_(seed) {}

  /// Advances the process and returns the current wind velocity.
  Vec3 step(double dt);

  [[nodiscard]] Vec3 current() const noexcept { return wind_; }

 private:
  double mean_speed_;
  double gust_intensity_;
  hdc::util::Rng rng_;
  Vec3 wind_{};
  static constexpr double kRelaxation = 0.5;  // 1/s mean-reversion rate
};

/// Velocity-command kinematics integrator.
class DroneKinematics {
 public:
  explicit DroneKinematics(DroneLimits limits = {}) : limits_(limits) {}

  /// Advances one step toward `commanded_velocity` (acceleration-limited),
  /// optionally perturbed by wind. Altitude is clamped at ground level;
  /// hitting the ground zeroes vertical velocity (skids absorb it).
  void step(double dt, const Vec3& commanded_velocity, const Vec3& wind = {});

  /// P-controller velocity command toward `target`; `speed_scale` in (0, 1]
  /// slows communicative patterns so humans can read them.
  [[nodiscard]] Vec3 velocity_command_to(const Vec3& target,
                                         double speed_scale = 1.0) const;

  /// PI waypoint tracking step: like step(velocity_command_to(...)) but
  /// with integral action so steady wind does not leave a permanent
  /// position offset (a pure P controller stalls short of the waypoint in
  /// wind). The integrator carries across calls; reset_tracking() clears it.
  void step_towards(double dt, const Vec3& target, double speed_scale = 1.0,
                    const Vec3& wind = {});

  /// Clears the PI integrator (e.g. after a teleport).
  void reset_tracking() noexcept { integral_ = {}; }

  /// True when within the waypoint capture radius of `target`.
  [[nodiscard]] bool reached(const Vec3& target) const;

  [[nodiscard]] const DroneState& state() const noexcept { return state_; }
  [[nodiscard]] DroneState& mutable_state() noexcept { return state_; }
  [[nodiscard]] const DroneLimits& limits() const noexcept { return limits_; }

 private:
  DroneLimits limits_;
  DroneState state_{};
  Vec3 integral_{};
  static constexpr double kPositionGain = 1.6;    // 1/s
  static constexpr double kIntegralGain = 0.5;    // 1/s^2
  static constexpr double kIntegralLimit = 6.0;   // m*s, anti-windup clamp
};

}  // namespace hdc::drone
