// The integrated drone: kinematics + patterns + LED ring + vertical array +
// IMU/flight-state estimation + battery + safety monitor, stepped on the
// simulation clock. This is the vehicle object the protocol and orchard
// layers command.
#pragma once

#include <optional>
#include <vector>

#include "drone/battery.hpp"
#include "drone/flight_pattern.hpp"
#include "drone/imu.hpp"
#include "drone/kinematics.hpp"
#include "drone/led_ring.hpp"
#include "drone/safety.hpp"
#include "drone/vertical_array.hpp"
#include "util/geometry.hpp"

namespace hdc::drone {

/// Configuration for a simulated drone.
struct DroneConfig {
  DroneLimits limits{};
  PatternParams pattern_params{};
  Battery::Params battery{};
  SafetyLimits safety{};
  double wind_mean{0.0};
  double wind_gusts{0.0};
  std::uint64_t seed{0x0d0e};
  bool record_trajectory{true};
};

/// Gross behaviour phase, driven by the active pattern.
enum class DronePhase : std::uint8_t {
  kParked = 0,
  kTakingOff,
  kTransit,
  kHover,
  kCommunicating,
  kLanding,
};

[[nodiscard]] constexpr const char* to_string(DronePhase phase) noexcept {
  switch (phase) {
    case DronePhase::kParked: return "Parked";
    case DronePhase::kTakingOff: return "TakingOff";
    case DronePhase::kTransit: return "Transit";
    case DronePhase::kHover: return "Hover";
    case DronePhase::kCommunicating: return "Communicating";
    case DronePhase::kLanding: return "Landing";
  }
  return "?";
}

class Drone {
 public:
  explicit Drone(DroneConfig config = {});

  /// Runs pre-flight checks; clears the startup safety hold.
  void preflight_complete();

  /// Commands a flight pattern. `facing` orients communicative patterns
  /// toward the human; `transit_target` is used by kHorizontalTransit.
  /// Returns false (and ignores the command) while the safety monitor is in
  /// a danger state other than the startup hold, or the battery is empty.
  bool command_pattern(PatternType type, const hdc::util::Vec2& facing = {0.0, 1.0},
                       const Vec3& transit_target = {});

  /// Commands a direct flight to `target` (a one-waypoint ad-hoc pattern,
  /// reported as kHorizontalTransit). Same safety gating as
  /// command_pattern.
  bool command_goto(const Vec3& target, double speed_scale = 1.0);

  /// Advances the whole vehicle one tick. `human_positions` feed the
  /// separation check.
  void step(double dt, const std::vector<hdc::util::Vec2>& human_positions = {});

  // -- Observations ---------------------------------------------------------
  [[nodiscard]] const DroneState& state() const noexcept { return kinematics_.state(); }
  [[nodiscard]] DronePhase phase() const noexcept { return phase_; }
  [[nodiscard]] bool pattern_active() const noexcept { return !executor_.finished(); }
  [[nodiscard]] std::optional<PatternType> active_pattern() const noexcept {
    return executor_.finished() ? std::nullopt
                                : std::make_optional(executor_.pattern().type);
  }
  [[nodiscard]] const LedRing& led_ring() const noexcept { return ring_; }
  [[nodiscard]] const VerticalLedArray& vertical_array() const noexcept {
    return vertical_array_;
  }
  [[nodiscard]] const Battery& battery() const noexcept { return battery_; }
  [[nodiscard]] const SafetyMonitor& safety() const noexcept { return safety_; }
  [[nodiscard]] FlightState flight_state() const noexcept {
    return estimator_.state();
  }
  [[nodiscard]] bool rotors_on() const noexcept { return rotors_on_; }
  [[nodiscard]] const Trajectory& trajectory() const noexcept { return trajectory_; }
  [[nodiscard]] const DroneConfig& config() const noexcept { return config_; }

  /// Clears the recorded trajectory (e.g. between patterns in benches).
  void clear_trajectory() { trajectory_.clear(); }

  /// Injects an external fault (failure-injection tests).
  void inject_fault(bool fault) { safety_.set_external_fault(fault); }

  /// Teleports the vehicle (test/bench setup only).
  void reset_position(const Vec3& position);

 private:
  void update_phase();
  void update_lights();

  DroneConfig config_;
  DroneKinematics kinematics_;
  PatternExecutor executor_;
  LedRing ring_;
  VerticalLedArray vertical_array_;
  Battery battery_;
  SafetyMonitor safety_;
  ImuModel imu_;
  FlightStateEstimator estimator_;
  WindModel wind_;
  DronePhase phase_{DronePhase::kParked};
  Trajectory trajectory_;
  std::optional<Vec3> hover_hold_;  ///< latched hover position when idle
  Vec3 previous_velocity_{};
  double sim_time_{0.0};
  bool rotors_on_{false};
};

}  // namespace hdc::drone
