#include "drone/kinematics.hpp"

#include <algorithm>
#include <cmath>

namespace hdc::drone {

Vec3 WindModel::step(double dt) {
  // OU process per horizontal axis around a fixed mean direction; vertical
  // gusts are second-order for this use case and omitted.
  const double sqrt_dt = std::sqrt(std::max(dt, 0.0));
  const Vec3 mean{mean_speed_, 0.0, 0.0};
  wind_.x += kRelaxation * (mean.x - wind_.x) * dt +
             gust_intensity_ * sqrt_dt * rng_.gaussian();
  wind_.y += kRelaxation * (mean.y - wind_.y) * dt +
             gust_intensity_ * sqrt_dt * rng_.gaussian();
  wind_.z = 0.0;
  return wind_;
}

void DroneKinematics::step(double dt, const Vec3& commanded_velocity, const Vec3& wind) {
  if (dt <= 0.0) return;

  // Clamp the command to the airframe envelope.
  Vec3 target = commanded_velocity;
  const double h_speed = target.xy().norm();
  if (h_speed > limits_.max_horizontal_speed) {
    const double scale = limits_.max_horizontal_speed / h_speed;
    target.x *= scale;
    target.y *= scale;
  }
  target.z = hdc::util::clamp(target.z, -limits_.max_vertical_speed,
                              limits_.max_vertical_speed);

  // Acceleration-limited approach to the commanded velocity.
  const Vec3 delta = target - state_.velocity;
  const double delta_norm = delta.norm();
  const double max_delta = limits_.max_acceleration * dt;
  const Vec3 applied =
      delta_norm <= max_delta ? delta : delta * (max_delta / delta_norm);
  state_.velocity += applied;

  // Integrate position with the wind disturbance superimposed.
  state_.position += (state_.velocity + wind) * dt;

  if (state_.position.z <= 0.0) {
    state_.position.z = 0.0;
    if (state_.velocity.z < 0.0) state_.velocity.z = 0.0;
  }
}

Vec3 DroneKinematics::velocity_command_to(const Vec3& target, double speed_scale) const {
  const Vec3 error = target - state_.position;
  Vec3 command = error * kPositionGain;
  const double cap_h = limits_.max_horizontal_speed * speed_scale;
  const double cap_v = limits_.max_vertical_speed * speed_scale;
  const double h = command.xy().norm();
  if (h > cap_h && h > 0.0) {
    const double scale = cap_h / h;
    command.x *= scale;
    command.y *= scale;
  }
  command.z = hdc::util::clamp(command.z, -cap_v, cap_v);
  return command;
}

void DroneKinematics::step_towards(double dt, const Vec3& target, double speed_scale,
                                   const Vec3& wind) {
  if (dt <= 0.0) return;
  const Vec3 error = target - state_.position;
  // Conditional integration: only integrate close to the target, where the
  // residual is wind-induced. Integrating during a long approach winds the
  // term up and overshoots the waypoint.
  constexpr double kIntegrationZone = 1.5;  // metres
  if (error.norm() < kIntegrationZone) {
    integral_ += error * dt;
    integral_.x = hdc::util::clamp(integral_.x, -kIntegralLimit, kIntegralLimit);
    integral_.y = hdc::util::clamp(integral_.y, -kIntegralLimit, kIntegralLimit);
    integral_.z = hdc::util::clamp(integral_.z, -kIntegralLimit, kIntegralLimit);
  } else {
    integral_ = integral_ * std::max(0.0, 1.0 - dt);  // bleed off stale windup
  }

  Vec3 command = error * kPositionGain + integral_ * kIntegralGain;
  const double cap_h = limits_.max_horizontal_speed * speed_scale;
  const double cap_v = limits_.max_vertical_speed * speed_scale;
  const double h = command.xy().norm();
  if (h > cap_h && h > 0.0) {
    const double scale = cap_h / h;
    command.x *= scale;
    command.y *= scale;
  }
  command.z = hdc::util::clamp(command.z, -cap_v, cap_v);
  step(dt, command, wind);
}

bool DroneKinematics::reached(const Vec3& target) const {
  return state_.position.distance_to(target) <= limits_.position_tolerance;
}

}  // namespace hdc::drone
