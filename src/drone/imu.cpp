#include "drone/imu.hpp"

#include <cmath>

namespace hdc::drone {

ImuSample ImuModel::sample(const Vec3& true_accel, bool rotors_on) {
  ImuSample out;
  const double vib = rotors_on ? kRotorVibration : 0.0;
  // Specific force = acceleration - gravity; accelerometers at rest read +g
  // upward in this sign convention.
  const Vec3 specific = true_accel + Vec3{0.0, 0.0, 9.81};
  out.accel = specific + bias_accel_ +
              Vec3{rng_.gaussian(0.0, kAccelNoise + vib),
                   rng_.gaussian(0.0, kAccelNoise + vib),
                   rng_.gaussian(0.0, kAccelNoise + vib)};
  out.gyro = bias_gyro_ + Vec3{rng_.gaussian(0.0, kGyroNoise + vib * 0.01),
                               rng_.gaussian(0.0, kGyroNoise + vib * 0.01),
                               rng_.gaussian(0.0, kGyroNoise + vib * 0.01)};
  return out;
}

FlightState FlightStateEstimator::update(const ImuSample& sample) {
  magnitudes_.push_back(sample.accel.norm());
  if (magnitudes_.size() > window_) magnitudes_.pop_front();
  if (magnitudes_.size() < window_) return state_;

  double mean = 0.0;
  for (double m : magnitudes_) mean += m;
  mean /= static_cast<double>(magnitudes_.size());
  double var = 0.0;
  for (double m : magnitudes_) var += (m - mean) * (m - mean);
  var /= static_cast<double>(magnitudes_.size());
  energy_ = var;

  const FlightState indicated =
      var > kEnergyThreshold ? FlightState::kInFlight : FlightState::kLanded;
  if (indicated != state_) {
    if (++streak_ >= kSwitchStreak) {
      state_ = indicated;
      streak_ = 0;
    }
  } else {
    streak_ = 0;
  }
  return state_;
}

}  // namespace hdc::drone
