// Vertical LED array on the drone's legs (paper §II).
//
// The paper added a vertical array animating bottom->top for take-off and
// top->bottom for landing, but reports: "user-feedback indicated that they
// are difficult to distinguish, do not serve clarity, indeed serve to
// confuse, and so will be discarded in future versions."
//
// The component is retained here (clearly marked deprecated) because the
// ablation bench that demonstrates *why* it was discarded — the two
// animations are nearly indistinguishable at a glance — needs it. New code
// should use the LedRing take-off/landing palettes instead.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace hdc::drone {

/// [[deprecated-by-user-study]] Animated vertical indicator strip.
class VerticalLedArray {
 public:
  static constexpr std::size_t kLedCount = 6;

  enum class Animation : std::uint8_t { kOff = 0, kTakeoff, kLanding };

  void set_animation(Animation animation) noexcept {
    animation_ = animation;
    clock_ = 0.0;
  }

  void tick(double dt_seconds) noexcept { clock_ += dt_seconds; }

  [[nodiscard]] Animation animation() const noexcept { return animation_; }

  /// LED states bottom (index 0) to top. One LED is lit at a time and the
  /// lit position sweeps at `kSweepHz`.
  [[nodiscard]] std::array<bool, kLedCount> states() const noexcept {
    std::array<bool, kLedCount> lit{};
    if (animation_ == Animation::kOff) return lit;
    const double phase = clock_ * kSweepHz;
    const auto step =
        static_cast<std::size_t>((phase - static_cast<std::size_t>(phase)) * kLedCount);
    const std::size_t index =
        animation_ == Animation::kTakeoff ? step : (kLedCount - 1 - step);
    lit[index] = true;
    return lit;
  }

  /// Rendering such as "[.|.|#|.|.|.]" bottom->top for logs.
  [[nodiscard]] std::string to_line() const {
    std::string line = "[";
    const auto lit = states();
    for (std::size_t i = 0; i < kLedCount; ++i) {
      if (i > 0) line += '|';
      line += lit[i] ? '#' : '.';
    }
    line += ']';
    return line;
  }

 private:
  static constexpr double kSweepHz = 1.5;
  Animation animation_{Animation::kOff};
  double clock_{0.0};
};

}  // namespace hdc::drone
