#include "drone/drone.hpp"

namespace hdc::drone {

Drone::Drone(DroneConfig config)
    : config_(config),
      kinematics_(config.limits),
      battery_(config.battery),
      safety_(config.safety),
      imu_(config.seed ^ 0x1a2bULL),
      wind_(config.wind_mean, config.wind_gusts, config.seed ^ 0x3c4dULL) {}

void Drone::preflight_complete() { safety_.mark_healthy(); }

bool Drone::command_pattern(PatternType type, const hdc::util::Vec2& facing,
                            const Vec3& transit_target) {
  if (battery_.empty()) return false;
  // The startup hold blocks nothing once preflight ran; all other danger
  // causes block new patterns except an immediate landing.
  if (safety_.danger() && safety_.cause() != SafetyCause::kStartupCheck &&
      type != PatternType::kLanding) {
    return false;
  }
  executor_.start(make_pattern(type, kinematics_.state().position, facing,
                               config_.pattern_params, transit_target));
  if (type == PatternType::kTakeOff) rotors_on_ = true;
  update_phase();
  return true;
}

bool Drone::command_goto(const Vec3& target, double speed_scale) {
  if (battery_.empty()) return false;
  if (safety_.danger() && safety_.cause() != SafetyCause::kStartupCheck) return false;
  FlightPattern pattern;
  pattern.type = PatternType::kHorizontalTransit;
  pattern.waypoints.push_back({target, speed_scale});
  executor_.start(std::move(pattern));
  update_phase();
  return true;
}

void Drone::reset_position(const Vec3& position) {
  kinematics_.mutable_state().position = position;
  kinematics_.mutable_state().velocity = {};
  kinematics_.reset_tracking();
  previous_velocity_ = {};
  hover_hold_.reset();
}

void Drone::step(double dt, const std::vector<hdc::util::Vec2>& human_positions) {
  if (dt <= 0.0) return;
  sim_time_ += dt;

  const Vec3 wind = rotors_on_ ? wind_.step(dt) : Vec3{};

  if (!executor_.finished()) {
    executor_.step(kinematics_, dt, wind);
    // Landing completes when the vehicle touches down: the waypoint is
    // captured just above the surface, the skids settle, rotors cut.
    // Figure 2 step 3 ("once the rotors are switched off the navigation
    // lights are extinguished") is handled in update_lights().
    if (executor_.finished() && executor_.pattern().type == PatternType::kLanding &&
        kinematics_.state().position.z <= 1.5 * config_.limits.position_tolerance) {
      kinematics_.mutable_state().position.z = 0.0;
      kinematics_.mutable_state().velocity = {};
      rotors_on_ = false;
    }
  } else if (rotors_on_) {
    // Hold position (hover) when idle in the air; PI tracking rejects
    // steady wind.
    if (!hover_hold_.has_value()) hover_hold_ = kinematics_.state().position;
    kinematics_.step_towards(dt, *hover_hold_, 1.0, wind);
  }
  if (!executor_.finished()) hover_hold_.reset();

  // Sensors and estimators.
  const Vec3 accel = dt > 0.0 ? (kinematics_.state().velocity - previous_velocity_) / dt
                              : Vec3{};
  previous_velocity_ = kinematics_.state().velocity;
  estimator_.update(imu_.sample(accel, rotors_on_));

  // Energy: lit LEDs draw payload power.
  int lit = 0;
  for (const LedColor led : ring_.leds()) {
    if (led != LedColor::kOff) ++lit;
  }
  const double led_power = LedPowerModel{}.watts_per_led * lit;
  battery_.drain(dt, rotors_on_, kinematics_.state().ground_speed(), led_power);

  // Safety evaluation and indicator update.
  safety_.evaluate(kinematics_.state().position,
                   estimator_.state() == FlightState::kInFlight, human_positions,
                   battery_.reserve_reached());
  update_phase();
  update_lights();
  ring_.tick(dt);
  vertical_array_.tick(dt);

  if (config_.record_trajectory) {
    trajectory_.push_back({sim_time_, kinematics_.state().position});
  }
}

void Drone::update_phase() {
  if (!rotors_on_) {
    phase_ = DronePhase::kParked;
    return;
  }
  if (executor_.finished()) {
    phase_ = DronePhase::kHover;
    return;
  }
  switch (executor_.pattern().type) {
    case PatternType::kTakeOff:
      phase_ = DronePhase::kTakingOff;
      break;
    case PatternType::kLanding:
      phase_ = DronePhase::kLanding;
      break;
    case PatternType::kHorizontalTransit:
      phase_ = DronePhase::kTransit;
      break;
    default:
      phase_ = DronePhase::kCommunicating;
      break;
  }
}

void Drone::update_lights() {
  // Safety wins over everything (the all-red rule).
  if (safety_.danger() && safety_.cause() != SafetyCause::kStartupCheck) {
    ring_.set_mode(RingMode::kDanger);
    return;
  }
  if (!rotors_on_) {
    // Rotors off -> lights extinguished (Figure 2, step 3). Before
    // preflight the startup hold shows all-red instead.
    ring_.set_mode(safety_.cause() == SafetyCause::kStartupCheck ? RingMode::kDanger
                                                                 : RingMode::kOff);
    vertical_array_.set_animation(VerticalLedArray::Animation::kOff);
    return;
  }
  switch (phase_) {
    case DronePhase::kTakingOff:
      ring_.set_mode(RingMode::kTakeoff);
      if (vertical_array_.animation() != VerticalLedArray::Animation::kTakeoff) {
        vertical_array_.set_animation(VerticalLedArray::Animation::kTakeoff);
      }
      break;
    case DronePhase::kLanding:
      ring_.set_mode(RingMode::kLanding);
      if (vertical_array_.animation() != VerticalLedArray::Animation::kLanding) {
        vertical_array_.set_animation(VerticalLedArray::Animation::kLanding);
      }
      break;
    default:
      // Navigation sectors track the course over ground while moving;
      // IMU-estimated "actual flight" gates the display (extension of the
      // paper's open IMU question).
      if (estimator_.state() == FlightState::kInFlight &&
          kinematics_.state().ground_speed() > 0.3) {
        ring_.set_course(kinematics_.state().course());
      }
      ring_.set_mode(RingMode::kNavigation);
      if (vertical_array_.animation() != VerticalLedArray::Animation::kOff) {
        vertical_array_.set_animation(VerticalLedArray::Animation::kOff);
      }
      break;
  }
}

}  // namespace hdc::drone
