#include "drone/led_ring.hpp"

#include <cmath>

namespace hdc::drone {

LedColor LedRing::navigation_color(double relative_bearing_rad) noexcept {
  const double bearing = hdc::util::wrap_angle(relative_bearing_rad);
  const double side_limit = hdc::util::deg_to_rad(kSideSectorDeg);
  if (bearing >= 0.0 && bearing <= side_limit) return LedColor::kRed;    // port
  if (bearing < 0.0 && bearing >= -side_limit) return LedColor::kGreen;  // starboard
  return LedColor::kWhite;                                               // aft
}

void LedRing::apply() {
  switch (mode_) {
    case RingMode::kDanger:
      leds_.fill(LedColor::kRed);
      break;
    case RingMode::kAllGreen:
      leds_.fill(LedColor::kGreen);
      break;
    case RingMode::kOff:
      leds_.fill(LedColor::kOff);
      break;
    case RingMode::kNavigation:
      for (std::size_t i = 0; i < kLedCount; ++i) {
        leds_[i] = navigation_color(led_azimuth(i) - course_rad_);
      }
      break;
    case RingMode::kTakeoff: {
      // 1 Hz green pulse travelling around the ring: unambiguous "spinning
      // up" cue (extension replacing the discarded vertical array).
      const auto head = static_cast<std::size_t>(
          std::fmod(animation_clock_, 1.0) * kLedCount);
      for (std::size_t i = 0; i < kLedCount; ++i) {
        leds_[i] = (i == head % kLedCount) ? LedColor::kWhite : LedColor::kGreen;
      }
      break;
    }
    case RingMode::kLanding: {
      const auto head = static_cast<std::size_t>(
          std::fmod(animation_clock_, 1.0) * kLedCount);
      for (std::size_t i = 0; i < kLedCount; ++i) {
        leds_[i] = (i == head % kLedCount) ? LedColor::kWhite : LedColor::kAmber;
      }
      break;
    }
  }
}

std::string LedRing::to_line() const {
  std::string line;
  for (std::size_t i = 0; i < kLedCount; ++i) {
    if (i > 0) line += ' ';
    switch (leds_[i]) {
      case LedColor::kOff: line += '.'; break;
      case LedColor::kRed: line += 'R'; break;
      case LedColor::kGreen: line += 'G'; break;
      case LedColor::kWhite: line += 'W'; break;
      case LedColor::kAmber: line += 'A'; break;
    }
  }
  return line;
}

}  // namespace hdc::drone
