#include "drone/safety.hpp"

#include <cmath>

namespace hdc::drone {

SafetyCause SafetyMonitor::evaluate(const Vec3& drone_position, bool in_flight,
                                    const std::vector<hdc::util::Vec2>& human_positions,
                                    bool battery_reserve) {
  // Priority order: external fault > proximity > geofence > ceiling >
  // battery > startup. The highest-priority active condition is reported.
  if (external_fault_) {
    cause_ = SafetyCause::kExternalFault;
    return cause_;
  }
  if (in_flight) {
    for (const auto& human : human_positions) {
      // Separation is evaluated in 3-D: a drone hovering 3 m above a person
      // is not "too close" in the sense of rotor risk.
      const double dx = drone_position.x - human.x;
      const double dy = drone_position.y - human.y;
      const double dz = drone_position.z - 1.7;  // head height
      const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
      if (dist < limits_.min_human_separation) {
        cause_ = SafetyCause::kHumanTooClose;
        return cause_;
      }
    }
    if (!limits_.geofence.contains(drone_position.xy())) {
      cause_ = SafetyCause::kGeofenceBreach;
      return cause_;
    }
    if (drone_position.z > limits_.altitude_ceiling) {
      cause_ = SafetyCause::kAltitudeCeiling;
      return cause_;
    }
  }
  if (battery_reserve) {
    cause_ = SafetyCause::kBatteryReserve;
    return cause_;
  }
  if (!startup_cleared_) {
    cause_ = SafetyCause::kStartupCheck;
    return cause_;
  }
  cause_ = SafetyCause::kNone;
  return cause_;
}

}  // namespace hdc::drone
