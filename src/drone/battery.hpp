// Battery model: hover draw plus speed-dependent draw, with a reserve
// threshold that feeds the safety monitor. The LED-power experiment (ABL-3)
// also draws its per-LED consumption numbers from here.
#pragma once

#include <algorithm>
#include <cmath>

#include "util/geometry.hpp"

namespace hdc::drone {

/// Battery parameters (top-level so brace-default arguments work in-class).
struct BatteryParams {
  double capacity_wh{70.0};        ///< usable pack energy
  double hover_power_w{180.0};     ///< steady hover draw
  double speed_power_coeff{3.5};   ///< extra W per (m/s)^2
  double avionics_power_w{8.0};    ///< computer + radios, always on
  double reserve_fraction{0.15};   ///< land-now threshold
};

/// Simple energy model for an H520-class hexacopter.
class Battery {
 public:
  using Params = BatteryParams;

  explicit Battery(Params params = {}) : params_(params), energy_wh_(params.capacity_wh) {}

  /// Drains for `dt` seconds: avionics always; hover + speed term when the
  /// rotors run; `payload_w` adds lights/camera draw.
  void drain(double dt, bool rotors_on, double speed_mps, double payload_w = 0.0) {
    double power = params_.avionics_power_w + payload_w;
    if (rotors_on) {
      power += params_.hover_power_w + params_.speed_power_coeff * speed_mps * speed_mps;
    }
    energy_wh_ -= power * dt / 3600.0;
    if (energy_wh_ < 0.0) energy_wh_ = 0.0;
  }

  [[nodiscard]] double state_of_charge() const noexcept {
    return params_.capacity_wh > 0.0 ? energy_wh_ / params_.capacity_wh : 0.0;
  }
  [[nodiscard]] double energy_wh() const noexcept { return energy_wh_; }
  [[nodiscard]] bool reserve_reached() const noexcept {
    return state_of_charge() <= params_.reserve_fraction;
  }
  [[nodiscard]] bool empty() const noexcept { return energy_wh_ <= 0.0; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  double energy_wh_;
};

/// Luminous model for the LED ring's power/visibility trade-off (paper §II:
/// "Power requirements with respect to illumination distance is an issue
/// that needs further consideration"). Approximates a point source over
/// distance with an ambient-dependent detection threshold.
struct LedPowerModel {
  double watts_per_led{0.35};            ///< electrical draw per lit LED
  double luminous_efficacy_lm_w{90.0};   ///< LED efficacy
  double beam_solid_angle_sr{2.5};       ///< wide-angle indicator optics

  /// Illuminance (lux) delivered at `distance_m`.
  [[nodiscard]] double illuminance_at(double distance_m, double drive_w) const {
    if (distance_m <= 0.0) return 0.0;
    const double luminous_intensity =
        drive_w * luminous_efficacy_lm_w / beam_solid_angle_sr;  // candela
    return luminous_intensity / (distance_m * distance_m);
  }

  /// Maximum distance (m) at which the LED stays above the contrast
  /// threshold for the given ambient illuminance (lux). Daylight ~1e4 lux
  /// needs far more drive power than dusk ~10 lux.
  [[nodiscard]] double visibility_range(double drive_w, double ambient_lux) const {
    // Detection when point-source illuminance >= k * ambient (Weber-like).
    constexpr double kContrast = 2e-6;
    const double threshold = std::max(1e-7, kContrast * ambient_lux);
    const double luminous_intensity =
        drive_w * luminous_efficacy_lm_w / beam_solid_angle_sr;
    return std::sqrt(luminous_intensity / threshold);
  }
};

}  // namespace hdc::drone
