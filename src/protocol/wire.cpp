#include "protocol/wire.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace hdc::protocol::wire {

namespace {

// ------------------------------------------------------------ CRC-16 ----

constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint16_t byte = 0; byte < 256; ++byte) {
    std::uint16_t crc = static_cast<std::uint16_t>(byte << 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000U) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021U)
                            : static_cast<std::uint16_t>(crc << 1);
    }
    table[byte] = crc;
  }
  return table;
}

constexpr std::array<std::uint16_t, 256> kCrc16Table = make_crc16_table();

// ----------------------------------------------------- LE field writer ---

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  /// IEEE-754 bit pattern, so the value round-trips bit-identically.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(const std::string& s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }

 private:
  std::vector<std::uint8_t>& out_;
};

// ------------------------------------------ bounds-checked LE reader -----

/// Reads payload fields; every accessor returns false on overrun instead
/// of reading out of bounds. `offset()` is absolute in the parsed buffer,
/// so payload errors can name the offending byte.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> payload, std::size_t base)
      : payload_(payload), base_(base) {}

  [[nodiscard]] std::size_t offset() const { return base_ + pos_; }
  [[nodiscard]] std::size_t remaining() const { return payload_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == payload_.size(); }

  bool u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = payload_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (remaining() < 2) return false;
    v = static_cast<std::uint16_t>(payload_[pos_] |
                                   (payload_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(payload_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(payload_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool i32(std::int32_t& v) {
    std::uint32_t raw;
    if (!u32(raw)) return false;
    v = static_cast<std::int32_t>(raw);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t raw;
    if (!u64(raw)) return false;
    v = std::bit_cast<double>(raw);
    return true;
  }
  bool bytes(std::string& s, std::size_t n) {
    if (remaining() < n) return false;
    s.assign(reinterpret_cast<const char*>(payload_.data() + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  std::span<const std::uint8_t> payload_;
  std::size_t base_;
  std::size_t pos_{0};
};

// ------------------------------------------------ enum range validation --

// Highest valid wire byte for each enum carried as u8. These pin the v1
// value sets: growing any enum is a wire-version bump (see
// docs/WIRE_FORMAT.md).
constexpr std::uint8_t kMaxSign = 3;          // signs::HumanSign::kNo
constexpr std::uint8_t kMaxSignEventKind = 1; // interaction::SignEventKind::kEnd
constexpr std::uint8_t kMaxDialogueState = 5; // interaction::DialogueState::kAborting
constexpr std::uint8_t kMaxRingMode = 5;      // drone::RingMode count - 1
constexpr std::uint8_t kMaxPatternType = 6;   // drone::PatternType count - 1
constexpr std::uint8_t kMaxCommandKind = 4;   // interaction::DroneCommandKind count - 1
constexpr std::uint8_t kMaxOutcome = 5;       // protocol::Outcome::kAborted
constexpr std::uint8_t kMaxFleetEventKind = 5;// CoordinationService EventKind::kTick
constexpr std::uint8_t kMaxGrantState = 4;    // coordination::GrantState::kExpired
constexpr std::uint8_t kMaxAbortReason = 1;   // coordination::AbortReason::kDeferredRetry
constexpr std::uint8_t kMaxBool = 1;

struct PayloadError {
  std::size_t offset{0};
  const char* message{""};
};

bool fail(PayloadError& error, std::size_t offset, const char* message) {
  error.offset = offset;
  error.message = message;
  return false;
}

bool read_enum(Reader& reader, std::uint8_t& v, std::uint8_t max,
               const char* what, PayloadError& error) {
  const std::size_t at = reader.offset();
  if (!reader.u8(v)) return fail(error, at, "payload truncated");
  if (v > max) return fail(error, at, what);
  return true;
}

// ------------------------------------------------- per-type encoding -----

void encode_payload(Writer& w, const RunConfigRecord& r) {
  w.u32(r.fusion_window);
  w.u32(r.fusion_majority);
  w.f64(r.onset_confidence);
  w.f64(r.release_confidence);
  w.u32(r.min_hold);
  w.u32(r.release_misses);
  w.f64(r.reference_distance);
  w.u64(r.attending_timeout);
  w.u64(r.sequence_gap);
  w.u64(r.confirm_timeout);
  w.u64(r.execute_ticks);
  w.u64(r.abort_ticks);
  w.u32(r.observation_queue);
  w.u32(r.cells);
  w.u64(r.grant_ttl);
  w.u32(r.fleet_queue);
  w.u64(r.retry_backoff);
  w.u64(r.retry_backoff_max);
  w.u32(r.fairness_boost_per_loss);
  w.u32(r.fairness_boost_cap);
}

void encode_payload(Writer& w, const ObservationRecord& r) {
  w.u32(r.stream_id);
  w.u64(r.sequence);
  w.u8(r.sign);
  w.u8(r.abort);
  w.f64(r.confidence);
}

void encode_payload(Writer& w, const SignEventRecord& r) {
  w.u32(r.stream_id);
  w.u8(r.kind);
  w.u8(r.label);
  w.u64(r.onset_seq);
  w.u64(r.end_seq);
  w.f64(r.confidence);
}

void encode_payload(Writer& w, const TransitionRecord& r) {
  w.u32(r.stream_id);
  w.u8(r.from);
  w.u8(r.to);
  w.u8(r.set_ring);
  w.u8(r.ring);
  w.u8(r.fly_pattern);
  w.u8(r.pattern);
  w.u8(r.command);
  w.u64(r.tick);
  w.u16(static_cast<std::uint16_t>(r.event.size()));
  w.bytes(r.event);
}

void encode_payload(Writer& w, const OutcomeRecordWire& r) {
  w.u8(r.outcome);
  w.u32(r.stream_id);
  w.u64(r.final_sequence);
}

void encode_payload(Writer& w, const FleetEventRecord& r) {
  w.u8(r.kind);
  w.u32(r.drone_id);
  w.u64(r.sequence);
  w.u8(r.to);
  w.u8(r.outcome);
  w.u8(r.label);
  w.u8(r.event_kind);
  w.u32(r.descriptor_drone_id);
  w.i32(r.descriptor_cell);
  w.i32(r.descriptor_human_id);
  w.f64(r.descriptor_battery_soc);
  w.f64(r.battery_soc);
}

void encode_payload(Writer& w, const GrantUpdateRecord& r) {
  w.i32(r.cell);
  w.u8(r.state);
  w.u32(r.holder);
  w.u64(r.granted_seq);
  w.u64(r.expires_seq);
  w.u32(r.renewals);
  w.u8(r.conflict);
}

void encode_payload(Writer& w, const ArbitrationRecord& r) {
  w.u32(r.loser);
  w.u32(r.winner);
  w.i32(r.human_id);
  w.u64(r.sequence);
  w.u64(r.retry_at);
  w.u8(r.reason);
}

void encode_payload(Writer& w, const PlanHintRecord& r) {
  w.u32(r.drone_id);
  w.u16(static_cast<std::uint16_t>(r.granted_cells.size()));
  for (std::int32_t cell : r.granted_cells) w.i32(cell);
  w.u16(static_cast<std::uint16_t>(r.blocked_cells.size()));
  for (std::int32_t cell : r.blocked_cells) w.i32(cell);
}

void encode_payload(Writer& w, const TranscriptDigestRecord& r) {
  w.u32(r.stream_id);
  w.u32(r.entries);
  w.u64(r.digest);
}

void encode_payload(Writer& w, const GrantSlotRecord& r) {
  w.i32(r.cell);
  w.u8(r.state);
  w.u32(r.holder);
  w.u64(r.granted_seq);
  w.u64(r.expires_seq);
  w.u32(r.renewals);
}

void encode_payload(Writer& w, const JournalEndRecord& r) {
  w.u64(r.record_count);
}

void encode_payload(Writer& w, const MetricSnapshotRecord& r) {
  w.u32(static_cast<std::uint32_t>(r.entries.size()));
  for (const MetricSnapshotEntry& entry : r.entries) {
    w.u16(static_cast<std::uint16_t>(entry.name.size()));
    w.bytes(entry.name);
    w.u64(entry.value);
  }
}

// ------------------------------------------------- per-type decoding -----
// Each decoder must consume the payload EXACTLY (trailing garbage after a
// valid prefix is kBadPayload — canonical encoding has no slack bytes).

bool decode_payload(Reader& reader, RunConfigRecord& r, PayloadError& error) {
  const std::size_t at = reader.offset();
  const bool ok =
      reader.u32(r.fusion_window) && reader.u32(r.fusion_majority) &&
      reader.f64(r.onset_confidence) && reader.f64(r.release_confidence) &&
      reader.u32(r.min_hold) && reader.u32(r.release_misses) &&
      reader.f64(r.reference_distance) && reader.u64(r.attending_timeout) &&
      reader.u64(r.sequence_gap) && reader.u64(r.confirm_timeout) &&
      reader.u64(r.execute_ticks) && reader.u64(r.abort_ticks) &&
      reader.u32(r.observation_queue) && reader.u32(r.cells) &&
      reader.u64(r.grant_ttl) && reader.u32(r.fleet_queue) &&
      reader.u64(r.retry_backoff) && reader.u64(r.retry_backoff_max) &&
      reader.u32(r.fairness_boost_per_loss) &&
      reader.u32(r.fairness_boost_cap);
  if (!ok) return fail(error, at, "RunConfig payload truncated");
  return true;
}

bool decode_payload(Reader& reader, ObservationRecord& r, PayloadError& error) {
  std::size_t at = reader.offset();
  if (!reader.u32(r.stream_id) || !reader.u64(r.sequence)) {
    return fail(error, at, "Observation payload truncated");
  }
  if (!read_enum(reader, r.sign, kMaxSign, "bad HumanSign value", error)) {
    return false;
  }
  if (!read_enum(reader, r.abort, kMaxBool, "bad abort flag", error)) {
    return false;
  }
  at = reader.offset();
  if (!reader.f64(r.confidence)) {
    return fail(error, at, "Observation payload truncated");
  }
  return true;
}

bool decode_payload(Reader& reader, SignEventRecord& r, PayloadError& error) {
  std::size_t at = reader.offset();
  if (!reader.u32(r.stream_id)) {
    return fail(error, at, "SignEvent payload truncated");
  }
  if (!read_enum(reader, r.kind, kMaxSignEventKind, "bad SignEventKind value",
                 error) ||
      !read_enum(reader, r.label, kMaxSign, "bad HumanSign value", error)) {
    return false;
  }
  at = reader.offset();
  if (!reader.u64(r.onset_seq) || !reader.u64(r.end_seq) ||
      !reader.f64(r.confidence)) {
    return fail(error, at, "SignEvent payload truncated");
  }
  return true;
}

bool decode_payload(Reader& reader, TransitionRecord& r, PayloadError& error) {
  std::size_t at = reader.offset();
  if (!reader.u32(r.stream_id)) {
    return fail(error, at, "Transition payload truncated");
  }
  if (!read_enum(reader, r.from, kMaxDialogueState, "bad DialogueState value",
                 error) ||
      !read_enum(reader, r.to, kMaxDialogueState, "bad DialogueState value",
                 error) ||
      !read_enum(reader, r.set_ring, kMaxBool, "bad set_ring flag", error) ||
      !read_enum(reader, r.ring, kMaxRingMode, "bad RingMode value", error) ||
      !read_enum(reader, r.fly_pattern, kMaxBool, "bad fly_pattern flag",
                 error) ||
      !read_enum(reader, r.pattern, kMaxPatternType, "bad PatternType value",
                 error) ||
      !read_enum(reader, r.command, kMaxCommandKind,
                 "bad DroneCommandKind value", error)) {
    return false;
  }
  at = reader.offset();
  std::uint16_t event_len = 0;
  if (!reader.u64(r.tick) || !reader.u16(event_len)) {
    return fail(error, at, "Transition payload truncated");
  }
  at = reader.offset();
  if (!reader.bytes(r.event, event_len)) {
    return fail(error, at, "Transition event literal overruns payload");
  }
  return true;
}

bool decode_payload(Reader& reader, OutcomeRecordWire& r, PayloadError& error) {
  if (!read_enum(reader, r.outcome, kMaxOutcome, "bad Outcome value", error)) {
    return false;
  }
  const std::size_t at = reader.offset();
  if (!reader.u32(r.stream_id) || !reader.u64(r.final_sequence)) {
    return fail(error, at, "Outcome payload truncated");
  }
  return true;
}

bool decode_payload(Reader& reader, FleetEventRecord& r, PayloadError& error) {
  if (!read_enum(reader, r.kind, kMaxFleetEventKind, "bad FleetEvent kind",
                 error)) {
    return false;
  }
  std::size_t at = reader.offset();
  if (!reader.u32(r.drone_id) || !reader.u64(r.sequence)) {
    return fail(error, at, "FleetEvent payload truncated");
  }
  if (!read_enum(reader, r.to, kMaxDialogueState, "bad DialogueState value",
                 error) ||
      !read_enum(reader, r.outcome, kMaxOutcome, "bad Outcome value", error) ||
      !read_enum(reader, r.label, kMaxSign, "bad HumanSign value", error) ||
      !read_enum(reader, r.event_kind, kMaxSignEventKind,
                 "bad SignEventKind value", error)) {
    return false;
  }
  at = reader.offset();
  if (!reader.u32(r.descriptor_drone_id) || !reader.i32(r.descriptor_cell) ||
      !reader.i32(r.descriptor_human_id) ||
      !reader.f64(r.descriptor_battery_soc) || !reader.f64(r.battery_soc)) {
    return fail(error, at, "FleetEvent payload truncated");
  }
  return true;
}

bool decode_payload(Reader& reader, GrantUpdateRecord& r, PayloadError& error) {
  std::size_t at = reader.offset();
  if (!reader.i32(r.cell)) {
    return fail(error, at, "GrantUpdate payload truncated");
  }
  if (!read_enum(reader, r.state, kMaxGrantState, "bad GrantState value",
                 error)) {
    return false;
  }
  at = reader.offset();
  if (!reader.u32(r.holder) || !reader.u64(r.granted_seq) ||
      !reader.u64(r.expires_seq) || !reader.u32(r.renewals)) {
    return fail(error, at, "GrantUpdate payload truncated");
  }
  if (!read_enum(reader, r.conflict, kMaxBool, "bad conflict flag", error)) {
    return false;
  }
  return true;
}

bool decode_payload(Reader& reader, ArbitrationRecord& r, PayloadError& error) {
  const std::size_t at = reader.offset();
  if (!reader.u32(r.loser) || !reader.u32(r.winner) ||
      !reader.i32(r.human_id) || !reader.u64(r.sequence) ||
      !reader.u64(r.retry_at)) {
    return fail(error, at, "Arbitration payload truncated");
  }
  return read_enum(reader, r.reason, kMaxAbortReason, "bad AbortReason value",
                   error);
}

bool decode_payload(Reader& reader, PlanHintRecord& r, PayloadError& error) {
  std::size_t at = reader.offset();
  std::uint16_t count = 0;
  if (!reader.u32(r.drone_id) || !reader.u16(count)) {
    return fail(error, at, "PlanHint payload truncated");
  }
  r.granted_cells.clear();
  r.granted_cells.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    std::int32_t cell;
    at = reader.offset();
    if (!reader.i32(cell)) {
      return fail(error, at, "PlanHint granted list overruns payload");
    }
    r.granted_cells.push_back(cell);
  }
  at = reader.offset();
  if (!reader.u16(count)) {
    return fail(error, at, "PlanHint payload truncated");
  }
  r.blocked_cells.clear();
  r.blocked_cells.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    std::int32_t cell;
    at = reader.offset();
    if (!reader.i32(cell)) {
      return fail(error, at, "PlanHint blocked list overruns payload");
    }
    r.blocked_cells.push_back(cell);
  }
  return true;
}

bool decode_payload(Reader& reader, TranscriptDigestRecord& r,
                    PayloadError& error) {
  const std::size_t at = reader.offset();
  if (!reader.u32(r.stream_id) || !reader.u32(r.entries) ||
      !reader.u64(r.digest)) {
    return fail(error, at, "TranscriptDigest payload truncated");
  }
  return true;
}

bool decode_payload(Reader& reader, GrantSlotRecord& r, PayloadError& error) {
  std::size_t at = reader.offset();
  if (!reader.i32(r.cell)) {
    return fail(error, at, "GrantSlot payload truncated");
  }
  if (!read_enum(reader, r.state, kMaxGrantState, "bad GrantState value",
                 error)) {
    return false;
  }
  at = reader.offset();
  if (!reader.u32(r.holder) || !reader.u64(r.granted_seq) ||
      !reader.u64(r.expires_seq) || !reader.u32(r.renewals)) {
    return fail(error, at, "GrantSlot payload truncated");
  }
  return true;
}

bool decode_payload(Reader& reader, JournalEndRecord& r, PayloadError& error) {
  const std::size_t at = reader.offset();
  if (!reader.u64(r.record_count)) {
    return fail(error, at, "JournalEnd payload truncated");
  }
  return true;
}

bool decode_payload(Reader& reader, MetricSnapshotRecord& r,
                    PayloadError& error) {
  std::size_t at = reader.offset();
  std::uint32_t count = 0;
  if (!reader.u32(count)) {
    return fail(error, at, "MetricSnapshot payload truncated");
  }
  r.entries.clear();
  // No reserve(count): a corrupt count up to 2^32-1 must fail on the first
  // truncated entry, not pre-allocate gigabytes.
  for (std::uint32_t i = 0; i < count; ++i) {
    MetricSnapshotEntry entry;
    at = reader.offset();
    std::uint16_t name_len = 0;
    if (!reader.u16(name_len)) {
      return fail(error, at, "MetricSnapshot payload truncated");
    }
    at = reader.offset();
    if (!reader.bytes(entry.name, name_len)) {
      return fail(error, at, "MetricSnapshot name overruns payload");
    }
    at = reader.offset();
    if (!reader.u64(entry.value)) {
      return fail(error, at, "MetricSnapshot payload truncated");
    }
    r.entries.push_back(std::move(entry));
  }
  return true;
}

template <typename Record>
bool decode_into(std::span<const std::uint8_t> payload, std::size_t base,
                 AnyRecord& out, PayloadError& error) {
  Reader reader(payload, base);
  Record record;
  if (!decode_payload(reader, record, error)) return false;
  if (!reader.done()) {
    return fail(error, reader.offset(), "trailing bytes after payload");
  }
  out = std::move(record);
  return true;
}

}  // namespace

std::uint16_t crc16(const std::uint8_t* data, std::size_t size) noexcept {
  std::uint16_t crc = 0xFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kCrc16Table[(crc >> 8) ^ data[i]]);
  }
  return crc;
}

RecordType record_type(const AnyRecord& record) noexcept {
  return std::visit(
      [](const auto& r) -> RecordType {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, RunConfigRecord>) {
          return RecordType::kRunConfig;
        } else if constexpr (std::is_same_v<T, ObservationRecord>) {
          return RecordType::kObservation;
        } else if constexpr (std::is_same_v<T, SignEventRecord>) {
          return RecordType::kSignEvent;
        } else if constexpr (std::is_same_v<T, TransitionRecord>) {
          return RecordType::kTransition;
        } else if constexpr (std::is_same_v<T, OutcomeRecordWire>) {
          return RecordType::kOutcome;
        } else if constexpr (std::is_same_v<T, FleetEventRecord>) {
          return RecordType::kFleetEvent;
        } else if constexpr (std::is_same_v<T, GrantUpdateRecord>) {
          return RecordType::kGrantUpdate;
        } else if constexpr (std::is_same_v<T, ArbitrationRecord>) {
          return RecordType::kArbitration;
        } else if constexpr (std::is_same_v<T, PlanHintRecord>) {
          return RecordType::kPlanHint;
        } else if constexpr (std::is_same_v<T, TranscriptDigestRecord>) {
          return RecordType::kTranscriptDigest;
        } else if constexpr (std::is_same_v<T, GrantSlotRecord>) {
          return RecordType::kGrantSlot;
        } else if constexpr (std::is_same_v<T, JournalEndRecord>) {
          return RecordType::kJournalEnd;
        } else {
          static_assert(std::is_same_v<T, MetricSnapshotRecord>);
          return RecordType::kMetricSnapshot;
        }
      },
      record);
}

void encode(std::vector<std::uint8_t>& out, const AnyRecord& record) {
  const std::size_t envelope_start = out.size();
  Writer writer(out);
  writer.u8(kWireMagic);
  writer.u8(kWireVersion);
  writer.u8(static_cast<std::uint8_t>(record_type(record)));
  writer.u16(0);  // payload size backpatched below
  const std::size_t payload_start = out.size();
  std::visit([&writer](const auto& r) { encode_payload(writer, r); }, record);
  const std::size_t payload_size = out.size() - payload_start;
  out[envelope_start + 3] = static_cast<std::uint8_t>(payload_size);
  out[envelope_start + 4] = static_cast<std::uint8_t>(payload_size >> 8);
  writer.u16(crc16(out.data() + envelope_start,
                   kEnvelopeHeaderSize + payload_size));
}

std::vector<std::uint8_t> encode_one(const AnyRecord& record) {
  std::vector<std::uint8_t> out;
  encode(out, record);
  return out;
}

ParseResult parse_record(std::span<const std::uint8_t> buffer,
                         std::size_t& offset, AnyRecord& out,
                         WireError& error) {
  const std::size_t start = offset;
  if (start == buffer.size()) return ParseResult::kEnd;
  error = {};

  const std::size_t available = buffer.size() - start;
  if (available < kEnvelopeHeaderSize) {
    error = {WireErrorCode::kTruncated, start,
             "buffer ends inside an envelope header"};
    return ParseResult::kError;
  }
  if (buffer[start] != kWireMagic) {
    error = {WireErrorCode::kBadMagic, start,
             "envelope does not start with the wire magic byte"};
    return ParseResult::kError;
  }
  const std::uint8_t version = buffer[start + 1];
  if (version != kWireVersion) {
    // A reader must REJECT records from any other version — future or
    // superseded — rather than guess at their layout.
    error = {WireErrorCode::kBadVersion, start + 1,
             version > kWireVersion
                 ? "record from a future wire version"
                 : "record from an unsupported old wire version"};
    return ParseResult::kError;
  }
  const std::uint8_t type_byte = buffer[start + 2];
  if (type_byte < static_cast<std::uint8_t>(RecordType::kRunConfig) ||
      type_byte > static_cast<std::uint8_t>(RecordType::kMetricSnapshot)) {
    error = {WireErrorCode::kBadRecordType, start + 2,
             "unknown record type for wire version 2"};
    return ParseResult::kError;
  }
  const std::size_t payload_size = static_cast<std::size_t>(
      buffer[start + 3] | (buffer[start + 4] << 8));
  if (payload_size > kMaxPayloadSize) {
    error = {WireErrorCode::kBadLength, start + 3,
             "declared payload size exceeds the per-record cap"};
    return ParseResult::kError;
  }
  const std::size_t body_size =
      kEnvelopeHeaderSize + payload_size + kEnvelopeTrailerSize;
  if (available < body_size) {
    error = {WireErrorCode::kBadLength, start + 3,
             "declared payload size overruns the buffer"};
    return ParseResult::kError;
  }

  const std::size_t crc_at = start + kEnvelopeHeaderSize + payload_size;
  const std::uint16_t stored = static_cast<std::uint16_t>(
      buffer[crc_at] | (buffer[crc_at + 1] << 8));
  const std::uint16_t computed =
      crc16(buffer.data() + start, kEnvelopeHeaderSize + payload_size);
  if (stored != computed) {
    error = {WireErrorCode::kBadCrc, crc_at,
             "envelope checksum mismatch (corrupt record)"};
    return ParseResult::kError;
  }

  const std::span<const std::uint8_t> payload =
      buffer.subspan(start + kEnvelopeHeaderSize, payload_size);
  const std::size_t payload_base = start + kEnvelopeHeaderSize;
  PayloadError payload_error;
  bool ok = false;
  switch (static_cast<RecordType>(type_byte)) {
    case RecordType::kRunConfig:
      ok = decode_into<RunConfigRecord>(payload, payload_base, out,
                                        payload_error);
      break;
    case RecordType::kObservation:
      ok = decode_into<ObservationRecord>(payload, payload_base, out,
                                          payload_error);
      break;
    case RecordType::kSignEvent:
      ok = decode_into<SignEventRecord>(payload, payload_base, out,
                                        payload_error);
      break;
    case RecordType::kTransition:
      ok = decode_into<TransitionRecord>(payload, payload_base, out,
                                         payload_error);
      break;
    case RecordType::kOutcome:
      ok = decode_into<OutcomeRecordWire>(payload, payload_base, out,
                                          payload_error);
      break;
    case RecordType::kFleetEvent:
      ok = decode_into<FleetEventRecord>(payload, payload_base, out,
                                         payload_error);
      break;
    case RecordType::kGrantUpdate:
      ok = decode_into<GrantUpdateRecord>(payload, payload_base, out,
                                          payload_error);
      break;
    case RecordType::kArbitration:
      ok = decode_into<ArbitrationRecord>(payload, payload_base, out,
                                          payload_error);
      break;
    case RecordType::kPlanHint:
      ok = decode_into<PlanHintRecord>(payload, payload_base, out,
                                       payload_error);
      break;
    case RecordType::kTranscriptDigest:
      ok = decode_into<TranscriptDigestRecord>(payload, payload_base, out,
                                               payload_error);
      break;
    case RecordType::kGrantSlot:
      ok = decode_into<GrantSlotRecord>(payload, payload_base, out,
                                        payload_error);
      break;
    case RecordType::kJournalEnd:
      ok = decode_into<JournalEndRecord>(payload, payload_base, out,
                                         payload_error);
      break;
    case RecordType::kMetricSnapshot:
      ok = decode_into<MetricSnapshotRecord>(payload, payload_base, out,
                                             payload_error);
      break;
  }
  if (!ok) {
    error = {WireErrorCode::kBadPayload, payload_error.offset,
             payload_error.message};
    return ParseResult::kError;
  }

  offset = start + body_size;
  return ParseResult::kOk;
}

bool parse_all(std::span<const std::uint8_t> buffer,
               std::vector<AnyRecord>& out, WireError& error) {
  std::size_t offset = 0;
  AnyRecord record;
  for (;;) {
    switch (parse_record(buffer, offset, record, error)) {
      case ParseResult::kOk:
        out.push_back(std::move(record));
        break;
      case ParseResult::kEnd:
        return true;
      case ParseResult::kError:
        return false;
    }
  }
}

}  // namespace hdc::protocol::wire
