// ReplayDriver — re-runs a recorded fleet journal through FRESH services
// and asserts the run reproduces bit-identically.
//
// Replay decouples the two layers the live run coupled through threads:
//   1. A fresh InteractionService (built from the journal's RunConfig +
//      the caller's grammar) is fed the recorded ObservationRecords from
//      ONE thread, in recorded order — single producer in, FIFO ring out,
//      so the dialogue worker processes them in the recorded order and
//      every fused event / transition / outcome / transcript entry falls
//      out bit-identically. Recorded aborts are re-issued as aborts: the
//      arbitration EFFECTS replay from the observation stream, without
//      needing the coordination layer's timing.
//   2. A fresh CoordinationService is fed the recorded FleetEventRecords
//      in recorded (single-worker processing) order — reproducing every
//      arbitration decision, grant mutation, and plan hint.
// Both stages journal themselves through the same recorder hooks as the
// live run; the stages run strictly one after the other, so the REPLAY
// journal has a deterministic byte layout (two replays of the same
// journal are byte-identical — the CI determinism gate diffs exactly
// that). Against the RECORDED journal, comparison is per record type,
// because the live run's two workers interleave types nondeterministically
// while each type has a single writer.
//
// Any malformed journal — truncated, bit-flipped, future-versioned,
// missing its JournalEnd trailer — is rejected with the precise offset
// and reason; replay never runs on bytes that don't verify.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "interaction/command_grammar.hpp"
#include "protocol/wire.hpp"

namespace hdc::telemetry {
class FlightRecorder;
}  // namespace hdc::telemetry

namespace hdc::protocol {

struct ReplayOptions {
  /// The command grammar the recorded services ran with (grammars are
  /// code-defined, not serialised; scenarios use the standard one).
  interaction::CommandGrammar grammar{interaction::CommandGrammar::standard()};
  /// Optional causal tracing of the replayed run (must outlive replay()).
  /// Trace ids are pure functions of the (stream_id, sequence) identities
  /// the journal records, so the replayed traces mint the SAME ids as the
  /// live run's — and tracing never perturbs the replayed journal bytes
  /// (tests/protocol_replay_test.cpp pins both).
  telemetry::FlightRecorder* recorder{nullptr};
};

struct ReplayReport {
  bool ok{false};      ///< parsed, replayed, and every record type matched
  bool parsed{false};  ///< journal bytes verified + structurally sound
  /// Why parsing failed (offset-bearing; meaningful when !parsed).
  wire::WireError error{};
  /// First divergence, human-readable ("" when ok). Also carries
  /// structural rejections (e.g. a missing JournalEnd trailer).
  std::string mismatch;
  std::uint64_t observations_fed{0};
  std::uint64_t fleet_events_fed{0};
  /// The replay's own journal — byte-diff two of these for the
  /// determinism gate.
  std::vector<std::uint8_t> journal_bytes;
};

class ReplayDriver {
 public:
  explicit ReplayDriver(ReplayOptions options = {});

  /// Replays `journal` through fresh services and compares every recorded
  /// record type against the replay's. Never throws on malformed input.
  [[nodiscard]] ReplayReport replay(
      std::span<const std::uint8_t> journal) const;

 private:
  ReplayOptions options_;
};

}  // namespace hdc::protocol
