// Human-side behavioural model for the three user-story roles (paper §II):
// orchard supervisor (well trained), orchard worker (partially trained),
// orchard visitor (untrained). Each role differs in how reliably it notices
// the drone's poke, how quickly and correctly it answers, and how cleanly
// it executes the marshalling signs.
#pragma once

#include <cstdint>
#include <optional>

#include "drone/flight_pattern.hpp"
#include "protocol/messages.hpp"
#include "signs/sign.hpp"
#include "signs/sign_poses.hpp"
#include "util/rng.hpp"

namespace hdc::protocol {

enum class HumanRole : std::uint8_t { kSupervisor = 0, kWorker, kVisitor };

[[nodiscard]] constexpr const char* to_string(HumanRole role) noexcept {
  switch (role) {
    case HumanRole::kSupervisor: return "Supervisor";
    case HumanRole::kWorker: return "Worker";
    case HumanRole::kVisitor: return "Visitor";
  }
  return "?";
}

/// Behaviour parameters; defaults per role from role_params().
struct HumanParams {
  double notice_probability{0.9};   ///< chance one poke gains attention
  double reaction_mean_s{1.5};      ///< delay before showing a sign
  double reaction_stddev_s{0.5};
  double grant_probability{0.8};    ///< answers Yes with this probability
  double wrong_sign_probability{0.02};  ///< shows the opposite answer by mistake
  double ignore_probability{0.0};   ///< never engages at all (visitors)
  double sign_hold_s{3.0};          ///< how long a sign is held
  signs::PoseJitter pose_jitter{};  ///< execution sloppiness
};

[[nodiscard]] HumanParams role_params(HumanRole role);

/// Steppable human agent: consumes the drone pattern it currently perceives
/// and exposes the sign it is displaying (kNeutral when idle/working).
class HumanResponder {
 public:
  HumanResponder(HumanRole role, std::uint64_t seed)
      : HumanResponder(role, role_params(role), seed) {}
  HumanResponder(HumanRole role, HumanParams params, std::uint64_t seed);

  /// Advances by dt. `perceived_pattern` is the drone pattern the human
  /// currently reads (already run through the pattern channel).
  /// Returns the sign displayed during this tick.
  signs::HumanSign step(double dt, std::optional<drone::PatternType> perceived_pattern);

  /// The answer this human will give when asked (fixed per session so
  /// retries are consistent, as a real person would be).
  [[nodiscard]] bool will_grant() const noexcept { return will_grant_; }

  /// True once the human has noticed the drone (post-poke).
  [[nodiscard]] bool attentive() const noexcept { return attentive_; }

  [[nodiscard]] signs::HumanSign displayed_sign() const noexcept { return displayed_; }
  [[nodiscard]] HumanRole role() const noexcept { return role_; }
  [[nodiscard]] const HumanParams& params() const noexcept { return params_; }
  [[nodiscard]] const Transcript& transcript() const noexcept { return transcript_; }

  /// Resets for a new encounter (new session decision, attention lost).
  void reset();

  /// Samples the displayed sign's executed body pose (with role jitter).
  [[nodiscard]] signs::BodyPose sample_displayed_pose();

 private:
  void log(const std::string& event);

  HumanRole role_;
  HumanParams params_;
  hdc::util::Rng rng_;
  Transcript transcript_;
  double clock_{0.0};
  bool engaged_{true};       ///< false = ignores the drone entirely
  bool attentive_{false};
  bool will_grant_{false};
  bool answer_wrong_{false};
  double reaction_left_{0.0};
  double hold_left_{0.0};
  signs::HumanSign displayed_{signs::HumanSign::kNeutral};
  signs::HumanSign pending_{signs::HumanSign::kNeutral};
};

}  // namespace hdc::protocol
