#include "protocol/journal.hpp"

#include <algorithm>
#include <bit>
#include <fstream>

#include "telemetry/span.hpp"
#include "telemetry/stage_names.hpp"

namespace hdc::protocol {

void EventJournal::append(const wire::AnyRecord& record) {
  TELEMETRY_SPAN(append_ns_);
  std::lock_guard<std::mutex> lock(mutex_);
  wire::encode(buffer_, record);
  ++records_;
  records_counter_.add(1);
}

void EventJournal::instrument(telemetry::MetricsRegistry& metrics) {
  append_ns_ = metrics.histogram(telemetry::kJournalAppend);
  records_counter_ = metrics.counter(telemetry::kJournalRecords);
}

std::vector<std::uint8_t> EventJournal::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffer_;
}

std::uint64_t EventJournal::record_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void EventJournal::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffer_.clear();
  records_ = 0;
}

bool EventJournal::save(const std::string& path) const {
  const std::vector<std::uint8_t> snapshot = bytes();
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file.write(reinterpret_cast<const char*>(snapshot.data()),
             static_cast<std::streamsize>(snapshot.size()));
  return static_cast<bool>(file);
}

bool EventJournal::load(const std::string& path,
                        std::vector<std::uint8_t>& out) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return false;
  const std::streamsize size = file.tellg();
  if (size < 0) return false;
  out.resize(static_cast<std::size_t>(size));
  file.seekg(0);
  file.read(reinterpret_cast<char*>(out.data()), size);
  return static_cast<bool>(file);
}

// -------------------------------------------- live <-> wire conversions --

wire::ObservationRecord to_wire(
    const interaction::InteractionService::ObservationSample& sample) {
  wire::ObservationRecord record;
  record.stream_id = sample.stream_id;
  record.sequence = sample.sequence;
  record.sign = static_cast<std::uint8_t>(sample.sign);
  record.abort = sample.abort ? 1 : 0;
  record.confidence = sample.confidence;
  return record;
}

wire::SignEventRecord to_wire(const interaction::SignEvent& event) {
  wire::SignEventRecord record;
  record.stream_id = event.stream_id;
  record.kind = static_cast<std::uint8_t>(event.kind);
  record.label = static_cast<std::uint8_t>(event.label);
  record.onset_seq = event.onset_seq;
  record.end_seq = event.end_seq;
  record.confidence = event.confidence;
  return record;
}

wire::TransitionRecord to_wire(const interaction::AckAction& action) {
  wire::TransitionRecord record;
  record.stream_id = action.stream_id;
  record.from = static_cast<std::uint8_t>(action.from);
  record.to = static_cast<std::uint8_t>(action.to);
  record.set_ring = action.set_ring ? 1 : 0;
  record.ring = static_cast<std::uint8_t>(action.ring);
  record.fly_pattern = action.fly_pattern ? 1 : 0;
  record.pattern = static_cast<std::uint8_t>(action.pattern);
  record.command = static_cast<std::uint8_t>(action.command);
  record.tick = action.tick;
  record.event = action.event;
  return record;
}

wire::OutcomeRecordWire to_wire(const OutcomeRecord& record) {
  wire::OutcomeRecordWire out;
  out.outcome = static_cast<std::uint8_t>(record.outcome);
  out.stream_id = record.stream_id;
  out.final_sequence = record.final_sequence;
  return out;
}

wire::FleetEventRecord to_wire(
    const coordination::CoordinationService::FleetEvent& event) {
  wire::FleetEventRecord record;
  record.kind = static_cast<std::uint8_t>(event.kind);
  record.drone_id = event.drone_id;
  record.sequence = event.sequence;
  record.to = static_cast<std::uint8_t>(event.to);
  record.outcome = static_cast<std::uint8_t>(event.outcome);
  record.label = static_cast<std::uint8_t>(event.label);
  record.event_kind = static_cast<std::uint8_t>(event.event_kind);
  record.descriptor_drone_id = event.descriptor.drone_id;
  record.descriptor_cell = event.descriptor.cell;
  record.descriptor_human_id = event.descriptor.human_id;
  record.descriptor_battery_soc = event.descriptor.battery_soc;
  record.battery_soc = event.battery_soc;
  return record;
}

wire::GrantUpdateRecord to_wire(const coordination::GrantUpdate& update) {
  wire::GrantUpdateRecord record;
  record.cell = update.cell;
  record.state = static_cast<std::uint8_t>(update.record.state);
  record.holder = update.record.holder;
  record.granted_seq = update.record.granted_seq;
  record.expires_seq = update.record.expires_seq;
  record.renewals = update.record.renewals;
  record.conflict = update.conflict ? 1 : 0;
  return record;
}

wire::ArbitrationRecord to_wire(
    const coordination::ArbitrationDecision& decision) {
  wire::ArbitrationRecord record;
  record.loser = decision.loser;
  record.winner = decision.winner;
  record.human_id = decision.human_id;
  record.sequence = decision.sequence;
  record.retry_at = decision.retry_at;
  record.reason = static_cast<std::uint8_t>(decision.reason);
  return record;
}

wire::GrantSlotRecord to_wire(int cell,
                              const coordination::GrantRecord& record) {
  wire::GrantSlotRecord slot;
  slot.cell = cell;
  slot.state = static_cast<std::uint8_t>(record.state);
  slot.holder = record.holder;
  slot.granted_seq = record.granted_seq;
  slot.expires_seq = record.expires_seq;
  slot.renewals = record.renewals;
  return slot;
}

wire::PlanHintRecord to_wire(std::uint32_t drone_id,
                             const orchard::PlanHint& hint) {
  wire::PlanHintRecord record;
  record.drone_id = drone_id;
  record.granted_cells.assign(hint.granted_cells.begin(),
                              hint.granted_cells.end());
  record.blocked_cells.assign(hint.blocked_cells.begin(),
                              hint.blocked_cells.end());
  return record;
}

coordination::CoordinationService::FleetEvent from_wire(
    const wire::FleetEventRecord& record) {
  coordination::CoordinationService::FleetEvent event;
  event.kind =
      static_cast<coordination::CoordinationService::EventKind>(record.kind);
  event.drone_id = record.drone_id;
  event.sequence = record.sequence;
  event.source = nullptr;
  event.to = static_cast<interaction::DialogueState>(record.to);
  event.outcome = static_cast<Outcome>(record.outcome);
  event.label = static_cast<signs::HumanSign>(record.label);
  event.event_kind = static_cast<interaction::SignEventKind>(record.event_kind);
  event.descriptor.drone_id = record.descriptor_drone_id;
  event.descriptor.cell = record.descriptor_cell;
  event.descriptor.human_id = record.descriptor_human_id;
  event.descriptor.battery_soc = record.descriptor_battery_soc;
  event.battery_soc = record.battery_soc;
  return event;
}

wire::RunConfigRecord make_run_config(
    const interaction::InteractionServiceConfig& interaction_config,
    const coordination::CoordinationConfig& coordination_config) {
  wire::RunConfigRecord config;
  const interaction::FusionPolicy& fusion = interaction_config.fusion;
  config.fusion_window = static_cast<std::uint32_t>(fusion.window);
  config.fusion_majority = static_cast<std::uint32_t>(fusion.majority);
  config.onset_confidence = fusion.onset_confidence;
  config.release_confidence = fusion.release_confidence;
  config.min_hold = static_cast<std::uint32_t>(fusion.min_hold);
  config.release_misses = static_cast<std::uint32_t>(fusion.release_misses);
  config.reference_distance = fusion.reference_distance;
  const interaction::DialogueConfig& dialogue = interaction_config.dialogue;
  config.attending_timeout = dialogue.attending_timeout;
  config.sequence_gap = dialogue.sequence_gap;
  config.confirm_timeout = dialogue.confirm_timeout;
  config.execute_ticks = dialogue.execute_ticks;
  config.abort_ticks = dialogue.abort_ticks;
  config.observation_queue =
      static_cast<std::uint32_t>(interaction_config.queue_capacity);
  config.cells = static_cast<std::uint32_t>(coordination_config.cells);
  config.grant_ttl = coordination_config.grant_ttl;
  config.fleet_queue =
      static_cast<std::uint32_t>(coordination_config.queue_capacity);
  const coordination::ArbitrationPolicy& arbitration =
      coordination_config.arbitration;
  config.retry_backoff = arbitration.retry_backoff;
  config.retry_backoff_max = arbitration.retry_backoff_max;
  config.fairness_boost_per_loss =
      static_cast<std::uint32_t>(arbitration.fairness_boost_per_loss);
  config.fairness_boost_cap =
      static_cast<std::uint32_t>(arbitration.fairness_boost_cap);
  return config;
}

interaction::InteractionServiceConfig interaction_config_of(
    const wire::RunConfigRecord& config) {
  interaction::InteractionServiceConfig out;
  out.fusion.window = config.fusion_window;
  out.fusion.majority = config.fusion_majority;
  out.fusion.onset_confidence = config.onset_confidence;
  out.fusion.release_confidence = config.release_confidence;
  out.fusion.min_hold = config.min_hold;
  out.fusion.release_misses = config.release_misses;
  out.fusion.reference_distance = config.reference_distance;
  out.dialogue.attending_timeout = config.attending_timeout;
  out.dialogue.sequence_gap = config.sequence_gap;
  out.dialogue.confirm_timeout = config.confirm_timeout;
  out.dialogue.execute_ticks = config.execute_ticks;
  out.dialogue.abort_ticks = config.abort_ticks;
  out.queue_capacity = config.observation_queue;
  return out;
}

coordination::CoordinationConfig coordination_config_of(
    const wire::RunConfigRecord& config) {
  coordination::CoordinationConfig out;
  out.cells = config.cells;
  out.grant_ttl = config.grant_ttl;
  out.queue_capacity = config.fleet_queue;
  out.arbitration.retry_backoff = config.retry_backoff;
  out.arbitration.retry_backoff_max = config.retry_backoff_max;
  out.arbitration.fairness_boost_per_loss =
      static_cast<int>(config.fairness_boost_per_loss);
  out.arbitration.fairness_boost_cap =
      static_cast<int>(config.fairness_boost_cap);
  return out;
}

std::uint64_t transcript_digest(const Transcript& transcript) {
  constexpr std::uint64_t kOffset = 14695981039346656037ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t digest = kOffset;
  const auto mix_byte = [&digest](std::uint8_t byte) {
    digest ^= byte;
    digest *= kPrime;
  };
  const auto mix_string = [&mix_byte](const std::string& s) {
    for (char c : s) mix_byte(static_cast<std::uint8_t>(c));
    mix_byte(0);  // terminator: "ab"+"c" must not collide with "a"+"bc"
  };
  for (const TranscriptEvent& event : transcript) {
    const std::uint64_t t_bits = std::bit_cast<std::uint64_t>(event.t);
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<std::uint8_t>(t_bits >> (8 * i)));
    }
    mix_string(event.actor);
    mix_string(event.event);
  }
  return digest;
}

wire::TranscriptDigestRecord digest_record(std::uint32_t stream_id,
                                           const Transcript& transcript) {
  wire::TranscriptDigestRecord record;
  record.stream_id = stream_id;
  record.entries = static_cast<std::uint32_t>(transcript.size());
  record.digest = transcript_digest(transcript);
  return record;
}

// ------------------------------------------------- metric snapshots ------

const std::vector<std::string_view>& replay_deterministic_counters() {
  // Explicit list, NOT a name-prefix filter: interaction_shed_total shares
  // the interaction_ prefix but is incremented on producer threads (its
  // total depends on live queue depths), so a prefix rule would silently
  // journal a nondeterministic counter and break the replay gate.
  static const std::vector<std::string_view> kCounters = {
      telemetry::kInteractionObservations,
      telemetry::kInteractionEvents,
      telemetry::kInteractionActions,
      telemetry::kInteractionOutcomes,
      telemetry::kCoordinationEvents,
      telemetry::kCoordinationArbitrations,
      telemetry::kCoordinationDeferrals,
      telemetry::kCoordinationGrants,
      telemetry::kCoordinationDenials,
      telemetry::kCoordinationRevocations,
      telemetry::kCoordinationRenewals,
      telemetry::kCoordinationExpiries,
  };
  return kCounters;
}

wire::MetricSnapshotRecord metric_snapshot_record(
    const telemetry::MetricsSnapshot& snapshot) {
  wire::MetricSnapshotRecord record;
  for (std::string_view name : replay_deterministic_counters()) {
    wire::MetricSnapshotEntry entry;
    entry.name = std::string(name);
    const telemetry::CounterSnapshot* counter = snapshot.find_counter(name);
    entry.value = counter != nullptr ? counter->value : 0;
    record.entries.push_back(std::move(entry));
  }
  std::sort(record.entries.begin(), record.entries.end(),
            [](const wire::MetricSnapshotEntry& a,
               const wire::MetricSnapshotEntry& b) { return a.name < b.name; });
  return record;
}

// ---------------------------------------------------------- recorder -----

void JournalRecorder::record_config(const wire::RunConfigRecord& config) {
  journal_->append(config);
}

void JournalRecorder::on_snapshot(const telemetry::MetricsSnapshot& snapshot) {
  journal_->append(metric_snapshot_record(snapshot));
}

void JournalRecorder::attach_interaction(
    interaction::InteractionService& dialogue,
    coordination::CoordinationService* coordinator) {
  interaction::InteractionService::DialogueListener listener;
  EventJournal* journal = journal_;
  interaction::InteractionService* source = &dialogue;
  listener.on_observation =
      [journal](const interaction::InteractionService::ObservationSample& s) {
        journal->append(to_wire(s));
      };
  listener.on_event = [journal,
                       coordinator](const interaction::SignEvent& event) {
    journal->append(to_wire(event));
    if (coordinator != nullptr) coordinator->admit_sign_event(event);
  };
  listener.on_transition = [journal, coordinator,
                            source](const interaction::AckAction& action) {
    journal->append(to_wire(action));
    if (coordinator != nullptr) coordinator->admit_transition(source, action);
  };
  listener.on_outcome = [journal, coordinator](const OutcomeRecord& record) {
    journal->append(to_wire(record));
    if (coordinator != nullptr) coordinator->admit_outcome(record);
  };
  dialogue.set_dialogue_listener(std::move(listener));
}

void JournalRecorder::attach_coordination(
    coordination::CoordinationService& coordinator) {
  EventJournal* journal = journal_;
  coordinator.set_event_tap(
      [journal](const coordination::CoordinationService::FleetEvent& event) {
        journal->append(to_wire(event));
      });
  coordinator.set_registry_observer(
      [journal](const coordination::GrantUpdate& update) {
        journal->append(to_wire(update));
      });
}

void JournalRecorder::finalize(interaction::InteractionService& dialogue,
                               std::vector<std::uint32_t> stream_ids,
                               coordination::CoordinationService& coordinator) {
  std::sort(stream_ids.begin(), stream_ids.end());
  stream_ids.erase(std::unique(stream_ids.begin(), stream_ids.end()),
                   stream_ids.end());
  for (std::uint32_t stream_id : stream_ids) {
    journal_->append(digest_record(stream_id, dialogue.transcript(stream_id)));
    journal_->append(to_wire(dialogue.outcome_record(stream_id)));
  }
  for (const coordination::ArbitrationDecision& decision :
       coordinator.arbitration_log()) {
    journal_->append(to_wire(decision));
  }
  const std::size_t cells = coordinator.config().cells;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    journal_->append(
        to_wire(static_cast<int>(cell), coordinator.grant(static_cast<int>(cell))));
  }
  for (std::uint32_t stream_id : stream_ids) {
    journal_->append(to_wire(stream_id, coordinator.plan_hint(stream_id)));
  }
  // The run's one deterministic telemetry checkpoint: services are drained,
  // so the replay-deterministic counters have their final totals.
  if (metrics_ != nullptr) metrics_->publish(*this);
  wire::JournalEndRecord end;
  end.record_count = journal_->record_count();
  journal_->append(end);
}

}  // namespace hdc::protocol
