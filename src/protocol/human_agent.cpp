#include "protocol/human_agent.hpp"

namespace hdc::protocol {

HumanParams role_params(HumanRole role) {
  HumanParams params;
  switch (role) {
    case HumanRole::kSupervisor:
      params.notice_probability = 0.95;
      params.reaction_mean_s = 1.0;
      params.reaction_stddev_s = 0.3;
      params.grant_probability = 0.85;
      params.wrong_sign_probability = 0.01;
      params.ignore_probability = 0.0;
      params.sign_hold_s = 3.5;
      params.pose_jitter = signs::supervisor_jitter();
      break;
    case HumanRole::kWorker:
      params.notice_probability = 0.85;
      params.reaction_mean_s = 1.8;
      params.reaction_stddev_s = 0.6;
      params.grant_probability = 0.75;
      params.wrong_sign_probability = 0.04;
      params.ignore_probability = 0.02;
      params.sign_hold_s = 3.0;
      params.pose_jitter = signs::worker_jitter();
      break;
    case HumanRole::kVisitor:
      params.notice_probability = 0.6;
      params.reaction_mean_s = 3.0;
      params.reaction_stddev_s = 1.2;
      params.grant_probability = 0.55;
      params.wrong_sign_probability = 0.12;
      params.ignore_probability = 0.15;
      params.sign_hold_s = 2.0;
      params.pose_jitter = signs::visitor_jitter();
      break;
  }
  return params;
}

HumanResponder::HumanResponder(HumanRole role, HumanParams params, std::uint64_t seed)
    : role_(role), params_(params), rng_(seed) {
  reset();
}

void HumanResponder::reset() {
  clock_ = 0.0;
  attentive_ = false;
  displayed_ = signs::HumanSign::kNeutral;
  pending_ = signs::HumanSign::kNeutral;
  reaction_left_ = 0.0;
  hold_left_ = 0.0;
  engaged_ = !rng_.chance(params_.ignore_probability);
  will_grant_ = rng_.chance(params_.grant_probability);
  answer_wrong_ = rng_.chance(params_.wrong_sign_probability);
  transcript_.clear();
}

void HumanResponder::log(const std::string& event) {
  transcript_.push_back({clock_, "human", event});
}

signs::BodyPose HumanResponder::sample_displayed_pose() {
  return signs::sample_pose(displayed_, params_.pose_jitter, rng_);
}

signs::HumanSign HumanResponder::step(double dt,
                                      std::optional<drone::PatternType> perceived) {
  clock_ += dt;

  // Hold/expire the currently displayed sign.
  if (displayed_ != signs::HumanSign::kNeutral) {
    hold_left_ -= dt;
    if (hold_left_ <= 0.0) {
      displayed_ = signs::HumanSign::kNeutral;
      log("sign:lowered");
    }
  }

  // A queued response becomes visible after the reaction delay.
  if (pending_ != signs::HumanSign::kNeutral) {
    reaction_left_ -= dt;
    if (reaction_left_ <= 0.0) {
      displayed_ = pending_;
      pending_ = signs::HumanSign::kNeutral;
      hold_left_ = params_.sign_hold_s;
      log(std::string("sign:") + std::string(signs::to_string(displayed_)));
    }
  }

  if (!engaged_ || !perceived.has_value()) return displayed_;

  const auto queue_sign = [this](signs::HumanSign sign) {
    pending_ = sign;
    reaction_left_ =
        std::max(0.1, rng_.gaussian(params_.reaction_mean_s, params_.reaction_stddev_s));
  };

  switch (*perceived) {
    case drone::PatternType::kPoke:
      if (!attentive_) {
        if (rng_.chance(params_.notice_probability)) {
          attentive_ = true;
          log("noticed-poke");
          queue_sign(signs::HumanSign::kAttentionGained);
        } else {
          log("missed-poke");
        }
      } else if (displayed_ == signs::HumanSign::kNeutral &&
                 pending_ == signs::HumanSign::kNeutral) {
        // Re-poked after the first acknowledgement expired: show it again
        // (quickly — the human is already engaged).
        log("re-acknowledge");
        pending_ = signs::HumanSign::kAttentionGained;
        reaction_left_ = std::max(0.1, 0.4 * params_.reaction_mean_s);
      }
      break;

    case drone::PatternType::kRectangleRequest:
      if (attentive_ && pending_ == signs::HumanSign::kNeutral) {
        bool grant = will_grant_;
        if (answer_wrong_) grant = !grant;  // execution slip
        log(std::string("decided:") + (will_grant_ ? "yes" : "no") +
            (answer_wrong_ ? " (slip)" : ""));
        queue_sign(grant ? signs::HumanSign::kYes : signs::HumanSign::kNo);
      }
      break;

    default:
      break;  // other patterns carry no addressed request
  }
  return displayed_;
}

}  // namespace hdc::protocol
