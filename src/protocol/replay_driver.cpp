#include "protocol/replay_driver.hpp"

#include <array>
#include <sstream>
#include <utility>

#include "protocol/journal.hpp"

namespace hdc::protocol {

namespace {

/// Records of one journal, bucketed by type (bucket order == append order,
/// which per type is the single writer's deterministic order).
struct Buckets {
  std::array<std::vector<wire::AnyRecord>, 14> by_type;

  void add(wire::AnyRecord record) {
    by_type[static_cast<std::size_t>(wire::record_type(record))].push_back(
        std::move(record));
  }
  [[nodiscard]] const std::vector<wire::AnyRecord>& of(
      wire::RecordType type) const {
    return by_type[static_cast<std::size_t>(type)];
  }
};

/// First per-type divergence between the recorded and replayed journals,
/// or "" when they agree everywhere.
std::string first_mismatch(const Buckets& recorded, const Buckets& replayed) {
  for (std::uint8_t t = static_cast<std::uint8_t>(wire::RecordType::kRunConfig);
       t <= static_cast<std::uint8_t>(wire::RecordType::kMetricSnapshot); ++t) {
    const auto type = static_cast<wire::RecordType>(t);
    const std::vector<wire::AnyRecord>& a = recorded.of(type);
    const std::vector<wire::AnyRecord>& b = replayed.of(type);
    if (a.size() != b.size()) {
      std::ostringstream out;
      out << wire::to_string(type) << " count diverged: recorded " << a.size()
          << ", replayed " << b.size();
      return out.str();
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) {
        std::ostringstream out;
        out << wire::to_string(type) << " record " << i
            << " diverged between recording and replay";
        return out.str();
      }
    }
  }
  return "";
}

}  // namespace

ReplayDriver::ReplayDriver(ReplayOptions options)
    : options_(std::move(options)) {}

ReplayReport ReplayDriver::replay(std::span<const std::uint8_t> journal) const {
  ReplayReport report;

  std::vector<wire::AnyRecord> records;
  if (!wire::parse_all(journal, records, report.error)) {
    std::ostringstream out;
    out << "journal rejected at offset " << report.error.offset << ": "
        << wire::to_string(report.error.code) << " (" << report.error.message
        << ")";
    report.mismatch = out.str();
    return report;
  }

  // Structural checks before any replay work: a journal must open with its
  // RunConfig header and close with a JournalEnd whose count covers every
  // record before it — otherwise the file was cut short mid-run.
  if (records.empty() ||
      wire::record_type(records.front()) != wire::RecordType::kRunConfig) {
    report.mismatch = "journal does not start with a RunConfig header";
    return report;
  }
  if (wire::record_type(records.back()) != wire::RecordType::kJournalEnd) {
    report.mismatch = "journal truncated: missing the JournalEnd trailer";
    return report;
  }
  const auto& end = std::get<wire::JournalEndRecord>(records.back());
  if (end.record_count != records.size() - 1) {
    std::ostringstream out;
    out << "JournalEnd record count " << end.record_count
        << " does not match the " << (records.size() - 1)
        << " records before it";
    report.mismatch = out.str();
    return report;
  }
  report.parsed = true;

  Buckets recorded;
  for (wire::AnyRecord& record : records) recorded.add(std::move(record));

  const auto& run_config =
      std::get<wire::RunConfigRecord>(recorded.of(wire::RecordType::kRunConfig).front());

  EventJournal replay_journal;
  JournalRecorder recorder(replay_journal);
  recorder.record_config(run_config);

  // A fresh telemetry registry for the fresh services: the replayed run
  // re-derives the replay-deterministic counter totals from scratch. The
  // recorder publishes a MetricSnapshotRecord only when the RECORDING has
  // one — appending a record the recording lacks would itself be a (false)
  // per-type divergence.
  telemetry::MetricsRegistry metrics;
  if (!recorded.of(wire::RecordType::kMetricSnapshot).empty()) {
    recorder.set_metrics(&metrics);
  }

  // Stage 1: the interaction layer, fed single-threaded in recorded order
  // (record-only wiring — stage 2 gets the RECORDED fleet events, so the
  // replayed dialogue outputs must not reach the coordinator too).
  interaction::InteractionServiceConfig dialogue_config =
      interaction_config_of(run_config);
  dialogue_config.metrics = &metrics;
  dialogue_config.recorder = options_.recorder;
  interaction::InteractionService dialogue(dialogue_config, options_.grammar);
  recorder.attach_interaction(dialogue, nullptr);
  for (const wire::AnyRecord& any :
       recorded.of(wire::RecordType::kObservation)) {
    const auto& observation = std::get<wire::ObservationRecord>(any);
    if (observation.abort != 0) {
      dialogue.abort_stream(observation.stream_id);
    } else {
      dialogue.inject_observation(
          observation.stream_id, observation.sequence,
          static_cast<signs::HumanSign>(observation.sign),
          observation.confidence);
    }
    ++report.observations_fed;
  }
  dialogue.drain();
  dialogue.stop();

  // Stage 2: the coordination layer, fed the recorded worker inputs.
  coordination::CoordinationConfig coordination_config =
      coordination_config_of(run_config);
  coordination_config.metrics = &metrics;
  coordination_config.recorder = options_.recorder;
  coordination::CoordinationService coordinator(coordination_config);
  recorder.attach_coordination(coordinator);
  for (const wire::AnyRecord& any :
       recorded.of(wire::RecordType::kFleetEvent)) {
    coordinator.admit_recorded(
        from_wire(std::get<wire::FleetEventRecord>(any)));
    ++report.fleet_events_fed;
  }
  coordinator.drain();
  coordinator.stop();

  // Finalize over the same stream ids the recording finalized over.
  std::vector<std::uint32_t> stream_ids;
  for (const wire::AnyRecord& any :
       recorded.of(wire::RecordType::kTranscriptDigest)) {
    stream_ids.push_back(std::get<wire::TranscriptDigestRecord>(any).stream_id);
  }
  recorder.finalize(dialogue, std::move(stream_ids), coordinator);

  report.journal_bytes = replay_journal.bytes();

  Buckets replayed;
  std::vector<wire::AnyRecord> replay_records;
  wire::WireError replay_error;
  if (!wire::parse_all(report.journal_bytes, replay_records, replay_error)) {
    report.mismatch = "internal: replay journal failed to re-parse";
    return report;
  }
  for (wire::AnyRecord& record : replay_records) {
    replayed.add(std::move(record));
  }

  report.mismatch = first_mismatch(recorded, replayed);
  report.ok = report.mismatch.empty();
  return report;
}

}  // namespace hdc::protocol
