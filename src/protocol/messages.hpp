// Protocol vocabulary and transcript types for the human-drone negotiation
// (paper §III, Figure 3): the drone pokes for attention, the human shows
// "attention gained", the drone flies the rectangle pattern to request the
// human's space, the human answers Yes or No.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "drone/flight_pattern.hpp"
#include "signs/sign.hpp"

namespace hdc::protocol {

/// Negotiation outcome.
enum class Outcome : std::uint8_t {
  kPending = 0,
  kGranted,        ///< human answered Yes; space is available
  kDenied,         ///< human answered No; drone must keep clear
  kNoAttention,    ///< poke retries exhausted without attention
  kNoAnswer,       ///< request retries exhausted without a readable answer
  kAborted,        ///< safety or battery abort
};

[[nodiscard]] constexpr const char* to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kPending: return "Pending";
    case Outcome::kGranted: return "Granted";
    case Outcome::kDenied: return "Denied";
    case Outcome::kNoAttention: return "NoAttention";
    case Outcome::kNoAnswer: return "NoAnswer";
    case Outcome::kAborted: return "Aborted";
  }
  return "?";
}

/// An Outcome with the identity downstream consumers need (ABI-additive:
/// the bare enum and every API returning it are unchanged). A fleet-level
/// arbiter cannot do anything with "someone was granted space" — it needs
/// to know WHICH stream/drone's dialogue ended, and WHEN in that stream's
/// frame-sequence domain, to register the grant and order it against other
/// streams' events.
struct OutcomeRecord {
  Outcome outcome{Outcome::kPending};
  std::uint32_t stream_id{0};      ///< originating perception stream / drone
  std::uint64_t final_sequence{0}; ///< frame sequence at which the outcome
                                   ///< was decided (0 while kPending)

  [[nodiscard]] bool operator==(const OutcomeRecord&) const = default;
};

/// Timing / retry policy of the drone-side negotiator. Values derive from
/// the user stories: an orchard worker should never be hurried, but a
/// blocked drone must give up in bounded time and re-plan.
struct NegotiationConfig {
  int poke_retries{3};             ///< pokes before giving up on attention
  double attention_timeout_s{6.0}; ///< wait after each poke
  int request_retries{2};          ///< rectangle patterns before giving up
  double answer_timeout_s{10.0};   ///< wait after each request
  double answer_confirm_s{0.8};    ///< a sign must persist this long to count
  /// Frames are lossy (the recogniser rejects some); a candidate sign
  /// survives detection gaps up to this long before the hold resets.
  double sign_gap_tolerance_s{1.0};
  double decision_hold_s{1.5};     ///< hover pause between protocol steps
};

/// One transcript entry; the sequence of these is the Figure-3 exchange.
struct TranscriptEvent {
  double t{0.0};
  std::string actor;   ///< "drone" or "human"
  std::string event;   ///< e.g. "poke", "sign:Yes", "state:AwaitAnswer"
};

using Transcript = std::vector<TranscriptEvent>;

}  // namespace hdc::protocol
