// Perception channels: how the drone senses the human's sign and how the
// human reads the drone's flight pattern. Interfaces allow the same FSMs to
// run over a perfect channel (unit tests), a stochastic channel calibrated
// to the recogniser's measured error rates (Monte-Carlo benches), or the
// full render->recognise loop (core::CameraSignChannel).
#pragma once

#include <optional>

#include "drone/flight_pattern.hpp"
#include "signs/sign.hpp"
#include "util/rng.hpp"

namespace hdc::protocol {

/// Drone-side perception of the human's currently displayed sign.
class SignChannel {
 public:
  virtual ~SignChannel() = default;
  /// Returns what the recogniser reports for one frame: the accepted sign,
  /// or nullopt when nothing is accepted. `actual` is ground truth.
  [[nodiscard]] virtual std::optional<signs::HumanSign> sense(
      signs::HumanSign actual) = 0;
};

/// Human-side perception of the drone's active pattern.
class PatternChannel {
 public:
  virtual ~PatternChannel() = default;
  [[nodiscard]] virtual std::optional<drone::PatternType> sense(
      std::optional<drone::PatternType> actual) = 0;
};

/// Ground truth passthrough.
class PerfectSignChannel final : public SignChannel {
 public:
  [[nodiscard]] std::optional<signs::HumanSign> sense(signs::HumanSign actual) override {
    if (actual == signs::HumanSign::kNeutral) return std::nullopt;
    return actual;
  }
};

class PerfectPatternChannel final : public PatternChannel {
 public:
  [[nodiscard]] std::optional<drone::PatternType> sense(
      std::optional<drone::PatternType> actual) override {
    return actual;
  }
};

/// Frame-wise stochastic sign channel: with `miss_rate` the frame is
/// rejected; with `confusion_rate` a wrong sign is reported. Rates can be
/// calibrated from the recogniser's measured per-view accuracy.
class NoisySignChannel final : public SignChannel {
 public:
  NoisySignChannel(double miss_rate, double confusion_rate, std::uint64_t seed)
      : miss_rate_(miss_rate), confusion_rate_(confusion_rate), rng_(seed) {}

  [[nodiscard]] std::optional<signs::HumanSign> sense(signs::HumanSign actual) override {
    if (actual == signs::HumanSign::kNeutral) {
      // False positives on a neutral stance are rare; model at 10% of the
      // confusion rate.
      if (rng_.chance(confusion_rate_ * 0.1)) {
        return signs::kCommunicativeSigns[static_cast<std::size_t>(
            rng_.uniform_int(0, 2))];
      }
      return std::nullopt;
    }
    if (rng_.chance(miss_rate_)) return std::nullopt;
    if (rng_.chance(confusion_rate_)) {
      // Report one of the other communicative signs.
      signs::HumanSign wrong = actual;
      while (wrong == actual) {
        wrong = signs::kCommunicativeSigns[static_cast<std::size_t>(
            rng_.uniform_int(0, 2))];
      }
      return wrong;
    }
    return actual;
  }

 private:
  double miss_rate_;
  double confusion_rate_;
  hdc::util::Rng rng_;
};

/// Human pattern perception with a miss rate (looking away, occlusion) and
/// a confusion rate between the two easily-confused communicative shakes.
class NoisyPatternChannel final : public PatternChannel {
 public:
  NoisyPatternChannel(double miss_rate, double confusion_rate, std::uint64_t seed)
      : miss_rate_(miss_rate), confusion_rate_(confusion_rate), rng_(seed) {}

  [[nodiscard]] std::optional<drone::PatternType> sense(
      std::optional<drone::PatternType> actual) override {
    if (!actual.has_value()) return std::nullopt;
    if (rng_.chance(miss_rate_)) return std::nullopt;
    if (rng_.chance(confusion_rate_)) {
      // Nod and head-shake are the plausible human confusion pair.
      if (*actual == drone::PatternType::kNodYes) return drone::PatternType::kTurnNo;
      if (*actual == drone::PatternType::kTurnNo) return drone::PatternType::kNodYes;
    }
    return actual;
  }

 private:
  double miss_rate_;
  double confusion_rate_;
  hdc::util::Rng rng_;
};

}  // namespace hdc::protocol
