// Drone-side negotiation state machine.
//
// The FSM consumes perception inputs (the recognised human sign, whether a
// commanded flight pattern finished) and emits pattern commands; it never
// touches the vehicle directly, so it runs identically against the perfect
// channel (protocol unit tests), the noisy channel (FIG3 Monte-Carlo) and
// the full render->recognise loop (orchard integration).
#pragma once

#include <optional>

#include "drone/flight_pattern.hpp"
#include "protocol/messages.hpp"
#include "signs/sign.hpp"

namespace hdc::protocol {

/// Negotiator states (paper §III narrative order).
enum class NegotiationState : std::uint8_t {
  kIdle = 0,
  kPoking,          ///< flying the poke pattern
  kAwaitAttention,  ///< watching for the AttentionGained sign
  kRequesting,      ///< flying the rectangle (area request) pattern
  kAwaitAnswer,     ///< watching for Yes / No
  kFinished,
};

[[nodiscard]] constexpr const char* to_string(NegotiationState state) noexcept {
  switch (state) {
    case NegotiationState::kIdle: return "Idle";
    case NegotiationState::kPoking: return "Poking";
    case NegotiationState::kAwaitAttention: return "AwaitAttention";
    case NegotiationState::kRequesting: return "Requesting";
    case NegotiationState::kAwaitAnswer: return "AwaitAnswer";
    case NegotiationState::kFinished: return "Finished";
  }
  return "?";
}

/// What the negotiator wants the vehicle to do this tick.
struct NegotiatorCommand {
  enum class Kind : std::uint8_t { kNone = 0, kFlyPattern, kHover };
  Kind kind{Kind::kNone};
  drone::PatternType pattern{drone::PatternType::kPoke};
};

class DroneNegotiator {
 public:
  explicit DroneNegotiator(NegotiationConfig config = {}) : config_(config) {}

  /// Starts a new negotiation (resets all counters).
  void begin();

  /// Advances the FSM by `dt` seconds.
  /// `perceived`: the sign the recogniser currently reports (accepted frames
  ///   only), or nullopt when nothing is recognised.
  /// `pattern_running`: true while the vehicle is still flying the last
  ///   commanded pattern.
  /// Returns the command for this tick. At most one kFlyPattern command is
  /// emitted per pattern; callers must feed `pattern_running` faithfully.
  NegotiatorCommand step(double dt, std::optional<signs::HumanSign> perceived,
                         bool pattern_running);

  /// Marks the negotiation aborted (safety/battery); the FSM finishes.
  void abort();

  [[nodiscard]] NegotiationState state() const noexcept { return state_; }
  [[nodiscard]] Outcome outcome() const noexcept { return outcome_; }
  [[nodiscard]] bool finished() const noexcept {
    return state_ == NegotiationState::kFinished;
  }
  [[nodiscard]] const Transcript& transcript() const noexcept { return transcript_; }
  [[nodiscard]] double clock() const noexcept { return clock_; }

 private:
  void log(const std::string& event);
  void enter(NegotiationState next);
  NegotiatorCommand fly(drone::PatternType pattern);

  NegotiationConfig config_;
  NegotiationState state_{NegotiationState::kIdle};
  Outcome outcome_{Outcome::kPending};
  Transcript transcript_;
  double clock_{0.0};
  double state_clock_{0.0};
  double sign_hold_{0.0};  ///< how long the current candidate answer persisted
  double sign_gap_{0.0};   ///< time since the candidate was last confirmed
  signs::HumanSign candidate_{signs::HumanSign::kNeutral};
  /// A sign confirmed while a pattern was still flying; consumed when the
  /// pattern completes (humans often answer before the drone finishes
  /// "speaking").
  signs::HumanSign latched_{signs::HumanSign::kNeutral};
  int pokes_done_{0};
  int requests_done_{0};
  bool pattern_commanded_{false};
};

}  // namespace hdc::protocol
