// EventJournal + JournalRecorder — the append-only per-run record of a
// fleet run, in the versioned wire format (protocol/wire.hpp), and the
// hooks that fill it from the live services.
//
// What gets recorded, and why replay works (see ARCHITECTURE.md):
//   - The dialogue worker's INPUTS (every ObservationSample, via the
//     DialogueListener's on_observation tap) and OUTPUTS (sign events,
//     transitions, outcomes) in processing order. Observations are the
//     interaction layer's replayable input unit: re-feeding them from one
//     thread reproduces the ring order, hence the processing order, hence
//     every output bit-identically.
//   - The coordination worker's INPUTS (every FleetEvent, via the event
//     tap, in the exact order the single worker consumed them) and
//     OUTPUTS (grant updates via the registry observer). Cross-worker
//     interleavings that are nondeterministic live become explicit data.
//   - A finalize() section: arbitration log, final grant slots, final plan
//     hints, per-stream transcript digests + outcomes, and a JournalEnd
//     trailer — the expected end state a replay must reproduce.
//
// Threading: EventJournal::append() is mutex-guarded — the dialogue worker
// and the coordination worker both append. Within one record TYPE the
// writer is unique, so per-type record order is deterministic; the
// interleaving BETWEEN types from different workers is not (the replay
// driver therefore compares per-type, and full-byte only between two
// sequential replays, which are single-threaded stage by stage).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "coordination/coordination_service.hpp"
#include "interaction/interaction_service.hpp"
#include "protocol/wire.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"

namespace hdc::protocol {

/// Append-only journal buffer: wire-enveloped records, in append order.
class EventJournal {
 public:
  void append(const wire::AnyRecord& record);

  /// Arms the append-latency span + record counter (disarmed by default;
  /// `metrics` must outlive this journal). Call before streaming.
  void instrument(telemetry::MetricsRegistry& metrics);

  /// Snapshot of the journal bytes so far (copy under the mutex).
  [[nodiscard]] std::vector<std::uint8_t> bytes() const;
  /// Records appended so far (JournalEnd's record_count input).
  [[nodiscard]] std::uint64_t record_count() const;
  void clear();

  /// Whole-journal file I/O (binary). Both return false on I/O failure.
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static bool load(const std::string& path,
                                 std::vector<std::uint8_t>& out);

 private:
  mutable std::mutex mutex_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t records_{0};
  telemetry::Histogram append_ns_;
  telemetry::Counter records_counter_;
};

/// The counter names whose totals are a pure function of a run's recorded
/// input sequence (incremented only on the dialogue / coordination workers
/// while processing an admitted input — never on producer threads, never
/// dependent on queue timing). These, and only these, go into a journal's
/// MetricSnapshotRecord: replaying the journal must reproduce every total
/// bit-exactly. Notably absent: interaction_shed_total (producer-side,
/// depends on live queue depths) and all perception metrics.
[[nodiscard]] const std::vector<std::string_view>& replay_deterministic_counters();

/// Filters a telemetry snapshot down to the replay-deterministic counters,
/// sorted by name (canonical wire layout). Counters the snapshot lacks are
/// recorded as 0, so the record's shape is independent of which services
/// happened to touch the registry.
[[nodiscard]] wire::MetricSnapshotRecord metric_snapshot_record(
    const telemetry::MetricsSnapshot& snapshot);

// -------------------------------------------- live <-> wire conversions --
// Public because the replay driver and tests use them too.

[[nodiscard]] wire::ObservationRecord to_wire(
    const interaction::InteractionService::ObservationSample& sample);
[[nodiscard]] wire::SignEventRecord to_wire(const interaction::SignEvent& event);
[[nodiscard]] wire::TransitionRecord to_wire(const interaction::AckAction& action);
[[nodiscard]] wire::OutcomeRecordWire to_wire(const OutcomeRecord& record);
[[nodiscard]] wire::FleetEventRecord to_wire(
    const coordination::CoordinationService::FleetEvent& event);
[[nodiscard]] wire::GrantUpdateRecord to_wire(
    const coordination::GrantUpdate& update);
[[nodiscard]] wire::ArbitrationRecord to_wire(
    const coordination::ArbitrationDecision& decision);
[[nodiscard]] wire::GrantSlotRecord to_wire(
    int cell, const coordination::GrantRecord& record);
[[nodiscard]] wire::PlanHintRecord to_wire(std::uint32_t drone_id,
                                           const orchard::PlanHint& hint);

/// Reconstructs a coordination input event from the wire (source is null —
/// replay aborts arrive as recorded abort observations instead).
[[nodiscard]] coordination::CoordinationService::FleetEvent from_wire(
    const wire::FleetEventRecord& record);

/// The run-config header a journal starts with, from the live configs.
[[nodiscard]] wire::RunConfigRecord make_run_config(
    const interaction::InteractionServiceConfig& interaction_config,
    const coordination::CoordinationConfig& coordination_config);
/// Rebuilds the service configs a replay must construct from the header.
[[nodiscard]] interaction::InteractionServiceConfig interaction_config_of(
    const wire::RunConfigRecord& config);
[[nodiscard]] coordination::CoordinationConfig coordination_config_of(
    const wire::RunConfigRecord& config);

/// FNV-1a 64 over a transcript (timestamps as IEEE-754 bit patterns, then
/// each string with a terminator) — "bit-identical transcripts" is
/// asserted by digest equality.
[[nodiscard]] std::uint64_t transcript_digest(const Transcript& transcript);
[[nodiscard]] wire::TranscriptDigestRecord digest_record(
    std::uint32_t stream_id, const Transcript& transcript);

// ---------------------------------------------------------- recorder -----

/// Hooks an EventJournal into the live services. One recorder per run;
/// install the hooks BEFORE streaming (they take the services' listener /
/// tap slots). Also a TelemetrySink: published snapshots land in the
/// journal as MetricSnapshotRecords (finalize() publishes once, at the
/// run's deterministic checkpoint, when set_metrics() wired a registry).
class JournalRecorder : public telemetry::TelemetrySink {
 public:
  explicit JournalRecorder(EventJournal& journal) : journal_(&journal) {}

  /// TelemetrySink: appends the snapshot's replay-deterministic counter
  /// totals to the journal. Callers other than finalize() must publish
  /// only at deterministic checkpoints (see sink.hpp).
  void on_snapshot(const telemetry::MetricsSnapshot& snapshot) override;

  /// Writes the journal header. Call first, before streaming.
  void record_config(const wire::RunConfigRecord& config);

  /// Installs a recording DialogueListener on `dialogue`. Every
  /// observation/event/transition/outcome is journaled, then forwarded to
  /// `coordinator` (exactly what CoordinationService::bind() would have
  /// received). Pass nullptr for record-only wiring — the replay driver
  /// does, because during replay the coordination layer is fed from the
  /// recorded FleetEvents, not from the re-run dialogues.
  void attach_interaction(interaction::InteractionService& dialogue,
                          coordination::CoordinationService* coordinator);

  /// Installs the event tap + registry observer on `coordinator` (takes
  /// both observer slots).
  void attach_coordination(coordination::CoordinationService& coordinator);

  /// Wires the run's telemetry registry so finalize() also appends a
  /// MetricSnapshotRecord (replay-deterministic counter totals, sorted by
  /// name) right before the JournalEnd trailer. finalize() is the one
  /// deterministic checkpoint of a run — a wall-clock-driven snapshot
  /// would not replay bit-identically. `registry` must outlive finalize();
  /// pass nullptr (the default state) to record no snapshot.
  void set_metrics(telemetry::MetricsRegistry* registry) { metrics_ = registry; }

  /// Writes the end-state section: per-stream transcript digests and final
  /// outcomes (ids deduplicated + sorted for a deterministic layout),
  /// the arbitration log, every grant slot, per-drone plan hints, then the
  /// JournalEnd trailer. Call after the services are drained/stopped.
  void finalize(interaction::InteractionService& dialogue,
                std::vector<std::uint32_t> stream_ids,
                coordination::CoordinationService& coordinator);

 private:
  EventJournal* journal_;
  telemetry::MetricsRegistry* metrics_{nullptr};
};

}  // namespace hdc::protocol
