// EventJournal + JournalRecorder — the append-only per-run record of a
// fleet run, in the versioned wire format (protocol/wire.hpp), and the
// hooks that fill it from the live services.
//
// What gets recorded, and why replay works (see ARCHITECTURE.md):
//   - The dialogue worker's INPUTS (every ObservationSample, via the
//     DialogueListener's on_observation tap) and OUTPUTS (sign events,
//     transitions, outcomes) in processing order. Observations are the
//     interaction layer's replayable input unit: re-feeding them from one
//     thread reproduces the ring order, hence the processing order, hence
//     every output bit-identically.
//   - The coordination worker's INPUTS (every FleetEvent, via the event
//     tap, in the exact order the single worker consumed them) and
//     OUTPUTS (grant updates via the registry observer). Cross-worker
//     interleavings that are nondeterministic live become explicit data.
//   - A finalize() section: arbitration log, final grant slots, final plan
//     hints, per-stream transcript digests + outcomes, and a JournalEnd
//     trailer — the expected end state a replay must reproduce.
//
// Threading: EventJournal::append() is mutex-guarded — the dialogue worker
// and the coordination worker both append. Within one record TYPE the
// writer is unique, so per-type record order is deterministic; the
// interleaving BETWEEN types from different workers is not (the replay
// driver therefore compares per-type, and full-byte only between two
// sequential replays, which are single-threaded stage by stage).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "coordination/coordination_service.hpp"
#include "interaction/interaction_service.hpp"
#include "protocol/wire.hpp"

namespace hdc::protocol {

/// Append-only journal buffer: wire-enveloped records, in append order.
class EventJournal {
 public:
  void append(const wire::AnyRecord& record);

  /// Snapshot of the journal bytes so far (copy under the mutex).
  [[nodiscard]] std::vector<std::uint8_t> bytes() const;
  /// Records appended so far (JournalEnd's record_count input).
  [[nodiscard]] std::uint64_t record_count() const;
  void clear();

  /// Whole-journal file I/O (binary). Both return false on I/O failure.
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static bool load(const std::string& path,
                                 std::vector<std::uint8_t>& out);

 private:
  mutable std::mutex mutex_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t records_{0};
};

// -------------------------------------------- live <-> wire conversions --
// Public because the replay driver and tests use them too.

[[nodiscard]] wire::ObservationRecord to_wire(
    const interaction::InteractionService::ObservationSample& sample);
[[nodiscard]] wire::SignEventRecord to_wire(const interaction::SignEvent& event);
[[nodiscard]] wire::TransitionRecord to_wire(const interaction::AckAction& action);
[[nodiscard]] wire::OutcomeRecordWire to_wire(const OutcomeRecord& record);
[[nodiscard]] wire::FleetEventRecord to_wire(
    const coordination::CoordinationService::FleetEvent& event);
[[nodiscard]] wire::GrantUpdateRecord to_wire(
    const coordination::GrantUpdate& update);
[[nodiscard]] wire::ArbitrationRecord to_wire(
    const coordination::ArbitrationDecision& decision);
[[nodiscard]] wire::GrantSlotRecord to_wire(
    int cell, const coordination::GrantRecord& record);
[[nodiscard]] wire::PlanHintRecord to_wire(std::uint32_t drone_id,
                                           const orchard::PlanHint& hint);

/// Reconstructs a coordination input event from the wire (source is null —
/// replay aborts arrive as recorded abort observations instead).
[[nodiscard]] coordination::CoordinationService::FleetEvent from_wire(
    const wire::FleetEventRecord& record);

/// The run-config header a journal starts with, from the live configs.
[[nodiscard]] wire::RunConfigRecord make_run_config(
    const interaction::InteractionServiceConfig& interaction_config,
    const coordination::CoordinationConfig& coordination_config);
/// Rebuilds the service configs a replay must construct from the header.
[[nodiscard]] interaction::InteractionServiceConfig interaction_config_of(
    const wire::RunConfigRecord& config);
[[nodiscard]] coordination::CoordinationConfig coordination_config_of(
    const wire::RunConfigRecord& config);

/// FNV-1a 64 over a transcript (timestamps as IEEE-754 bit patterns, then
/// each string with a terminator) — "bit-identical transcripts" is
/// asserted by digest equality.
[[nodiscard]] std::uint64_t transcript_digest(const Transcript& transcript);
[[nodiscard]] wire::TranscriptDigestRecord digest_record(
    std::uint32_t stream_id, const Transcript& transcript);

// ---------------------------------------------------------- recorder -----

/// Hooks an EventJournal into the live services. One recorder per run;
/// install the hooks BEFORE streaming (they take the services' listener /
/// tap slots).
class JournalRecorder {
 public:
  explicit JournalRecorder(EventJournal& journal) : journal_(&journal) {}

  /// Writes the journal header. Call first, before streaming.
  void record_config(const wire::RunConfigRecord& config);

  /// Installs a recording DialogueListener on `dialogue`. Every
  /// observation/event/transition/outcome is journaled, then forwarded to
  /// `coordinator` (exactly what CoordinationService::bind() would have
  /// received). Pass nullptr for record-only wiring — the replay driver
  /// does, because during replay the coordination layer is fed from the
  /// recorded FleetEvents, not from the re-run dialogues.
  void attach_interaction(interaction::InteractionService& dialogue,
                          coordination::CoordinationService* coordinator);

  /// Installs the event tap + registry observer on `coordinator` (takes
  /// both observer slots).
  void attach_coordination(coordination::CoordinationService& coordinator);

  /// Writes the end-state section: per-stream transcript digests and final
  /// outcomes (ids deduplicated + sorted for a deterministic layout),
  /// the arbitration log, every grant slot, per-drone plan hints, then the
  /// JournalEnd trailer. Call after the services are drained/stopped.
  void finalize(interaction::InteractionService& dialogue,
                std::vector<std::uint32_t> stream_ids,
                coordination::CoordinationService& coordinator);

 private:
  EventJournal* journal_;
};

}  // namespace hdc::protocol
