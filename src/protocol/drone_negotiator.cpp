#include "protocol/drone_negotiator.hpp"

namespace hdc::protocol {

void DroneNegotiator::begin() {
  state_ = NegotiationState::kIdle;
  outcome_ = Outcome::kPending;
  transcript_.clear();
  clock_ = 0.0;
  state_clock_ = 0.0;
  sign_hold_ = 0.0;
  candidate_ = signs::HumanSign::kNeutral;
  sign_gap_ = 0.0;
  pokes_done_ = 0;
  requests_done_ = 0;
  pattern_commanded_ = false;
  log("begin");
}

void DroneNegotiator::abort() {
  if (state_ == NegotiationState::kFinished) return;
  outcome_ = Outcome::kAborted;
  enter(NegotiationState::kFinished);
}

void DroneNegotiator::log(const std::string& event) {
  transcript_.push_back({clock_, "drone", event});
}

void DroneNegotiator::enter(NegotiationState next) {
  state_ = next;
  state_clock_ = 0.0;
  sign_hold_ = 0.0;
  sign_gap_ = 0.0;
  candidate_ = signs::HumanSign::kNeutral;
  latched_ = signs::HumanSign::kNeutral;
  pattern_commanded_ = false;
  log(std::string("state:") + to_string(next));
}

NegotiatorCommand DroneNegotiator::fly(drone::PatternType pattern) {
  pattern_commanded_ = true;
  log(std::string("pattern:") + std::string(drone::to_string(pattern)));
  return {NegotiatorCommand::Kind::kFlyPattern, pattern};
}

NegotiatorCommand DroneNegotiator::step(double dt,
                                        std::optional<signs::HumanSign> perceived,
                                        bool pattern_running) {
  clock_ += dt;
  state_clock_ += dt;

  // Debounce the perceived sign. Frames are lossy, so missing detections
  // only reset the candidate after sign_gap_tolerance_s of silence; a
  // *different* recognised sign switches the candidate immediately.
  if (perceived.has_value()) {
    if (*perceived == candidate_) {
      sign_hold_ += dt + sign_gap_;  // bridge the gap we just closed
    } else {
      candidate_ = *perceived;
      sign_hold_ = dt;
    }
    sign_gap_ = 0.0;
  } else if (candidate_ != signs::HumanSign::kNeutral) {
    sign_gap_ += dt;
    if (sign_gap_ > config_.sign_gap_tolerance_s) {
      candidate_ = signs::HumanSign::kNeutral;
      sign_hold_ = 0.0;
      sign_gap_ = 0.0;
    }
  }

  // Latch signs confirmed while a pattern is still flying: the human may
  // answer before the drone finishes the pattern, and that answer must not
  // be lost to the state transition.
  if ((state_ == NegotiationState::kPoking || state_ == NegotiationState::kRequesting) &&
      candidate_ != signs::HumanSign::kNeutral &&
      sign_hold_ >= config_.answer_confirm_s) {
    latched_ = candidate_;
  }

  switch (state_) {
    case NegotiationState::kIdle:
      enter(NegotiationState::kPoking);
      ++pokes_done_;
      return fly(drone::PatternType::kPoke);

    case NegotiationState::kPoking:
      if (!pattern_running && pattern_commanded_) {
        if (latched_ == signs::HumanSign::kAttentionGained) {
          log("observed:AttentionGained");
          enter(NegotiationState::kRequesting);
          ++requests_done_;
          return fly(drone::PatternType::kRectangleRequest);
        }
        enter(NegotiationState::kAwaitAttention);
      }
      return {NegotiatorCommand::Kind::kHover, {}};

    case NegotiationState::kAwaitAttention:
      if (candidate_ == signs::HumanSign::kAttentionGained &&
          sign_hold_ >= config_.answer_confirm_s) {
        log("observed:AttentionGained");
        enter(NegotiationState::kRequesting);
        ++requests_done_;
        return fly(drone::PatternType::kRectangleRequest);
      }
      if (state_clock_ >= config_.attention_timeout_s) {
        if (pokes_done_ < config_.poke_retries) {
          log("attention-timeout:retry");
          enter(NegotiationState::kPoking);
          ++pokes_done_;
          return fly(drone::PatternType::kPoke);
        }
        log("attention-timeout:give-up");
        outcome_ = Outcome::kNoAttention;
        enter(NegotiationState::kFinished);
      }
      return {NegotiatorCommand::Kind::kHover, {}};

    case NegotiationState::kRequesting:
      if (!pattern_running && pattern_commanded_) {
        if (latched_ == signs::HumanSign::kYes) {
          log("observed:Yes");
          outcome_ = Outcome::kGranted;
          enter(NegotiationState::kFinished);
          return {NegotiatorCommand::Kind::kHover, {}};
        }
        if (latched_ == signs::HumanSign::kNo) {
          log("observed:No");
          outcome_ = Outcome::kDenied;
          enter(NegotiationState::kFinished);
          return {NegotiatorCommand::Kind::kHover, {}};
        }
        enter(NegotiationState::kAwaitAnswer);
      }
      return {NegotiatorCommand::Kind::kHover, {}};

    case NegotiationState::kAwaitAnswer:
      if (sign_hold_ >= config_.answer_confirm_s) {
        if (candidate_ == signs::HumanSign::kYes) {
          log("observed:Yes");
          outcome_ = Outcome::kGranted;
          enter(NegotiationState::kFinished);
          return {NegotiatorCommand::Kind::kHover, {}};
        }
        if (candidate_ == signs::HumanSign::kNo) {
          log("observed:No");
          outcome_ = Outcome::kDenied;
          enter(NegotiationState::kFinished);
          return {NegotiatorCommand::Kind::kHover, {}};
        }
      }
      if (state_clock_ >= config_.answer_timeout_s) {
        if (requests_done_ < config_.request_retries) {
          log("answer-timeout:retry");
          enter(NegotiationState::kRequesting);
          ++requests_done_;
          return fly(drone::PatternType::kRectangleRequest);
        }
        log("answer-timeout:give-up");
        outcome_ = Outcome::kNoAnswer;
        enter(NegotiationState::kFinished);
      }
      return {NegotiatorCommand::Kind::kHover, {}};

    case NegotiationState::kFinished:
      return {NegotiatorCommand::Kind::kNone, {}};
  }
  return {NegotiatorCommand::Kind::kNone, {}};
}

}  // namespace hdc::protocol
