// NegotiationSession: couples the drone negotiator and a human responder
// through perception channels and an abstract pattern-duration model —
// the geometry-free harness used by the FIG3 Monte-Carlo bench and the
// protocol integration tests. (The orchard world instead drives the FSMs
// against the real simulated vehicle.)
#pragma once

#include <memory>

#include "protocol/channels.hpp"
#include "protocol/drone_negotiator.hpp"
#include "protocol/human_agent.hpp"

namespace hdc::protocol {

/// Session parameters: nominal durations of the communicative patterns
/// (matching the PatternParams defaults executed by the real vehicle).
struct SessionTiming {
  double tick_s{0.1};
  double poke_duration_s{4.0};
  double rectangle_duration_s{9.0};
  double max_session_s{120.0};
};

/// Result of a completed session.
struct SessionResult {
  Outcome outcome{Outcome::kPending};
  double duration_s{0.0};
  int pokes{0};
  int requests{0};
  Transcript transcript;  ///< merged drone + human events, time ordered
};

/// Runs one complete negotiation. The channels are injected so callers can
/// choose fidelity; agents are taken by reference and mutated.
[[nodiscard]] SessionResult run_negotiation(DroneNegotiator& negotiator,
                                            HumanResponder& human,
                                            SignChannel& sign_channel,
                                            PatternChannel& pattern_channel,
                                            const SessionTiming& timing = {});

}  // namespace hdc::protocol
