// Versioned wire protocol for fleet event journals (ROADMAP: "Versioned
// wire protocol + record/replay").
//
// Every record travels in a length-prefixed envelope:
//
//   offset 0  u8   magic        0xDC (resync guard; a journal is a flat
//                                concatenation of envelopes)
//   offset 1  u8   version      kWireVersion (=2); readers REJECT any
//                                other value — a v2 reader must never
//                                misparse a v1 or v3 record
//   offset 2  u8   record type  RecordType; unknown types are rejected
//   offset 3  u16  payload size little-endian, bytes of payload only
//   offset 5  ...  payload      little-endian fixed-width fields
//   tail      u16  CRC-16/CCITT-FALSE over bytes [0, 5 + payload size)
//
// Design points (the mycobrain MDP envelope — versioned binary frame,
// fixed-width fields, trailing CRC16 — is the reference shape):
//   - Fixed-width little-endian integers everywhere; no padding, no host
//     struct layout on the wire (ABI-stable across compilers/arches).
//   - Doubles are serialised as their IEEE-754 bit pattern (u64 LE), so a
//     recorded confidence replays BIT-IDENTICALLY — a scaled int would
//     round and break replay determinism.
//   - Parsing is total: any malformed input (truncated buffer, oversized
//     length, flipped bit, unknown version/type, out-of-range enum) is
//     rejected with an offset-bearing WireError, never UB and never an
//     exception on the parse path.
//   - Wire structs are plain data with no dependency on the service
//     layers; protocol/journal.hpp owns the conversions from the live
//     interaction/coordination types.
//
// Version evolution rules live in docs/WIRE_FORMAT.md: any layout change
// bumps kWireVersion; new record types may only be added together with a
// version bump (a v1 reader rejects both cleanly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace hdc::protocol::wire {

inline constexpr std::uint8_t kWireMagic = 0xDC;
/// v1: record types 1-12. v2: adds kMetricSnapshot (13) — new record types
/// may only be added together with a version bump (docs/WIRE_FORMAT.md),
/// so a v1 reader rejects a v2 journal at the envelope, never at the type.
inline constexpr std::uint8_t kWireVersion = 2;
inline constexpr std::size_t kEnvelopeHeaderSize = 5;  ///< magic+version+type+len
inline constexpr std::size_t kEnvelopeTrailerSize = 2; ///< crc16
/// Hard sanity cap on one record's payload (well above any real record;
/// an envelope declaring more is rejected as kBadLength even when the
/// buffer would cover it).
inline constexpr std::size_t kMaxPayloadSize = 16 * 1024;

/// CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection, no xorout
/// (check value over "123456789" is 0x29B1).
[[nodiscard]] std::uint16_t crc16(const std::uint8_t* data,
                                  std::size_t size) noexcept;

// ------------------------------------------------------------- records ---

enum class RecordType : std::uint8_t {
  kRunConfig = 1,        ///< journal header: the configs replay must mirror
  kObservation = 2,      ///< interaction input: one processed observation
  kSignEvent = 3,        ///< interaction output: fused sign begin/end
  kTransition = 4,       ///< interaction output: FSM transition (AckAction)
  kOutcome = 5,          ///< interaction output: decided OutcomeRecord
  kFleetEvent = 6,       ///< coordination input: one processed fleet event
  kGrantUpdate = 7,      ///< coordination output: one registry mutation
  kArbitration = 8,      ///< finalise: one arbitration decision
  kPlanHint = 9,         ///< finalise: one drone's final plan hint
  kTranscriptDigest = 10,///< finalise: one stream's transcript digest
  kGrantSlot = 11,       ///< finalise: one cell's final registry slot
  kJournalEnd = 12,      ///< trailer: record count for truncation detection
  kMetricSnapshot = 13,  ///< v2: replay-deterministic telemetry counter totals
};

[[nodiscard]] constexpr const char* to_string(RecordType type) noexcept {
  switch (type) {
    case RecordType::kRunConfig: return "RunConfig";
    case RecordType::kObservation: return "Observation";
    case RecordType::kSignEvent: return "SignEvent";
    case RecordType::kTransition: return "Transition";
    case RecordType::kOutcome: return "Outcome";
    case RecordType::kFleetEvent: return "FleetEvent";
    case RecordType::kGrantUpdate: return "GrantUpdate";
    case RecordType::kArbitration: return "Arbitration";
    case RecordType::kPlanHint: return "PlanHint";
    case RecordType::kTranscriptDigest: return "TranscriptDigest";
    case RecordType::kGrantSlot: return "GrantSlot";
    case RecordType::kJournalEnd: return "JournalEnd";
    case RecordType::kMetricSnapshot: return "MetricSnapshot";
  }
  return "?";
}

/// The run configuration a deterministic replay must reconstruct the
/// services from (fusion + dialogue + coordination tuning). The command
/// grammar is NOT serialised — the replay caller supplies it (scenarios
/// use CommandGrammar::standard()).
struct RunConfigRecord {
  // interaction::FusionPolicy
  std::uint32_t fusion_window{5};
  std::uint32_t fusion_majority{3};
  double onset_confidence{0.35};
  double release_confidence{0.18};
  std::uint32_t min_hold{3};
  std::uint32_t release_misses{3};
  double reference_distance{6.5};
  // interaction::DialogueConfig
  std::uint64_t attending_timeout{150};
  std::uint64_t sequence_gap{36};
  std::uint64_t confirm_timeout{90};
  std::uint64_t execute_ticks{48};
  std::uint64_t abort_ticks{16};
  // interaction::InteractionServiceConfig
  std::uint32_t observation_queue{256};
  // coordination::CoordinationConfig + ArbitrationPolicy
  std::uint32_t cells{64};
  std::uint64_t grant_ttl{600};
  std::uint32_t fleet_queue{1024};
  std::uint64_t retry_backoff{64};
  std::uint64_t retry_backoff_max{512};
  std::uint32_t fairness_boost_per_loss{1};
  std::uint32_t fairness_boost_cap{8};

  [[nodiscard]] bool operator==(const RunConfigRecord&) const = default;
};

/// One observation as processed by the dialogue worker (frame or abort).
/// This is the interaction layer's replayable input stream.
struct ObservationRecord {
  std::uint32_t stream_id{0};
  std::uint64_t sequence{0};
  std::uint8_t sign{0};       ///< signs::HumanSign
  std::uint8_t abort{0};      ///< 1 = external abort, not a frame
  double confidence{0.0};

  [[nodiscard]] bool operator==(const ObservationRecord&) const = default;
};

/// interaction::SignEvent on the wire.
struct SignEventRecord {
  std::uint32_t stream_id{0};
  std::uint8_t kind{0};   ///< interaction::SignEventKind
  std::uint8_t label{0};  ///< signs::HumanSign
  std::uint64_t onset_seq{0};
  std::uint64_t end_seq{0};
  double confidence{0.0};

  [[nodiscard]] bool operator==(const SignEventRecord&) const = default;
};

/// interaction::AckAction on the wire (the event literal rides as
/// length-prefixed bytes; it mirrors the transcript entry).
struct TransitionRecord {
  std::uint32_t stream_id{0};
  std::uint8_t from{0};  ///< interaction::DialogueState
  std::uint8_t to{0};
  std::uint8_t set_ring{0};
  std::uint8_t ring{0};         ///< drone::RingMode
  std::uint8_t fly_pattern{0};
  std::uint8_t pattern{0};      ///< drone::PatternType
  std::uint8_t command{0};      ///< interaction::DroneCommandKind
  std::uint64_t tick{0};
  std::string event;

  [[nodiscard]] bool operator==(const TransitionRecord&) const = default;
};

/// protocol::OutcomeRecord on the wire.
struct OutcomeRecordWire {
  std::uint8_t outcome{0};  ///< protocol::Outcome
  std::uint32_t stream_id{0};
  std::uint64_t final_sequence{0};

  [[nodiscard]] bool operator==(const OutcomeRecordWire&) const = default;
};

/// CoordinationService::FleetEvent on the wire — one record per event the
/// coordination worker processed, in processing order: the coordination
/// layer's replayable input stream. Unused fields for a given kind are
/// zero (the in-memory struct defaults), so encoding is canonical.
struct FleetEventRecord {
  std::uint8_t kind{0};  ///< CoordinationService::EventKind
  std::uint32_t drone_id{0};
  std::uint64_t sequence{0};
  std::uint8_t to{0};          ///< interaction::DialogueState (kTransition)
  std::uint8_t outcome{0};     ///< protocol::Outcome (kOutcome)
  std::uint8_t label{0};       ///< signs::HumanSign (kSignEvent)
  std::uint8_t event_kind{0};  ///< interaction::SignEventKind (kSignEvent)
  // DroneDescriptor (kRegister)
  std::uint32_t descriptor_drone_id{0};
  std::int32_t descriptor_cell{0};
  std::int32_t descriptor_human_id{0};
  double descriptor_battery_soc{1.0};
  double battery_soc{1.0};  ///< kBattery

  [[nodiscard]] bool operator==(const FleetEventRecord&) const = default;
};

/// coordination::GrantUpdate on the wire (one registry mutation as seen by
/// the registry observer — the grant log).
struct GrantUpdateRecord {
  std::int32_t cell{0};
  std::uint8_t state{0};  ///< coordination::GrantState
  std::uint32_t holder{0};
  std::uint64_t granted_seq{0};
  std::uint64_t expires_seq{0};
  std::uint32_t renewals{0};
  std::uint8_t conflict{0};

  [[nodiscard]] bool operator==(const GrantUpdateRecord&) const = default;
};

/// coordination::ArbitrationDecision on the wire.
struct ArbitrationRecord {
  std::uint32_t loser{0};
  std::uint32_t winner{0};
  std::int32_t human_id{0};
  std::uint64_t sequence{0};
  std::uint64_t retry_at{0};
  std::uint8_t reason{0};  ///< coordination::AbortReason

  [[nodiscard]] bool operator==(const ArbitrationRecord&) const = default;
};

/// One drone's final orchard::PlanHint (cell lists are length-prefixed).
struct PlanHintRecord {
  std::uint32_t drone_id{0};
  std::vector<std::int32_t> granted_cells;
  std::vector<std::int32_t> blocked_cells;

  [[nodiscard]] bool operator==(const PlanHintRecord&) const = default;
};

/// FNV-1a 64 digest of one stream's protocol::Transcript (entry count for
/// cheap divergence triage). "Bit-identical transcripts" is asserted by
/// digest equality — the transcript itself stays in memory.
struct TranscriptDigestRecord {
  std::uint32_t stream_id{0};
  std::uint32_t entries{0};
  std::uint64_t digest{0};

  [[nodiscard]] bool operator==(const TranscriptDigestRecord&) const = default;
};

/// One cell's final coordination::GrantRecord.
struct GrantSlotRecord {
  std::int32_t cell{0};
  std::uint8_t state{0};  ///< coordination::GrantState
  std::uint32_t holder{0};
  std::uint64_t granted_seq{0};
  std::uint64_t expires_seq{0};
  std::uint32_t renewals{0};

  [[nodiscard]] bool operator==(const GrantSlotRecord&) const = default;
};

/// Journal trailer: a journal without a matching end record is truncated.
struct JournalEndRecord {
  std::uint64_t record_count{0};  ///< records before this one

  [[nodiscard]] bool operator==(const JournalEndRecord&) const = default;
};

/// One named counter total inside a MetricSnapshotRecord.
struct MetricSnapshotEntry {
  std::string name;
  std::uint64_t value{0};

  [[nodiscard]] bool operator==(const MetricSnapshotEntry&) const = default;
};

/// v2: totals of the replay-deterministic telemetry counters at a
/// deterministic checkpoint (JournalRecorder::finalize). Entries are
/// sorted by name so encoding is canonical; replaying the journal must
/// reproduce the same totals bit-exactly (the replay test's gate).
struct MetricSnapshotRecord {
  std::vector<MetricSnapshotEntry> entries;

  [[nodiscard]] bool operator==(const MetricSnapshotRecord&) const = default;
};

/// Any parsed record. The variant index is NOT the wire type id — use
/// record_type().
using AnyRecord =
    std::variant<RunConfigRecord, ObservationRecord, SignEventRecord,
                 TransitionRecord, OutcomeRecordWire, FleetEventRecord,
                 GrantUpdateRecord, ArbitrationRecord, PlanHintRecord,
                 TranscriptDigestRecord, GrantSlotRecord, JournalEndRecord,
                 MetricSnapshotRecord>;

[[nodiscard]] RecordType record_type(const AnyRecord& record) noexcept;

// ------------------------------------------------------------- encoding ---

/// Appends `record`, fully enveloped (header + payload + CRC16), to `out`.
/// Encoding is canonical: equal records produce equal bytes.
void encode(std::vector<std::uint8_t>& out, const AnyRecord& record);

/// Convenience: the enveloped bytes of a single record.
[[nodiscard]] std::vector<std::uint8_t> encode_one(const AnyRecord& record);

// ------------------------------------------------------------- decoding ---

enum class WireErrorCode : std::uint8_t {
  kNone = 0,
  kTruncated,      ///< buffer ends inside an envelope header or body
  kBadMagic,       ///< envelope does not start with kWireMagic
  kBadVersion,     ///< record from a different (e.g. future) wire version
  kBadRecordType,  ///< record type this version does not know
  kBadLength,      ///< declared payload length impossible (overruns buffer
                   ///< or exceeds kMaxPayloadSize)
  kBadCrc,         ///< checksum mismatch (bit corruption)
  kBadPayload,     ///< payload malformed: wrong size for the type, inner
                   ///< length overrun, or out-of-range enum value
};

[[nodiscard]] constexpr const char* to_string(WireErrorCode code) noexcept {
  switch (code) {
    case WireErrorCode::kNone: return "None";
    case WireErrorCode::kTruncated: return "Truncated";
    case WireErrorCode::kBadMagic: return "BadMagic";
    case WireErrorCode::kBadVersion: return "BadVersion";
    case WireErrorCode::kBadRecordType: return "BadRecordType";
    case WireErrorCode::kBadLength: return "BadLength";
    case WireErrorCode::kBadCrc: return "BadCrc";
    case WireErrorCode::kBadPayload: return "BadPayload";
  }
  return "?";
}

/// Every rejection names the byte offset it was detected at (envelope
/// start for envelope-level faults, the offending field for payload
/// faults) plus a human-readable reason.
struct WireError {
  WireErrorCode code{WireErrorCode::kNone};
  std::size_t offset{0};
  std::string message;
};

enum class ParseResult : std::uint8_t {
  kOk = 0,   ///< one record parsed; offset advanced past it
  kEnd,      ///< clean end of buffer (offset == size)
  kError,    ///< malformed input; `error` filled, offset unchanged
};

/// Parses the record starting at `offset`. On kOk, `out` holds the record
/// and `offset` is advanced to the next envelope. Never throws, never
/// reads past `buffer`, never yields out-of-range enum bytes.
[[nodiscard]] ParseResult parse_record(std::span<const std::uint8_t> buffer,
                                       std::size_t& offset, AnyRecord& out,
                                       WireError& error);

/// Parses a whole buffer. Returns false (and the offending offset) on the
/// first malformed record; `out` keeps everything parsed before it.
[[nodiscard]] bool parse_all(std::span<const std::uint8_t> buffer,
                             std::vector<AnyRecord>& out, WireError& error);

}  // namespace hdc::protocol::wire
