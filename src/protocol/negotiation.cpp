#include "protocol/negotiation.hpp"

#include <algorithm>

namespace hdc::protocol {

SessionResult run_negotiation(DroneNegotiator& negotiator, HumanResponder& human,
                              SignChannel& sign_channel, PatternChannel& pattern_channel,
                              const SessionTiming& timing) {
  SessionResult result;
  negotiator.begin();

  double t = 0.0;
  double pattern_left = 0.0;
  std::optional<drone::PatternType> active_pattern;

  while (!negotiator.finished() && t < timing.max_session_s) {
    t += timing.tick_s;

    // Pattern execution model: a commanded pattern simply takes its nominal
    // duration.
    if (active_pattern.has_value()) {
      pattern_left -= timing.tick_s;
      if (pattern_left <= 0.0) active_pattern.reset();
    }

    // Human reads the drone (only patterns currently being flown).
    const std::optional<drone::PatternType> seen_pattern =
        pattern_channel.sense(active_pattern);
    const signs::HumanSign displayed = human.step(timing.tick_s, seen_pattern);

    // Drone reads the human.
    const std::optional<signs::HumanSign> seen_sign = sign_channel.sense(displayed);

    const NegotiatorCommand command =
        negotiator.step(timing.tick_s, seen_sign, active_pattern.has_value());
    if (command.kind == NegotiatorCommand::Kind::kFlyPattern) {
      active_pattern = command.pattern;
      pattern_left = command.pattern == drone::PatternType::kPoke
                         ? timing.poke_duration_s
                         : timing.rectangle_duration_s;
      if (command.pattern == drone::PatternType::kPoke) ++result.pokes;
      if (command.pattern == drone::PatternType::kRectangleRequest) ++result.requests;
    }
  }

  result.outcome =
      negotiator.finished() ? negotiator.outcome() : Outcome::kNoAnswer;
  result.duration_s = t;

  // Merge the two transcripts by timestamp.
  result.transcript = negotiator.transcript();
  const Transcript& human_events = human.transcript();
  result.transcript.insert(result.transcript.end(), human_events.begin(),
                           human_events.end());
  std::stable_sort(result.transcript.begin(), result.transcript.end(),
                   [](const TranscriptEvent& a, const TranscriptEvent& b) {
                     return a.t < b.t;
                   });
  return result;
}

}  // namespace hdc::protocol
