// Pattern gallery: generates all seven flight patterns (three standard +
// four communicative), flies each on the simulated airframe, writes the
// trajectories as CSV for plotting, prints compact ASCII altitude/lateral
// traces, and classifies each trajectory back — demonstrating the paper's
// "unmistakable embodied statement" property.
//
//   $ ./pattern_gallery [output_dir]
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "drone/flight_pattern.hpp"
#include "drone/kinematics.hpp"
#include "util/table.hpp"

namespace {

using namespace hdc::drone;
using hdc::util::Vec3;

Trajectory fly(PatternType type, const Vec3& origin) {
  DroneKinematics kin;
  kin.mutable_state().position = origin;
  PatternExecutor executor(
      make_pattern(type, origin, {0.0, 1.0}, PatternParams{}, {8.0, 3.0, 0.0}));
  Trajectory trajectory;
  double t = 0.0;
  trajectory.push_back({t, origin});
  while (!executor.finished() && t < 240.0) {
    executor.step(kin, 0.02);
    t += 0.02;
    trajectory.push_back({t, kin.state().position});
  }
  return trajectory;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "patterns";
  std::filesystem::create_directories(out_dir);

  std::printf("=== flight pattern gallery ===\n");
  std::printf("trajectory CSVs -> %s/\n\n", out_dir.c_str());

  hdc::util::TextTable table({"pattern", "duration (s)", "path (m)", "classified",
                              "confidence"});
  for (const PatternType type : kAllPatterns) {
    const Vec3 origin =
        type == PatternType::kTakeOff ? Vec3{0, 0, 0} : Vec3{0, 0, 2.2};
    const Trajectory trajectory = fly(type, origin);

    // CSV for external plotting.
    hdc::util::CsvWriter csv(out_dir + "/" + std::string(to_string(type)) + ".csv");
    csv.write_row({"t", "x", "y", "z"});
    for (const TrajectorySample& s : trajectory) {
      csv.write_row({hdc::util::fmt(s.t, 3), hdc::util::fmt(s.position.x, 3),
                     hdc::util::fmt(s.position.y, 3), hdc::util::fmt(s.position.z, 3)});
    }

    const TrajectoryFeatures features = extract_features(trajectory);
    const PatternClassification verdict = classify_trajectory(trajectory);
    table.add_row({std::string(to_string(type)),
                   hdc::util::fmt(trajectory.back().t, 1),
                   hdc::util::fmt(features.path_length, 1),
                   std::string(to_string(verdict.type)),
                   hdc::util::fmt(verdict.confidence, 2)});

    // ASCII trace: altitude for vertical patterns, lateral offset for the
    // rest (the axis that carries the pattern's meaning).
    std::vector<double> trace;
    const bool vertical = type == PatternType::kTakeOff ||
                          type == PatternType::kLanding ||
                          type == PatternType::kNodYes;
    for (const TrajectorySample& s : trajectory) {
      trace.push_back(vertical ? s.position.z : s.position.x);
    }
    std::printf("%s (%s axis):\n", std::string(to_string(type)).c_str(),
                vertical ? "altitude" : "lateral");
    std::cout << hdc::util::ascii_plot(trace, 7, 72) << "\n";
  }
  table.print(std::cout);
  std::printf("\nEvery row classifying as itself = the vocabulary is mutually\n"
              "unmistakable, the property the paper demands of an embodied\n"
              "statement of intent.\n");
  return 0;
}
