// Orchard mission: the paper's full use case, end to end.
//
// A drone monitors fly traps in a cherry orchard (ref [9] scenario) while
// supervisors, workers and a visitor move between the trees. Whenever a
// human blocks a trap, the drone approaches to the safe stand-off distance,
// pokes for attention, flies the rectangle area-request, reads the answer
// sign through its camera (full render -> SAX recognition loop) and acts on
// it. Prints the mission event log and the final statistics report.
//
//   $ ./orchard_mission [rows] [trees_per_row] [workers] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/hdc_system.hpp"
#include "orchard/world.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hdc;

  orchard::WorldConfig config;
  config.layout.rows = argc > 1 ? std::atoi(argv[1]) : 3;
  config.layout.trees_per_row = argc > 2 ? std::atoi(argv[2]) : 8;
  config.workers = argc > 3 ? std::atoi(argv[3]) : 2;
  config.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 0xfeed;
  config.visitors = 1;
  config.perception = orchard::PerceptionMode::kCamera;  // full vision loop

  std::printf("=== orchard trap-monitoring mission ===\n");
  std::printf("orchard: %d rows x %d trees, %d workers + 1 supervisor + %d visitor\n",
              config.layout.rows, config.layout.trees_per_row, config.workers,
              config.visitors);

  const core::HdcSystem system;
  orchard::World world(config, &system);
  std::printf("traps to read: %zu, drone base at (%.1f, %.1f)\n\n",
              world.traps().size(), world.map().base_station().x,
              world.map().base_station().y);

  const orchard::MissionStats& stats = world.run(3600.0);

  std::printf("--- event log ---\n");
  for (const orchard::WorldEvent& event : world.events()) {
    std::printf("[%7.1f s] %s\n", event.t, event.text.c_str());
  }

  std::printf("\n--- mission report ---\n");
  util::TextTable report({"metric", "value"});
  report.add_row({"mission phase", std::string(to_string(world.mission().phase()))});
  report.add_row({"mission time", util::fmt(stats.mission_time_s, 1) + " s"});
  report.add_row({"traps read", std::to_string(stats.traps_read) + " / " +
                                    std::to_string(stats.traps_total)});
  report.add_row({"traps skipped", std::to_string(stats.traps_skipped)});
  report.add_row({"negotiations", std::to_string(stats.negotiations)});
  report.add_row({"  granted", std::to_string(stats.granted)});
  report.add_row({"  denied", std::to_string(stats.denied)});
  report.add_row({"  no attention", std::to_string(stats.no_attention)});
  report.add_row({"  no answer", std::to_string(stats.no_answer)});
  report.add_row({"distance flown", util::fmt(stats.distance_flown_m, 0) + " m"});
  report.add_row({"energy used", util::fmt(stats.energy_used_wh, 1) + " Wh"});
  report.add_row(
      {"battery remaining",
       util::fmt(world.drone().battery().state_of_charge() * 100.0, 0) + " %"});
  report.add_row({"traps needing spray", std::to_string(stats.traps_needing_spray)});
  report.print(std::cout);

  std::printf("\n--- trap readings (capture counts; spray threshold %d) ---\n",
              orchard::FlyTrap::kSprayThreshold);
  for (const auto& [tree, count] : stats.trap_readings) {
    std::printf("  tree %2d: %3d captures%s\n", tree, count,
                count >= orchard::FlyTrap::kSprayThreshold ? "  << spray" : "");
  }
  return world.mission().done() ? 0 : 1;
}
