// LED signal demo: the drone->human indicator vocabulary over a full
// flight, printed as a timeline of the 10-LED all-round ring (and the
// deprecated vertical array, so its confusability is visible).
//
// Sequence: power-on (fail-safe all-red) -> preflight -> take-off palette
// -> navigation colours while flying a square route (watch the sectors
// rotate with the course) -> an injected fault (all-red) -> recovery ->
// landing palette -> touch-down, lights out.
//
//   $ ./led_signal_demo
#include <cstdio>

#include "drone/drone.hpp"

namespace {

using namespace hdc::drone;

void show(const Drone& drone, double t, const char* note) {
  std::printf("[%6.1f s] ring %-19s  legs %s  %-12s alt %4.1f m  %s\n", t,
              drone.led_ring().to_line().c_str(),
              drone.vertical_array().to_line().c_str(), to_string(drone.phase()),
              drone.state().position.z, note);
}

void run_for(Drone& drone, double& t, double seconds, const char* note,
             double print_every = 1.0) {
  double next_print = 0.0;
  for (double local = 0.0; local < seconds; local += 0.02) {
    drone.step(0.02);
    t += 0.02;
    if (local >= next_print) {
      show(drone, t, note);
      next_print += print_every;
    }
  }
}

}  // namespace

int main() {
  std::printf("=== LED signalling demo (ring: R=red G=green W=white A=amber "
              ".=off) ===\n\n");
  Drone drone;
  double t = 0.0;

  drone.step(0.02);
  show(drone, t, "power-on: fail-safe all-red (paper: default setting)");

  drone.preflight_complete();
  drone.command_pattern(PatternType::kTakeOff);
  run_for(drone, t, 3.5, "take-off palette (extension replacing vertical array)");

  // Fly a square: the navigation sectors must rotate with the course.
  const hdc::util::Vec3 corners[] = {
      {15.0, 0.0, 5.0}, {15.0, 15.0, 5.0}, {0.0, 15.0, 5.0}, {0.0, 0.0, 5.0}};
  const char* notes[] = {"flying east: green starboard(S), red port(N), white aft",
                         "flying north", "flying west", "flying south"};
  for (int leg = 0; leg < 4; ++leg) {
    drone.command_goto(corners[leg]);
    run_for(drone, t, 4.0, notes[leg], 2.0);
  }

  drone.inject_fault(true);
  run_for(drone, t, 2.0, "INJECTED FAULT: safety ring all-red", 1.0);
  drone.inject_fault(false);
  run_for(drone, t, 1.0, "fault cleared: back to navigation", 1.0);

  drone.command_pattern(PatternType::kLanding);
  run_for(drone, t, 4.0, "landing palette + vertical array sweep");
  run_for(drone, t, 1.0, "touch-down: rotors off, lights extinguished (Fig. 2)");

  std::printf("\nNote the two vertical-array animations (take-off vs landing)\n"
              "read as 'a moving dot' either way -- the ambiguity that made the\n"
              "paper's user study discard the component.\n");
  return 0;
}
