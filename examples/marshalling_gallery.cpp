// Marshalling gallery: a visual training manual for the sign vocabulary.
//
// Renders every marshalling sign from several viewpoints, writes the camera
// frames and extracted silhouettes as PGM images (viewable anywhere), and
// prints each view's SAX word so the symbolic representation can be
// inspected next to the picture it came from.
//
//   $ ./marshalling_gallery [output_dir]
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "imaging/filter.hpp"
#include "imaging/image_io.hpp"
#include "recognition/recognizer.hpp"
#include "signs/scene.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hdc;

  const std::string out_dir = argc > 1 ? argv[1] : "gallery";
  std::filesystem::create_directories(out_dir);

  const recognition::SaxSignRecognizer recognizer(recognition::RecognizerConfig{},
                                                  recognition::DatabaseBuildOptions{});

  std::printf("=== marshalling sign gallery ===\n");
  std::printf("writing frames + silhouettes to %s/\n\n", out_dir.c_str());

  util::TextTable table({"sign", "azimuth", "altitude", "SAX word", "recognised",
                         "distance"});
  for (const signs::HumanSign sign : signs::kAllSigns) {
    for (const double azimuth : {0.0, 30.0, 65.0}) {
      const signs::ViewGeometry view{3.5, 3.0, azimuth};
      const auto frame = signs::render_sign(sign, view, signs::RenderOptions{});

      const std::string stem = out_dir + "/" + std::string(signs::to_string(sign)) +
                               "_az" + std::to_string(static_cast<int>(azimuth));
      imaging::write_pgm(frame, stem + ".pgm");

      recognition::RecognitionTrace trace;
      const auto result = recognizer.recognize(frame, &trace);
      if (!trace.silhouette.empty()) {
        imaging::write_pgm(trace.silhouette, stem + "_mask.pgm");
      }
      table.add_row({std::string(signs::to_string(sign)), util::fmt(azimuth, 0),
                     util::fmt(view.altitude_m, 1), result.sax_word,
                     std::string(signs::to_string(result.sign)) +
                         (result.accepted ? "" : " (rejected)"),
                     util::fmt(result.distance, 2)});
    }
  }
  table.print(std::cout);

  std::printf(
      "\nreading the table: head-on (az 0) words match their canonical\n"
      "templates; by az 65 the words drift -- the dead-angle effect of the\n"
      "paper's Figure 4. Open the .pgm files to see why: the silhouette's\n"
      "limb lobes merge as the viewpoint swings around the signaller.\n");
  return 0;
}
