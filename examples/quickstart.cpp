// Quickstart: the smallest end-to-end use of the HDC library.
//
// 1. Build an HdcSystem (constructs the SAX recogniser and its canonical
//    sign database from the synthetic signaller).
// 2. Render what the drone camera would see of a human giving the "Yes"
//    marshalling sign at the paper's experiment geometry.
// 3. Run the recognition pipeline and print the verdict.
//
//   $ ./quickstart
#include <cstdio>

#include "core/hdc_system.hpp"
#include "signs/scene.hpp"

int main() {
  using namespace hdc;

  // 1. The system facade. Default configuration = the paper's pipeline:
  //    128-sample centroid-distance signature, PAA word length 16,
  //    alphabet 9, rotation-invariant matching with exact verification.
  const core::HdcSystem system;
  std::printf("HDC %s — human-drone communication library\n", core::kVersion);
  std::printf("sign database: %zu templates\n\n", system.recognizer().database().size());

  // 2. A camera frame: drone at 3.5 m altitude, 3 m away, head-on.
  const signs::ViewGeometry view{/*altitude_m=*/3.5, /*distance_m=*/3.0,
                                 /*relative_azimuth_deg=*/0.0};
  const imaging::GrayImage frame =
      signs::render_sign(signs::HumanSign::kYes, view, system.config().camera);

  // 3. Recognise.
  const recognition::RecognitionResult result = system.recognize(frame);
  std::printf("recognised : %s\n", std::string(signs::to_string(result.sign)).c_str());
  std::printf("accepted   : %s\n", result.accepted ? "yes" : "no");
  std::printf("distance   : %.3f (threshold %.1f)\n", result.distance,
              system.recognizer().config().accept_distance);
  std::printf("SAX word   : %s\n", result.sax_word.c_str());
  std::printf("latency    : %.2f ms\n", result.total_ms);

  // The same system also speaks drone->human: flight patterns + LED ring
  // (see led_signal_demo and pattern_gallery for those directions).
  return result.accepted && result.sign == signs::HumanSign::kYes ? 0 : 1;
}
