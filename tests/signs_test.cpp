#include <gtest/gtest.h>

#include <cmath>

#include "imaging/components.hpp"
#include "imaging/filter.hpp"
#include "imaging/morphology.hpp"
#include "signs/camera.hpp"
#include "signs/multi_drone_feed.hpp"
#include "signs/scene.hpp"
#include "signs/sign_poses.hpp"
#include "signs/skeleton.hpp"

namespace hdc::signs {
namespace {

using hdc::util::Vec2;
using hdc::util::Vec3;

TEST(SignVocabulary, NamesAndSets) {
  EXPECT_EQ(to_string(HumanSign::kYes), "Yes");
  EXPECT_EQ(to_string(HumanSign::kNo), "No");
  EXPECT_EQ(kCommunicativeSigns.size(), 3u);
  EXPECT_EQ(kAllSigns.size(), 4u);
}

TEST(Skeleton, BasicStructure) {
  const Skeleton s = build_skeleton(canonical_pose(HumanSign::kNeutral),
                                    BodyDimensions{}, {0.0, 0.0, 0.0}, 0.0);
  // torso + 2x2 legs + 2 clavicles + 2x3 arm segments = 13 capsules.
  EXPECT_EQ(s.capsules.size(), 13u);
  // Head sits near full height.
  EXPECT_NEAR(s.head_center.z, 1.75 - 0.11, 1e-9);
  // Feet at ground level.
  double min_z = 1e18;
  for (const Capsule& c : s.capsules) min_z = std::min({min_z, c.a.z, c.b.z});
  EXPECT_NEAR(min_z, 0.0, 1e-9);
}

TEST(Skeleton, FacingYawRotatesBody) {
  // With yaw pi/2 the body's lateral axis maps from +x to... rotate and
  // check the right shoulder moved as a rigid rotation about z.
  const BodyPose pose = canonical_pose(HumanSign::kYes);
  const Skeleton a = build_skeleton(pose, BodyDimensions{}, {0.0, 0.0, 0.0}, 0.0);
  const Skeleton b =
      build_skeleton(pose, BodyDimensions{}, {0.0, 0.0, 0.0}, hdc::util::kPi / 2);
  ASSERT_EQ(a.capsules.size(), b.capsules.size());
  for (std::size_t i = 0; i < a.capsules.size(); ++i) {
    // |p| is preserved by rotation about the z axis through the base.
    EXPECT_NEAR(a.capsules[i].a.xy().norm(), b.capsules[i].a.xy().norm(), 1e-9);
    EXPECT_NEAR(a.capsules[i].a.z, b.capsules[i].a.z, 1e-9);
  }
}

TEST(Skeleton, BaseTranslationApplies) {
  const Skeleton s = build_skeleton(canonical_pose(HumanSign::kNeutral),
                                    BodyDimensions{}, {5.0, -3.0, 0.0}, 0.0);
  EXPECT_NEAR(s.head_center.x, 5.0, 1e-9);
  EXPECT_NEAR(s.head_center.y, -3.0, 1e-9);
}

TEST(CanonicalPoses, AreDistinctPerSign) {
  const BodyPose yes = canonical_pose(HumanSign::kYes);
  const BodyPose no = canonical_pose(HumanSign::kNo);
  const BodyPose attention = canonical_pose(HumanSign::kAttentionGained);
  const BodyPose neutral = canonical_pose(HumanSign::kNeutral);
  // Yes: both arms high. No: asymmetric. Attention: bent elbow.
  EXPECT_GT(yes.left_arm.abduction_deg, 100.0);
  EXPECT_GT(yes.right_arm.abduction_deg, 100.0);
  EXPECT_GT(no.right_arm.abduction_deg, 100.0);
  EXPECT_LT(no.left_arm.abduction_deg, 60.0);
  EXPECT_GT(attention.right_arm.elbow_flexion_deg, 45.0);
  EXPECT_LT(neutral.right_arm.abduction_deg, 20.0);
}

TEST(PoseJitter, SamplingStaysInJointLimits) {
  hdc::util::Rng rng(3);
  const PoseJitter sloppy{40.0, 10.0};  // exaggerated to hit the clamps
  for (int i = 0; i < 200; ++i) {
    const BodyPose p = sample_pose(HumanSign::kYes, sloppy, rng);
    EXPECT_GE(p.right_arm.abduction_deg, 0.0);
    EXPECT_LE(p.right_arm.abduction_deg, 180.0);
    EXPECT_GE(p.left_arm.elbow_flexion_deg, 0.0);
    EXPECT_LE(p.left_arm.elbow_flexion_deg, 150.0);
  }
}

TEST(PoseJitter, ZeroJitterIsCanonical) {
  hdc::util::Rng rng(5);
  const BodyPose p = sample_pose(HumanSign::kNo, PoseJitter{0.0, 0.0}, rng);
  const BodyPose c = canonical_pose(HumanSign::kNo);
  EXPECT_DOUBLE_EQ(p.right_arm.abduction_deg, c.right_arm.abduction_deg);
  EXPECT_DOUBLE_EQ(p.lean_deg, 0.0);
}

TEST(PoseJitter, RolePresetsOrdered) {
  EXPECT_LT(supervisor_jitter().joint_stddev_deg, worker_jitter().joint_stddev_deg);
  EXPECT_LT(worker_jitter().joint_stddev_deg, visitor_jitter().joint_stddev_deg);
}

TEST(Camera, CenterProjectsToPrincipalPoint) {
  const PinholeCamera camera({0.0, 0.0, 1.0}, {0.0, 10.0, 1.0}, 640, 480, 60.0);
  const auto p = camera.project({0.0, 5.0, 1.0});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->pixel.x, 320.0, 1e-9);
  EXPECT_NEAR(p->pixel.y, 240.0, 1e-9);
  EXPECT_NEAR(p->depth, 5.0, 1e-9);
}

TEST(Camera, BehindCameraIsRejected) {
  const PinholeCamera camera({0.0, 0.0, 1.0}, {0.0, 10.0, 1.0}, 640, 480, 60.0);
  EXPECT_FALSE(camera.project({0.0, -5.0, 1.0}).has_value());
  EXPECT_FALSE(camera.project({0.0, 0.0, 1.0}).has_value());
}

TEST(Camera, UpInWorldIsUpInImage) {
  // A point above the optical axis must have a smaller v (image up).
  const PinholeCamera camera({0.0, 0.0, 1.0}, {0.0, 10.0, 1.0}, 640, 480, 60.0);
  const auto high = camera.project({0.0, 5.0, 2.0});
  const auto low = camera.project({0.0, 5.0, 0.0});
  ASSERT_TRUE(high && low);
  EXPECT_LT(high->pixel.y, low->pixel.y);
  // And +x world (right of view direction +y) maps to larger u... right of
  // the view along +y is +x? forward=(0,1,0), right=f x up=(1,0,0)... yes.
  const auto right = camera.project({2.0, 5.0, 1.0});
  ASSERT_TRUE(right.has_value());
  EXPECT_GT(right->pixel.x, 320.0);
}

TEST(Camera, RadiusScalesInverselyWithDepth) {
  const PinholeCamera camera({0.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, 640, 480, 60.0);
  const double near = camera.project_radius(0.5, 2.0);
  const double far = camera.project_radius(0.5, 8.0);
  EXPECT_NEAR(near / far, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(camera.project_radius(0.5, 0.0), 0.0);
}

TEST(Camera, ValidatesConstruction) {
  EXPECT_THROW(PinholeCamera({0, 0, 0}, {0, 1, 0}, 0, 480), std::invalid_argument);
  EXPECT_THROW(PinholeCamera({0, 0, 0}, {0, 1, 0}, 640, 480, 0.0), std::invalid_argument);
  EXPECT_THROW(PinholeCamera({0, 0, 0}, {0, 0, 0}, 640, 480), std::invalid_argument);
}

imaging::BinaryImage silhouette_of(const imaging::GrayImage& frame) {
  auto binary = imaging::otsu_threshold(imaging::invert(frame));
  binary = imaging::open(imaging::close(binary, 1), 1);
  return imaging::largest_component_mask(binary, 50);
}

TEST(Scene, RendersVisibleSignallerAtPaperGeometry) {
  for (const double altitude : {2.0, 3.5, 5.0}) {
    const imaging::GrayImage frame =
        render_sign(HumanSign::kYes, {altitude, 3.0, 0.0}, RenderOptions{});
    const auto area = imaging::foreground_area(silhouette_of(frame));
    EXPECT_GT(area, 400u) << "altitude " << altitude;
    EXPECT_LT(area, frame.pixel_count() / 4) << "altitude " << altitude;
  }
}

TEST(Scene, DeterministicWithoutRng) {
  const imaging::GrayImage a = render_sign(HumanSign::kNo, {3.5, 3.0, 20.0}, {});
  const imaging::GrayImage b = render_sign(HumanSign::kNo, {3.5, 3.0, 20.0}, {});
  EXPECT_EQ(a, b);
}

TEST(Scene, AzimuthForeshortensSilhouetteWidth) {
  // The physical cause of the paper's dead angle: at high relative azimuth
  // the silhouette narrows.
  const auto width_at = [](double azimuth) {
    const imaging::GrayImage frame =
        render_sign(HumanSign::kYes, {3.5, 3.0, azimuth}, RenderOptions{});
    const auto mask = silhouette_of(frame);
    int min_x = mask.width(), max_x = -1;
    for (int y = 0; y < mask.height(); ++y) {
      for (int x = 0; x < mask.width(); ++x) {
        if (mask(x, y) == imaging::kForeground) {
          min_x = std::min(min_x, x);
          max_x = std::max(max_x, x);
        }
      }
    }
    return max_x - min_x;
  };
  EXPECT_GT(width_at(0.0), width_at(60.0));
  EXPECT_GT(width_at(30.0), width_at(75.0));
}

TEST(Scene, NoiseAndClutterNeedRng) {
  RenderOptions options;
  options.noise_stddev = 8.0;
  options.clutter_count = 5;
  hdc::util::Rng rng(11);
  const imaging::GrayImage noisy =
      render_scene(canonical_pose(HumanSign::kNo), BodyDimensions{}, {3.5, 3.0, 0.0},
                   options, &rng);
  const imaging::GrayImage clean = render_sign(HumanSign::kNo, {3.5, 3.0, 0.0}, {});
  EXPECT_FALSE(noisy == clean);
  // Without an rng the options degrade gracefully to a clean render.
  const imaging::GrayImage no_rng =
      render_scene(canonical_pose(HumanSign::kNo), BodyDimensions{}, {3.5, 3.0, 0.0},
                   options, nullptr);
  EXPECT_EQ(no_rng, clean);
}

TEST(Scene, LightingAppliedInRender) {
  RenderOptions dim;
  dim.lighting_gain = 0.5;
  const imaging::GrayImage dark = render_sign(HumanSign::kNo, {3.5, 3.0, 0.0}, dim);
  const imaging::GrayImage normal = render_sign(HumanSign::kNo, {3.5, 3.0, 0.0}, {});
  EXPECT_LT(dark(0, 0), normal(0, 0));
}

TEST(MultiDroneFeed, DefaultPlanIsDeterministicAcrossTwoRuns) {
  // Two independently constructed feeds with the same config must render
  // bit-identical frame sequences — the property every streaming test and
  // bench rests on.
  const MultiDroneFeedConfig config;
  const MultiDroneFeed a(config);
  const MultiDroneFeed b(config);
  for (std::size_t stream = 0; stream < config.streams; ++stream) {
    for (std::uint64_t tick = 0; tick < 10; ++tick) {
      const FramePlan plan_a = a.plan(stream, tick);
      const FramePlan plan_b = b.plan(stream, tick);
      EXPECT_EQ(plan_a.sign, plan_b.sign);
      EXPECT_EQ(plan_a.view.altitude_m, plan_b.view.altitude_m);
      EXPECT_EQ(plan_a.view.relative_azimuth_deg, plan_b.view.relative_azimuth_deg);
      EXPECT_EQ(a.render_frame(stream, tick), b.render_frame(stream, tick));
    }
  }
}

TEST(MultiDroneFeed, ScriptedScheduleIsDeterministicAndBitIdentical) {
  MultiDroneFeedConfig config;
  config.streams = 2;
  config.scripts = {
      {{HumanSign::kNeutral, 3, 0.0},
       {HumanSign::kAttentionGained, 4, 0.0},
       {HumanSign::kAttentionGained, 1, 60.0},  // scripted oblique noise
       {HumanSign::kYes, 5, 0.0}},
      {{HumanSign::kNo, 2, 0.0}, {HumanSign::kNeutral, 2, 0.0}},
  };
  const MultiDroneFeed a(config);
  const MultiDroneFeed b(config);
  ASSERT_EQ(a.script_period(0), 13u);
  ASSERT_EQ(a.script_period(1), 4u);

  // Same script -> bit-identical frames across two runs, both via
  // render_frame and via the prerender cache path.
  for (std::size_t stream = 0; stream < 2; ++stream) {
    const std::size_t period = static_cast<std::size_t>(a.script_period(stream));
    const auto frames_a = a.prerender(stream, 2 * period);
    const auto frames_b = b.prerender(stream, 2 * period);
    ASSERT_EQ(frames_a.size(), frames_b.size());
    for (std::size_t i = 0; i < frames_a.size(); ++i) {
      EXPECT_EQ(frames_a[i], frames_b[i]) << "stream " << stream << " tick " << i;
      EXPECT_EQ(frames_a[i], a.render_frame(stream, i));
      // The schedule wraps: tick i and i + period see the same frame.
      EXPECT_EQ(a.render_frame(stream, i),
                a.render_frame(stream, i + 2 * period));
    }
  }

  // The plan follows the schedule steps and applies the azimuth offset on
  // top of the stream's base offset.
  EXPECT_EQ(a.plan(0, 0).sign, HumanSign::kNeutral);
  EXPECT_EQ(a.plan(0, 3).sign, HumanSign::kAttentionGained);
  EXPECT_EQ(a.plan(0, 7).sign, HumanSign::kAttentionGained);
  EXPECT_EQ(a.plan(0, 7).view.relative_azimuth_deg,
            a.plan(0, 3).view.relative_azimuth_deg + 60.0);
  EXPECT_EQ(a.plan(0, 8).sign, HumanSign::kYes);
  // Scripted mode pins the altitude per stream.
  EXPECT_EQ(a.plan(0, 0).view.altitude_m, a.plan(0, 12).view.altitude_m);
}

TEST(MultiDroneFeed, ValidatesScriptsAndStreams) {
  MultiDroneFeedConfig config;
  config.streams = 0;
  EXPECT_THROW(MultiDroneFeed{config}, std::invalid_argument);
  config = {};
  config.altitudes.clear();
  EXPECT_THROW(MultiDroneFeed{config}, std::invalid_argument);
  config = {};
  config.scripts = {{}};  // empty schedule
  EXPECT_THROW(MultiDroneFeed{config}, std::invalid_argument);
  config = {};
  config.scripts = {{{HumanSign::kYes, 0, 0.0}}};  // zero-tick step
  EXPECT_THROW(MultiDroneFeed{config}, std::invalid_argument);
  const MultiDroneFeed feed{MultiDroneFeedConfig{}};
  EXPECT_THROW((void)feed.plan(99, 0), std::out_of_range);
  EXPECT_THROW((void)feed.script_period(99), std::out_of_range);
  EXPECT_THROW((void)feed.script_period(0), std::logic_error);
}

TEST(ViewCamera, PlacedAtRequestedGeometry) {
  const ViewGeometry view{4.0, 3.0, 30.0};
  const PinholeCamera camera = make_view_camera(view, BodyDimensions{}, RenderOptions{});
  EXPECT_NEAR(camera.position().z, 4.0, 1e-9);
  EXPECT_NEAR(camera.position().xy().norm(), 3.0, 1e-9);
  // Azimuth measured from the facing axis (+y).
  const double azimuth =
      std::atan2(camera.position().x, camera.position().y);
  EXPECT_NEAR(hdc::util::rad_to_deg(azimuth), 30.0, 1e-9);
}

}  // namespace
}  // namespace hdc::signs
