#include "drone/led_ring.hpp"

#include <gtest/gtest.h>

#include "drone/vertical_array.hpp"
#include "util/geometry.hpp"

namespace hdc::drone {
namespace {

using hdc::util::deg_to_rad;

TEST(LedRing, BootsInDangerAllRed) {
  // The paper's fail-safe default: all-red until proven healthy.
  const LedRing ring;
  EXPECT_EQ(ring.mode(), RingMode::kDanger);
  for (const LedColor led : ring.leds()) EXPECT_EQ(led, LedColor::kRed);
}

TEST(LedRing, DangerAndAllGreenAndOff) {
  LedRing ring;
  ring.set_mode(RingMode::kAllGreen);
  for (const LedColor led : ring.leds()) EXPECT_EQ(led, LedColor::kGreen);
  ring.set_mode(RingMode::kOff);
  for (const LedColor led : ring.leds()) EXPECT_EQ(led, LedColor::kOff);
  ring.set_mode(RingMode::kDanger);
  for (const LedColor led : ring.leds()) EXPECT_EQ(led, LedColor::kRed);
}

TEST(LedRing, NavigationSectorColors) {
  // Relative bearing 0 = dead ahead -> within the port sector boundary
  // (0 is shared; the implementation assigns red at exactly 0).
  EXPECT_EQ(LedRing::navigation_color(deg_to_rad(30.0)), LedColor::kRed);     // port
  EXPECT_EQ(LedRing::navigation_color(deg_to_rad(-30.0)), LedColor::kGreen);  // starboard
  EXPECT_EQ(LedRing::navigation_color(deg_to_rad(170.0)), LedColor::kWhite);  // aft
  EXPECT_EQ(LedRing::navigation_color(deg_to_rad(-170.0)), LedColor::kWhite);
  EXPECT_EQ(LedRing::navigation_color(deg_to_rad(109.0)), LedColor::kRed);
  EXPECT_EQ(LedRing::navigation_color(deg_to_rad(111.0)), LedColor::kWhite);
}

TEST(LedRing, SectorPartitionIsComplete) {
  // Every bearing maps to exactly one of the three navigation colours.
  for (int deg = -180; deg <= 180; ++deg) {
    const LedColor color = LedRing::navigation_color(deg_to_rad(deg));
    EXPECT_TRUE(color == LedColor::kRed || color == LedColor::kGreen ||
                color == LedColor::kWhite)
        << "bearing " << deg;
  }
}

TEST(LedRing, NavigationFollowsCourse) {
  LedRing ring;
  ring.set_mode(RingMode::kNavigation);
  ring.set_course(0.0);  // flying east (+x)
  const auto east = ring.leds();
  // LED 0 points east = dead ahead -> port boundary red; the LED at
  // azimuth 180 deg (index 5) points aft -> white.
  EXPECT_EQ(east[0], LedColor::kRed);
  EXPECT_EQ(east[5], LedColor::kWhite);
  // LEDs just left of course (counter-clockwise, small positive azimuth)
  // are port/red; just right are starboard/green.
  EXPECT_EQ(east[1], LedColor::kRed);    // azimuth 36 deg
  EXPECT_EQ(east[9], LedColor::kGreen);  // azimuth -36 deg

  // Rotating the course rotates the display with it.
  ring.set_course(deg_to_rad(72.0));  // two LED pitches
  const auto rotated = ring.leds();
  for (std::size_t i = 0; i < LedRing::kLedCount; ++i) {
    EXPECT_EQ(rotated[(i + 2) % LedRing::kLedCount], east[i]) << i;
  }
}

TEST(LedRing, NavigationSectorCounts) {
  // With 110-deg side sectors and 10 LEDs: 3-4 red, 3-4 green, 2-4 white.
  LedRing ring;
  ring.set_mode(RingMode::kNavigation);
  for (int course_deg = 0; course_deg < 360; course_deg += 15) {
    ring.set_course(deg_to_rad(course_deg));
    int red = 0, green = 0, white = 0;
    for (const LedColor led : ring.leds()) {
      if (led == LedColor::kRed) ++red;
      if (led == LedColor::kGreen) ++green;
      if (led == LedColor::kWhite) ++white;
    }
    EXPECT_EQ(red + green + white, 10) << course_deg;
    EXPECT_GE(red, 3) << course_deg;
    EXPECT_LE(red, 4) << course_deg;
    EXPECT_GE(green, 3) << course_deg;
    EXPECT_LE(green, 4) << course_deg;
    EXPECT_GE(white, 2) << course_deg;
    EXPECT_LE(white, 4) << course_deg;
  }
}

TEST(LedRing, TakeoffLandingPalettesAnimate) {
  LedRing ring;
  ring.set_mode(RingMode::kTakeoff);
  int green = 0, white = 0;
  for (const LedColor led : ring.leds()) {
    if (led == LedColor::kGreen) ++green;
    if (led == LedColor::kWhite) ++white;
  }
  EXPECT_EQ(green, 9);
  EXPECT_EQ(white, 1);
  // The white head moves as the animation clock advances.
  const auto before = ring.leds();
  ring.tick(0.35);
  const auto after = ring.leds();
  EXPECT_NE(before, after);

  ring.set_mode(RingMode::kLanding);
  int amber = 0;
  for (const LedColor led : ring.leds()) {
    if (led == LedColor::kAmber) ++amber;
  }
  EXPECT_EQ(amber, 9);
}

TEST(LedRing, ToLineRendersTenSymbols) {
  LedRing ring;
  const std::string line = ring.to_line();
  // 10 symbols + 9 separators.
  EXPECT_EQ(line.size(), 19u);
  EXPECT_EQ(line, "R R R R R R R R R R");
}

TEST(LedRing, LedAzimuthSpacing) {
  EXPECT_DOUBLE_EQ(LedRing::led_azimuth(0), 0.0);
  EXPECT_NEAR(LedRing::led_azimuth(5), hdc::util::kPi, 1e-12);
  EXPECT_NEAR(LedRing::led_azimuth(1), hdc::util::kTwoPi / 10.0, 1e-12);
}

TEST(ColorNames, Strings) {
  EXPECT_STREQ(to_string(LedColor::kRed), "red");
  EXPECT_STREQ(to_string(RingMode::kNavigation), "Navigation");
}

// ------------------------------------------------- vertical array --------

TEST(VerticalArray, OffByDefault) {
  const VerticalLedArray array;
  for (bool lit : array.states()) EXPECT_FALSE(lit);
}

TEST(VerticalArray, TakeoffSweepsBottomToTop) {
  VerticalLedArray array;
  array.set_animation(VerticalLedArray::Animation::kTakeoff);
  std::vector<std::size_t> sequence;
  for (int i = 0; i < 12; ++i) {
    const auto states = array.states();
    for (std::size_t j = 0; j < states.size(); ++j) {
      if (states[j]) sequence.push_back(j);
    }
    array.tick(1.0 / (1.5 * VerticalLedArray::kLedCount));
  }
  // The lit index is non-decreasing within one sweep period.
  bool saw_increase = false;
  for (std::size_t i = 1; i < sequence.size(); ++i) {
    if (sequence[i] > sequence[i - 1]) saw_increase = true;
  }
  EXPECT_TRUE(saw_increase);
  EXPECT_EQ(sequence.front(), 0u);  // starts at the bottom
}

TEST(VerticalArray, LandingSweepsTopToBottom) {
  VerticalLedArray array;
  array.set_animation(VerticalLedArray::Animation::kLanding);
  const auto states = array.states();
  EXPECT_TRUE(states[VerticalLedArray::kLedCount - 1]);  // starts at the top
}

TEST(VerticalArray, TakeoffAndLandingAreMirrorImages) {
  // The property the paper's user study flagged: at any instant the two
  // animations differ only by a flip — visually hard to tell apart, which
  // is why the component is deprecated.
  VerticalLedArray up, down;
  up.set_animation(VerticalLedArray::Animation::kTakeoff);
  down.set_animation(VerticalLedArray::Animation::kLanding);
  for (int i = 0; i < 10; ++i) {
    const auto u = up.states();
    const auto d = down.states();
    for (std::size_t j = 0; j < u.size(); ++j) {
      EXPECT_EQ(u[j], d[u.size() - 1 - j]);
    }
    up.tick(0.123);
    down.tick(0.123);
  }
}

TEST(VerticalArray, ToLineFormat) {
  VerticalLedArray array;
  array.set_animation(VerticalLedArray::Animation::kTakeoff);
  const std::string line = array.to_line();
  EXPECT_EQ(line.front(), '[');
  EXPECT_EQ(line.back(), ']');
  EXPECT_NE(line.find('#'), std::string::npos);
}

}  // namespace
}  // namespace hdc::drone
