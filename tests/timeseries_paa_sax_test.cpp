#include <gtest/gtest.h>

#include <cmath>

#include "timeseries/distance.hpp"
#include "timeseries/normalize.hpp"
#include "timeseries/paa.hpp"
#include "timeseries/sax.hpp"
#include "util/rng.hpp"

namespace hdc::timeseries {
namespace {

Series random_walk(std::size_t n, std::uint64_t seed) {
  hdc::util::Rng rng(seed);
  Series out;
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.gaussian();
    out.push_back(x);
  }
  return out;
}

// ---------------------------------------------------------------- PAA -----

TEST(Paa, ExactSegmentMeansWhenDivisible) {
  const Series in = {1.0, 3.0, 10.0, 20.0, -5.0, 5.0};
  const Series out = paa(in, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 15.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
}

TEST(Paa, FractionalBoundariesPreserveTotalMass) {
  // Sum of segment means * segment length must equal the series sum for any
  // n/w (mass preservation of the fractional-overlap formulation).
  const Series in = random_walk(17, 5);
  for (std::size_t w : {2u, 3u, 5u, 7u, 11u, 16u}) {
    const Series out = paa(in, w);
    double mass = 0.0;
    for (double v : out) mass += v * (static_cast<double>(in.size()) / w);
    double truth = 0.0;
    for (double v : in) truth += v;
    EXPECT_NEAR(mass, truth, 1e-9) << "w=" << w;
  }
}

TEST(Paa, SegmentsGeqLengthReturnsInput) {
  const Series in = {1.0, 2.0, 3.0};
  EXPECT_EQ(paa(in, 3), in);
  EXPECT_EQ(paa(in, 10), in);
}

TEST(Paa, InvalidArgsThrow) {
  EXPECT_THROW((void)paa({1.0}, 0), std::invalid_argument);
  EXPECT_TRUE(paa({}, 4).empty());
}

TEST(Paa, ExpandIsStepFunction) {
  const Series out = paa_expand({1.0, 2.0}, 6);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out, (Series{1.0, 1.0, 1.0, 2.0, 2.0, 2.0}));
}

TEST(Paa, DistanceLowerBoundsEuclidean) {
  // The PAA distance lower-bounds the true Euclidean distance — the key
  // pruning property from the SAX literature.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Series a = z_normalize(random_walk(128, seed * 2 + 1));
    const Series b = z_normalize(random_walk(128, seed * 2 + 2));
    for (std::size_t w : {4u, 8u, 16u, 32u}) {
      const double lower = paa_distance(paa(a, w), paa(b, w), a.size());
      const double truth = euclidean(a, b);
      EXPECT_LE(lower, truth + 1e-9) << "seed=" << seed << " w=" << w;
    }
  }
}

// ---------------------------------------------------------------- SAX -----

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447460685429), 1.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.9772498680518208), 2.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.0013498980316301), -3.0, 1e-5);
  EXPECT_THROW((void)inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW((void)inverse_normal_cdf(1.0), std::invalid_argument);
}

TEST(SaxBreakpoints, KnownValuesForSmallAlphabets) {
  // Classic table: a=3 -> {-0.43, 0.43}; a=4 -> {-0.67, 0, 0.67}.
  const auto b3 = sax_breakpoints(3);
  ASSERT_EQ(b3.size(), 2u);
  EXPECT_NEAR(b3[0], -0.4307, 1e-3);
  EXPECT_NEAR(b3[1], 0.4307, 1e-3);
  const auto b4 = sax_breakpoints(4);
  ASSERT_EQ(b4.size(), 3u);
  EXPECT_NEAR(b4[1], 0.0, 1e-9);
}

TEST(SaxBreakpoints, MonotoneAndSymmetric) {
  for (std::size_t a = kMinAlphabet; a <= kMaxAlphabet; ++a) {
    const auto b = sax_breakpoints(a);
    ASSERT_EQ(b.size(), a - 1);
    for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_NEAR(b[i], -b[b.size() - 1 - i], 1e-9);  // symmetry
    }
  }
  EXPECT_THROW((void)sax_breakpoints(1), std::invalid_argument);
  EXPECT_THROW((void)sax_breakpoints(kMaxAlphabet + 1), std::invalid_argument);
}

TEST(SaxConfig, SymbolMapping) {
  const SaxConfig config(8, 4);  // breakpoints -0.67, 0, 0.67
  EXPECT_EQ(config.symbol_index(-1.0), 0u);
  EXPECT_EQ(config.symbol_index(-0.5), 1u);
  EXPECT_EQ(config.symbol_index(0.5), 2u);
  EXPECT_EQ(config.symbol_index(1.0), 3u);
  EXPECT_EQ(SaxConfig::symbol_char(0), 'a');
  EXPECT_EQ(SaxConfig::symbol_char(3), 'd');
}

TEST(SaxConfig, CellDistanceAdjacentIsZero) {
  const SaxConfig config(8, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(config.cell_distance(i, i), 0.0);
    if (i + 1 < 6) {
      EXPECT_DOUBLE_EQ(config.cell_distance(i, i + 1), 0.0);
      EXPECT_DOUBLE_EQ(config.cell_distance(i + 1, i), 0.0);
    }
  }
  EXPECT_GT(config.cell_distance(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(config.cell_distance(0, 5), config.cell_distance(5, 0));
}

TEST(SaxEncoder, EncodesExpectedWord) {
  // A rising ramp z-normalises to increasing values: symbols must be
  // non-decreasing.
  Series ramp;
  for (int i = 0; i < 64; ++i) ramp.push_back(i);
  const SaxEncoder encoder(SaxConfig(8, 5));
  const SaxWord word = encoder.encode(ramp);
  ASSERT_EQ(word.text.size(), 8u);
  for (std::size_t i = 1; i < word.text.size(); ++i) {
    EXPECT_LE(word.text[i - 1], word.text[i]);
  }
  EXPECT_EQ(word.text.front(), 'a');
  EXPECT_EQ(word.text.back(), 'e');
  EXPECT_EQ(word.source_length, 64u);
}

TEST(SaxEncoder, EmptySeries) {
  const SaxEncoder encoder(SaxConfig(8, 5));
  const SaxWord word = encoder.encode({});
  EXPECT_TRUE(word.text.empty());
  EXPECT_EQ(word.source_length, 0u);
}

TEST(SaxEncoder, IdenticalWordsHaveZeroMindist) {
  const SaxEncoder encoder(SaxConfig(16, 8));
  const Series a = z_normalize(random_walk(128, 7));
  const SaxWord w = encoder.encode_normalized(a);
  EXPECT_DOUBLE_EQ(encoder.mindist(w, w), 0.0);
}

TEST(SaxEncoder, MindistLowerBoundsEuclidean) {
  // THE core SAX guarantee (enables sound pruning).
  const SaxEncoder encoder(SaxConfig(16, 10));
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const Series a = z_normalize(random_walk(128, 100 + seed));
    const Series b = z_normalize(random_walk(128, 200 + seed));
    const double lower = encoder.mindist(encoder.encode_normalized(a),
                                         encoder.encode_normalized(b));
    EXPECT_LE(lower, euclidean(a, b) + 1e-9) << "seed=" << seed;
  }
}

TEST(SaxEncoder, RotationInvariantMindistFindsPlantedShift) {
  const SaxEncoder encoder(SaxConfig(16, 8));
  const Series a = z_normalize(random_walk(128, 42));
  const Series b = rotate_left(a, 40);  // 40/128 of a turn = 5 word positions
  const SaxWord wa = encoder.encode_normalized(a);
  const SaxWord wb = encoder.encode_normalized(b);
  std::size_t shift = 0;
  const double d = encoder.mindist_rotation_invariant(wa, wb, &shift);
  // Rotating b's word back by 5 aligns it with a's word exactly (128/16 = 8
  // samples per symbol; the shift is a multiple of the symbol span).
  EXPECT_NEAR(d, 0.0, 1e-9);
  EXPECT_EQ(shift * 8, 128u - 40u);
  // And the invariant distance never exceeds the plain distance.
  EXPECT_LE(d, encoder.mindist(wa, wb) + 1e-12);
}

TEST(SaxEncoder, MindistValidatesInputs) {
  const SaxEncoder encoder(SaxConfig(8, 4));
  SaxWord a = encoder.encode(random_walk(64, 1));
  SaxWord b = encoder.encode(random_walk(32, 2));
  EXPECT_THROW((void)encoder.mindist(a, b), std::invalid_argument);
  SaxWord c = encoder.encode(random_walk(64, 3));
  c.text.pop_back();
  EXPECT_THROW((void)encoder.mindist(a, c), std::invalid_argument);
}

TEST(SaxEncoder, HammingDistance) {
  SaxWord a{"abcd", 16};
  SaxWord b{"abdd", 16};
  EXPECT_EQ(SaxEncoder::hamming(a, b), 1u);
  EXPECT_EQ(SaxEncoder::hamming(a, a), 0u);
  SaxWord c{"abc", 16};
  EXPECT_THROW((void)SaxEncoder::hamming(a, c), std::invalid_argument);
}

TEST(SaxEncoder, SymbolsEquiprobableOnGaussianData) {
  // The breakpoints cut N(0,1) into equiprobable regions, so symbols of
  // encoded white-Gaussian series must be near-uniform. Word length equals
  // the series length so PAA averaging does not reshape the distribution.
  const std::size_t alphabet = 6;
  const SaxEncoder encoder(SaxConfig(64, alphabet));
  hdc::util::Rng rng(123);
  std::vector<int> counts(alphabet, 0);
  int total = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Series series;
    for (int i = 0; i < 64; ++i) series.push_back(rng.gaussian());
    const SaxWord word = encoder.encode(series);
    for (char c : word.text) {
      ++counts[static_cast<std::size_t>(c - 'a')];
      ++total;
    }
  }
  const double expected = static_cast<double>(total) / alphabet;
  for (std::size_t i = 0; i < alphabet; ++i) {
    EXPECT_NEAR(counts[i], expected, expected * 0.12) << "symbol " << i;
  }
}

TEST(SaxConfigValidation, RejectsBadParameters) {
  EXPECT_THROW(SaxConfig(0, 5), std::invalid_argument);
  EXPECT_THROW(SaxConfig(8, 1), std::invalid_argument);
  EXPECT_THROW(SaxConfig(8, 99), std::invalid_argument);
}

/// Parameterised lower-bound property across (word_length, alphabet) grid —
/// the tightness ordering: larger alphabets give tighter (larger) bounds on
/// average, but the bound must always hold.
class MindistGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MindistGrid, LowerBoundHoldsEverywhere) {
  const auto [w, a] = GetParam();
  const SaxEncoder encoder(SaxConfig(w, a));
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Series x = z_normalize(random_walk(96, 300 + seed));
    const Series y = z_normalize(random_walk(96, 400 + seed));
    const double lower =
        encoder.mindist(encoder.encode_normalized(x), encoder.encode_normalized(y));
    EXPECT_LE(lower, euclidean(x, y) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MindistGrid,
    ::testing::Combine(::testing::Values<std::size_t>(4, 8, 16, 32),
                       ::testing::Values<std::size_t>(3, 5, 9, 15)));

}  // namespace
}  // namespace hdc::timeseries
