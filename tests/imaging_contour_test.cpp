#include "imaging/contour.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "imaging/draw.hpp"
#include "imaging/signature.hpp"
#include "timeseries/distance.hpp"
#include "timeseries/normalize.hpp"

namespace hdc::imaging {
namespace {

TEST(TraceBoundary, EmptyImageGivesEmptyContour) {
  const BinaryImage img(10, 10, kBackground);
  EXPECT_TRUE(trace_boundary(img).empty());
}

TEST(TraceBoundary, SinglePixel) {
  BinaryImage img(10, 10, kBackground);
  img(4, 5) = kForeground;
  const Contour contour = trace_boundary(img);
  ASSERT_EQ(contour.size(), 1u);
  EXPECT_EQ(contour[0], Vec2(4.0, 5.0));
}

TEST(TraceBoundary, RectanglePerimeter) {
  BinaryImage img(30, 30, kBackground);
  fill_rect(img, 5, 5, 14, 12, kForeground);  // 10x8 block
  const Contour contour = trace_boundary(img);
  // Boundary pixel count of a w x h solid block: 2w + 2h - 4.
  EXPECT_EQ(contour.size(), 2u * 10 + 2u * 8 - 4);
  // All points lie on the block border.
  for (const Vec2& p : contour) {
    const bool on_x_edge = p.x == 5.0 || p.x == 14.0;
    const bool on_y_edge = p.y == 5.0 || p.y == 12.0;
    EXPECT_TRUE(on_x_edge || on_y_edge) << p.x << "," << p.y;
  }
}

TEST(TraceBoundary, DiscBoundaryIsClosedRing) {
  BinaryImage img(60, 60, kBackground);
  fill_disc(img, {30.0, 30.0}, 18.0, kForeground);
  const Contour contour = trace_boundary(img);
  ASSERT_GT(contour.size(), 60u);
  // Every boundary point is ~18 px from the centre (the disc is rasterised
  // on pixel centres at +0.5, hence the 2 px slack).
  for (const Vec2& p : contour) {
    EXPECT_NEAR(p.distance_to({30.0, 30.0}), 18.0, 2.0);
  }
  // Consecutive points are 8-neighbours.
  for (std::size_t i = 0; i + 1 < contour.size(); ++i) {
    EXPECT_LE(std::abs(contour[i].x - contour[i + 1].x), 1.0);
    EXPECT_LE(std::abs(contour[i].y - contour[i + 1].y), 1.0);
  }
}

TEST(ContourMetrics, CentroidPerimeterArea) {
  BinaryImage img(40, 40, kBackground);
  fill_rect(img, 10, 10, 29, 29, kForeground);  // 20x20
  const Contour contour = trace_boundary(img);
  const Vec2 centroid = contour_centroid(contour);
  EXPECT_NEAR(centroid.x, 19.5, 0.1);
  EXPECT_NEAR(centroid.y, 19.5, 0.1);
  EXPECT_NEAR(contour_perimeter(contour), 4.0 * 19.0, 4.0);
  EXPECT_NEAR(contour_area(contour), 19.0 * 19.0, 15.0);
  EXPECT_DOUBLE_EQ(contour_area({}), 0.0);
  EXPECT_DOUBLE_EQ(contour_perimeter({{1.0, 1.0}}), 0.0);
}

TEST(ResampleArcLength, UniformSpacingOnSquare) {
  const Contour square = {{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}};
  const Contour resampled = resample_by_arc_length(square, 40);
  ASSERT_EQ(resampled.size(), 40u);
  // Consecutive samples are 1.0 apart (perimeter 40 / 40 samples).
  for (std::size_t i = 0; i + 1 < resampled.size(); ++i) {
    EXPECT_NEAR(resampled[i].distance_to(resampled[i + 1]), 1.0, 1e-9);
  }
  EXPECT_EQ(resampled[0], Vec2(0.0, 0.0));
}

TEST(ResampleArcLength, DegenerateInputs) {
  EXPECT_TRUE(resample_by_arc_length({}, 8).empty());
  const Contour point(1, Vec2{2.0, 3.0});
  const Contour out = resample_by_arc_length(point, 4);
  ASSERT_EQ(out.size(), 4u);
  for (const Vec2& p : out) EXPECT_EQ(p, Vec2(2.0, 3.0));
}

TEST(Signature, CircleIsNearlyFlat) {
  BinaryImage img(80, 80, kBackground);
  fill_disc(img, {40.0, 40.0}, 25.0, kForeground);
  const auto sig = centroid_distance_signature(trace_boundary(img), 64);
  ASSERT_EQ(sig.size(), 64u);
  const double mean = hdc::timeseries::mean(sig);
  for (double v : sig) EXPECT_NEAR(v, mean, 1.2);
}

TEST(Signature, SquareHasFourCornerLobes) {
  BinaryImage img(60, 60, kBackground);
  fill_rect(img, 15, 15, 44, 44, kForeground);
  const auto sig = centroid_distance_signature(trace_boundary(img), 128);
  // Count local maxima above the mean (corners).
  const double mean = hdc::timeseries::mean(sig);
  int lobes = 0;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    const double prev = sig[(i + sig.size() - 1) % sig.size()];
    const double next = sig[(i + 1) % sig.size()];
    if (sig[i] > mean && sig[i] >= prev && sig[i] > next) ++lobes;
  }
  EXPECT_EQ(lobes, 4);
}

TEST(Signature, RotationOfShapeIsCircularShiftOfSignature) {
  // THE property the paper's rotation-invariant matching relies on:
  // rotating the shape in the image plane circularly shifts its
  // centroid-distance signature.
  const auto render_L = [](double angle_rad) {
    BinaryImage img(120, 120, kBackground);
    // An L-shaped polygon (asymmetric, so rotation matters), rotated about
    // the image centre.
    const std::vector<Vec2> base = {{-15.0, -25.0}, {5.0, -25.0}, {5.0, 5.0},
                                    {25.0, 5.0},   {25.0, 25.0}, {-15.0, 25.0}};
    std::vector<Vec2> rotated;
    for (const Vec2& p : base) rotated.push_back(p.rotated(angle_rad) + Vec2{60.0, 60.0});
    fill_polygon(img, rotated, kForeground);
    return centroid_distance_signature(trace_boundary(img), 128);
  };
  const auto a = hdc::timeseries::z_normalize(render_L(0.0));
  const auto b = hdc::timeseries::z_normalize(render_L(1.1));
  const auto c = hdc::timeseries::z_normalize(render_L(2.6));
  ASSERT_EQ(a.size(), 128u);
  ASSERT_EQ(b.size(), 128u);
  // Rotation-invariant matching aligns the rotated shapes' signatures
  // tightly (raster noise only), for any rotation.
  EXPECT_LT(hdc::timeseries::euclidean_rotation_invariant(a, b), 2.0);
  EXPECT_LT(hdc::timeseries::euclidean_rotation_invariant(a, c), 2.0);
  // And it never exceeds the unshifted distance.
  EXPECT_LE(hdc::timeseries::euclidean_rotation_invariant(a, b),
            hdc::timeseries::euclidean(a, b) + 1e-9);
}

TEST(Signature, DegenerateContours) {
  EXPECT_TRUE(centroid_distance_signature({}, 64).empty());
  EXPECT_TRUE(centroid_distance_signature({{1.0, 1.0}, {2.0, 2.0}}, 64).empty());
  BinaryImage img(20, 20, kBackground);
  fill_disc(img, {10.0, 10.0}, 5.0, kForeground);
  EXPECT_TRUE(centroid_distance_signature(trace_boundary(img), 0).empty());
}

TEST(AngleSignature, MonotoneForConvexShape) {
  BinaryImage img(60, 60, kBackground);
  fill_disc(img, {30.0, 30.0}, 20.0, kForeground);
  const auto sig = centroid_angle_signature(trace_boundary(img), 64);
  ASSERT_EQ(sig.size(), 64u);
  // Unwrapped angle around a convex contour sweeps a full turn.
  EXPECT_NEAR(std::abs(sig.back() - sig.front()), 2.0 * M_PI, 0.5);
}

TEST(AspectNormalize, CancelsAnisotropicScaling) {
  // The same lobed shape rendered with different vertical squash (the
  // depression-angle effect) produces near-identical signatures once the
  // contour is aspect-normalised — and clearly different ones without.
  const auto render_L = [](double squash_y, bool aspect) {
    BinaryImage img(140, 140, kBackground);
    const std::vector<Vec2> base = {{-15.0, -25.0}, {5.0, -25.0}, {5.0, 5.0},
                                    {25.0, 5.0},   {25.0, 25.0}, {-15.0, 25.0}};
    std::vector<Vec2> scaled;
    for (const Vec2& p : base) {
      scaled.push_back({p.x * 2.0 + 70.0, p.y * 2.0 * squash_y + 70.0});
    }
    fill_polygon(img, scaled, kForeground);
    Contour c = trace_boundary(img);
    if (aspect) c = normalize_contour_aspect(c);
    return hdc::timeseries::z_normalize(centroid_distance_signature(c, 64));
  };
  const auto tall_norm = render_L(1.0, true);
  const auto squashed_norm = render_L(0.55, true);
  const auto tall_raw = render_L(1.0, false);
  const auto squashed_raw = render_L(0.55, false);
  const double with = hdc::timeseries::euclidean_rotation_invariant(tall_norm, squashed_norm);
  const double without = hdc::timeseries::euclidean_rotation_invariant(tall_raw, squashed_raw);
  EXPECT_LT(with, 1.5);
  EXPECT_LT(with, 0.6 * without);
}

TEST(AspectNormalize, BoundingBoxBecomesSquare) {
  Contour c = {{2.0, 3.0}, {8.0, 3.0}, {8.0, 30.0}, {2.0, 30.0}};
  const Contour n = normalize_contour_aspect(c, 100.0);
  double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
  for (const Vec2& p : n) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  EXPECT_NEAR(max_x - min_x, 100.0, 1e-9);
  EXPECT_NEAR(max_y - min_y, 100.0, 1e-9);
  // Degenerate contours pass through unchanged.
  const Contour flat = {{1.0, 5.0}, {9.0, 5.0}};
  EXPECT_EQ(normalize_contour_aspect(flat), flat);
}

}  // namespace
}  // namespace hdc::imaging
