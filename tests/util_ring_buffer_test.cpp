// BoundedRing: FIFO order, fill-to-capacity behaviour under each overflow
// policy (block / drop-oldest / reject), eviction/rejection accounting,
// close() semantics, and cross-thread per-stream sequence monotonicity
// under a multi-producer load.
#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace hdc::util {
namespace {

TEST(BoundedRing, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedRing<int>(0), std::invalid_argument);
}

TEST(BoundedRing, FifoOrderSingleThread) {
  BoundedRing<int> ring(4);
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(ring.push(v), PushOutcome::kEnqueued);
  }
  EXPECT_EQ(ring.size(), 4u);
  int out = -1;
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(BoundedRing, WrapAroundKeepsFifoOrder) {
  BoundedRing<int> ring(3);
  int out = -1;
  // Push/pop interleaved so head/tail wrap several times.
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(ring.push(2 * round), PushOutcome::kEnqueued);
    EXPECT_EQ(ring.push(2 * round + 1), PushOutcome::kEnqueued);
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, 2 * round);
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, 2 * round + 1);
  }
}

TEST(BoundedRing, PoppedCountAdvancesOnBothPopPaths) {
  // popped_count() is the stalled-shard watchdog's liveness signal: it
  // must advance once per successful pop() AND try_pop(), and never on a
  // failed try_pop, an eviction, or a rejection.
  BoundedRing<int> ring(4, OverflowPolicy::kDropOldest);
  EXPECT_EQ(ring.popped_count(), 0u);
  for (int v = 0; v < 4; ++v) ring.push(v);
  int out = -1;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(ring.popped_count(), 1u);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(ring.popped_count(), 2u);
  // Evictions churn the ring's contents but are not pops.
  ring.push(4);
  ring.push(5);
  ring.push(6);  // full again -> evicts the oldest
  const std::uint64_t before = ring.popped_count();
  EXPECT_EQ(before, 2u);
  // Drain; every success counts once, the final failed try_pop does not.
  while (ring.try_pop(out)) {
  }
  EXPECT_EQ(ring.popped_count(), before + 4);
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.popped_count(), before + 4);
}

TEST(BoundedRing, DropOldestEvictsExactlyTheOldest) {
  BoundedRing<int> ring(3, OverflowPolicy::kDropOldest);
  for (int v = 0; v < 3; ++v) ring.push(v);
  // Ring holds {0,1,2}; pushing 3 and 4 must evict 0 then 1.
  int evicted = -1;
  EXPECT_EQ(ring.push(3, &evicted), PushOutcome::kEvictedOldest);
  EXPECT_EQ(evicted, 0);
  EXPECT_EQ(ring.push(4, &evicted), PushOutcome::kEvictedOldest);
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(ring.evicted_count(), 2u);
  EXPECT_EQ(ring.rejected_count(), 0u);
  // Survivors are the newest three, still in order.
  int out = -1;
  for (const int expect : {2, 3, 4}) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(BoundedRing, RejectPolicyRefusesWhenFullAndCounts) {
  BoundedRing<int> ring(2, OverflowPolicy::kReject);
  EXPECT_EQ(ring.push(1), PushOutcome::kEnqueued);
  EXPECT_EQ(ring.push(2), PushOutcome::kEnqueued);
  EXPECT_EQ(ring.push(3), PushOutcome::kRejected);
  EXPECT_EQ(ring.push(4), PushOutcome::kRejected);
  EXPECT_EQ(ring.rejected_count(), 2u);
  EXPECT_EQ(ring.evicted_count(), 0u);
  EXPECT_EQ(ring.size(), 2u);
  // Space frees -> pushes succeed again.
  int out = -1;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(ring.push(5), PushOutcome::kEnqueued);
}

TEST(BoundedRing, BlockPolicyWaitsForSpace) {
  BoundedRing<int> ring(1, OverflowPolicy::kBlock);
  EXPECT_EQ(ring.push(1), PushOutcome::kEnqueued);
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(ring.push(2), PushOutcome::kEnqueued);  // blocks until pop
    second_pushed.store(true);
  });
  // The producer cannot complete until the consumer frees the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  int out = -1;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedRing, CloseWakesBlockedProducerWithClosed) {
  BoundedRing<int> ring(1, OverflowPolicy::kBlock);
  EXPECT_EQ(ring.push(1), PushOutcome::kEnqueued);
  std::atomic<bool> woke{false};
  std::thread producer([&] {
    EXPECT_EQ(ring.push(2), PushOutcome::kClosed);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ring.close();
  producer.join();
  EXPECT_TRUE(woke.load());
  // The consumer still drains what was queued before close...
  int out = -1;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 1);
  // ...then pop reports closed-and-empty.
  EXPECT_FALSE(ring.pop(out));
  // And any further push is refused.
  EXPECT_EQ(ring.push(9), PushOutcome::kClosed);
}

TEST(BoundedRing, CrossThreadPerStreamSequenceMonotonicity) {
  // 4 producers, one stream each, pushing numbered items through a small
  // ring under kBlock (lossless). The single consumer must observe every
  // stream's sequence strictly increasing and contiguous — FIFO admission
  // plus per-producer program order is exactly the guarantee the
  // PerceptionService ordering contract builds on.
  struct Item {
    std::uint32_t stream{0};
    std::uint64_t sequence{0};
  };
  constexpr std::size_t kStreams = 4;
  constexpr std::uint64_t kPerStream = 500;
  BoundedRing<Item> ring(8, OverflowPolicy::kBlock);

  std::vector<std::thread> producers;
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    producers.emplace_back([&ring, s] {
      for (std::uint64_t i = 0; i < kPerStream; ++i) {
        EXPECT_EQ(ring.push({s, i}), PushOutcome::kEnqueued);
      }
    });
  }

  std::vector<std::uint64_t> next_expected(kStreams, 0);
  Item item;
  for (std::uint64_t n = 0; n < kStreams * kPerStream; ++n) {
    ASSERT_TRUE(ring.pop(item));
    ASSERT_LT(item.stream, kStreams);
    EXPECT_EQ(item.sequence, next_expected[item.stream])
        << "stream " << item.stream << " out of order";
    ++next_expected[item.stream];
  }
  for (std::thread& t : producers) t.join();
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    EXPECT_EQ(next_expected[s], kPerStream);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(BoundedRing, DropOldestUnderConcurrentLoadAccountsEveryItem) {
  // Overload a tiny drop-oldest ring from several producers while the
  // consumer drains slowly-ish: every pushed item is either delivered or
  // counted evicted, and delivered items stay per-stream monotonic
  // (drop-oldest may skip sequences but never reorders).
  struct Item {
    std::uint32_t stream{0};
    std::uint64_t sequence{0};
  };
  constexpr std::size_t kStreams = 3;
  constexpr std::uint64_t kPerStream = 400;
  BoundedRing<Item> ring(4, OverflowPolicy::kDropOldest);

  std::atomic<std::uint64_t> evicted_seen{0};
  std::vector<std::thread> producers;
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    producers.emplace_back([&, s] {
      for (std::uint64_t i = 0; i < kPerStream; ++i) {
        Item evicted;
        if (ring.push({s, i}, &evicted) == PushOutcome::kEvictedOldest) {
          evicted_seen.fetch_add(1);
        }
      }
    });
  }

  std::vector<std::int64_t> last_seen(kStreams, -1);
  std::uint64_t delivered = 0;
  Item item;
  std::thread consumer([&] {
    while (ring.pop(item)) {
      ASSERT_LT(item.stream, kStreams);
      EXPECT_GT(static_cast<std::int64_t>(item.sequence), last_seen[item.stream]);
      last_seen[item.stream] = static_cast<std::int64_t>(item.sequence);
      ++delivered;
    }
  });
  for (std::thread& t : producers) t.join();
  ring.close();
  consumer.join();

  EXPECT_EQ(delivered + ring.evicted_count(), kStreams * kPerStream);
  EXPECT_EQ(evicted_seen.load(), ring.evicted_count());
  EXPECT_EQ(ring.rejected_count(), 0u);
}

TEST(BoundedRing, SetPolicyWakesBlockedProducerIntoNewPolicy) {
  BoundedRing<int> ring(1, OverflowPolicy::kBlock);
  EXPECT_EQ(ring.push(1), PushOutcome::kEnqueued);

  std::atomic<bool> producer_returned{false};
  PushOutcome outcome = PushOutcome::kEnqueued;
  int evicted = 0;
  std::thread producer([&] {
    outcome = ring.push(2, &evicted);
    producer_returned.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(producer_returned.load(std::memory_order_acquire))
      << "kBlock on a full ring must wait";

  // Dynamic backpressure flips the policy: the waiting producer must wake
  // and resolve under kDropOldest (evicting the oldest, not waiting on).
  ring.set_policy(OverflowPolicy::kDropOldest);
  producer.join();
  EXPECT_EQ(outcome, PushOutcome::kEvictedOldest);
  EXPECT_EQ(evicted, 1);

  int out = 0;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_EQ(ring.policy(), OverflowPolicy::kDropOldest);
}

TEST(BoundedRing, TryPushNeverBlocksUnderAnyPolicy) {
  // kBlock + full: refused immediately (this is what lets two workers feed
  // each other's rings without a blocking cycle). NOT counted as a policy
  // rejection — the caller owns the retry.
  {
    BoundedRing<int> ring(1, OverflowPolicy::kBlock);
    EXPECT_EQ(ring.try_push(1), PushOutcome::kEnqueued);
    EXPECT_EQ(ring.try_push(2), PushOutcome::kRejected);
    EXPECT_EQ(ring.rejected_count(), 0u);
    int out = 0;
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_EQ(ring.try_push(3), PushOutcome::kEnqueued);
  }
  // kDropOldest + full: evicts, same as push().
  {
    BoundedRing<int> ring(1, OverflowPolicy::kDropOldest);
    EXPECT_EQ(ring.try_push(1), PushOutcome::kEnqueued);
    int evicted = 0;
    EXPECT_EQ(ring.try_push(2, &evicted), PushOutcome::kEvictedOldest);
    EXPECT_EQ(evicted, 1);
  }
  // kReject + full: refused AND counted, same as push().
  {
    BoundedRing<int> ring(1, OverflowPolicy::kReject);
    EXPECT_EQ(ring.try_push(1), PushOutcome::kEnqueued);
    EXPECT_EQ(ring.try_push(2), PushOutcome::kRejected);
    EXPECT_EQ(ring.rejected_count(), 1u);
  }
  // Closed: kClosed, like push().
  {
    BoundedRing<int> ring(2, OverflowPolicy::kBlock);
    ring.close();
    EXPECT_EQ(ring.try_push(1), PushOutcome::kClosed);
  }
}

}  // namespace
}  // namespace hdc::util
