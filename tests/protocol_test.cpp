#include <gtest/gtest.h>

#include "protocol/channels.hpp"
#include "protocol/drone_negotiator.hpp"
#include "protocol/human_agent.hpp"
#include "protocol/negotiation.hpp"

namespace hdc::protocol {
namespace {

// ----------------------------------------------------- DroneNegotiator ---

/// Drives the negotiator with scripted perception. Pattern execution is
/// simulated with fixed durations.
struct NegotiatorHarness {
  DroneNegotiator negotiator;
  double pattern_left{0.0};
  std::optional<drone::PatternType> active;

  explicit NegotiatorHarness(NegotiationConfig config = {}) : negotiator(config) {
    negotiator.begin();
  }

  NegotiatorCommand tick(double dt, std::optional<signs::HumanSign> sign) {
    if (active.has_value()) {
      pattern_left -= dt;
      if (pattern_left <= 0.0) active.reset();
    }
    const NegotiatorCommand cmd = negotiator.step(dt, sign, active.has_value());
    if (cmd.kind == NegotiatorCommand::Kind::kFlyPattern) {
      active = cmd.pattern;
      pattern_left = cmd.pattern == drone::PatternType::kPoke ? 3.0 : 8.0;
    }
    return cmd;
  }

  /// Runs for `seconds` showing `sign` throughout.
  void run(double seconds, std::optional<signs::HumanSign> sign) {
    for (double t = 0.0; t < seconds && !negotiator.finished(); t += 0.1) {
      tick(0.1, sign);
    }
  }
};

TEST(Negotiator, FirstCommandIsPoke) {
  NegotiatorHarness h;
  const NegotiatorCommand cmd = h.tick(0.1, std::nullopt);
  EXPECT_EQ(cmd.kind, NegotiatorCommand::Kind::kFlyPattern);
  EXPECT_EQ(cmd.pattern, drone::PatternType::kPoke);
  EXPECT_EQ(h.negotiator.state(), NegotiationState::kPoking);
}

TEST(Negotiator, HappyPathGranted) {
  NegotiatorHarness h;
  // Poke flies; human shows attention, then the request flies; human says
  // Yes.
  h.run(5.0, std::nullopt);  // poke finishes
  EXPECT_EQ(h.negotiator.state(), NegotiationState::kAwaitAttention);
  h.run(2.0, signs::HumanSign::kAttentionGained);
  EXPECT_EQ(h.negotiator.state(), NegotiationState::kRequesting);
  h.run(10.0, std::nullopt);  // rectangle finishes
  EXPECT_EQ(h.negotiator.state(), NegotiationState::kAwaitAnswer);
  h.run(3.0, signs::HumanSign::kYes);
  EXPECT_TRUE(h.negotiator.finished());
  EXPECT_EQ(h.negotiator.outcome(), Outcome::kGranted);
}

TEST(Negotiator, DenialPath) {
  NegotiatorHarness h;
  h.run(5.0, std::nullopt);
  h.run(2.0, signs::HumanSign::kAttentionGained);
  h.run(10.0, std::nullopt);
  h.run(3.0, signs::HumanSign::kNo);
  EXPECT_EQ(h.negotiator.outcome(), Outcome::kDenied);
}

TEST(Negotiator, AnswerDuringPatternIsLatched) {
  // The human answers while the rectangle is still flying; the latch must
  // capture it (the world glue exposed this bug originally).
  NegotiatorHarness h;
  h.run(5.0, std::nullopt);
  h.run(2.0, signs::HumanSign::kAttentionGained);
  EXPECT_EQ(h.negotiator.state(), NegotiationState::kRequesting);
  // Show Yes for 2 s while the pattern is still running, then lower it.
  h.run(2.0, signs::HumanSign::kYes);
  ASSERT_FALSE(h.negotiator.finished());
  h.run(10.0, std::nullopt);  // pattern ends, sign long gone
  EXPECT_EQ(h.negotiator.outcome(), Outcome::kGranted);
}

TEST(Negotiator, NoAttentionAfterRetries) {
  NegotiationConfig config;
  config.poke_retries = 2;
  config.attention_timeout_s = 2.0;
  NegotiatorHarness h(config);
  h.run(60.0, std::nullopt);
  EXPECT_TRUE(h.negotiator.finished());
  EXPECT_EQ(h.negotiator.outcome(), Outcome::kNoAttention);
  // Exactly 2 pokes in the transcript.
  int pokes = 0;
  for (const auto& event : h.negotiator.transcript()) {
    if (event.event == "pattern:Poke") ++pokes;
  }
  EXPECT_EQ(pokes, 2);
}

TEST(Negotiator, NoAnswerAfterRetries) {
  NegotiationConfig config;
  config.request_retries = 2;
  config.answer_timeout_s = 3.0;
  NegotiatorHarness h(config);
  h.run(5.0, std::nullopt);
  h.run(2.0, signs::HumanSign::kAttentionGained);
  // Never answer.
  h.run(120.0, std::nullopt);
  EXPECT_EQ(h.negotiator.outcome(), Outcome::kNoAnswer);
  int requests = 0;
  for (const auto& event : h.negotiator.transcript()) {
    if (event.event == "pattern:RectangleRequest") ++requests;
  }
  EXPECT_EQ(requests, 2);
}

TEST(Negotiator, DebounceRejectsFlicker) {
  NegotiationConfig config;
  config.answer_confirm_s = 1.0;
  config.sign_gap_tolerance_s = 0.2;
  config.attention_timeout_s = 60.0;  // keep the FSM in one await window
  NegotiatorHarness h(config);
  h.run(5.0, std::nullopt);
  ASSERT_EQ(h.negotiator.state(), NegotiationState::kAwaitAttention);
  // Flicker AttentionGained in 0.3 s bursts separated by gaps longer than
  // the tolerance: the hold keeps resetting, so attention never confirms.
  for (int i = 0; i < 20; ++i) {
    h.run(0.3, signs::HumanSign::kAttentionGained);
    h.run(0.5, std::nullopt);  // gap larger than tolerance resets the hold
  }
  EXPECT_EQ(h.negotiator.state(), NegotiationState::kAwaitAttention);
}

TEST(Negotiator, DebounceBridgesShortGaps) {
  NegotiationConfig config;
  config.answer_confirm_s = 1.0;
  config.sign_gap_tolerance_s = 0.5;
  NegotiatorHarness h(config);
  h.run(5.0, std::nullopt);
  // 0.3 s detections separated by 0.2 s gaps: accumulates past 1 s.
  for (int i = 0; i < 5 && !h.negotiator.finished() &&
                  h.negotiator.state() == NegotiationState::kAwaitAttention;
       ++i) {
    h.run(0.3, signs::HumanSign::kAttentionGained);
    h.run(0.2, std::nullopt);
  }
  EXPECT_EQ(h.negotiator.state(), NegotiationState::kRequesting);
}

TEST(Negotiator, AbortFinishesImmediately) {
  NegotiatorHarness h;
  h.tick(0.1, std::nullopt);
  h.negotiator.abort();
  EXPECT_TRUE(h.negotiator.finished());
  EXPECT_EQ(h.negotiator.outcome(), Outcome::kAborted);
}

TEST(Negotiator, TranscriptIsChronological) {
  NegotiatorHarness h;
  h.run(5.0, std::nullopt);
  h.run(2.0, signs::HumanSign::kAttentionGained);
  h.run(10.0, std::nullopt);
  h.run(3.0, signs::HumanSign::kYes);
  const Transcript& transcript = h.negotiator.transcript();
  ASSERT_GT(transcript.size(), 4u);
  for (std::size_t i = 1; i < transcript.size(); ++i) {
    EXPECT_LE(transcript[i - 1].t, transcript[i].t);
  }
}

// ------------------------------------------------------ HumanResponder ---

TEST(Human, RoleParamsOrdering) {
  const HumanParams sup = role_params(HumanRole::kSupervisor);
  const HumanParams worker = role_params(HumanRole::kWorker);
  const HumanParams visitor = role_params(HumanRole::kVisitor);
  EXPECT_GT(sup.notice_probability, worker.notice_probability);
  EXPECT_GT(worker.notice_probability, visitor.notice_probability);
  EXPECT_LT(sup.reaction_mean_s, visitor.reaction_mean_s);
  EXPECT_LT(sup.wrong_sign_probability, visitor.wrong_sign_probability);
}

TEST(Human, RespondsToPokeWithAttention) {
  HumanParams params = role_params(HumanRole::kSupervisor);
  params.notice_probability = 1.0;
  params.reaction_mean_s = 0.5;
  params.reaction_stddev_s = 0.0;
  HumanResponder human(HumanRole::kSupervisor, params, 42);
  // Perceive the poke for a while.
  signs::HumanSign sign = signs::HumanSign::kNeutral;
  for (int i = 0; i < 40; ++i) {
    sign = human.step(0.1, drone::PatternType::kPoke);
  }
  EXPECT_TRUE(human.attentive());
  EXPECT_EQ(sign, signs::HumanSign::kAttentionGained);
}

TEST(Human, AnswersRequestAccordingToDecision) {
  HumanParams params = role_params(HumanRole::kSupervisor);
  params.notice_probability = 1.0;
  params.grant_probability = 1.0;  // always yes
  params.wrong_sign_probability = 0.0;
  params.reaction_mean_s = 0.3;
  params.reaction_stddev_s = 0.0;
  HumanResponder human(HumanRole::kSupervisor, params, 7);
  for (int i = 0; i < 30; ++i) (void)human.step(0.1, drone::PatternType::kPoke);
  ASSERT_TRUE(human.attentive());
  EXPECT_TRUE(human.will_grant());
  signs::HumanSign sign = signs::HumanSign::kNeutral;
  for (int i = 0; i < 60; ++i) {
    sign = human.step(0.1, drone::PatternType::kRectangleRequest);
    if (sign == signs::HumanSign::kYes) break;
  }
  EXPECT_EQ(sign, signs::HumanSign::kYes);
}

TEST(Human, SignExpiresAfterHoldTime) {
  HumanParams params = role_params(HumanRole::kSupervisor);
  params.notice_probability = 1.0;
  params.reaction_mean_s = 0.2;
  params.reaction_stddev_s = 0.0;
  params.sign_hold_s = 1.0;
  HumanResponder human(HumanRole::kSupervisor, params, 21);
  for (int i = 0; i < 20; ++i) (void)human.step(0.1, drone::PatternType::kPoke);
  EXPECT_EQ(human.displayed_sign(), signs::HumanSign::kAttentionGained);
  // Let the hold expire with no further stimulus.
  for (int i = 0; i < 20; ++i) (void)human.step(0.1, std::nullopt);
  EXPECT_EQ(human.displayed_sign(), signs::HumanSign::kNeutral);
}

TEST(Human, ReAcknowledgesRepeatPoke) {
  HumanParams params = role_params(HumanRole::kSupervisor);
  params.notice_probability = 1.0;
  params.reaction_mean_s = 0.2;
  params.reaction_stddev_s = 0.0;
  params.sign_hold_s = 0.5;
  HumanResponder human(HumanRole::kSupervisor, params, 33);
  for (int i = 0; i < 15; ++i) (void)human.step(0.1, drone::PatternType::kPoke);
  for (int i = 0; i < 15; ++i) (void)human.step(0.1, std::nullopt);  // expires
  EXPECT_EQ(human.displayed_sign(), signs::HumanSign::kNeutral);
  // Second poke: the hand must come up again at some point (the display
  // cycles between hold and re-raise, so check "ever shown").
  bool re_shown = false;
  for (int i = 0; i < 15; ++i) {
    if (human.step(0.1, drone::PatternType::kPoke) ==
        signs::HumanSign::kAttentionGained) {
      re_shown = true;
    }
  }
  EXPECT_TRUE(re_shown);
}

TEST(Human, DisengagedVisitorNeverResponds) {
  HumanParams params = role_params(HumanRole::kVisitor);
  params.ignore_probability = 1.0;
  HumanResponder human(HumanRole::kVisitor, params, 55);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(human.step(0.1, drone::PatternType::kPoke), signs::HumanSign::kNeutral);
  }
  EXPECT_FALSE(human.attentive());
}

TEST(Human, ResetProducesFreshSessionDecision) {
  HumanParams params = role_params(HumanRole::kWorker);
  params.grant_probability = 0.5;
  HumanResponder human(HumanRole::kWorker, params, 77);
  // Over many resets, both decisions occur.
  bool saw_yes = false, saw_no = false;
  for (int i = 0; i < 64; ++i) {
    human.reset();
    saw_yes |= human.will_grant();
    saw_no |= !human.will_grant();
  }
  EXPECT_TRUE(saw_yes);
  EXPECT_TRUE(saw_no);
}

// --------------------------------------------------------- Channels ------

TEST(Channels, PerfectChannelsPassThrough) {
  PerfectSignChannel sign_channel;
  EXPECT_EQ(sign_channel.sense(signs::HumanSign::kYes), signs::HumanSign::kYes);
  EXPECT_FALSE(sign_channel.sense(signs::HumanSign::kNeutral).has_value());
  PerfectPatternChannel pattern_channel;
  EXPECT_EQ(pattern_channel.sense(drone::PatternType::kPoke), drone::PatternType::kPoke);
  EXPECT_FALSE(pattern_channel.sense(std::nullopt).has_value());
}

TEST(Channels, NoisySignChannelRates) {
  NoisySignChannel channel(0.3, 0.1, 99);
  int missed = 0, confused = 0, correct = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto sensed = channel.sense(signs::HumanSign::kYes);
    if (!sensed.has_value()) {
      ++missed;
    } else if (*sensed != signs::HumanSign::kYes) {
      ++confused;
    } else {
      ++correct;
    }
  }
  EXPECT_NEAR(missed / static_cast<double>(trials), 0.3, 0.02);
  // Confusion applies to non-missed frames: 0.7 * 0.1.
  EXPECT_NEAR(confused / static_cast<double>(trials), 0.07, 0.01);
  EXPECT_GT(correct, trials / 2);
}

TEST(Channels, NoisyPatternChannelConfusesNodAndShake) {
  NoisyPatternChannel channel(0.0, 1.0, 5);  // always confuse
  EXPECT_EQ(channel.sense(drone::PatternType::kNodYes), drone::PatternType::kTurnNo);
  EXPECT_EQ(channel.sense(drone::PatternType::kTurnNo), drone::PatternType::kNodYes);
  // Non-confusable patterns pass through.
  EXPECT_EQ(channel.sense(drone::PatternType::kPoke), drone::PatternType::kPoke);
}

// ------------------------------------------------------ Full sessions ----

TEST(Session, SupervisorGrantsOverPerfectChannels) {
  NegotiationConfig config;
  DroneNegotiator negotiator(config);
  HumanParams params = role_params(HumanRole::kSupervisor);
  params.notice_probability = 1.0;
  params.grant_probability = 1.0;
  params.wrong_sign_probability = 0.0;
  HumanResponder human(HumanRole::kSupervisor, params, 11);
  PerfectSignChannel sign_channel;
  PerfectPatternChannel pattern_channel;
  const SessionResult result =
      run_negotiation(negotiator, human, sign_channel, pattern_channel);
  EXPECT_EQ(result.outcome, Outcome::kGranted);
  EXPECT_GT(result.pokes, 0);
  EXPECT_GT(result.requests, 0);
  EXPECT_GT(result.duration_s, 1.0);
  EXPECT_LT(result.duration_s, 60.0);
}

TEST(Session, DecidedNoGivesDenied) {
  DroneNegotiator negotiator;
  HumanParams params = role_params(HumanRole::kWorker);
  params.notice_probability = 1.0;
  params.grant_probability = 0.0;  // always refuses
  params.wrong_sign_probability = 0.0;
  HumanResponder human(HumanRole::kWorker, params, 13);
  PerfectSignChannel sign_channel;
  PerfectPatternChannel pattern_channel;
  const SessionResult result =
      run_negotiation(negotiator, human, sign_channel, pattern_channel);
  EXPECT_EQ(result.outcome, Outcome::kDenied);
}

TEST(Session, IgnoringVisitorTimesOut) {
  DroneNegotiator negotiator;
  HumanParams params = role_params(HumanRole::kVisitor);
  params.ignore_probability = 1.0;
  HumanResponder human(HumanRole::kVisitor, params, 17);
  PerfectSignChannel sign_channel;
  PerfectPatternChannel pattern_channel;
  const SessionResult result =
      run_negotiation(negotiator, human, sign_channel, pattern_channel);
  EXPECT_EQ(result.outcome, Outcome::kNoAttention);
}

TEST(Session, NoisyChannelsStillMostlySucceed) {
  int granted_or_denied = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    DroneNegotiator negotiator;
    HumanParams params = role_params(HumanRole::kWorker);
    params.ignore_probability = 0.0;
    HumanResponder human(HumanRole::kWorker, params, 1000 + seed);
    NoisySignChannel sign_channel(0.25, 0.03, 2000 + seed);
    NoisyPatternChannel pattern_channel(0.1, 0.03, 3000 + seed);
    const SessionResult result =
        run_negotiation(negotiator, human, sign_channel, pattern_channel);
    if (result.outcome == Outcome::kGranted || result.outcome == Outcome::kDenied) {
      ++granted_or_denied;
    }
  }
  EXPECT_GE(granted_or_denied, 15);  // >= 75% definitive outcomes
}

TEST(Session, TranscriptMergesBothActors) {
  DroneNegotiator negotiator;
  HumanParams params = role_params(HumanRole::kSupervisor);
  params.notice_probability = 1.0;
  HumanResponder human(HumanRole::kSupervisor, params, 19);
  PerfectSignChannel sign_channel;
  PerfectPatternChannel pattern_channel;
  const SessionResult result =
      run_negotiation(negotiator, human, sign_channel, pattern_channel);
  bool saw_drone = false, saw_human = false;
  for (const auto& event : result.transcript) {
    saw_drone |= event.actor == "drone";
    saw_human |= event.actor == "human";
  }
  EXPECT_TRUE(saw_drone);
  EXPECT_TRUE(saw_human);
  for (std::size_t i = 1; i < result.transcript.size(); ++i) {
    EXPECT_LE(result.transcript[i - 1].t, result.transcript[i].t);
  }
}

}  // namespace
}  // namespace hdc::protocol
