// Interaction layer: SignEventFuser temporal stability (zero spurious
// events under the scripted noise model), CommandGrammar classification,
// every DialogueStateMachine transition including timeout/abort edges, the
// scenario driver, and the end-to-end InteractionService loop — scripted
// noisy feed -> PerceptionService -> fuser -> FSM -> AckActions observable
// on drone::LedRing — deterministic across shard/thread counts.
#include "interaction/interaction_service.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "interaction/scenario.hpp"
#include "recognition/perception_service.hpp"
#include "signs/multi_drone_feed.hpp"

namespace hdc::interaction {
namespace {

using signs::HumanSign;

// ---------------------------------------------------------------- fuser ---

using Events = SignEventFuser::Events;

/// Feeds `count` identical frames, collecting every emitted event.
void feed(SignEventFuser& fuser, std::uint64_t& seq, HumanSign sign,
          double confidence, std::size_t count, std::vector<SignEvent>& out) {
  Events scratch;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t n = fuser.observe(seq++, sign, confidence, scratch);
    for (std::size_t k = 0; k < n; ++k) out.push_back(scratch[k]);
  }
}

TEST(FusionPolicy, ConfidenceMapsDistanceAndRejections) {
  const FusionPolicy policy;
  recognition::RecognitionResult result;
  result.accepted = true;
  result.sign = HumanSign::kYes;
  result.distance = 0.0;
  EXPECT_DOUBLE_EQ(policy.confidence_of(result), 1.0);
  result.distance = 3.25;
  EXPECT_DOUBLE_EQ(policy.confidence_of(result), 0.5);
  result.distance = 99.0;
  EXPECT_DOUBLE_EQ(policy.confidence_of(result), 0.0);
  result.distance = 1.0;
  result.accepted = false;  // rejected frames carry no evidence
  EXPECT_DOUBLE_EQ(policy.confidence_of(result), 0.0);
  result.accepted = true;
  result.sign = HumanSign::kNeutral;  // accepted-neutral = no sign
  EXPECT_DOUBLE_EQ(policy.confidence_of(result), 0.0);
}

TEST(SignEventFuser, CleanHoldYieldsExactlyOneBeginEndPair) {
  SignEventFuser fuser;
  std::uint64_t seq = 0;
  std::vector<SignEvent> events;
  feed(fuser, seq, HumanSign::kNeutral, 0.0, 5, events);
  feed(fuser, seq, HumanSign::kYes, 0.8, 10, events);
  feed(fuser, seq, HumanSign::kNeutral, 0.0, 8, events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, SignEventKind::kBegin);
  EXPECT_EQ(events[0].label, HumanSign::kYes);
  // Majority (3 of window 5) reached on the third Yes frame: sequence 7.
  EXPECT_EQ(events[0].onset_seq, 7u);
  EXPECT_NEAR(events[0].confidence, 0.8, 1e-12);
  EXPECT_EQ(events[1].kind, SignEventKind::kEnd);
  EXPECT_EQ(events[1].label, HumanSign::kYes);
  EXPECT_EQ(events[1].onset_seq, 7u);
  // Support holds while >= 3 Yes frames remain in the window (last at 16).
  EXPECT_EQ(events[1].end_seq, 16u);
  EXPECT_NEAR(events[1].confidence, 0.8, 1e-12);
  EXPECT_EQ(fuser.events_begun(), 1u);
  EXPECT_EQ(fuser.events_ended(), 1u);
}

TEST(SignEventFuser, OneFrameFlickerNeverOpensOrCloses) {
  SignEventFuser fuser;
  std::uint64_t seq = 0;
  std::vector<SignEvent> events;
  // A lone wrong-sign frame in a neutral stream: no event.
  feed(fuser, seq, HumanSign::kNeutral, 0.0, 4, events);
  feed(fuser, seq, HumanSign::kNo, 0.9, 1, events);
  feed(fuser, seq, HumanSign::kNeutral, 0.0, 6, events);
  EXPECT_TRUE(events.empty());
  // A lone wrong-sign frame inside a held sign: the event is unbroken.
  feed(fuser, seq, HumanSign::kYes, 0.8, 6, events);
  feed(fuser, seq, HumanSign::kNo, 0.9, 1, events);
  feed(fuser, seq, HumanSign::kYes, 0.8, 6, events);
  feed(fuser, seq, HumanSign::kNeutral, 0.0, 8, events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, SignEventKind::kBegin);
  EXPECT_EQ(events[1].kind, SignEventKind::kEnd);
  EXPECT_EQ(events[0].label, HumanSign::kYes);
  EXPECT_EQ(events[1].label, HumanSign::kYes);
}

TEST(SignEventFuser, RejectGapsAreBridged) {
  SignEventFuser fuser;
  std::uint64_t seq = 0;
  std::vector<SignEvent> events;
  feed(fuser, seq, HumanSign::kYes, 0.7, 4, events);
  feed(fuser, seq, HumanSign::kNeutral, 0.0, 2, events);  // two-frame dropout
  feed(fuser, seq, HumanSign::kYes, 0.7, 3, events);
  feed(fuser, seq, HumanSign::kNeutral, 0.0, 2, events);
  feed(fuser, seq, HumanSign::kYes, 0.7, 3, events);
  std::size_t begins = 0;
  for (const SignEvent& e : events) begins += e.kind == SignEventKind::kBegin;
  EXPECT_EQ(begins, 1u);  // one utterance despite the dropouts
  EXPECT_TRUE(fuser.active());
  Events scratch;
  EXPECT_EQ(fuser.finish(scratch), 1u);
  EXPECT_EQ(scratch[0].kind, SignEventKind::kEnd);
  EXPECT_FALSE(fuser.active());
}

TEST(SignEventFuser, ConfidenceHysteresisGatesOnsetNotHold) {
  SignEventFuser fuser;  // onset 0.35, release 0.18
  std::uint64_t seq = 0;
  std::vector<SignEvent> events;
  // Below the onset bar: majority alone must not open.
  feed(fuser, seq, HumanSign::kYes, 0.30, 8, events);
  EXPECT_TRUE(events.empty());
  // Confident frames open it...
  feed(fuser, seq, HumanSign::kYes, 0.60, 5, events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, SignEventKind::kBegin);
  // ...and borderline frames above the release bar keep it open.
  feed(fuser, seq, HumanSign::kYes, 0.25, 10, events);
  EXPECT_EQ(events.size(), 1u);
  EXPECT_TRUE(fuser.active());
  // Confidence collapse below release closes it even with majority.
  feed(fuser, seq, HumanSign::kYes, 0.01, 10, events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, SignEventKind::kEnd);
}

TEST(SignEventFuser, MinHoldDelaysTheClose) {
  FusionPolicy policy;
  policy.window = 3;
  policy.majority = 2;
  policy.release_misses = 1;
  policy.min_hold = 6;
  SignEventFuser fuser(policy);
  std::uint64_t seq = 0;
  std::vector<SignEvent> events;
  feed(fuser, seq, HumanSign::kNo, 0.9, 2, events);      // opens at seq 1
  feed(fuser, seq, HumanSign::kNeutral, 0.0, 3, events); // misses immediately
  ASSERT_EQ(events.size(), 1u);  // still open: held < min_hold
  EXPECT_TRUE(fuser.active());
  feed(fuser, seq, HumanSign::kNeutral, 0.0, 2, events);
  ASSERT_EQ(events.size(), 2u);  // min_hold reached -> close fires
  EXPECT_EQ(events[1].kind, SignEventKind::kEnd);
}

TEST(SignEventFuser, LabelSwitchClosesThenOpensInOneObserve) {
  SignEventFuser fuser;
  std::uint64_t seq = 0;
  std::vector<SignEvent> events;
  feed(fuser, seq, HumanSign::kYes, 0.8, 8, events);
  feed(fuser, seq, HumanSign::kNo, 0.8, 8, events);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, SignEventKind::kBegin);
  EXPECT_EQ(events[0].label, HumanSign::kYes);
  EXPECT_EQ(events[1].kind, SignEventKind::kEnd);
  EXPECT_EQ(events[1].label, HumanSign::kYes);
  EXPECT_EQ(events[2].kind, SignEventKind::kBegin);
  EXPECT_EQ(events[2].label, HumanSign::kNo);
  // The End and the new Begin coincide on one frame.
  EXPECT_EQ(events[2].onset_seq, 12u);
}

TEST(SignEventFuser, ServiceRejectsInvalidPolicyAtConstruction) {
  // A bad fusion policy must fail when the service is built, not later on
  // the dialogue worker when the first session is created.
  InteractionServiceConfig config;
  config.fusion.majority = config.fusion.window + 4;
  EXPECT_THROW(InteractionService{config}, std::invalid_argument);
}

TEST(SignEventFuser, ValidatesPolicy) {
  FusionPolicy bad;
  bad.window = 0;
  EXPECT_THROW(SignEventFuser{bad}, std::invalid_argument);
  bad = FusionPolicy{};
  bad.majority = bad.window + 1;
  EXPECT_THROW(SignEventFuser{bad}, std::invalid_argument);
  bad = FusionPolicy{};
  bad.release_misses = 0;
  EXPECT_THROW(SignEventFuser{bad}, std::invalid_argument);
}

// -------------------------------------------------------------- grammar ---

TEST(CommandGrammar, StandardTableClassification) {
  const CommandGrammar grammar = CommandGrammar::standard();
  using S = std::vector<HumanSign>;
  const auto classify = [&](const S& buffer) { return grammar.classify(buffer); };

  MatchResult m = classify({HumanSign::kYes});
  EXPECT_EQ(m.state, MatchState::kCompleteExtendable);
  ASSERT_NE(m.rule, nullptr);
  EXPECT_EQ(m.rule->command.kind, DroneCommandKind::kApproach);

  m = classify({HumanSign::kYes, HumanSign::kYes});
  EXPECT_EQ(m.state, MatchState::kComplete);
  ASSERT_NE(m.rule, nullptr);
  EXPECT_EQ(m.rule->command.kind, DroneCommandKind::kLand);
  EXPECT_EQ(m.rule->command.execute_pattern, drone::PatternType::kLanding);
  EXPECT_EQ(m.rule->command.execute_ring, drone::RingMode::kLanding);

  m = classify({HumanSign::kNo});
  EXPECT_EQ(m.state, MatchState::kCompleteExtendable);
  EXPECT_EQ(m.rule->command.kind, DroneCommandKind::kRetreat);

  m = classify({HumanSign::kNo, HumanSign::kNo});
  EXPECT_EQ(m.state, MatchState::kComplete);
  EXPECT_EQ(m.rule->command.kind, DroneCommandKind::kLeave);

  EXPECT_EQ(classify({HumanSign::kYes, HumanSign::kNo}).state, MatchState::kDeadEnd);
  EXPECT_EQ(classify({}).state, MatchState::kDeadEnd);
  EXPECT_EQ(classify({HumanSign::kYes, HumanSign::kYes, HumanSign::kYes}).state,
            MatchState::kDeadEnd);
  EXPECT_EQ(grammar.max_sequence_length(), 2u);
}

TEST(CommandGrammar, PureFixHasPrefixState) {
  CommandGrammar grammar(
      {{{HumanSign::kYes, HumanSign::kNo},
        {DroneCommandKind::kLand, drone::PatternType::kLanding,
         drone::RingMode::kLanding}}});
  EXPECT_EQ(grammar.classify(std::vector<HumanSign>{HumanSign::kYes}).state,
            MatchState::kPrefix);
}

TEST(CommandGrammar, ValidatesRuleTable) {
  using Rules = std::vector<CommandRule>;
  EXPECT_THROW(CommandGrammar{Rules{}}, std::invalid_argument);
  EXPECT_THROW(
      CommandGrammar(Rules{{{}, {DroneCommandKind::kLand, {}, {}}}}),
      std::invalid_argument);
  EXPECT_THROW(CommandGrammar(Rules{{{HumanSign::kNeutral},
                                     {DroneCommandKind::kLand, {}, {}}}}),
               std::invalid_argument);
  EXPECT_THROW(
      CommandGrammar(Rules{{{HumanSign::kYes}, {DroneCommandKind::kNone, {}, {}}}}),
      std::invalid_argument);
  EXPECT_THROW(
      CommandGrammar(Rules{
          {{HumanSign::kYes}, {DroneCommandKind::kLand, {}, {}}},
          {{HumanSign::kYes}, {DroneCommandKind::kApproach, {}, {}}}}),
      std::invalid_argument);
}

// --------------------------------------------------------- grammar loader ---

TEST(GrammarLoader, ParsesSectionsRulesAndComments) {
  const GrammarLibrary library = CommandGrammar::parse_library(
      "# orchard deployment\n"
      "[default]\n"
      "Yes -> Approach   # trailing comment\n"
      "Yes Yes -> Land\n"
      "No\tNo -> Leave\n"
      "\n"
      "[human:7]\n"
      "AttentionGained Yes -> Land\n");
  ASSERT_EQ(library.vocabularies().size(), 2u);
  const CommandGrammar& grammar = library.at("default");
  ASSERT_EQ(grammar.rules().size(), 3u);
  EXPECT_EQ(grammar.rules()[0].sequence,
            (std::vector<HumanSign>{HumanSign::kYes}));
  EXPECT_EQ(grammar.rules()[0].command.kind, DroneCommandKind::kApproach);
  // File-defined commands get the same embodiment as the built-in table.
  EXPECT_EQ(grammar.rules()[1].command.execute_pattern,
            drone::PatternType::kLanding);
  EXPECT_EQ(grammar.rules()[1].command.execute_ring, drone::RingMode::kLanding);
  EXPECT_EQ(grammar.rules()[2].sequence,
            (std::vector<HumanSign>{HumanSign::kNo, HumanSign::kNo}));

  const CommandGrammar* human7 = library.find("human:7");
  ASSERT_NE(human7, nullptr);
  ASSERT_EQ(human7->rules().size(), 1u);
  EXPECT_EQ(human7->rules()[0].sequence,
            (std::vector<HumanSign>{HumanSign::kAttentionGained,
                                    HumanSign::kYes}));
  EXPECT_EQ(library.find("nobody"), nullptr);
  EXPECT_THROW((void)library.at("nobody"), std::out_of_range);
}

TEST(GrammarLoader, RulesBeforeAnySectionBelongToDefault) {
  const GrammarLibrary library =
      CommandGrammar::parse_library("Yes -> Approach\nNo -> Retreat\n");
  ASSERT_EQ(library.vocabularies().size(), 1u);
  EXPECT_EQ(library.vocabularies()[0].first, "default");
  EXPECT_EQ(library.at("default").rules().size(), 2u);
}

TEST(GrammarLoader, MalformedInputsFailWithOriginAndLine) {
  const auto expect_fail = [](const char* text, const char* needle) {
    try {
      (void)CommandGrammar::parse_library(text, "bad.grammar");
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("bad.grammar:"),
                std::string::npos)
          << error.what();
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << error.what();
    }
  };
  expect_fail("Yes Approach\n", "expected");              // no arrow
  expect_fail("Maybe -> Approach\n", "unknown sign");
  expect_fail("Yes -> Hover\n", "unknown command");
  expect_fail("-> Approach\n", "no sign sequence");
  expect_fail("Yes -> Approach Land\n", "exactly one command");
  expect_fail("[default\nYes -> Approach\n", "unterminated");
  expect_fail("[]\nYes -> Approach\n", "empty vocabulary name");
  expect_fail("[a]\nYes -> Approach\n[a]\nNo -> Leave\n", "duplicate");
  expect_fail("", "no rules");
  expect_fail("[empty]\n", "has no rules");
  // Section-level failures blame the section's OWN header line, not the
  // end of the file.
  expect_fail("[empty]\n[ok]\nYes -> Approach\n", "bad.grammar:1:");
  expect_fail("[ok]\nYes -> Approach\n[dup]\nYes -> Land\nYes -> Leave\n",
              "bad.grammar:3:");
  // Table-level validation (duplicate sequence) surfaces as a parse error.
  expect_fail("Yes -> Approach\nYes -> Land\n", "duplicate sign sequence");
  // Neutral is a sign name, but not a communicative one.
  expect_fail("Neutral -> Approach\n", "communicative");
}

TEST(GrammarLoader, LoadsFileAndPicksDefaultVocabulary) {
  const std::string path = ::testing::TempDir() + "/hdc_loader_test.grammar";
  {
    std::ofstream out(path);
    out << "[scout]\nYes -> Approach\n[default]\nNo No -> Leave\n";
  }
  const CommandGrammar grammar = CommandGrammar::load(path);
  ASSERT_EQ(grammar.rules().size(), 1u);
  EXPECT_EQ(grammar.rules()[0].command.kind, DroneCommandKind::kLeave);

  // A single-vocabulary file needs no [default] section.
  {
    std::ofstream out(path);
    out << "[solo]\nYes -> Land\n";
  }
  EXPECT_EQ(CommandGrammar::load(path).rules()[0].command.kind,
            DroneCommandKind::kLand);

  // Two vocabularies, neither "default": ambiguous.
  {
    std::ofstream out(path);
    out << "[a]\nYes -> Land\n[b]\nNo -> Leave\n";
  }
  EXPECT_THROW((void)CommandGrammar::load(path), std::runtime_error);
  EXPECT_THROW((void)CommandGrammar::load("/nonexistent/x.grammar"),
               std::runtime_error);
}

// ------------------------------------------------------------------ FSM ---

SignEvent make_event(SignEventKind kind, HumanSign label, std::uint64_t seq) {
  SignEvent event;
  event.kind = kind;
  event.label = label;
  event.onset_seq = seq;
  event.end_seq = seq;
  event.confidence = 0.8;
  return event;
}

struct FsmHarness {
  CommandGrammar grammar = CommandGrammar::standard();
  DialogueConfig config;
  DialogueStateMachine fsm{7, &grammar, DialogueConfig{}};
  DialogueStateMachine::Actions actions;

  void begin(HumanSign sign, std::uint64_t seq) {
    fsm.on_event(make_event(SignEventKind::kBegin, sign, seq), actions);
    fsm.on_tick(seq, actions);
  }
  void idle_until(std::uint64_t seq) { fsm.on_tick(seq, actions); }
  /// The most recent action, failing the test if none exists.
  const AckAction& last() const {
    EXPECT_FALSE(actions.empty());
    return actions.back();
  }
};

TEST(DialogueStateMachine, AttentionOpensSessionAndAcksOnRing) {
  FsmHarness h;
  EXPECT_EQ(h.fsm.state(), DialogueState::kIdle);
  h.begin(HumanSign::kYes, 1);  // a sign without attention is ignored
  EXPECT_EQ(h.fsm.state(), DialogueState::kIdle);
  EXPECT_TRUE(h.actions.empty());
  h.begin(HumanSign::kAttentionGained, 5);
  EXPECT_EQ(h.fsm.state(), DialogueState::kAttending);
  // A freshly opened session is pending with no deciding sequence yet.
  EXPECT_EQ(h.fsm.outcome_record(),
            (protocol::OutcomeRecord{protocol::Outcome::kPending, 7, 0}));
  EXPECT_TRUE(h.last().set_ring);
  EXPECT_EQ(h.last().ring, drone::RingMode::kAllGreen);
  EXPECT_TRUE(h.last().fly_pattern);
  EXPECT_EQ(h.last().pattern, drone::PatternType::kNodYes);
}

TEST(DialogueStateMachine, FullConfirmedCycleForTwoSignCommand) {
  FsmHarness h;
  h.begin(HumanSign::kAttentionGained, 5);
  h.begin(HumanSign::kYes, 20);
  EXPECT_EQ(h.fsm.state(), DialogueState::kCommandPending);
  h.begin(HumanSign::kYes, 40);  // within the gap: extends to [Yes, Yes]
  EXPECT_EQ(h.fsm.state(), DialogueState::kConfirming);
  EXPECT_EQ(h.last().command, DroneCommandKind::kLand);
  EXPECT_EQ(h.last().ring, drone::RingMode::kLanding);  // intent preview
  EXPECT_EQ(h.last().pattern, drone::PatternType::kNodYes);
  h.begin(HumanSign::kYes, 60);  // confirm
  EXPECT_EQ(h.fsm.state(), DialogueState::kExecuting);
  EXPECT_EQ(h.last().pattern, drone::PatternType::kLanding);
  h.idle_until(60 + h.fsm.config().execute_ticks);
  EXPECT_EQ(h.fsm.state(), DialogueState::kIdle);
  EXPECT_EQ(h.fsm.outcome(), protocol::Outcome::kGranted);
  // The record carries the FSM's stream id and the deciding sequence —
  // what the fleet layer keys grants on.
  EXPECT_EQ(h.fsm.outcome_record(),
            (protocol::OutcomeRecord{protocol::Outcome::kGranted, 7,
                                     60 + h.fsm.config().execute_ticks}));
  EXPECT_EQ(h.last().event, std::string("execute:done"));
  EXPECT_EQ(h.last().ring, drone::RingMode::kNavigation);
  EXPECT_EQ(h.fsm.stats().commands_parsed, 1u);
  EXPECT_EQ(h.fsm.stats().commands_executed, 1u);
  EXPECT_EQ(h.fsm.stats().timeouts, 0u);
}

TEST(DialogueStateMachine, SequenceGapResolvesExtendableMatch) {
  FsmHarness h;
  h.begin(HumanSign::kAttentionGained, 5);
  h.begin(HumanSign::kYes, 20);
  EXPECT_EQ(h.fsm.state(), DialogueState::kCommandPending);
  // The gap passes with no second sign: [Yes] -> Approach wins.
  h.idle_until(20 + h.fsm.config().sequence_gap);
  EXPECT_EQ(h.fsm.state(), DialogueState::kConfirming);
  EXPECT_EQ(h.last().command, DroneCommandKind::kApproach);
  EXPECT_EQ(h.fsm.stats().commands_parsed, 1u);
}

TEST(DialogueStateMachine, PurePrefixTimesOutBackToAttending) {
  CommandGrammar grammar(
      {{{HumanSign::kYes, HumanSign::kNo},
        {DroneCommandKind::kLand, drone::PatternType::kLanding,
         drone::RingMode::kLanding}}});
  DialogueStateMachine fsm(0, &grammar);
  DialogueStateMachine::Actions actions;
  fsm.on_event(make_event(SignEventKind::kBegin, HumanSign::kAttentionGained, 5),
               actions);
  fsm.on_event(make_event(SignEventKind::kBegin, HumanSign::kYes, 20), actions);
  EXPECT_EQ(fsm.state(), DialogueState::kCommandPending);
  fsm.on_tick(20 + fsm.config().sequence_gap, actions);
  EXPECT_EQ(fsm.state(), DialogueState::kAttending);
  EXPECT_EQ(fsm.stats().timeouts, 1u);
  EXPECT_EQ(actions.back().pattern, drone::PatternType::kTurnNo);
}

TEST(DialogueStateMachine, DeadEndShakesNoAndKeepsAttending) {
  FsmHarness h;
  h.begin(HumanSign::kAttentionGained, 5);
  h.begin(HumanSign::kYes, 20);
  h.begin(HumanSign::kNo, 30);  // [Yes, No] is outside the grammar
  EXPECT_EQ(h.fsm.state(), DialogueState::kAttending);
  EXPECT_EQ(h.fsm.stats().dead_ends, 1u);
  EXPECT_EQ(h.last().pattern, drone::PatternType::kTurnNo);
  // The buffer was cleared: a fresh valid sequence still works.
  h.begin(HumanSign::kNo, 50);
  h.begin(HumanSign::kNo, 60);
  EXPECT_EQ(h.fsm.state(), DialogueState::kConfirming);
  EXPECT_EQ(h.last().command, DroneCommandKind::kLeave);
}

TEST(DialogueStateMachine, ConfirmDeniedAbortsWithDangerRing) {
  FsmHarness h;
  h.begin(HumanSign::kAttentionGained, 5);
  h.begin(HumanSign::kNo, 20);
  h.idle_until(20 + h.fsm.config().sequence_gap);  // Retreat -> Confirming
  h.begin(HumanSign::kNo, 70);                     // human denies
  EXPECT_EQ(h.fsm.state(), DialogueState::kAborting);
  EXPECT_EQ(h.fsm.outcome(), protocol::Outcome::kDenied);
  EXPECT_EQ(h.fsm.outcome_record(),
            (protocol::OutcomeRecord{protocol::Outcome::kDenied, 7, 70}));
  EXPECT_EQ(h.fsm.stats().confirm_rejections, 1u);
  EXPECT_EQ(h.last().ring, drone::RingMode::kDanger);
  EXPECT_EQ(h.last().pattern, drone::PatternType::kTurnNo);
  h.idle_until(70 + h.fsm.config().abort_ticks);
  EXPECT_EQ(h.fsm.state(), DialogueState::kIdle);
  EXPECT_EQ(h.last().event, std::string("abort:done"));
}

TEST(DialogueStateMachine, ConfirmTimeoutAborts) {
  FsmHarness h;
  h.begin(HumanSign::kAttentionGained, 5);
  h.begin(HumanSign::kYes, 20);
  h.idle_until(20 + h.fsm.config().sequence_gap);
  EXPECT_EQ(h.fsm.state(), DialogueState::kConfirming);
  const std::uint64_t entered = 20 + h.fsm.config().sequence_gap;
  h.idle_until(entered + h.fsm.config().confirm_timeout);
  EXPECT_EQ(h.fsm.state(), DialogueState::kAborting);
  EXPECT_EQ(h.fsm.outcome(), protocol::Outcome::kNoAnswer);
  EXPECT_EQ(h.fsm.stats().timeouts, 1u);
}

TEST(DialogueStateMachine, AttendingTimeoutReturnsToIdle) {
  FsmHarness h;
  h.begin(HumanSign::kAttentionGained, 5);
  // A refresh extends the window...
  h.fsm.on_event(
      make_event(SignEventKind::kBegin, HumanSign::kAttentionGained, 100),
      h.actions);
  h.idle_until(100 + h.fsm.config().attending_timeout - 1);
  EXPECT_EQ(h.fsm.state(), DialogueState::kAttending);
  // ...but silence eventually times the session out.
  h.idle_until(100 + h.fsm.config().attending_timeout);
  EXPECT_EQ(h.fsm.state(), DialogueState::kIdle);
  EXPECT_EQ(h.fsm.outcome(), protocol::Outcome::kNoAnswer);
  EXPECT_EQ(h.fsm.stats().timeouts, 1u);
}

TEST(DialogueStateMachine, MidExecutionCancelAborts) {
  FsmHarness h;
  h.begin(HumanSign::kAttentionGained, 5);
  h.begin(HumanSign::kYes, 20);
  h.begin(HumanSign::kYes, 40);
  h.begin(HumanSign::kYes, 60);  // confirmed -> Executing
  EXPECT_EQ(h.fsm.state(), DialogueState::kExecuting);
  h.begin(HumanSign::kNo, 70);  // human withdraws consent mid-pattern
  EXPECT_EQ(h.fsm.state(), DialogueState::kAborting);
  EXPECT_EQ(h.fsm.outcome(), protocol::Outcome::kAborted);
  EXPECT_EQ(h.fsm.stats().aborts, 1u);
  EXPECT_EQ(h.fsm.stats().commands_executed, 0u);
}

TEST(DialogueStateMachine, ExternalAbortFromAnyActiveState) {
  FsmHarness h;
  h.fsm.abort(3, h.actions);  // Idle: a no-op
  EXPECT_EQ(h.fsm.state(), DialogueState::kIdle);
  EXPECT_TRUE(h.actions.empty());
  h.begin(HumanSign::kAttentionGained, 5);
  h.fsm.abort(10, h.actions);
  EXPECT_EQ(h.fsm.state(), DialogueState::kAborting);
  EXPECT_EQ(h.fsm.outcome(), protocol::Outcome::kAborted);
  EXPECT_EQ(h.fsm.outcome_record(),
            (protocol::OutcomeRecord{protocol::Outcome::kAborted, 7, 10}));
  EXPECT_EQ(h.fsm.stats().aborts, 1u);
  EXPECT_EQ(h.last().ring, drone::RingMode::kDanger);
  h.fsm.abort(11, h.actions);  // already aborting: a no-op
  EXPECT_EQ(h.fsm.stats().aborts, 1u);
}

TEST(DialogueStateMachine, EndEventsOnlyLog) {
  FsmHarness h;
  h.begin(HumanSign::kAttentionGained, 5);
  const std::size_t actions_before = h.actions.size();
  h.fsm.on_event(make_event(SignEventKind::kEnd, HumanSign::kAttentionGained, 18),
                 h.actions);
  EXPECT_EQ(h.actions.size(), actions_before);
  EXPECT_EQ(h.fsm.state(), DialogueState::kAttending);
  EXPECT_EQ(h.fsm.stats().events_consumed, 2u);
}

TEST(DialogueStateMachine, ValidatesGrammarPointer) {
  EXPECT_THROW(DialogueStateMachine(0, nullptr), std::invalid_argument);
}

// ------------------------------------------------------------- scenario ---

TEST(Scenario, CommandSequencesMatchTheStandardGrammar) {
  const CommandGrammar grammar = CommandGrammar::standard();
  EXPECT_EQ(command_sequence(grammar, DroneCommandKind::kApproach),
            (std::vector<HumanSign>{HumanSign::kYes}));
  EXPECT_EQ(command_sequence(grammar, DroneCommandKind::kLand),
            (std::vector<HumanSign>{HumanSign::kYes, HumanSign::kYes}));
  EXPECT_THROW(command_sequence(grammar, DroneCommandKind::kNone),
               std::invalid_argument);
}

TEST(Scenario, ScheduleCarriesExactCleanSupportAndExtraNoise) {
  const CommandGrammar grammar = CommandGrammar::standard();
  const ScenarioOptions options;
  const signs::SignSchedule schedule = make_dialogue_schedule(
      grammar, DroneCommandKind::kLand, /*confirm=*/true, options);
  // Clean ticks per sign are exactly the holds; noise ticks ride on top.
  std::map<HumanSign, std::uint64_t> clean;
  std::uint64_t noise = 0;
  for (const signs::SignScheduleStep& step : schedule) {
    if (step.azimuth_offset_deg != 0.0) {
      ++noise;  // oblique reject tick
      EXPECT_EQ(step.ticks, 1u);
    } else if (step.ticks == 1 && step.sign != HumanSign::kNeutral) {
      ++noise;  // one-frame flicker
    } else {
      clean[step.sign] += step.ticks;
    }
  }
  // Attention + Yes + Yes + confirm Yes; flickers are the only No frames.
  EXPECT_EQ(clean[HumanSign::kAttentionGained], options.hold_ticks);
  EXPECT_EQ(clean[HumanSign::kYes], 3 * options.hold_ticks);
  EXPECT_GT(noise, 0u);
  const ScenarioExpectation expectation =
      make_expectation(grammar, DroneCommandKind::kLand, true);
  EXPECT_EQ(expectation.sign_events, 4u);  // attention + 2 signs + confirm
  EXPECT_EQ(expectation.outcome, protocol::Outcome::kGranted);
}

TEST(Scenario, CohortCyclesCommandsAndMarksDenials) {
  const CommandGrammar grammar = CommandGrammar::standard();
  const ScenarioCohort cohort = make_cohort(7, grammar);
  ASSERT_EQ(cohort.scripts.size(), 7u);
  ASSERT_EQ(cohort.expectations.size(), 7u);
  EXPECT_EQ(cohort.expectations[0].command, DroneCommandKind::kApproach);
  EXPECT_EQ(cohort.expectations[1].command, DroneCommandKind::kLand);
  EXPECT_EQ(cohort.expectations[2].command, DroneCommandKind::kRetreat);
  EXPECT_EQ(cohort.expectations[3].command, DroneCommandKind::kLeave);
  for (std::size_t s = 0; s < 6; ++s) EXPECT_TRUE(cohort.expectations[s].confirmed);
  EXPECT_FALSE(cohort.expectations[6].confirmed);  // stream 6: denied Retreat
  EXPECT_EQ(cohort.expectations[6].outcome, protocol::Outcome::kDenied);
}

// ----------------------------------------------------------- end to end ---

/// Shared recogniser + scripted cohort (database construction renders
/// frames, so build once for the whole suite).
class InteractionEndToEnd : public ::testing::Test {
 protected:
  static constexpr std::size_t kStreams = 7;  // includes the denied stream

  static void SetUpTestSuite() {
    sequential_ = new recognition::SaxSignRecognizer(
        recognition::RecognizerConfig{}, recognition::DatabaseBuildOptions{});
    grammar_ = new CommandGrammar(CommandGrammar::standard());
    cohort_ = new ScenarioCohort(make_cohort(kStreams, *grammar_));
    const signs::MultiDroneFeed feed(
        make_feed_config(kStreams, cohort_->scripts));
    scripts_ = new std::vector<std::vector<imaging::GrayImage>>(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
      (*scripts_)[s] = feed.prerender(
          s, static_cast<std::size_t>(feed.script_period(s)));
    }
  }
  static void TearDownTestSuite() {
    delete sequential_;
    delete grammar_;
    delete cohort_;
    delete scripts_;
    sequential_ = nullptr;
    grammar_ = nullptr;
    cohort_ = nullptr;
    scripts_ = nullptr;
  }

  /// The canonical wiring: the fusion confidence scale always derives from
  /// the recogniser that produces the results.
  static InteractionServiceConfig wired_config() {
    InteractionServiceConfig config;
    config.fusion = FusionPolicy::matching(sequential_->config());
    return config;
  }

  /// Streams the whole cohort through perception + interaction at the
  /// given shard count; returns per-stream transcripts.
  static std::vector<protocol::Transcript> run_cohort(
      std::size_t shards, std::vector<InteractionStreamStats>* stats_out) {
    InteractionService interaction(wired_config());
    recognition::PerceptionServiceConfig perception_config;
    perception_config.shards = shards;
    perception_config.queue_capacity = 64;
    recognition::PerceptionService perception(
        sequential_->config(), sequential_->database_ptr(),
        interaction.callback(), perception_config);
    interaction.watch(&perception);

    std::vector<std::thread> producers;
    for (std::uint32_t s = 0; s < kStreams; ++s) {
      producers.emplace_back([&, s] {
        for (const imaging::GrayImage& frame : (*scripts_)[s]) {
          perception.submit(s, frame);
        }
      });
    }
    for (std::thread& t : producers) t.join();
    perception.drain();
    interaction.drain();

    std::vector<protocol::Transcript> transcripts;
    for (std::uint32_t s = 0; s < kStreams; ++s) {
      transcripts.push_back(interaction.transcript(s));
      if (stats_out != nullptr) {
        stats_out->push_back(interaction.stream_stats(s));
      }
    }
    if (stats_out != nullptr) {
      // Every stream's ack ring must be back to navigation (session done)
      // and a communicative pattern must have been generated.
      for (std::uint32_t s = 0; s < kStreams; ++s) {
        EXPECT_EQ(interaction.ring_mode(s), drone::RingMode::kNavigation)
            << "stream " << s;
        EXPECT_FALSE(interaction.last_pattern(s).waypoints.empty())
            << "stream " << s;
      }
    }
    return transcripts;
  }

  static recognition::SaxSignRecognizer* sequential_;
  static CommandGrammar* grammar_;
  static ScenarioCohort* cohort_;
  static std::vector<std::vector<imaging::GrayImage>>* scripts_;
};

recognition::SaxSignRecognizer* InteractionEndToEnd::sequential_ = nullptr;
CommandGrammar* InteractionEndToEnd::grammar_ = nullptr;
ScenarioCohort* InteractionEndToEnd::cohort_ = nullptr;
std::vector<std::vector<imaging::GrayImage>>* InteractionEndToEnd::scripts_ =
    nullptr;

TEST_F(InteractionEndToEnd, NoisyCohortRunsEveryDialogueWithZeroSpuriousEvents) {
  std::vector<InteractionStreamStats> stats;
  const std::vector<protocol::Transcript> transcripts = run_cohort(2, &stats);
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    const ScenarioExpectation& want = cohort_->expectations[s];
    const InteractionStreamStats& got = stats[s];
    EXPECT_EQ(got.frames, (*scripts_)[s].size()) << "stream " << s;
    // THE acceptance property: the noise model adds zero onset/end pairs.
    EXPECT_EQ(got.events_begun, want.sign_events) << "stream " << s;
    EXPECT_EQ(got.events_ended, want.sign_events) << "stream " << s;
    EXPECT_EQ(got.state, DialogueState::kIdle) << "stream " << s;
    EXPECT_EQ(got.outcome, want.outcome) << "stream " << s;
    EXPECT_EQ(got.dialogue.commands_parsed, 1u) << "stream " << s;
    EXPECT_EQ(got.dialogue.dead_ends, 0u) << "stream " << s;
    EXPECT_EQ(got.dialogue.timeouts, 0u) << "stream " << s;
    if (want.confirmed) {
      EXPECT_EQ(got.dialogue.commands_executed, 1u) << "stream " << s;
      EXPECT_EQ(got.dialogue.confirm_rejections, 0u) << "stream " << s;
    } else {
      EXPECT_EQ(got.dialogue.commands_executed, 0u) << "stream " << s;
      EXPECT_EQ(got.dialogue.confirm_rejections, 1u) << "stream " << s;
    }
    EXPECT_GE(got.acks, 5u) << "stream " << s;
    EXPECT_FALSE(transcripts[s].empty());
  }
}

TEST_F(InteractionEndToEnd, TranscriptsAreIdenticalAcrossShardCounts) {
  // Dialogue is a pure function of each stream's frame sequence; shard
  // count and worker interleaving must be invisible.
  const std::vector<protocol::Transcript> one = run_cohort(1, nullptr);
  const std::vector<protocol::Transcript> three = run_cohort(3, nullptr);
  ASSERT_EQ(one.size(), three.size());
  for (std::size_t s = 0; s < one.size(); ++s) {
    ASSERT_EQ(one[s].size(), three[s].size()) << "stream " << s;
    for (std::size_t i = 0; i < one[s].size(); ++i) {
      EXPECT_DOUBLE_EQ(one[s][i].t, three[s][i].t) << "stream " << s;
      EXPECT_EQ(one[s][i].actor, three[s][i].actor) << "stream " << s;
      EXPECT_EQ(one[s][i].event, three[s][i].event) << "stream " << s;
    }
  }
}

TEST_F(InteractionEndToEnd, LedRingShowsEachDialoguePhase) {
  // Stream 0 of a 1-stream cohort runs the Land dialogue step by step; at
  // every checkpoint both services drain, so the ring state is exact.
  const CommandGrammar grammar = CommandGrammar::standard();
  const ScenarioOptions options;  // lead 6, hold 12(+2 noise), intra 6,
                                  // resolve 45, tail 80, clean_run 4
  const signs::SignSchedule schedule = make_dialogue_schedule(
      grammar, DroneCommandKind::kLand, /*confirm=*/true, options);
  const signs::MultiDroneFeed feed(make_feed_config(1, {schedule}));
  const auto frames =
      feed.prerender(0, static_cast<std::size_t>(feed.script_period(0)));
  ASSERT_EQ(frames.size(), 199u);  // fixed by the options above

  InteractionService interaction(wired_config());
  recognition::PerceptionService perception(
      sequential_->config(), sequential_->database_ptr(),
      interaction.callback(), {/*shards=*/1, /*queue=*/32,
                               util::OverflowPolicy::kBlock});
  std::size_t next = 0;
  const auto submit_through = [&](std::size_t last_inclusive) {
    for (; next <= last_inclusive; ++next) {
      perception.submit(0, frames[next]);
    }
    perception.drain();
    interaction.drain();
  };

  // Boot state: fail-safe all-red, like the hardware.
  EXPECT_EQ(interaction.ring_mode(0), drone::RingMode::kDanger);
  submit_through(21);  // attention hold done
  EXPECT_EQ(interaction.dialogue_state(0), DialogueState::kAttending);
  EXPECT_EQ(interaction.ring_mode(0), drone::RingMode::kAllGreen);
  EXPECT_EQ(interaction.last_pattern(0).type, drone::PatternType::kNodYes);
  submit_through(50);  // both Yes holds seen -> command parsed, echoed
  EXPECT_EQ(interaction.dialogue_state(0), DialogueState::kConfirming);
  EXPECT_EQ(interaction.ring_mode(0), drone::RingMode::kLanding);  // preview
  submit_through(110);  // confirmation Yes fused -> executing
  EXPECT_EQ(interaction.dialogue_state(0), DialogueState::kExecuting);
  EXPECT_EQ(interaction.ring_mode(0), drone::RingMode::kLanding);
  EXPECT_EQ(interaction.last_pattern(0).type, drone::PatternType::kLanding);
  submit_through(frames.size() - 1);  // pattern completes, session closes
  EXPECT_EQ(interaction.dialogue_state(0), DialogueState::kIdle);
  EXPECT_EQ(interaction.ring_mode(0), drone::RingMode::kNavigation);
  EXPECT_EQ(interaction.outcome(0), protocol::Outcome::kGranted);
}

TEST_F(InteractionEndToEnd, ExternalAbortInterruptsADialogue) {
  InteractionService interaction(wired_config());
  recognition::PerceptionService perception(
      sequential_->config(), sequential_->database_ptr(),
      interaction.callback(), {/*shards=*/1, /*queue=*/32,
                               util::OverflowPolicy::kBlock});
  // Ride the Land script into Attending, then pull the plug.
  for (std::size_t i = 0; i <= 21; ++i) perception.submit(0, (*scripts_)[1][i]);
  perception.drain();
  interaction.drain();
  ASSERT_EQ(interaction.dialogue_state(0), DialogueState::kAttending);
  interaction.abort_stream(0);
  interaction.drain();
  EXPECT_EQ(interaction.dialogue_state(0), DialogueState::kAborting);
  EXPECT_EQ(interaction.outcome(0), protocol::Outcome::kAborted);
  // outcome_record identifies the stream and the frame the abort struck at
  // (the last observation processed before it, frame 21).
  EXPECT_EQ(interaction.outcome_record(0),
            (protocol::OutcomeRecord{protocol::Outcome::kAborted, 0, 21}));
  EXPECT_EQ(interaction.outcome_record(9).outcome,
            protocol::Outcome::kPending);  // unknown stream: pending
  EXPECT_EQ(interaction.ring_mode(0), drone::RingMode::kDanger);
  EXPECT_EQ(interaction.last_pattern(0).type, drone::PatternType::kTurnNo);
}

TEST_F(InteractionEndToEnd, WatchesPerceptionGaugesForBackpressure) {
  // Park the single perception shard inside the callback, pile frames into
  // its ring, and the interaction service must see the congestion.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool parked = false;
  bool release = false;

  InteractionServiceConfig config = wired_config();
  config.congestion_depth = 3;
  config.shed_neutral_when_congested = true;
  InteractionService interaction(config);
  recognition::PerceptionService perception(
      sequential_->config(), sequential_->database_ptr(),
      [&](const recognition::StreamResult& r) {
        interaction.on_result(r);
        if (r.sequence == 0) {
          std::unique_lock<std::mutex> lock(gate_mutex);
          parked = true;
          gate_cv.notify_all();
          gate_cv.wait(lock, [&] { return release; });
        }
      },
      {/*shards=*/1, /*queue=*/8, util::OverflowPolicy::kBlock});
  interaction.watch(&perception);
  EXPECT_FALSE(interaction.congested());

  const imaging::GrayImage& frame = (*scripts_)[0].front();
  perception.submit(0, frame);
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return parked; });
  }
  for (int i = 0; i < 4; ++i) perception.submit(0, frame);  // depth 4 >= 3
  EXPECT_TRUE(interaction.congested());
  EXPECT_EQ(perception.shard_gauge(0).depth, 4u);

  // A neutral observation arriving while congested is shed at admission.
  recognition::StreamResult rejected;
  rejected.stream_id = 9;
  rejected.sequence = 0;
  rejected.result.accepted = false;
  interaction.on_result(rejected);
  EXPECT_EQ(interaction.shed_observations(), 1u);
  EXPECT_GE(interaction.max_watched_depth(), 4u);
  EXPECT_EQ(interaction.stream_stats(9).frames, 0u);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  perception.drain();
  interaction.drain();
  EXPECT_FALSE(interaction.congested());
}

}  // namespace
}  // namespace hdc::interaction
