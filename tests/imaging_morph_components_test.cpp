#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "imaging/components.hpp"
#include "imaging/draw.hpp"
#include "imaging/morphology.hpp"
#include "util/rng.hpp"

namespace hdc::imaging {
namespace {

TEST(Morphology, ErodeShrinksDilateGrows) {
  BinaryImage img(20, 20, kBackground);
  fill_rect(img, 5, 5, 14, 14, kForeground);  // 10x10 block
  EXPECT_EQ(foreground_area(erode(img, 1)), 64u);   // 8x8
  EXPECT_EQ(foreground_area(dilate(img, 1)), 144u); // 12x12
  EXPECT_EQ(erode(img, 0), img);
}

TEST(Morphology, OpenRemovesSpecksKeepsBlocks) {
  BinaryImage img(20, 20, kBackground);
  fill_rect(img, 5, 5, 14, 14, kForeground);
  img(1, 1) = kForeground;  // single-pixel speck
  const BinaryImage opened = open(img, 1);
  EXPECT_EQ(opened(1, 1), kBackground);
  EXPECT_EQ(opened(10, 10), kForeground);
  EXPECT_EQ(foreground_area(opened), 100u);  // block fully restored
}

TEST(Morphology, CloseFillsHoles) {
  BinaryImage img(20, 20, kBackground);
  fill_rect(img, 5, 5, 14, 14, kForeground);
  img(10, 10) = kBackground;  // pinhole
  const BinaryImage closed = close(img, 1);
  EXPECT_EQ(closed(10, 10), kForeground);
  EXPECT_EQ(foreground_area(closed), 100u);
}

TEST(Morphology, CloseBridgesSmallGap) {
  BinaryImage img(30, 10, kBackground);
  fill_rect(img, 2, 4, 13, 6, kForeground);
  fill_rect(img, 15, 4, 27, 6, kForeground);  // 1-px gap at x=14
  const BinaryImage closed = close(img, 1);
  EXPECT_EQ(closed(14, 5), kForeground);
}

TEST(Morphology, ErodeDilateDuality) {
  // Erosion of the foreground == dilation of the background (complement).
  BinaryImage img(16, 16, kBackground);
  fill_rect(img, 4, 4, 11, 11, kForeground);
  img(6, 6) = kBackground;
  const BinaryImage a = erode(img, 1);
  BinaryImage complement(16, 16);
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    complement.data()[i] = img.data()[i] == kForeground ? kBackground : kForeground;
  }
  const BinaryImage b = dilate(complement, 1);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const bool fg_a = a.data()[i] == kForeground;
    const bool bg_b = b.data()[i] == kBackground;
    EXPECT_EQ(fg_a, bg_b) << "pixel " << i;
  }
}

TEST(Morphology, OpeningAndClosingAreIdempotent) {
  // Classic lattice property: applying opening (or closing) twice equals
  // applying it once. Checked on an irregular composite shape.
  BinaryImage img(40, 40, kBackground);
  fill_rect(img, 5, 5, 20, 12, kForeground);
  fill_rect(img, 15, 10, 35, 30, kForeground);
  img(3, 3) = kForeground;   // speck
  img(25, 20) = kBackground; // pinhole
  const BinaryImage opened = open(img, 1);
  EXPECT_EQ(open(opened, 1), opened);
  const BinaryImage closed = close(img, 1);
  EXPECT_EQ(close(closed, 1), closed);
}

TEST(Morphology, ExtensivityAndAntiExtensivity) {
  // Opening only removes pixels; closing only adds them.
  BinaryImage img(30, 30, kBackground);
  fill_rect(img, 8, 8, 21, 21, kForeground);
  img(10, 10) = kBackground;
  img(2, 2) = kForeground;
  const BinaryImage opened = open(img, 1);
  const BinaryImage closed = close(img, 1);
  for (int y = 0; y < 30; ++y) {
    for (int x = 0; x < 30; ++x) {
      if (opened(x, y) == kForeground) {
        EXPECT_EQ(img(x, y), kForeground);
      }
      if (img(x, y) == kForeground) {
        EXPECT_EQ(closed(x, y), kForeground);
      }
    }
  }
}

TEST(Components, LabelsDisjointRegions) {
  BinaryImage img(30, 20, kBackground);
  fill_rect(img, 2, 2, 6, 6, kForeground);    // 25 px
  fill_rect(img, 12, 2, 13, 3, kForeground);  // 4 px
  fill_rect(img, 20, 10, 27, 17, kForeground);  // 64 px
  const Labeling labeling = label_components(img);
  ASSERT_EQ(labeling.components.size(), 3u);
  std::vector<std::size_t> areas;
  for (const Component& c : labeling.components) areas.push_back(c.area);
  std::sort(areas.begin(), areas.end());
  EXPECT_EQ(areas, (std::vector<std::size_t>{4u, 25u, 64u}));
}

TEST(Components, EightConnectivityJoinsDiagonals) {
  BinaryImage img(4, 4, kBackground);
  img(0, 0) = kForeground;
  img(1, 1) = kForeground;  // diagonal neighbour
  img(2, 2) = kForeground;
  const Labeling labeling = label_components(img);
  EXPECT_EQ(labeling.components.size(), 1u);
  EXPECT_EQ(labeling.components[0].area, 3u);
}

TEST(Components, StatisticsAreCorrect) {
  BinaryImage img(20, 20, kBackground);
  fill_rect(img, 4, 6, 9, 11, kForeground);  // 6x6 at (4..9, 6..11)
  const Labeling labeling = label_components(img);
  ASSERT_EQ(labeling.components.size(), 1u);
  const Component& c = labeling.components[0];
  EXPECT_EQ(c.min_x, 4);
  EXPECT_EQ(c.max_x, 9);
  EXPECT_EQ(c.min_y, 6);
  EXPECT_EQ(c.max_y, 11);
  EXPECT_NEAR(c.centroid.x, 6.5, 1e-9);
  EXPECT_NEAR(c.centroid.y, 8.5, 1e-9);
}

TEST(Components, UShapeMergesAcrossScanOrder) {
  // A U-shape forces provisional labels to merge in pass 1.
  BinaryImage img(20, 20, kBackground);
  fill_rect(img, 2, 2, 4, 15, kForeground);   // left arm
  fill_rect(img, 12, 2, 14, 15, kForeground); // right arm
  fill_rect(img, 2, 13, 14, 15, kForeground); // bridge at the bottom
  const Labeling labeling = label_components(img);
  EXPECT_EQ(labeling.components.size(), 1u);
}

TEST(LargestComponent, PicksBiggestAboveMinArea) {
  BinaryImage img(30, 20, kBackground);
  fill_rect(img, 2, 2, 6, 6, kForeground);
  fill_rect(img, 20, 10, 27, 17, kForeground);  // larger
  const BinaryImage mask = largest_component_mask(img, 1);
  EXPECT_EQ(mask(22, 12), kForeground);
  EXPECT_EQ(mask(3, 3), kBackground);
  EXPECT_EQ(foreground_area(mask), 64u);
  // min_area above everything yields empty mask.
  EXPECT_EQ(foreground_area(largest_component_mask(img, 100)), 0u);
  // Empty input yields empty mask.
  const BinaryImage empty(5, 5, kBackground);
  EXPECT_EQ(foreground_area(largest_component_mask(empty, 1)), 0u);
}

TEST(RemoveSmall, DespecklesBelowThreshold) {
  BinaryImage img(30, 20, kBackground);
  fill_rect(img, 2, 2, 6, 6, kForeground);    // 25
  fill_rect(img, 12, 2, 13, 3, kForeground);  // 4
  const BinaryImage cleaned = remove_small_components(img, 10);
  EXPECT_EQ(foreground_area(cleaned), 25u);
  EXPECT_EQ(cleaned(12, 2), kBackground);
}

// Straightforward per-pixel reimplementation of the original two-pass
// labelling (bounds-checked neighbour loop, no row-scan skipping). The
// production version rewrote the row passes branch-light (memchr runs,
// peeled edges, branchless mask fill); this reference pins bit-identity —
// labels, component order AND statistics — across random rasters.
Labeling reference_label(const BinaryImage& binary) {
  struct RefSet {
    std::vector<std::int32_t> parent;
    std::int32_t make_set() {
      parent.push_back(static_cast<std::int32_t>(parent.size()));
      return parent.back();
    }
    std::int32_t find(std::int32_t x) {
      while (parent[static_cast<std::size_t>(x)] != x) {
        parent[static_cast<std::size_t>(x)] =
            parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
        x = parent[static_cast<std::size_t>(x)];
      }
      return x;
    }
    void unite(std::int32_t a, std::int32_t b) {
      a = find(a);
      b = find(b);
      if (a != b) {
        parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
      }
    }
  };
  Labeling out;
  out.labels.reset(binary.width(), binary.height(), 0);
  RefSet sets;
  sets.make_set();
  for (int y = 0; y < binary.height(); ++y) {
    for (int x = 0; x < binary.width(); ++x) {
      if (binary(x, y) != kForeground) continue;
      std::int32_t neighbour = 0;
      constexpr int offsets[4][2] = {{-1, 0}, {-1, -1}, {0, -1}, {1, -1}};
      for (const auto& off : offsets) {
        const int nx = x + off[0];
        const int ny = y + off[1];
        if (!binary.in_bounds(nx, ny)) continue;
        const std::int32_t nl = out.labels(nx, ny);
        if (nl == 0) continue;
        if (neighbour == 0) {
          neighbour = nl;
        } else {
          sets.unite(neighbour, nl);
        }
      }
      out.labels(x, y) = neighbour != 0 ? neighbour : sets.make_set();
    }
  }
  std::vector<std::int32_t> remap;
  for (int y = 0; y < binary.height(); ++y) {
    for (int x = 0; x < binary.width(); ++x) {
      const std::int32_t l = out.labels(x, y);
      if (l == 0) continue;
      const std::int32_t root = sets.find(l);
      if (static_cast<std::size_t>(root) >= remap.size()) {
        remap.resize(static_cast<std::size_t>(root) + 1, 0);
      }
      if (remap[static_cast<std::size_t>(root)] == 0) {
        remap[static_cast<std::size_t>(root)] =
            static_cast<std::int32_t>(out.components.size()) + 1;
        out.components.push_back(
            Component{static_cast<std::int32_t>(out.components.size()) + 1, 0, x,
                      y, x, y, {}});
      }
      const std::int32_t compact = remap[static_cast<std::size_t>(root)];
      out.labels(x, y) = compact;
      Component& comp = out.components[static_cast<std::size_t>(compact - 1)];
      ++comp.area;
      comp.min_x = std::min(comp.min_x, x);
      comp.min_y = std::min(comp.min_y, y);
      comp.max_x = std::max(comp.max_x, x);
      comp.max_y = std::max(comp.max_y, y);
      comp.centroid.x += x;
      comp.centroid.y += y;
    }
  }
  for (Component& comp : out.components) {
    if (comp.area > 0) {
      comp.centroid.x /= static_cast<double>(comp.area);
      comp.centroid.y /= static_cast<double>(comp.area);
    }
  }
  return out;
}

TEST(Components, VectorisedPassesBitIdenticalToReferenceOnRandomRasters) {
  hdc::util::Rng rng(1234);
  for (int trial = 0; trial < 120; ++trial) {
    const int w = 1 + static_cast<int>(rng.uniform() * 70);
    const int h = 1 + static_cast<int>(rng.uniform() * 50);
    const double density = rng.uniform();  // sparse through dense
    BinaryImage img(w, h, kBackground);
    for (std::uint8_t& px : img.data()) {
      px = rng.uniform() < density ? kForeground : kBackground;
    }

    const Labeling got = label_components(img);
    const Labeling want = reference_label(img);
    ASSERT_TRUE(got.labels == want.labels) << "trial " << trial;
    ASSERT_EQ(got.components.size(), want.components.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.components.size(); ++i) {
      const Component& g = got.components[i];
      const Component& r = want.components[i];
      EXPECT_EQ(g.label, r.label);
      EXPECT_EQ(g.area, r.area);
      EXPECT_EQ(g.min_x, r.min_x);
      EXPECT_EQ(g.min_y, r.min_y);
      EXPECT_EQ(g.max_x, r.max_x);
      EXPECT_EQ(g.max_y, r.max_y);
      EXPECT_EQ(g.centroid.x, r.centroid.x);  // same summation order: exact
      EXPECT_EQ(g.centroid.y, r.centroid.y);
    }

    // The branchless mask fill and the keep-LUT despeckle agree with a
    // per-pixel reference over the same labelling.
    const BinaryImage mask = largest_component_mask(img, 3);
    const Component* largest = nullptr;
    for (const Component& comp : want.components) {
      if (comp.area >= 3 && (largest == nullptr || comp.area > largest->area)) {
        largest = &comp;
      }
    }
    BinaryImage want_mask(w, h, kBackground);
    if (largest != nullptr) {
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          if (want.labels(x, y) == largest->label) want_mask(x, y) = kForeground;
        }
      }
    }
    ASSERT_TRUE(mask == want_mask) << "trial " << trial;

    const BinaryImage cleaned = remove_small_components(img, 4);
    BinaryImage want_cleaned(w, h, kBackground);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const std::int32_t l = want.labels(x, y);
        if (l != 0 &&
            want.components[static_cast<std::size_t>(l - 1)].area >= 4) {
          want_cleaned(x, y) = kForeground;
        }
      }
    }
    ASSERT_TRUE(cleaned == want_cleaned) << "trial " << trial;
  }
}

}  // namespace
}  // namespace hdc::imaging
