#include <gtest/gtest.h>

#include "imaging/components.hpp"
#include "imaging/draw.hpp"
#include "imaging/morphology.hpp"

namespace hdc::imaging {
namespace {

TEST(Morphology, ErodeShrinksDilateGrows) {
  BinaryImage img(20, 20, kBackground);
  fill_rect(img, 5, 5, 14, 14, kForeground);  // 10x10 block
  EXPECT_EQ(foreground_area(erode(img, 1)), 64u);   // 8x8
  EXPECT_EQ(foreground_area(dilate(img, 1)), 144u); // 12x12
  EXPECT_EQ(erode(img, 0), img);
}

TEST(Morphology, OpenRemovesSpecksKeepsBlocks) {
  BinaryImage img(20, 20, kBackground);
  fill_rect(img, 5, 5, 14, 14, kForeground);
  img(1, 1) = kForeground;  // single-pixel speck
  const BinaryImage opened = open(img, 1);
  EXPECT_EQ(opened(1, 1), kBackground);
  EXPECT_EQ(opened(10, 10), kForeground);
  EXPECT_EQ(foreground_area(opened), 100u);  // block fully restored
}

TEST(Morphology, CloseFillsHoles) {
  BinaryImage img(20, 20, kBackground);
  fill_rect(img, 5, 5, 14, 14, kForeground);
  img(10, 10) = kBackground;  // pinhole
  const BinaryImage closed = close(img, 1);
  EXPECT_EQ(closed(10, 10), kForeground);
  EXPECT_EQ(foreground_area(closed), 100u);
}

TEST(Morphology, CloseBridgesSmallGap) {
  BinaryImage img(30, 10, kBackground);
  fill_rect(img, 2, 4, 13, 6, kForeground);
  fill_rect(img, 15, 4, 27, 6, kForeground);  // 1-px gap at x=14
  const BinaryImage closed = close(img, 1);
  EXPECT_EQ(closed(14, 5), kForeground);
}

TEST(Morphology, ErodeDilateDuality) {
  // Erosion of the foreground == dilation of the background (complement).
  BinaryImage img(16, 16, kBackground);
  fill_rect(img, 4, 4, 11, 11, kForeground);
  img(6, 6) = kBackground;
  const BinaryImage a = erode(img, 1);
  BinaryImage complement(16, 16);
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    complement.data()[i] = img.data()[i] == kForeground ? kBackground : kForeground;
  }
  const BinaryImage b = dilate(complement, 1);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const bool fg_a = a.data()[i] == kForeground;
    const bool bg_b = b.data()[i] == kBackground;
    EXPECT_EQ(fg_a, bg_b) << "pixel " << i;
  }
}

TEST(Morphology, OpeningAndClosingAreIdempotent) {
  // Classic lattice property: applying opening (or closing) twice equals
  // applying it once. Checked on an irregular composite shape.
  BinaryImage img(40, 40, kBackground);
  fill_rect(img, 5, 5, 20, 12, kForeground);
  fill_rect(img, 15, 10, 35, 30, kForeground);
  img(3, 3) = kForeground;   // speck
  img(25, 20) = kBackground; // pinhole
  const BinaryImage opened = open(img, 1);
  EXPECT_EQ(open(opened, 1), opened);
  const BinaryImage closed = close(img, 1);
  EXPECT_EQ(close(closed, 1), closed);
}

TEST(Morphology, ExtensivityAndAntiExtensivity) {
  // Opening only removes pixels; closing only adds them.
  BinaryImage img(30, 30, kBackground);
  fill_rect(img, 8, 8, 21, 21, kForeground);
  img(10, 10) = kBackground;
  img(2, 2) = kForeground;
  const BinaryImage opened = open(img, 1);
  const BinaryImage closed = close(img, 1);
  for (int y = 0; y < 30; ++y) {
    for (int x = 0; x < 30; ++x) {
      if (opened(x, y) == kForeground) {
        EXPECT_EQ(img(x, y), kForeground);
      }
      if (img(x, y) == kForeground) {
        EXPECT_EQ(closed(x, y), kForeground);
      }
    }
  }
}

TEST(Components, LabelsDisjointRegions) {
  BinaryImage img(30, 20, kBackground);
  fill_rect(img, 2, 2, 6, 6, kForeground);    // 25 px
  fill_rect(img, 12, 2, 13, 3, kForeground);  // 4 px
  fill_rect(img, 20, 10, 27, 17, kForeground);  // 64 px
  const Labeling labeling = label_components(img);
  ASSERT_EQ(labeling.components.size(), 3u);
  std::vector<std::size_t> areas;
  for (const Component& c : labeling.components) areas.push_back(c.area);
  std::sort(areas.begin(), areas.end());
  EXPECT_EQ(areas, (std::vector<std::size_t>{4u, 25u, 64u}));
}

TEST(Components, EightConnectivityJoinsDiagonals) {
  BinaryImage img(4, 4, kBackground);
  img(0, 0) = kForeground;
  img(1, 1) = kForeground;  // diagonal neighbour
  img(2, 2) = kForeground;
  const Labeling labeling = label_components(img);
  EXPECT_EQ(labeling.components.size(), 1u);
  EXPECT_EQ(labeling.components[0].area, 3u);
}

TEST(Components, StatisticsAreCorrect) {
  BinaryImage img(20, 20, kBackground);
  fill_rect(img, 4, 6, 9, 11, kForeground);  // 6x6 at (4..9, 6..11)
  const Labeling labeling = label_components(img);
  ASSERT_EQ(labeling.components.size(), 1u);
  const Component& c = labeling.components[0];
  EXPECT_EQ(c.min_x, 4);
  EXPECT_EQ(c.max_x, 9);
  EXPECT_EQ(c.min_y, 6);
  EXPECT_EQ(c.max_y, 11);
  EXPECT_NEAR(c.centroid.x, 6.5, 1e-9);
  EXPECT_NEAR(c.centroid.y, 8.5, 1e-9);
}

TEST(Components, UShapeMergesAcrossScanOrder) {
  // A U-shape forces provisional labels to merge in pass 1.
  BinaryImage img(20, 20, kBackground);
  fill_rect(img, 2, 2, 4, 15, kForeground);   // left arm
  fill_rect(img, 12, 2, 14, 15, kForeground); // right arm
  fill_rect(img, 2, 13, 14, 15, kForeground); // bridge at the bottom
  const Labeling labeling = label_components(img);
  EXPECT_EQ(labeling.components.size(), 1u);
}

TEST(LargestComponent, PicksBiggestAboveMinArea) {
  BinaryImage img(30, 20, kBackground);
  fill_rect(img, 2, 2, 6, 6, kForeground);
  fill_rect(img, 20, 10, 27, 17, kForeground);  // larger
  const BinaryImage mask = largest_component_mask(img, 1);
  EXPECT_EQ(mask(22, 12), kForeground);
  EXPECT_EQ(mask(3, 3), kBackground);
  EXPECT_EQ(foreground_area(mask), 64u);
  // min_area above everything yields empty mask.
  EXPECT_EQ(foreground_area(largest_component_mask(img, 100)), 0u);
  // Empty input yields empty mask.
  const BinaryImage empty(5, 5, kBackground);
  EXPECT_EQ(foreground_area(largest_component_mask(empty, 1)), 0u);
}

TEST(RemoveSmall, DespecklesBelowThreshold) {
  BinaryImage img(30, 20, kBackground);
  fill_rect(img, 2, 2, 6, 6, kForeground);    // 25
  fill_rect(img, 12, 2, 13, 3, kForeground);  // 4
  const BinaryImage cleaned = remove_small_components(img, 10);
  EXPECT_EQ(foreground_area(cleaned), 25u);
  EXPECT_EQ(cleaned(12, 2), kBackground);
}

}  // namespace
}  // namespace hdc::imaging
