#include "drone/kinematics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "drone/battery.hpp"

namespace hdc::drone {
namespace {

TEST(Kinematics, AccelerationLimited) {
  DroneLimits limits;
  limits.max_acceleration = 2.0;
  DroneKinematics kin(limits);
  kin.step(0.1, {100.0, 0.0, 0.0});
  EXPECT_LE(kin.state().velocity.norm(), 2.0 * 0.1 + 1e-9);
}

TEST(Kinematics, SpeedClampedToEnvelope) {
  DroneLimits limits;
  limits.max_horizontal_speed = 5.0;
  limits.max_vertical_speed = 2.0;
  DroneKinematics kin(limits);
  for (int i = 0; i < 400; ++i) kin.step(0.05, {100.0, 0.0, 50.0});
  EXPECT_LE(kin.state().velocity.xy().norm(), 5.0 + 1e-9);
  EXPECT_LE(kin.state().velocity.z, 2.0 + 1e-9);
}

TEST(Kinematics, GroundClampStopsDescent) {
  DroneKinematics kin;
  kin.mutable_state().position = {0.0, 0.0, 0.3};
  for (int i = 0; i < 100; ++i) kin.step(0.05, {0.0, 0.0, -3.0});
  EXPECT_DOUBLE_EQ(kin.state().position.z, 0.0);
  EXPECT_GE(kin.state().velocity.z, 0.0);
}

TEST(Kinematics, WaypointControllerConverges) {
  DroneKinematics kin;
  const Vec3 target{4.0, -3.0, 2.5};
  for (int i = 0; i < 2000 && !kin.reached(target); ++i) {
    kin.step(0.02, kin.velocity_command_to(target));
  }
  EXPECT_TRUE(kin.reached(target));
}

TEST(Kinematics, SpeedScaleSlowsApproach) {
  DroneKinematics fast, slow;
  const Vec3 target{10.0, 0.0, 2.0};
  int fast_ticks = 0, slow_ticks = 0;
  while (!fast.reached(target) && fast_ticks < 5000) {
    fast.step(0.02, fast.velocity_command_to(target, 1.0));
    ++fast_ticks;
  }
  while (!slow.reached(target) && slow_ticks < 5000) {
    slow.step(0.02, slow.velocity_command_to(target, 0.3));
    ++slow_ticks;
  }
  EXPECT_LT(fast_ticks, slow_ticks);
}

TEST(Kinematics, ZeroDtIsNoOp) {
  DroneKinematics kin;
  kin.mutable_state().position = {1.0, 2.0, 3.0};
  const Vec3 before = kin.state().position;
  kin.step(0.0, {5.0, 5.0, 5.0});
  EXPECT_EQ(kin.state().position, before);
}

TEST(Kinematics, CourseFollowsVelocity) {
  DroneKinematics kin;
  for (int i = 0; i < 100; ++i) kin.step(0.05, {1.0, 1.0, 0.0});
  EXPECT_NEAR(kin.state().course(), hdc::util::kPi / 4.0, 0.05);
  EXPECT_GT(kin.state().ground_speed(), 0.5);
}

TEST(Wind, OrnsteinUhlenbeckStaysBounded) {
  WindModel wind(2.0, 1.0, 99);
  double max_speed = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const Vec3 w = wind.step(0.02);
    max_speed = std::max(max_speed, w.norm());
    EXPECT_DOUBLE_EQ(w.z, 0.0);
  }
  EXPECT_LT(max_speed, 12.0);  // mean reversion keeps gusts sane
  EXPECT_GT(max_speed, 1.0);
}

TEST(Wind, DeterministicPerSeed) {
  WindModel a(1.0, 0.5, 7), b(1.0, 0.5, 7);
  for (int i = 0; i < 100; ++i) {
    const Vec3 wa = a.step(0.05);
    const Vec3 wb = b.step(0.05);
    EXPECT_DOUBLE_EQ(wa.x, wb.x);
    EXPECT_DOUBLE_EQ(wa.y, wb.y);
  }
}

TEST(Wind, DisturbsTrajectory) {
  DroneKinematics calm, gusty;
  WindModel wind(3.0, 2.0, 5);
  for (int i = 0; i < 200; ++i) {
    calm.step(0.05, {0.0, 1.0, 0.0});
    gusty.step(0.05, {0.0, 1.0, 0.0}, wind.step(0.05));
  }
  EXPECT_GT(calm.state().position.distance_to(gusty.state().position), 0.5);
}

TEST(Battery, DrainAndReserve) {
  BatteryParams params;
  params.capacity_wh = 1.0;  // tiny pack so thresholds trip quickly
  params.hover_power_w = 360.0;
  params.avionics_power_w = 0.0;
  params.reserve_fraction = 0.5;
  Battery battery(params);
  EXPECT_DOUBLE_EQ(battery.state_of_charge(), 1.0);
  EXPECT_FALSE(battery.reserve_reached());
  battery.drain(5.0, true, 0.0);  // 360 W * 5 s = 0.5 Wh
  EXPECT_NEAR(battery.state_of_charge(), 0.5, 0.01);
  EXPECT_TRUE(battery.reserve_reached());
  battery.drain(3600.0, true, 10.0);
  EXPECT_TRUE(battery.empty());
  EXPECT_DOUBLE_EQ(battery.energy_wh(), 0.0);
}

TEST(Battery, RotorsOffDrawsOnlyAvionics) {
  Battery a, b;
  a.drain(3600.0, false, 0.0);
  b.drain(3600.0, true, 0.0);
  EXPECT_GT(a.energy_wh(), b.energy_wh());
}

TEST(Battery, SpeedIncreasesDraw) {
  Battery slow, fast;
  slow.drain(600.0, true, 0.0);
  fast.drain(600.0, true, 8.0);
  EXPECT_GT(slow.energy_wh(), fast.energy_wh());
}

TEST(LedPower, InverseSquareVisibility) {
  const LedPowerModel model;
  const double near = model.illuminance_at(10.0, 0.5);
  const double far = model.illuminance_at(20.0, 0.5);
  EXPECT_NEAR(near / far, 4.0, 1e-9);
  EXPECT_GT(model.visibility_range(1.0, 1000.0), model.visibility_range(0.2, 1000.0));
  EXPECT_GT(model.visibility_range(0.5, 10.0), model.visibility_range(0.5, 10000.0));
  EXPECT_DOUBLE_EQ(model.illuminance_at(0.0, 0.5), 0.0);
}

}  // namespace
}  // namespace hdc::drone
